package repro_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/workloads"
	"repro/pz"
)

// Corpus-at-scale integration: generate → spill to NDJSON → register
// file-backed → execute → score against ground truth, for both new
// domains, plus engine parity over the file-backed path.

// spill writes a domain corpus to NDJSON under t.TempDir.
func spill(t *testing.T, domain string, n int, seed int64) string {
	t.Helper()
	g, err := corpus.NewGenerator(domain, n, -1, seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), domain+".ndjson")
	if _, err := corpus.SaveNDJSON(path, g, seed, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSupportTriageOverNDJSONCorpus(t *testing.T) {
	path := spill(t, corpus.DomainSupport, 200, 17)
	ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	src, err := ctx.RegisterNDJSON("tickets", path)
	if err != nil {
		t.Fatal(err)
	}
	route, err := workloads.SupportRouteSchema()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Dataset("tickets")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Execute(ds.
		Filter(workloads.SupportPredicate).
		Convert(route, route.Doc(), pz.OneToOne), pz.MaxQuality())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no tickets kept")
	}
	inputs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	triage := metrics.FilterQualityByTruth(inputs, res.Records, workloads.SupportPredicate)
	if triage.F1 < 0.9 {
		t.Fatalf("triage F1 = %.3f, want >= 0.9 (%s)", triage.F1, triage)
	}
	catAcc, n := metrics.FieldAccuracy(res.Records, "category", "category")
	if n == 0 || catAcc < 0.9 {
		t.Fatalf("category accuracy %.3f over %d records, want >= 0.9", catAcc, n)
	}
}

func TestFinanceExtractionOverNDJSONCorpus(t *testing.T) {
	path := spill(t, corpus.DomainFinance, 150, 23)
	ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	src, err := ctx.RegisterNDJSON("filings", path)
	if err != nil {
		t.Fatal(err)
	}
	figures, err := workloads.FinanceFiguresSchema()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Dataset("filings")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Execute(ds.
		Filter(workloads.FinancePredicate).
		Convert(figures, figures.Doc(), pz.OneToOne), pz.MaxQuality())
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	filter := metrics.FilterQualityByTruth(inputs, res.Records, workloads.FinancePredicate)
	if filter.F1 < 0.9 {
		t.Fatalf("filter F1 = %.3f, want >= 0.9 (%s)", filter.F1, filter)
	}
	revAcc, n := metrics.FieldAccuracy(res.Records, "revenue_musd", "revenue_musd")
	if n == 0 || revAcc < 0.9 {
		t.Fatalf("revenue accuracy %.3f over %d records, want >= 0.9", revAcc, n)
	}
}

// TestNDJSONEnginesAgree runs the same file-backed pipeline sequentially
// (P=1, materializing scan) and pipelined (P=8, streaming scan) and
// requires field-identical outputs.
func TestNDJSONEnginesAgree(t *testing.T) {
	path := spill(t, corpus.DomainSupport, 120, 5)
	run := func(parallelism int) []string {
		ctx, err := pz.NewContext(pz.Config{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
			t.Fatal(err)
		}
		ds, err := ctx.Dataset("tickets")
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctx.Execute(ds.Filter(workloads.SupportPredicate), pz.MaxQuality())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res.Records))
		for i, r := range res.Records {
			out[i] = fmt.Sprintf("%s|%s", r.GetString("filename"), r.GetString("contents"))
		}
		return out
	}
	seq, pipe := run(1), run(8)
	if len(seq) != len(pipe) {
		t.Fatalf("engines kept %d vs %d records", len(seq), len(pipe))
	}
	for i := range seq {
		if seq[i] != pipe[i] {
			t.Fatalf("record %d differs between engines", i)
		}
	}
}

// TestSpecFileRegistersNDJSON drives the serving-layer wire format: a
// spec naming an unregistered dataset with a "file" pointer must register
// the corpus on first use, exactly as "dir" does for folders.
func TestSpecFileRegistersNDJSON(t *testing.T) {
	path := spill(t, corpus.DomainFinance, 40, 9)
	raw := fmt.Sprintf(`{
	  "dataset": {"name": "filings", "file": %q},
	  "ops": [{"op": "filter", "predicate": %q}],
	  "policy": "max-quality"
	}`, path, workloads.FinancePredicate)
	sp, err := serve.ParseSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := pz.NewContext(pz.Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sp.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := sp.ParsePolicy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Execute(ds, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("spec-registered corpus produced no records")
	}
	if got := ctx.Datasets(); len(got) != 1 || got[0] != "filings" {
		t.Fatalf("registry = %v", got)
	}

	// A spec with neither a registered name nor dir/file must error.
	bad := &serve.Spec{Dataset: serve.DatasetSpec{Name: "ghost"}}
	if _, err := bad.Build(ctx); err == nil || !strings.Contains(err.Error(), "no dir or file") {
		t.Fatalf("unresolvable dataset error = %v", err)
	}
}
