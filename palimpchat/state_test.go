package palimpchat

import (
	"strings"
	"testing"
)

func TestSnapshotRestoreThroughChat(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	r := chat(t, s, "save the current state as clean")
	if !strings.Contains(r, "clean") {
		t.Fatalf("save reply = %q", r)
	}
	chat(t, s, "filter for papers about colorectal cancer")
	d := chat(t, s, "describe the pipeline")
	if !strings.Contains(d, "filter(") {
		t.Fatal("filter not added")
	}
	nbBefore := s.Notebook().Len()

	r = chat(t, s, "restore the state clean")
	if !strings.Contains(r, "Restored") {
		t.Fatalf("restore reply = %q", r)
	}
	d = chat(t, s, "describe the pipeline")
	if strings.Contains(d, "filter(") {
		t.Fatalf("restore did not roll back pipeline: %q", d)
	}
	if s.Notebook().Len() >= nbBefore {
		t.Errorf("notebook not rolled back: %d cells >= %d", s.Notebook().Len(), nbBefore)
	}
	if got := s.Snapshots(); len(got) != 1 || got[0] != "clean" {
		t.Errorf("Snapshots = %v", got)
	}
}

func TestRestoreByIndexAndErrors(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "save the current state as s0")
	chat(t, s, "filter for papers about cancer")
	r := chat(t, s, "go back to snapshot 0")
	if !strings.Contains(r, "Restored state 0") {
		t.Fatalf("restore-by-index reply = %q", r)
	}
	if _, err := s.Chat("restore the state nonexistent"); err == nil {
		t.Error("restoring unknown snapshot accepted")
	}
}

func TestSnapshotRestoresSchemasAndPolicy(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "minimize the cost")
	chat(t, s, "save the current state as cheap")
	chat(t, s, "optimize for maximum quality")
	chat(t, s, "create a schema called Later with fields a, b")
	if s.policyName != "max-quality" {
		t.Fatalf("policy = %s", s.policyName)
	}
	chat(t, s, "restore the state cheap")
	if s.policyName != "min-cost" {
		t.Errorf("policy after restore = %s, want min-cost", s.policyName)
	}
	if _, ok := s.schemas["Later"]; ok {
		t.Error("schema created after snapshot survived restore")
	}
}

func TestExplainPlanThroughChat(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "filter for papers about colorectal cancer")
	chat(t, s, "extract the dataset name, description and url")
	r := chat(t, s, "explain the plan choice")
	for _, want := range []string{"Chosen plan", "candidates considered", "Pareto frontier", "atlas-large", "q="} {
		if !strings.Contains(r, want) {
			t.Errorf("explain missing %q:\n%s", want, r)
		}
	}
	// The chosen plan is marked in the frontier listing.
	if !strings.Contains(r, "* ") {
		t.Error("chosen plan not marked in frontier")
	}
}

func TestExplainPlanRequiresPipeline(t *testing.T) {
	s := newSession(t)
	if _, err := s.Chat("explain the plan choice"); err == nil {
		t.Error("explain without pipeline accepted")
	}
}

func TestExtractSaveRestoreExplain(t *testing.T) {
	if args, ok := extractSaveState("save the current state as before-filter"); !ok || args["label"] != "before-filter" {
		t.Errorf("extractSaveState = %v, %v", args, ok)
	}
	if _, ok := extractSaveState("save the notebook to ./x.ipynb as backup"); ok {
		t.Error("notebook export misrouted to save_state")
	}
	if args, ok := extractRestoreState("restore the state clean"); !ok || args["label"] != "clean" {
		t.Errorf("extractRestoreState = %v, %v", args, ok)
	}
	if args, ok := extractRestoreState("go back to snapshot 2"); !ok || args["label"] != "2" {
		t.Errorf("extractRestoreState index = %v, %v", args, ok)
	}
	if _, ok := extractRestoreState("restore"); ok {
		t.Error("labelless restore accepted")
	}
	if _, ok := extractExplainPlan("why did the optimizer pick that plan?"); !ok {
		t.Error("extractExplainPlan missed")
	}
	if _, ok := extractExplainPlan("run the pipeline"); ok {
		t.Error("extractExplainPlan false positive")
	}
}
