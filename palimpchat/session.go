// Package palimpchat implements the PalimpChat system (paper §2.3): a
// chat-based interface that integrates Palimpzest (pz) with Archytas by
// exposing "a series of tools that the LLM-based agent can leverage ...
// templated code snippets that can 1. perform fundamental Palimpzest
// operations (e.g., registering a dataset, generating schemas, filtering
// records) and 2. orchestrate entire pipelines of transformations", hosted
// in a Beaker-style hybrid notebook/chat environment.
package palimpchat

import (
	"fmt"
	"os"
	"strings"

	"repro/archytas"
	"repro/internal/notebook"
	"repro/pz"
)

// Session is one PalimpChat conversation: a pz Context, an Archytas agent
// over the PalimpChat toolset, a notebook accumulating chat + generated
// code, and the pipeline state being built.
type Session struct {
	ctx      *pz.Context
	agent    *archytas.Agent
	notebook *notebook.Notebook

	// Pipeline state mutated by tools.
	datasetName string
	pipeline    *pz.Dataset
	schemas     map[string]*pz.Schema
	schemaOrder []string
	policy      pz.Policy
	policyName  string
	lastResult  *pz.Result
	states      []sessionState
}

// Options configures a Session.
type Options struct {
	// Config is the Palimpzest context configuration.
	Config pz.Config
	// WithoutDocExamples strips usage examples from tool docstrings
	// (experiment E8's ablation).
	WithoutDocExamples bool
}

// NewSession builds a session with the standard PalimpChat toolset.
func NewSession(opts Options) (*Session, error) {
	ctx, err := pz.NewContext(opts.Config)
	if err != nil {
		return nil, err
	}
	s := &Session{
		ctx:      ctx,
		notebook: notebook.New(),
		schemas:  map[string]*pz.Schema{},
		policy:   pz.MaxQuality(),
		// The demo defaults to maximum quality, as in Figure 6.
		policyName: "max-quality",
	}
	tb := archytas.NewToolbox()
	if opts.WithoutDocExamples {
		tb.WithoutExamples()
	}
	for _, tool := range s.tools() {
		if err := tb.Register(tool); err != nil {
			return nil, err
		}
	}
	agent, err := archytas.NewAgent(tb, archytas.NewEnv())
	if err != nil {
		return nil, err
	}
	s.agent = agent
	return s, nil
}

// Context exposes the underlying Palimpzest context.
func (s *Session) Context() *pz.Context { return s.ctx }

// Agent exposes the Archytas agent (traces, direct invocation).
func (s *Session) Agent() *archytas.Agent { return s.agent }

// Notebook exposes the session notebook.
func (s *Session) Notebook() *notebook.Notebook { return s.notebook }

// LastResult returns the most recent pipeline execution (nil before any
// run).
func (s *Session) LastResult() *pz.Result { return s.lastResult }

// Pipeline returns the pipeline under construction (nil before a dataset
// is loaded).
func (s *Session) Pipeline() *pz.Dataset { return s.pipeline }

// Chat processes one user utterance through the ReAct agent, recording the
// exchange (and any generated code) in the notebook, and returns the
// agent's reply.
func (s *Session) Chat(utterance string) (string, error) {
	s.notebook.AddChatUser(utterance)
	steps, err := s.agent.Handle(utterance)
	var parts []string
	for _, st := range steps {
		if st.Code != "" {
			id := s.notebook.AddCode(st.Code)
			_ = s.notebook.SetOutput(id, st.Observation)
		}
		if st.Observation != "" {
			parts = append(parts, st.Observation)
		}
		if st.Err != nil {
			parts = append(parts, "error: "+st.Err.Error())
		}
	}
	reply := strings.Join(parts, "\n")
	if reply == "" {
		reply = "(nothing to do)"
	}
	s.notebook.AddChatAgent(reply)
	if err != nil {
		return reply, err
	}
	return reply, nil
}

// Steps returns the full ReAct trace so far.
func (s *Session) Steps() []archytas.Step { return s.agent.Trace() }

// requirePipeline returns the pipeline or a friendly error telling the
// user to load a dataset first.
func (s *Session) requirePipeline() (*pz.Dataset, error) {
	if s.pipeline == nil {
		return nil, fmt.Errorf("no dataset loaded yet — ask me to load one first (e.g. \"load the papers from ./pdfs\")")
	}
	return s.pipeline, nil
}

// lastSchema returns the most recently created schema.
func (s *Session) lastSchema() (*pz.Schema, bool) {
	if len(s.schemaOrder) == 0 {
		return nil, false
	}
	return s.schemas[s.schemaOrder[len(s.schemaOrder)-1]], true
}

// rememberSchema stores a schema under its name.
func (s *Session) rememberSchema(sc *pz.Schema) {
	if _, dup := s.schemas[sc.Name()]; !dup {
		s.schemaOrder = append(s.schemaOrder, sc.Name())
	}
	s.schemas[sc.Name()] = sc
}

// SaveNotebook writes the exported notebook JSON to path.
func (s *Session) SaveNotebook(path string) error {
	data, err := s.notebook.ExportJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// GenerateCode renders the current pipeline as Palimpzest code (the
// paper's Figure 6 artifact).
func (s *Session) GenerateCode() (string, error) {
	if s.pipeline == nil {
		return "", fmt.Errorf("palimpchat: no pipeline to generate code for")
	}
	return GenerateCode(s.datasetName, s.pipeline, s.schemas, s.policyName), nil
}
