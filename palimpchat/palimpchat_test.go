package palimpchat

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/pz"
)

// demoDir materializes the paper's 11-paper corpus on disk.
func demoDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("sigmod-demo", dir, docs); err != nil {
		t.Fatal(err)
	}
	return dir
}

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func chat(t *testing.T, s *Session, utterance string) string {
	t.Helper()
	reply, err := s.Chat(utterance)
	if err != nil {
		t.Fatalf("Chat(%q): %v\nreply: %s", utterance, err, reply)
	}
	return reply
}

func TestE2FullScientificDiscoveryConversation(t *testing.T) {
	// The paper's §3 demo scenario end-to-end through chat (Figures 3-5).
	dir := demoDir(t)
	s := newSession(t)

	r1 := chat(t, s, "load the papers from \""+dir+"\" as sigmod-demo")
	if !strings.Contains(r1, "11 files") || !strings.Contains(r1, "PDFFile") {
		t.Fatalf("load reply = %q", r1)
	}

	r2 := chat(t, s, "I am interested in papers about colorectal cancer and for these extract the dataset name, description and url")
	if !strings.Contains(r2, "filter") && !strings.Contains(r2, "Added filter") {
		t.Fatalf("filter step missing: %q", r2)
	}
	if !strings.Contains(r2, "conversion") {
		t.Fatalf("convert step missing: %q", r2)
	}

	r3 := chat(t, s, "optimize for maximum quality")
	if !strings.Contains(r3, "quality") {
		t.Fatalf("policy reply = %q", r3)
	}

	r4 := chat(t, s, "run the pipeline")
	if !strings.Contains(r4, "6 output records") {
		t.Fatalf("execution reply should report the paper's 6 datasets: %q", r4)
	}

	r5 := chat(t, s, "how much runtime was needed and how much did the LLM calls cost?")
	if !strings.Contains(r5, "total runtime") || !strings.Contains(r5, "total cost") {
		t.Fatalf("stats reply = %q", r5)
	}

	r6 := chat(t, s, "show me the extracted records")
	if !strings.Contains(r6, "6 records") || !strings.Contains(r6, "https://") {
		t.Fatalf("records reply = %q", r6)
	}

	// The agent decomposed the compound request into chained tool calls
	// (Figure 4's behaviour).
	steps := s.Steps()
	var actions []string
	for _, st := range steps {
		actions = append(actions, st.Action)
	}
	joined := strings.Join(actions, " ")
	for _, want := range []string{"load_dataset", "filter_dataset", "convert_dataset", "set_policy", "execute_pipeline", "show_statistics", "show_records"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing action %s in trace: %v", want, actions)
		}
	}
}

func TestE3GeneratedCodeMatchesFigure6(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "filter for papers about colorectal cancer")
	chat(t, s, "extract the dataset name, description and url")
	code := chat(t, s, "show me the code for the pipeline")

	// Figure 6's structural elements.
	for _, want := range []string{
		"#Set input dataset",
		"pz.Dataset(source=",
		"#Filter dataset",
		"dataset.filter(",
		"colorectal cancer",
		"#Create new schema",
		"pz.Field(desc=desc)",
		"type(class_name, (pz.Schema,), schema)",
		"#Perform conversion",
		"pz.Cardinality.ONE_TO_MANY",
		"#Execute workload",
		"policy = pz.MaxQuality()",
		"records, execution_stats = Execute(output, policy=policy)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q\n%s", want, code)
		}
	}
}

func TestNotebookAccumulatesCells(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "filter for papers about colorectal cancer")
	nb := s.Notebook()
	var users, agents, codes int
	for _, c := range nb.Cells() {
		switch c.Type {
		case "chat_user":
			users++
		case "chat_agent":
			agents++
		case "code":
			codes++
		}
	}
	if users != 2 || agents != 2 {
		t.Errorf("chat cells = %d user / %d agent", users, agents)
	}
	if codes < 2 {
		t.Errorf("code cells = %d, want >= 2 (load + filter templates)", codes)
	}
}

func TestExportNotebookToFile(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	out := filepath.Join(t.TempDir(), "session.ipynb")
	reply := chat(t, s, "export the notebook to \""+out+"\"")
	if !strings.Contains(reply, "exported") {
		t.Fatalf("reply = %q", reply)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("notebook not valid JSON: %v", err)
	}
	if doc["nbformat"] != float64(4) {
		t.Errorf("nbformat = %v", doc["nbformat"])
	}
}

func TestPolicyVariantsThroughChat(t *testing.T) {
	cases := []struct{ utterance, wantName string }{
		{"minimize the cost no matter the quality", "min-cost"},
		{"optimize for the fastest runtime", "min-time"},
		{"maximize quality while staying under $0.50", "quality-at-cost"},
		{"best quality under 120 seconds", "quality-at-time"},
		{"optimize for maximum quality", "max-quality"},
	}
	for _, c := range cases {
		s := newSession(t)
		chat(t, s, c.utterance)
		if s.policyName != c.wantName {
			t.Errorf("%q set policy %s, want %s", c.utterance, s.policyName, c.wantName)
		}
	}
}

func TestErrorsAreFriendly(t *testing.T) {
	s := newSession(t)
	// Filtering before loading a dataset.
	reply, err := s.Chat("filter for papers about cancer")
	if err == nil {
		t.Fatal("filter without dataset should error")
	}
	if !strings.Contains(reply, "load") {
		t.Errorf("reply should suggest loading a dataset: %q", reply)
	}
	// Stats before running.
	s2 := newSession(t)
	if _, err := s2.Chat("show the execution statistics"); err == nil {
		t.Error("stats before run accepted")
	}
	// Missing folder.
	s3 := newSession(t)
	if _, err := s3.Chat("load the papers from /no/such/folder"); err == nil {
		t.Error("missing folder accepted")
	}
}

func TestCreateSchemaThenConvertByName(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	r := chat(t, s, "create a schema called ClinicalData with fields name, description, url")
	if !strings.Contains(r, "ClinicalData") {
		t.Fatalf("schema reply = %q", r)
	}
	r = chat(t, s, "convert the records using the ClinicalData schema")
	if !strings.Contains(r, "ClinicalData") {
		t.Fatalf("convert reply = %q", r)
	}
	if _, ok := s.schemas["ClinicalData"]; !ok {
		t.Error("schema not remembered")
	}
	// Unknown schema errors.
	s2 := newSession(t)
	chat(t, s2, "load the papers from "+dir)
	if _, err := s2.Chat("convert the records using the Bogus schema"); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestDescribeAndResetPipeline(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "filter for papers about colorectal cancer")
	d := chat(t, s, "describe the pipeline")
	if !strings.Contains(d, "scan(") || !strings.Contains(d, "filter(") {
		t.Fatalf("describe = %q", d)
	}
	chat(t, s, "reset the pipeline")
	d2 := chat(t, s, "describe the pipeline")
	if strings.Contains(d2, "filter(") {
		t.Fatalf("reset did not clear operators: %q", d2)
	}
}

func TestListDatasets(t *testing.T) {
	dir := demoDir(t)
	s := newSession(t)
	chat(t, s, "load the papers from "+dir+" as papers")
	r := chat(t, s, "what datasets are available?")
	if !strings.Contains(r, "papers") {
		t.Fatalf("list reply = %q", r)
	}
}

func TestLegalScenarioThroughChat(t *testing.T) {
	dir := t.TempDir()
	docs := corpus.GenerateLegal(corpus.LegalConfig{NumContracts: 10, IndemnificationRate: 0.4, Seed: 21})
	if _, err := dataset.MaterializeCorpus("legal", dir, docs); err != nil {
		t.Fatal(err)
	}
	s := newSession(t)
	chat(t, s, "load the contracts from "+dir+" as legal")
	chat(t, s, "keep only contracts that mention indemnification")
	chat(t, s, "extract the party_a, party_b and effective_date")
	chat(t, s, "minimize the cost")
	r := chat(t, s, "run the pipeline")
	if !strings.Contains(r, "output records") {
		t.Fatalf("run reply = %q", r)
	}
	res := s.LastResult()
	if res == nil || len(res.Records) == 0 {
		t.Fatal("no results")
	}
	if len(res.Records) >= 10 {
		t.Errorf("filter kept everything: %d", len(res.Records))
	}
}

func TestDirectToolInvocation(t *testing.T) {
	// The expert path: invoke tools programmatically.
	dir := demoDir(t)
	s := newSession(t)
	step, err := s.Agent().Invoke("load_dataset", map[string]any{"path": dir, "name": "expert"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(step.Observation, "expert") {
		t.Errorf("observation = %q", step.Observation)
	}
	if _, err := s.Agent().Invoke("create_schema", map[string]any{}); err == nil {
		t.Error("missing required args accepted")
	}
}

func TestGenerateCodeRequiresPipeline(t *testing.T) {
	s := newSession(t)
	if _, err := s.GenerateCode(); err == nil {
		t.Error("code generation without pipeline accepted")
	}
}

func TestSessionUsesPzConfig(t *testing.T) {
	s, err := NewSession(Options{Config: pz.Config{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Context() == nil || s.Agent() == nil || s.Notebook() == nil {
		t.Fatal("session incomplete")
	}
}

func TestAutoSchemaNameAndDescs(t *testing.T) {
	if got := autoSchemaName([]string{"dataset_name", "url"}); got != "ExtractedDatasetName" {
		t.Errorf("autoSchemaName = %q", got)
	}
	if got := autoSchemaName(nil); got != "Extracted" {
		t.Errorf("autoSchemaName(nil) = %q", got)
	}
	descs := defaultFieldDescs([]string{"effective_date"})
	if descs[0] != "The effective date extracted from the record." {
		t.Errorf("descs = %v", descs)
	}
	if baseName("./a/b/") != "b" || baseName("") != "dataset" {
		t.Error("baseName wrong")
	}
}
