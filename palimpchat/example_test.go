package palimpchat_test

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/palimpchat"
)

// Example drives the paper's scientific-discovery scenario through the
// chat interface and reports how many datasets the pipeline extracted.
func Example() {
	dir, err := os.MkdirTemp("", "palimpchat-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("sigmod-demo", dir, docs); err != nil {
		log.Fatal(err)
	}

	session, err := palimpchat.NewSession(palimpchat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, utterance := range []string{
		"load the papers from " + dir + " as sigmod-demo",
		"I am interested in papers about colorectal cancer and for these extract the dataset name, description and url",
		"optimize for maximum quality",
		"run the pipeline",
	} {
		if _, err := session.Chat(utterance); err != nil {
			log.Fatal(err)
		}
	}
	res := session.LastResult()
	urls := 0
	for _, r := range res.Records {
		if strings.HasPrefix(r.GetString("url"), "https://") {
			urls++
		}
	}
	fmt.Printf("extracted %d datasets (%d with https URLs)\n", len(res.Records), urls)
	// Output: extracted 6 datasets (6 with https URLs)
}
