package palimpchat

import (
	"regexp"
	"strconv"
	"strings"

	"repro/internal/schema"
)

// Slot extraction: deterministic parsers that pull tool arguments out of an
// utterance segment. These stand in for the reasoning LLM's argument
// filling (see DESIGN.md substitutions); each returns ok=false when the
// segment doesn't look like a request for its tool, which the Archytas
// router uses as the primary routing signal.

var (
	quotedRE   = regexp.MustCompile(`"([^"]+)"|'([^']+)'`)
	pathRE     = regexp.MustCompile(`(?:\.{0,2}/)[\w./\-]+|[\w.\-]+/[\w./\-]+`)
	asNameRE   = regexp.MustCompile(`\b(?:as|called|named)\s+([A-Za-z_][\w\-]*)`)
	dollarRE   = regexp.MustCompile(`\$\s*([0-9]+(?:\.[0-9]+)?)`)
	secondsRE  = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?)\s*(?:seconds|second|secs|sec|s)\b`)
	minutesRE  = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?)\s*(?:minutes|minute|mins|min)\b`)
	numberRE   = regexp.MustCompile(`\b([0-9]+)\b`)
	fieldsRE   = regexp.MustCompile(`(?:with|having)?\s*(?:the\s+)?fields?\s+(.+)$`)
	schemaKwRE = regexp.MustCompile(`\bschema\b`)
)

func lc(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func hasAny(s string, words ...string) bool {
	for _, w := range words {
		if strings.Contains(s, w) {
			return true
		}
	}
	return false
}

// firstQuoted returns the first quoted span in s.
func firstQuoted(s string) (string, bool) {
	m := quotedRE.FindStringSubmatch(s)
	if m == nil {
		return "", false
	}
	if m[1] != "" {
		return m[1], true
	}
	return m[2], true
}

// extractLoad parses dataset-loading requests: a path (quoted or slashy)
// plus an optional name ("as demo").
func extractLoad(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "load", "register", "upload", "use the folder", "open the folder", "input dataset", "use folder") {
		return nil, false
	}
	path, ok := firstQuoted(utterance)
	if !ok {
		path = pathRE.FindString(utterance)
	}
	if path == "" {
		return nil, false
	}
	args := map[string]any{"path": strings.TrimSpace(path)}
	if m := asNameRE.FindStringSubmatch(l); m != nil {
		args["name"] = m[1]
	}
	return args, true
}

// splitFieldList splits "dataset name, description and url" into cleaned
// field names.
func splitFieldList(list string) []string {
	list = strings.ReplaceAll(list, " and ", ", ")
	list = strings.ReplaceAll(list, " & ", ", ")
	var out []string
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		for _, lead := range []string{"the ", "a ", "an ", "its ", "their "} {
			part = strings.TrimPrefix(part, lead)
		}
		part = strings.Trim(part, ".?! ")
		if part == "" {
			continue
		}
		if clean, err := schema.SanitizeFieldName(part); err == nil {
			out = append(out, clean)
		}
	}
	return out
}

// extractCreateSchema parses schema-creation requests: "create a schema
// called ClinicalData with fields name, description, url".
func extractCreateSchema(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !schemaKwRE.MatchString(l) || !hasAny(l, "create", "make", "define", "generate", "new") {
		return nil, false
	}
	args := map[string]any{}
	if m := asNameRE.FindStringSubmatch(utterance); m != nil {
		args["schema_name"] = m[1]
	} else {
		args["schema_name"] = "Extracted"
	}
	if m := fieldsRE.FindStringSubmatch(l); m != nil {
		fields := splitFieldList(m[1])
		if len(fields) > 0 {
			args["field_names"] = fields
		}
	}
	if _, ok := args["field_names"]; !ok {
		return nil, false
	}
	return args, true
}

// filterLeads are verb phrases stripped from the front of a filter segment
// to leave the predicate.
var filterLeads = []string{
	"filter for", "filter out everything except", "filter to", "filter on", "filter",
	"keep only", "keep", "select only", "select", "only keep", "show me only",
	"i am interested in", "i'm interested in", "im interested in",
	"restrict to", "narrow down to", "find",
}

// extractFilter parses filtering requests; the predicate is the segment
// with the leading verb phrase removed.
func extractFilter(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "filter", "keep", "only", "select", "interested in", "restrict", "narrow") {
		return nil, false
	}
	// "extract"-style requests are converts even if they say "only".
	if hasAny(l, "extract", "convert", "pull out") {
		return nil, false
	}
	if q, ok := firstQuoted(utterance); ok {
		return map[string]any{"predicate": q}, true
	}
	pred := strings.TrimSpace(utterance)
	predL := lc(pred)
	for _, lead := range filterLeads {
		if strings.HasPrefix(predL, lead+" ") {
			pred = strings.TrimSpace(pred[len(lead)+1:])
			break
		}
	}
	// Strip generic determiners; keep subject nouns ("papers about X" is a
	// fine predicate).
	for _, det := range []string{"the ", "all ", "those "} {
		pred = strings.TrimPrefix(pred, det)
	}
	pred = strings.Trim(pred, " .?!")
	if pred == "" {
		return nil, false
	}
	return map[string]any{"predicate": pred}, true
}

// extractConvert parses extraction/conversion requests: either naming an
// existing schema ("using the ClinicalData schema") or listing fields
// inline ("extract the dataset name, description and url").
func extractConvert(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "extract", "convert", "pull out", "pull the") {
		return nil, false
	}
	args := map[string]any{}
	if m := regexp.MustCompile(`(?:using|with|into|to)\s+(?:the\s+)?([A-Za-z_][\w]*)\s+schema`).FindStringSubmatch(utterance); m != nil {
		args["schema_name"] = m[1]
	}
	// Inline field list: text after the extract verb.
	for _, verb := range []string{"extract", "pull out", "pull", "convert to"} {
		if i := strings.Index(l, verb+" "); i >= 0 {
			tail := strings.TrimSpace(utterance[i+len(verb):])
			tailL := lc(tail)
			for _, lead := range []string{"the ", "any ", "all ", "each ", "every "} {
				if strings.HasPrefix(tailL, lead) {
					tail = tail[len(lead):]
					tailL = tailL[len(lead):]
				}
			}
			if fields := splitFieldList(tail); len(fields) > 0 && looksLikeFieldList(tail) {
				args["field_names"] = fields
			}
			break
		}
	}
	if hasAny(l, "each", "every", "all ", " many", "whatever", "any ", "datasets", "clauses", "mentions", "entities") {
		args["one_to_many"] = "true"
	}
	// Entity extraction pattern: a name plus a URL/link field means the
	// record references multiple entities (the paper's ClinicalData case).
	if fields, ok := args["field_names"].([]string); ok {
		var hasName, hasURL bool
		for _, f := range fields {
			if strings.Contains(f, "name") || strings.Contains(f, "title") {
				hasName = true
			}
			if strings.Contains(f, "url") || strings.Contains(f, "link") {
				hasURL = true
			}
		}
		if hasName && hasURL {
			args["one_to_many"] = "true"
		}
	}
	if _, a := args["schema_name"]; !a {
		if _, b := args["field_names"]; !b {
			return nil, false
		}
	}
	return args, true
}

// looksLikeFieldList guards against treating a long sentence as a field
// list: every comma-separated chunk must be short (<= 4 words).
func looksLikeFieldList(s string) bool {
	s = strings.ReplaceAll(s, " and ", ", ")
	for _, part := range strings.Split(s, ",") {
		if len(strings.Fields(part)) > 4 {
			return false
		}
	}
	return true
}

// extractPolicy parses optimization-goal requests, with constrained forms
// ("maximize quality under $0.50", "best quality under 120 seconds").
func extractPolicy(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "quality", "cost", "cheap", "fast", "runtime", "optimiz", "policy", "budget") {
		return nil, false
	}
	if !hasAny(l, "optimiz", "policy", "maximize", "minimize", "max", "min", "best", "cheapest", "fastest", "under", "budget", "prefer") {
		return nil, false
	}
	// Constrained forms first.
	if m := dollarRE.FindStringSubmatch(l); m != nil && hasAny(l, "under", "below", "at most", "budget", "less than") {
		v, _ := strconv.ParseFloat(m[1], 64)
		return map[string]any{"policy": "quality-at-cost", "param": v}, true
	}
	if hasAny(l, "under", "below", "at most", "less than", "within") {
		if m := minutesRE.FindStringSubmatch(l); m != nil {
			v, _ := strconv.ParseFloat(m[1], 64)
			return map[string]any{"policy": "quality-at-time", "param": v * 60}, true
		}
		if m := secondsRE.FindStringSubmatch(l); m != nil {
			v, _ := strconv.ParseFloat(m[1], 64)
			return map[string]any{"policy": "quality-at-time", "param": v}, true
		}
	}
	// Verb-object pairing: the objective named next to the optimizing verb
	// wins ("minimize the cost no matter the quality" is min-cost even
	// though "quality" appears later).
	minimizing := hasAny(l, "minimize", "minimise", "minimum", "cheapest", "lowest", "least")
	maximizing := hasAny(l, "maximize", "maximise", "maximum", "best", "highest")
	switch {
	case hasAny(l, "fastest") || (minimizing && hasAny(l, "time", "runtime", "latency", "fast")):
		return map[string]any{"policy": "min-time"}, true
	case minimizing && hasAny(l, "cost", "cheap", "budget", "spend"):
		return map[string]any{"policy": "min-cost"}, true
	case maximizing && hasAny(l, "quality"):
		return map[string]any{"policy": "max-quality"}, true
	case hasAny(l, "quality"):
		return map[string]any{"policy": "max-quality"}, true
	case hasAny(l, "cost", "cheap", "budget"):
		return map[string]any{"policy": "min-cost"}, true
	case hasAny(l, "fast", "runtime", "time"):
		return map[string]any{"policy": "min-time"}, true
	}
	return nil, false
}

var executeRE = regexp.MustCompile(`\b(run|execute|go ahead|process)\b`)

// extractExecute parses run requests.
func extractExecute(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if executeRE.MatchString(l) {
		// "how long did it run" is a stats question; "fastest runtime" is
		// a policy choice.
		if hasAny(l, "how long", "how much", "statistic", "optimiz", "policy", "runtime") {
			return nil, false
		}
		return map[string]any{}, true
	}
	return nil, false
}

// extractStats parses statistics requests (the paper's Figure 5 panel).
func extractStats(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "statistic", "stats", "how much did", "how long did", "what did it cost",
		"runtime was", "show the cost", "execution summary", "how expensive") {
		return map[string]any{}, true
	}
	return nil, false
}

// extractShowRecords parses output-display requests, with an optional
// count.
func extractShowRecords(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "show", "display", "see the", "list the", "print") {
		return nil, false
	}
	if !hasAny(l, "record", "result", "output", "row", "extracted", "dataset names", "url") {
		return nil, false
	}
	args := map[string]any{}
	if m := numberRE.FindStringSubmatch(l); m != nil {
		n, _ := strconv.Atoi(m[1])
		args["n"] = float64(n)
	}
	return args, true
}

// extractExport parses notebook/code export requests.
func extractExport(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "export", "download", "save") && hasAny(l, "notebook", "jupyter", "ipynb") {
		args := map[string]any{}
		if p, ok := firstQuoted(utterance); ok {
			args["path"] = p
		} else if p := pathRE.FindString(utterance); p != "" {
			args["path"] = p
		}
		return args, true
	}
	return nil, false
}

// extractGenerateCode parses code-display requests (Figure 6).
func extractGenerateCode(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "generate the code", "show the code", "show me the code", "final code",
		"the pipeline code", "generated code", "code for the pipeline") {
		return map[string]any{}, true
	}
	return nil, false
}

// extractDescribe parses plan-description requests.
func extractDescribe(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "describe the pipeline", "what is the pipeline", "current pipeline",
		"logical plan", "what will run", "explain the plan") {
		return map[string]any{}, true
	}
	return nil, false
}

// extractReset parses pipeline-reset requests.
func extractReset(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "reset", "start over", "start again", "clear the pipeline", "undo everything") {
		return map[string]any{}, true
	}
	return nil, false
}

// extractListDatasets parses dataset-listing requests.
func extractListDatasets(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "list the datasets", "what datasets", "which datasets", "registered datasets", "available datasets") {
		return map[string]any{}, true
	}
	return nil, false
}
