package palimpchat

import (
	"fmt"
	"strings"

	"repro/internal/ops"
	"repro/pz"
)

// GenerateCode renders a logical pipeline as the Palimpzest program the
// chat interface would have produced — the paper's Figure 6: "The final
// Palimpzest pipeline built iteratively using the chat interface". The
// output is Python-flavoured Palimpzest, matching the demo's notebook
// export format.
func GenerateCode(datasetName string, d *pz.Dataset, schemas map[string]*pz.Schema, policyName string) string {
	var b strings.Builder
	chain := d.Chain()
	for _, lop := range chain {
		switch op := lop.(type) {
		case *ops.Scan:
			b.WriteString("#Set input dataset\n")
			fmt.Fprintf(&b, "schema = %s\n", op.Source.Schema().Name())
			fmt.Fprintf(&b, "dataset = pz.Dataset(source=%q, schema=schema)\n\n", op.Source.Name())
		case *ops.Filter:
			b.WriteString("#Filter dataset\n")
			if op.UDF != nil {
				fmt.Fprintf(&b, "dataset = dataset.filter_udf(%s)\n\n", op.UDFName)
			} else {
				fmt.Fprintf(&b, "dataset = dataset.filter(%q)\n\n", op.Predicate)
			}
		case *ops.Convert:
			writeSchemaDef(&b, op.Target)
			b.WriteString("#Perform conversion\n")
			fmt.Fprintf(&b, "convert_schema = %s\n", op.Target.Name())
			fmt.Fprintf(&b, "cardinality = pz.Cardinality.%s\n", op.Card)
			b.WriteString("dataset = dataset.convert(convert_schema, desc=convert_schema.__doc__, cardinality=cardinality)\n\n")
		case *ops.Project:
			b.WriteString("#Project fields\n")
			fmt.Fprintf(&b, "dataset = dataset.project([%s])\n\n", quoteJoin(op.Fields))
		case *ops.Limit:
			b.WriteString("#Limit records\n")
			fmt.Fprintf(&b, "dataset = dataset.limit(%d)\n\n", op.N)
		case *ops.Distinct:
			b.WriteString("#Remove duplicates\n")
			fmt.Fprintf(&b, "dataset = dataset.distinct([%s])\n\n", quoteJoin(op.Fields))
		case *ops.Aggregate:
			b.WriteString("#Aggregate\n")
			fmt.Fprintf(&b, "dataset = dataset.aggregate(%q, field=%q)\n\n", op.Func.String(), op.Field)
		case *ops.GroupBy:
			b.WriteString("#Group and aggregate\n")
			fmt.Fprintf(&b, "dataset = dataset.groupby([%s], %q, field=%q)\n\n",
				quoteJoin(op.Keys), op.Func.String(), op.Field)
		case *ops.Sort:
			b.WriteString("#Sort records\n")
			fmt.Fprintf(&b, "dataset = dataset.sort(%q, descending=%v)\n\n", op.Field, op.Descending)
		case *ops.Retrieve:
			b.WriteString("#Semantic retrieval\n")
			fmt.Fprintf(&b, "dataset = dataset.retrieve(%q, k=%d)\n\n", op.Query, op.K)
		}
	}
	b.WriteString("#Execute workload\n")
	b.WriteString("output = dataset\n")
	fmt.Fprintf(&b, "policy = pz.%s()\n", policyClass(policyName))
	b.WriteString("records, execution_stats = Execute(output, policy=policy)\n")
	return b.String()
}

// writeSchemaDef emits the dynamic schema-definition block of Figure 6.
func writeSchemaDef(b *strings.Builder, sc *pz.Schema) {
	b.WriteString("#Create new schema\n")
	fmt.Fprintf(b, "class_name = %q\n", sc.Name())
	fmt.Fprintf(b, "schema = {\"__doc__\": %q}\n", sc.Doc())
	names := make([]string, 0, sc.Len())
	descs := make([]string, 0, sc.Len())
	for _, f := range sc.Fields() {
		names = append(names, f.Name)
		descs = append(descs, f.Desc)
	}
	fmt.Fprintf(b, "field_names = [%s]\n", quoteJoin(names))
	fmt.Fprintf(b, "field_descriptions = [%s]\n", quoteJoin(descs))
	b.WriteString("for idx, field in enumerate(field_names):\n")
	b.WriteString("    desc = field_descriptions[idx]\n")
	b.WriteString("    schema[field] = pz.Field(desc=desc)\n")
	fmt.Fprintf(b, "%s = type(class_name, (pz.Schema,), schema)\n\n", sc.Name())
}

func quoteJoin(xs []string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%q", x)
	}
	return strings.Join(parts, ", ")
}

// policyClass maps policy names to the pz class names used in Figure 6.
func policyClass(name string) string {
	switch name {
	case "min-cost":
		return "MinCost"
	case "min-time":
		return "MinTime"
	case "quality-at-cost":
		return "MaxQualityAtCost"
	case "quality-at-time":
		return "MaxQualityAtTime"
	case "cost-at-quality":
		return "MinCostAtQuality"
	case "time-at-quality":
		return "MinTimeAtQuality"
	default:
		return "MaxQuality"
	}
}
