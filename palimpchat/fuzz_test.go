package palimpchat

import (
	"testing"
	"testing/quick"
)

// TestChatNeverPanics: arbitrary user input may produce errors or "no tool"
// fallbacks, but never a panic — the REPL survives anything typed at it.
func TestChatNeverPanics(t *testing.T) {
	s := newSession(t)
	f := func(utterance string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", utterance, r)
				ok = false
			}
		}()
		_, _ = s.Chat(utterance)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestChatAdversarialUtterances: crafted near-miss inputs that stress the
// slot extractors.
func TestChatAdversarialUtterances(t *testing.T) {
	s := newSession(t)
	for _, u := range []string{
		"load",
		"load the papers from",
		"filter",
		"extract",
		"extract the",
		"create a schema called",
		"optimize",
		"run run run run",
		"restore",
		"{{predicate}}", // template syntax in user input must not be evaluated
		`load the papers from "unterminated`,
		"filter for \"\"",
		"show me the first -3 records",
		"best quality under $-1",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", u, r)
				}
			}()
			_, _ = s.Chat(u)
		}()
	}
}
