package palimpchat

import (
	"fmt"
	"strings"

	"repro/archytas"
	"repro/internal/tmpl"
	"repro/pz"
)

// tools builds the PalimpChat toolset over this session. Every tool
// follows the paper's pattern: summary docstring, Args section (Params),
// usage examples, and a Jinja-templated code snippet whose rendering lands
// in the notebook.
func (s *Session) tools() []*archytas.Tool {
	return []*archytas.Tool{
		s.loadDatasetTool(),
		s.createSchemaTool(),
		s.filterTool(),
		s.convertTool(),
		s.policyTool(),
		s.executeTool(),
		s.statsTool(),
		s.showRecordsTool(),
		s.describeTool(),
		s.generateCodeTool(),
		s.exportNotebookTool(),
		s.resetTool(),
		s.listDatasetsTool(),
		s.saveStateTool(),
		s.restoreStateTool(),
		s.explainPlanTool(),
	}
}

func (s *Session) loadDatasetTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "load_dataset",
		Doc: "Register an input dataset from a local folder. Every file in the " +
			"folder becomes one record; the record schema (for example the native " +
			"PDFFile schema) is selected automatically from the file extensions.",
		Examples: []string{
			"load the papers from ./pdfs",
			"register the folder \"./contracts\" as legal",
			"use the folder ./listings as the input dataset",
		},
		Params: []archytas.Param{
			{Name: "path", Desc: "The local folder containing the data files", Required: true, Kind: archytas.ParamString},
			{Name: "name", Desc: "Optional dataset name (defaults to the folder name)", Kind: archytas.ParamString},
		},
		Template: tmpl.MustParse(`#Set input dataset
dataset = pz.Dataset(source="{{ path }}")`),
		Extract: extractLoad,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			path, _ := args["path"].(string)
			name, _ := args["name"].(string)
			if name == "" {
				name = baseName(path)
			}
			src, err := s.ctx.RegisterDir(name, path)
			if err != nil {
				return "", err
			}
			ds, err := s.ctx.Dataset(name)
			if err != nil {
				return "", err
			}
			s.datasetName = name
			s.pipeline = ds
			env.Set("dataset_name", name)
			env.Set("dataset_schema", src.Schema().Name())
			dir, _ := src.(interface{ NumFiles() int })
			n := 0
			if dir != nil {
				n = dir.NumFiles()
			}
			return fmt.Sprintf("Registered dataset %q (%d files, schema %s).",
				name, n, src.Schema().Name()), nil
		},
	}
}

func (s *Session) createSchemaTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "create_schema",
		Doc: "Generate a new extraction schema. The inputs are a schema name and a " +
			"set of fields. For example, to extract author information the schema " +
			"name might be 'Author' and the fields 'name', 'email', 'affiliation'. " +
			"Field names cannot have spaces or special characters.",
		Examples: []string{
			"create a schema called ClinicalData with fields name, description, url",
			"define a new schema named Author with the fields name, email and affiliation",
		},
		Params: []archytas.Param{
			{Name: "schema_name", Desc: "Name for the new schema", Required: true, Kind: archytas.ParamString},
			{Name: "schema_description", Desc: "A short description of the schema", Kind: archytas.ParamString},
			{Name: "field_names", Desc: "The field names to extract", Required: true, Kind: archytas.ParamStringList},
			{Name: "field_descriptions", Desc: "A short description for each field", Kind: archytas.ParamStringList},
		},
		Template: tmpl.MustParse(`#Create new schema
class_name = "{{ schema_name }}"
field_names = [{{ field_names|join:", " }}]
new_schema = type(class_name, (pz.Schema,), fields)`),
		Extract: extractCreateSchema,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			name, _ := args["schema_name"].(string)
			desc, _ := args["schema_description"].(string)
			if desc == "" {
				desc = fmt.Sprintf("A schema for extracting %s records.", strings.ToLower(name))
			}
			fields, _ := args["field_names"].([]string)
			descs, _ := args["field_descriptions"].([]string)
			if descs == nil {
				descs = defaultFieldDescs(fields)
			}
			sc, err := pz.DeriveSchema(name, desc, fields, descs)
			if err != nil {
				return "", err
			}
			s.rememberSchema(sc)
			env.Set("schema_name", sc.Name())
			env.Set("field_names", sc.FieldNames())
			return fmt.Sprintf("Created schema %s.", sc), nil
		},
	}
}

func (s *Session) filterTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "filter_dataset",
		Doc: "Filter the dataset with a natural language predicate: keep only the " +
			"records that satisfy the condition. The filter runs as an LLM " +
			"operation chosen by the optimizer.",
		Examples: []string{
			"filter for papers about colorectal cancer",
			"keep only contracts that contain an indemnification clause",
			"I am interested in listings with a modern renovated interior",
		},
		Params: []archytas.Param{
			{Name: "predicate", Desc: "The natural language condition records must satisfy", Required: true, Kind: archytas.ParamString},
		},
		Template: tmpl.MustParse(`#Filter dataset
dataset = dataset.filter("{{ predicate }}")`),
		Extract: extractFilter,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			p, err := s.requirePipeline()
			if err != nil {
				return "", err
			}
			pred, _ := args["predicate"].(string)
			s.pipeline = p.Filter(pred)
			env.Set("predicate", pred)
			return fmt.Sprintf("Added filter: %q.", pred), nil
		},
	}
}

func (s *Session) convertTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "convert_dataset",
		Doc: "Convert the dataset records into an extraction schema, computing the " +
			"schema fields from each record's content. Use an existing schema by " +
			"name or list the fields to extract inline; extraction of many " +
			"entities per record uses ONE_TO_MANY cardinality.",
		Examples: []string{
			"extract the dataset name, description and url",
			"convert the records using the ClinicalData schema",
			"pull out the party_a, party_b and effective_date",
		},
		Params: []archytas.Param{
			{Name: "schema_name", Desc: "The schema to convert into (defaults to the last created)", Kind: archytas.ParamString},
			{Name: "field_names", Desc: "Fields to extract when no schema is named", Kind: archytas.ParamStringList},
			{Name: "one_to_many", Desc: "\"true\" to extract many entities per record", Kind: archytas.ParamString},
		},
		Template: tmpl.MustParse(`#Perform conversion
convert_schema = {{ schema_name }}
dataset = dataset.convert(convert_schema, desc=convert_schema.__doc__, cardinality={{ cardinality }})`),
		Extract: extractConvert,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			p, err := s.requirePipeline()
			if err != nil {
				return "", err
			}
			var target *pz.Schema
			if name, _ := args["schema_name"].(string); name != "" {
				sc, ok := s.schemas[name]
				if !ok {
					return "", fmt.Errorf("no schema named %q — create it first with create_schema", name)
				}
				target = sc
			} else if fields, _ := args["field_names"].([]string); len(fields) > 0 {
				sc, err := pz.DeriveSchema(autoSchemaName(fields), "A schema generated from the chat request.",
					fields, defaultFieldDescs(fields))
				if err != nil {
					return "", err
				}
				s.rememberSchema(sc)
				target = sc
			} else if sc, ok := s.lastSchema(); ok {
				target = sc
			} else {
				return "", fmt.Errorf("no schema available — name fields to extract or create a schema first")
			}
			card := pz.OneToOne
			if v, _ := args["one_to_many"].(string); v == "true" {
				card = pz.OneToMany
			}
			s.pipeline = p.Convert(target, target.Doc(), card)
			env.Set("schema_name", target.Name())
			env.Set("cardinality", "pz.Cardinality."+card.String())
			return fmt.Sprintf("Added conversion to %s (%s).", target, card), nil
		},
	}
}

func (s *Session) policyTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "set_policy",
		Doc: "Set the optimization policy for pipeline execution: maximize quality, " +
			"minimize cost, minimize runtime, or a constrained combination such as " +
			"maximize quality under a cost budget or a latency cap.",
		Examples: []string{
			"optimize for maximum quality",
			"minimize the cost no matter the quality",
			"maximize quality while staying under $0.50",
			"best quality under 120 seconds",
		},
		Params: []archytas.Param{
			{Name: "policy", Desc: "Policy name: max-quality, min-cost, min-time, quality-at-cost, quality-at-time", Required: true, Kind: archytas.ParamString},
			{Name: "param", Desc: "Budget/cap for constrained policies", Kind: archytas.ParamNumber},
		},
		Template: tmpl.MustParse(`policy = pz.{{ policy_class }}()`),
		Extract:  extractPolicy,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			name, _ := args["policy"].(string)
			param, _ := args["param"].(float64)
			pol, err := pz.ParsePolicy(name, param)
			if err != nil {
				return "", err
			}
			s.policy = pol
			s.policyName = pol.Name()
			env.Set("policy_class", policyClass(pol.Name()))
			return fmt.Sprintf("Optimization goal set: %s.", pol.Describe()), nil
		},
	}
}

func (s *Session) executeTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "execute_pipeline",
		Doc: "Run the pipeline built so far: the optimizer selects the physical " +
			"plan that best meets the chosen policy, executes it, and reports the " +
			"output records with runtime and cost statistics.",
		Examples: []string{
			"run the pipeline",
			"execute the workload now",
			"go ahead and process the papers",
		},
		Template: tmpl.MustParse(`#Execute workload
output = dataset
records, execution_stats = Execute(output, policy=policy)`),
		Extract: extractExecute,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			p, err := s.requirePipeline()
			if err != nil {
				return "", err
			}
			res, err := s.ctx.Execute(p, s.policy)
			if err != nil {
				return "", err
			}
			s.lastResult = res
			env.Set("num_records", len(res.Records))
			return fmt.Sprintf(
				"Pipeline executed: %d output records in %s (simulated) at a cost of $%.2f.\nPlan: %s\nAsk for statistics or the records to see more.",
				len(res.Records), res.Elapsed.Round(1e9), res.CostUSD, res.Plan), nil
		},
	}
}

func (s *Session) statsTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "show_statistics",
		Doc: "Show execution statistics of the last pipeline run: the operators " +
			"chosen, per-operator LLM calls and tokens, total runtime, and how much " +
			"the LLM invocations costed.",
		Examples: []string{
			"how much runtime was needed and how much did the LLM calls cost?",
			"show the execution statistics",
		},
		Extract: extractStats,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			if s.lastResult == nil {
				return "", fmt.Errorf("nothing has run yet — ask me to execute the pipeline first")
			}
			return s.lastResult.Report(0), nil
		},
	}
}

func (s *Session) showRecordsTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "show_records",
		Doc:  "Display output records from the last pipeline run.",
		Examples: []string{
			"show me the extracted records",
			"display the first 5 results",
		},
		Params: []archytas.Param{
			{Name: "n", Desc: "How many records to show (default 10)", Kind: archytas.ParamNumber},
		},
		Extract: extractShowRecords,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			if s.lastResult == nil {
				return "", fmt.Errorf("nothing has run yet — ask me to execute the pipeline first")
			}
			n := 10
			if v, ok := args["n"].(float64); ok && v > 0 {
				n = int(v)
			}
			recs := s.lastResult.Records
			if n > len(recs) {
				n = len(recs)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%d records:\n", len(recs))
			for _, r := range recs[:n] {
				fmt.Fprintf(&b, "  %s\n", r)
			}
			if len(recs) > n {
				fmt.Fprintf(&b, "  … and %d more\n", len(recs)-n)
			}
			return b.String(), nil
		},
	}
}

func (s *Session) describeTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "describe_pipeline",
		Doc:  "Describe the logical pipeline built so far, one operator per line.",
		Examples: []string{
			"what is the current pipeline?",
			"describe the pipeline",
		},
		Extract: extractDescribe,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			p, err := s.requirePipeline()
			if err != nil {
				return "", err
			}
			return "Current logical pipeline:\n" + p.Describe(), nil
		},
	}
}

func (s *Session) generateCodeTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "generate_code",
		Doc: "Show the final Palimpzest code for the pipeline built through the " +
			"chat, ready to be copied into a program or notebook.",
		Examples: []string{
			"show me the code for the pipeline",
			"generate the final code",
		},
		Extract: extractGenerateCode,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			code, err := s.GenerateCode()
			if err != nil {
				return "", err
			}
			return code, nil
		},
	}
}

func (s *Session) exportNotebookTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "export_notebook",
		Doc: "Export the session as a Jupyter notebook containing all inputs and " +
			"generated snippets of code.",
		Examples: []string{
			"download the notebook",
			"export the notebook to ./session.ipynb",
		},
		Params: []archytas.Param{
			{Name: "path", Desc: "File to write (omit to just show the JSON size)", Kind: archytas.ParamString},
		},
		Extract: extractExport,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			if path, _ := args["path"].(string); path != "" {
				if err := s.SaveNotebook(path); err != nil {
					return "", err
				}
				return fmt.Sprintf("Notebook exported to %s (%d cells).", path, s.notebook.Len()), nil
			}
			data, err := s.notebook.ExportJSON()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("Notebook ready: %d cells, %d bytes of JSON. Give me a path to save it.",
				s.notebook.Len(), len(data)), nil
		},
	}
}

func (s *Session) resetTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "reset_pipeline",
		Doc:  "Discard the operators added so far and start the pipeline over from the loaded dataset.",
		Examples: []string{
			"reset the pipeline",
			"start over",
		},
		Extract: extractReset,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			if s.datasetName == "" {
				return "", fmt.Errorf("no dataset loaded yet")
			}
			ds, err := s.ctx.Dataset(s.datasetName)
			if err != nil {
				return "", err
			}
			s.pipeline = ds
			return fmt.Sprintf("Pipeline reset to dataset %q.", s.datasetName), nil
		},
	}
}

func (s *Session) listDatasetsTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "list_datasets",
		Doc:  "List the registered datasets available to build pipelines over.",
		Examples: []string{
			"what datasets are available?",
			"list the registered datasets",
		},
		Extract: extractListDatasets,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			names := s.ctx.Datasets()
			if len(names) == 0 {
				return "No datasets registered yet.", nil
			}
			return "Registered datasets: " + strings.Join(names, ", "), nil
		},
	}
}

// baseName extracts a dataset name from a path.
func baseName(path string) string {
	path = strings.TrimRight(path, "/")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	if path == "" || path == "." || path == ".." {
		return "dataset"
	}
	return path
}

// autoSchemaName derives a schema name from extracted field names
// ("dataset_name", "url" -> "ExtractedDatasetName").
func autoSchemaName(fields []string) string {
	if len(fields) == 0 {
		return "Extracted"
	}
	parts := strings.Split(fields[0], "_")
	var b strings.Builder
	b.WriteString("Extracted")
	for _, p := range parts {
		if p == "" {
			continue
		}
		b.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	return b.String()
}

// defaultFieldDescs synthesizes field descriptions from names.
func defaultFieldDescs(fields []string) []string {
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = "The " + strings.ReplaceAll(f, "_", " ") + " extracted from the record."
	}
	return out
}
