package palimpchat

import (
	"strings"
	"testing"

	"repro/pz"
)

// TestCachedChatRerun: with the cache enabled (the REPL default), asking
// the chat to run the pipeline a second time is nearly free.
func TestCachedChatRerun(t *testing.T) {
	dir := demoDir(t)
	s, err := NewSession(Options{Config: pz.Config{EnableCache: true}})
	if err != nil {
		t.Fatal(err)
	}
	chat(t, s, "load the papers from "+dir)
	chat(t, s, "filter for papers about colorectal cancer")
	chat(t, s, "extract the dataset name, description and url")
	chat(t, s, "run the pipeline")
	firstCost := s.Context().TotalCost()
	if firstCost <= 0 {
		t.Fatal("first run free")
	}
	r := chat(t, s, "run the pipeline")
	if !strings.Contains(r, "6 output records") {
		t.Fatalf("rerun reply = %q", r)
	}
	rerunCost := s.Context().TotalCost() - firstCost
	if rerunCost > firstCost/100 {
		t.Errorf("cached rerun cost $%.4f, want <1%% of $%.4f", rerunCost, firstCost)
	}
}
