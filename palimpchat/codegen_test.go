package palimpchat

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/pz"
)

func buildDemoDataset(t *testing.T) (*pz.Context, *pz.Dataset, *pz.Schema) {
	t.Helper()
	ctx, err := pz.NewContext(pz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := ctx.RegisterDocs("sigmod-demo", pz.PDFFile, docs); err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Dataset("sigmod-demo")
	if err != nil {
		t.Fatal(err)
	}
	clinical, err := pz.DeriveSchema("ClinicalData", "Datasets in papers.",
		[]string{"name", "description", "url"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, ds, clinical
}

func TestGenerateCodeAllOperators(t *testing.T) {
	_, ds, clinical := buildDemoDataset(t)
	pipeline := ds.
		Filter("about colorectal cancer").
		Convert(clinical, clinical.Doc(), pz.OneToMany).
		Project("name", "url").
		Distinct("url").
		Sort("name", false).
		Limit(5)
	code := GenerateCode("sigmod-demo", pipeline, map[string]*pz.Schema{"ClinicalData": clinical}, "min-cost")
	for _, want := range []string{
		`pz.Dataset(source="sigmod-demo", schema=schema)`,
		`dataset.filter("about colorectal cancer")`,
		`class_name = "ClinicalData"`,
		`dataset.project(["name", "url"])`,
		`dataset.distinct(["url"])`,
		`dataset.sort("name", descending=false)`,
		`dataset.limit(5)`,
		`policy = pz.MinCost()`,
	} {
		if !strings.Contains(code, want) {
			t.Errorf("code missing %q:\n%s", want, code)
		}
	}
}

func TestGenerateCodeRetrieveGroupByAggregate(t *testing.T) {
	_, ds, _ := buildDemoDataset(t)
	pipeline := ds.
		Retrieve("modern kitchens", 12).
		GroupBy([]string{"filename"}, pz.Avg, "row").
		Aggregate(pz.Count, "")
	// GroupBy over PDFFile lacks "row" — code generation is still possible
	// for display; validation happens at Execute time.
	code := GenerateCode("sigmod-demo", pipeline, nil, "quality-at-time")
	for _, want := range []string{
		`dataset.retrieve("modern kitchens", k=12)`,
		`dataset.groupby(["filename"], "avg", field="row")`,
		`dataset.aggregate("count", field="")`,
		`policy = pz.MaxQualityAtTime()`,
	} {
		if !strings.Contains(code, want) {
			t.Errorf("code missing %q:\n%s", want, code)
		}
	}
}

func TestGenerateCodeUDFFilter(t *testing.T) {
	_, ds, _ := buildDemoDataset(t)
	pipeline := ds.FilterUDF("has_cancer", func(*pz.Record) (bool, error) { return true, nil })
	code := GenerateCode("sigmod-demo", pipeline, nil, "max-quality")
	if !strings.Contains(code, "dataset.filter_udf(has_cancer)") {
		t.Errorf("udf filter missing:\n%s", code)
	}
}

func TestPolicyClassMapping(t *testing.T) {
	cases := map[string]string{
		"max-quality":     "MaxQuality",
		"min-cost":        "MinCost",
		"min-time":        "MinTime",
		"quality-at-cost": "MaxQualityAtCost",
		"quality-at-time": "MaxQualityAtTime",
		"cost-at-quality": "MinCostAtQuality",
		"time-at-quality": "MinTimeAtQuality",
		"anything-else":   "MaxQuality",
	}
	for in, want := range cases {
		if got := policyClass(in); got != want {
			t.Errorf("policyClass(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGeneratedCodeSchemaFieldOrderStable(t *testing.T) {
	_, ds, clinical := buildDemoDataset(t)
	pipeline := ds.Convert(clinical, clinical.Doc(), pz.OneToMany)
	a := GenerateCode("d", pipeline, nil, "max-quality")
	b := GenerateCode("d", pipeline, nil, "max-quality")
	if a != b {
		t.Error("code generation not deterministic")
	}
	// Field order must match schema declaration order.
	if strings.Index(a, `"name"`) > strings.Index(a, `"description"`) {
		t.Error("field order not preserved")
	}
}
