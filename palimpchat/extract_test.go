package palimpchat

import (
	"reflect"
	"testing"
)

func TestExtractLoad(t *testing.T) {
	cases := []struct {
		in       string
		wantPath string
		wantName string
		ok       bool
	}{
		{"load the papers from ./pdfs", "./pdfs", "", true},
		{"load the papers from \"./my papers\"", "./my papers", "", true},
		{"register the folder ./contracts as legal", "./contracts", "legal", true},
		{"upload /data/listings as homes", "/data/listings", "homes", true},
		{"load something", "", "", false},           // no path
		{"filter for cancer papers", "", "", false}, // wrong intent
	}
	for _, c := range cases {
		args, ok := extractLoad(c.in)
		if ok != c.ok {
			t.Errorf("extractLoad(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if args["path"] != c.wantPath {
			t.Errorf("extractLoad(%q) path = %v, want %q", c.in, args["path"], c.wantPath)
		}
		if c.wantName != "" && args["name"] != c.wantName {
			t.Errorf("extractLoad(%q) name = %v, want %q", c.in, args["name"], c.wantName)
		}
	}
}

func TestExtractCreateSchema(t *testing.T) {
	args, ok := extractCreateSchema("create a schema called ClinicalData with fields name, description, url")
	if !ok {
		t.Fatal("not extracted")
	}
	if args["schema_name"] != "ClinicalData" {
		t.Errorf("schema_name = %v", args["schema_name"])
	}
	if got := args["field_names"].([]string); !reflect.DeepEqual(got, []string{"name", "description", "url"}) {
		t.Errorf("field_names = %v", got)
	}
	if _, ok := extractCreateSchema("create a schema called Empty"); ok {
		t.Error("schema without fields accepted")
	}
	if _, ok := extractCreateSchema("the schema is nice"); ok {
		t.Error("non-creation utterance accepted")
	}
}

func TestExtractFilter(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"filter for papers about colorectal cancer", "papers about colorectal cancer", true},
		{"keep only contracts that contain an indemnification clause", "contracts that contain an indemnification clause", true},
		{"I am interested in listings with a modern renovated interior", "listings with a modern renovated interior", true},
		{"filter with \"The papers are about colorectal cancer\"", "The papers are about colorectal cancer", true},
		{"extract the dataset name", "", false}, // convert intent
		{"run the pipeline", "", false},
	}
	for _, c := range cases {
		args, ok := extractFilter(c.in)
		if ok != c.ok {
			t.Errorf("extractFilter(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && args["predicate"] != c.want {
			t.Errorf("extractFilter(%q) predicate = %q, want %q", c.in, args["predicate"], c.want)
		}
	}
}

func TestExtractConvert(t *testing.T) {
	args, ok := extractConvert("extract the dataset name, description and url")
	if !ok {
		t.Fatal("not extracted")
	}
	if got := args["field_names"].([]string); !reflect.DeepEqual(got, []string{"dataset_name", "description", "url"}) {
		t.Errorf("field_names = %v", got)
	}
	if args["one_to_many"] != "true" {
		t.Error("name+url entity pattern should be one-to-many")
	}

	args, ok = extractConvert("convert the records using the ClinicalData schema")
	if !ok || args["schema_name"] != "ClinicalData" {
		t.Errorf("schema-name form = %v, %v", args, ok)
	}

	args, ok = extractConvert("pull out the party_a, party_b and effective_date")
	if !ok {
		t.Fatal("pull-out form not extracted")
	}
	if args["one_to_many"] == "true" {
		t.Error("scalar extraction misread as one-to-many")
	}

	if _, ok := extractConvert("extract whatever makes sense given everything we discussed before in detail"); ok {
		t.Error("long prose treated as field list")
	}
	if _, ok := extractConvert("filter for cancer"); ok {
		t.Error("filter misread as convert")
	}
}

func TestExtractPolicyForms(t *testing.T) {
	cases := []struct {
		in    string
		want  string
		param float64
	}{
		{"optimize for maximum quality", "max-quality", 0},
		{"minimize the cost no matter the quality", "min-cost", 0},
		{"cheapest plan please, optimize it", "min-cost", 0},
		{"optimize for the fastest runtime", "min-time", 0},
		{"maximize quality while staying under $0.50", "quality-at-cost", 0.5},
		{"best quality under 120 seconds", "quality-at-time", 120},
		{"best quality within 2 minutes", "quality-at-time", 120},
	}
	for _, c := range cases {
		args, ok := extractPolicy(c.in)
		if !ok {
			t.Errorf("extractPolicy(%q) not extracted", c.in)
			continue
		}
		if args["policy"] != c.want {
			t.Errorf("extractPolicy(%q) = %v, want %s", c.in, args["policy"], c.want)
		}
		if c.param > 0 {
			if got, _ := args["param"].(float64); got != c.param {
				t.Errorf("extractPolicy(%q) param = %v, want %v", c.in, got, c.param)
			}
		}
	}
	if _, ok := extractPolicy("show me the records"); ok {
		t.Error("non-policy utterance accepted")
	}
}

func TestExtractExecuteAndStats(t *testing.T) {
	if _, ok := extractExecute("run the pipeline"); !ok {
		t.Error("run not detected")
	}
	if _, ok := extractExecute("optimize for the fastest runtime"); ok {
		t.Error("'runtime' misread as run")
	}
	if _, ok := extractExecute("how long did it run?"); ok {
		t.Error("stats question misread as run")
	}
	if _, ok := extractStats("how much did the LLM calls cost?"); !ok {
		t.Error("stats not detected")
	}
	if _, ok := extractStats("filter the papers"); ok {
		t.Error("stats false positive")
	}
}

func TestExtractShowRecords(t *testing.T) {
	args, ok := extractShowRecords("display the first 5 results")
	if !ok {
		t.Fatal("not extracted")
	}
	if args["n"] != float64(5) {
		t.Errorf("n = %v", args["n"])
	}
	if _, ok := extractShowRecords("show me the extracted records"); !ok {
		t.Error("records form missed")
	}
	if _, ok := extractShowRecords("show me the money"); ok {
		t.Error("false positive")
	}
}

func TestExtractExport(t *testing.T) {
	args, ok := extractExport("export the notebook to ./session.ipynb")
	if !ok || args["path"] != "./session.ipynb" {
		t.Errorf("export = %v, %v", args, ok)
	}
	if _, ok := extractExport("download the notebook"); !ok {
		t.Error("pathless export missed")
	}
	if _, ok := extractExport("export my feelings"); ok {
		t.Error("false positive")
	}
}

func TestSplitFieldList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"name, description and url", []string{"name", "description", "url"}},
		{"the party_a, the party_b & the effective date", []string{"party_a", "party_b", "effective_date"}},
		{"dataset name", []string{"dataset_name"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := splitFieldList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitFieldList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLooksLikeFieldList(t *testing.T) {
	if !looksLikeFieldList("name, description and url") {
		t.Error("field list rejected")
	}
	if looksLikeFieldList("whatever public dataset is being used by the study in the paper") {
		t.Error("prose accepted as field list")
	}
}
