package palimpchat

import (
	"fmt"
	"strconv"
	"strings"

	"repro/archytas"
	"repro/pz"
)

// sessionState is the pipeline-facing state captured by a snapshot. The
// notebook captures its own cells; this captures what the tools mutate, so
// that "restore previous notebook states" (paper §2.3 on Beaker) rolls back
// the pipeline too.
type sessionState struct {
	label       string
	datasetName string
	pipeline    *pz.Dataset
	schemas     map[string]*pz.Schema
	schemaOrder []string
	policy      pz.Policy
	policyName  string
	notebookIdx int
}

// snapshot captures the current session state under a label.
func (s *Session) snapshot(label string) int {
	schemas := make(map[string]*pz.Schema, len(s.schemas))
	for k, v := range s.schemas {
		schemas[k] = v
	}
	order := make([]string, len(s.schemaOrder))
	copy(order, s.schemaOrder)
	st := sessionState{
		label:       label,
		datasetName: s.datasetName,
		pipeline:    s.pipeline,
		schemas:     schemas,
		schemaOrder: order,
		policy:      s.policy,
		policyName:  s.policyName,
		notebookIdx: s.notebook.Snapshot(label),
	}
	s.states = append(s.states, st)
	return len(s.states) - 1
}

// restore rewinds session and notebook to snapshot idx.
func (s *Session) restore(idx int) error {
	if idx < 0 || idx >= len(s.states) {
		return fmt.Errorf("no snapshot %d (have %d)", idx, len(s.states))
	}
	st := s.states[idx]
	if err := s.notebook.Restore(st.notebookIdx); err != nil {
		return err
	}
	s.datasetName = st.datasetName
	s.pipeline = st.pipeline
	s.schemas = make(map[string]*pz.Schema, len(st.schemas))
	for k, v := range st.schemas {
		s.schemas[k] = v
	}
	s.schemaOrder = make([]string, len(st.schemaOrder))
	copy(s.schemaOrder, st.schemaOrder)
	s.policy = st.policy
	s.policyName = st.policyName
	return nil
}

// Snapshots lists saved state labels in order.
func (s *Session) Snapshots() []string {
	out := make([]string, len(s.states))
	for i, st := range s.states {
		out[i] = st.label
	}
	return out
}

// saveStateTool snapshots the session ("comprehensive state management that
// allows users to restore previous notebook states").
func (s *Session) saveStateTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "save_state",
		Doc: "Save a snapshot of the current session state (pipeline, schemas, " +
			"policy, and notebook) so it can be restored later.",
		Examples: []string{
			"save the current state as before-filter",
			"snapshot the notebook",
		},
		Params: []archytas.Param{
			{Name: "label", Desc: "A name for the snapshot", Kind: archytas.ParamString},
		},
		Extract: extractSaveState,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			label, _ := args["label"].(string)
			if label == "" {
				label = fmt.Sprintf("snapshot-%d", len(s.states)+1)
			}
			idx := s.snapshot(label)
			return fmt.Sprintf("Saved state %d (%q).", idx, label), nil
		},
	}
}

// restoreStateTool rewinds the session to a snapshot.
func (s *Session) restoreStateTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "restore_state",
		Doc: "Restore a previously saved session state by its label or index, " +
			"rolling back the pipeline, schemas, policy, and notebook cells.",
		Examples: []string{
			"restore the state before-filter",
			"go back to snapshot 0",
		},
		Params: []archytas.Param{
			{Name: "label", Desc: "The snapshot label or index to restore", Required: true, Kind: archytas.ParamString},
		},
		Extract: extractRestoreState,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			label, _ := args["label"].(string)
			idx := -1
			if n, err := strconv.Atoi(label); err == nil {
				idx = n
			} else {
				for i, st := range s.states {
					if st.label == label {
						idx = i
					}
				}
			}
			if idx < 0 {
				return "", fmt.Errorf("no snapshot %q (have: %s)", label, strings.Join(s.Snapshots(), ", "))
			}
			if err := s.restore(idx); err != nil {
				return "", err
			}
			return fmt.Sprintf("Restored state %d (%q).", idx, s.states[idx].label), nil
		},
	}
}

// explainPlanTool exposes the optimizer's candidate space: the chosen plan
// under the current policy plus the Pareto frontier of alternatives.
func (s *Session) explainPlanTool() *archytas.Tool {
	return &archytas.Tool{
		Name: "explain_plan",
		Doc: "Explain what the optimizer would run for the current pipeline " +
			"under the current policy: the chosen physical plan, how many " +
			"candidates were considered, and the Pareto frontier of cost, " +
			"runtime, and quality trade-offs.",
		Examples: []string{
			"explain the plan choice",
			"why did the optimizer pick that plan?",
			"show the plan alternatives",
		},
		Extract: extractExplainPlan,
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			p, err := s.requirePipeline()
			if err != nil {
				return "", err
			}
			chosen, candidates, err := s.ctx.OptimizeOnly(p, s.policy)
			if err != nil {
				return "", err
			}
			return formatPlanExplanation(s.policy, chosen, candidates), nil
		},
	}
}

func formatPlanExplanation(policy pz.Policy, chosen *pz.Plan, candidates []*pz.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Policy: %s\n", policy.Describe())
	fmt.Fprintf(&b, "Chosen plan (%d candidates considered):\n  %s\n", len(candidates), chosen)
	fmt.Fprintf(&b, "  estimated cost=$%.4f time=%.1fs quality=%.3f\n",
		chosen.Cost(), chosen.Time(), chosen.Quality())
	front := pz.Frontier(candidates)
	fmt.Fprintf(&b, "Pareto frontier (%d plans):\n", len(front))
	for _, pl := range front {
		marker := "  "
		if pl == chosen {
			marker = "* "
		}
		fmt.Fprintf(&b, "%s$%.4f  %6.1fs  q=%.3f  %s\n",
			marker, pl.Cost(), pl.Time(), pl.Quality(), pl)
	}
	return b.String()
}

func extractSaveState(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "save", "snapshot", "checkpoint") || !hasAny(l, "state", "snapshot", "notebook", "checkpoint") {
		return nil, false
	}
	// Exporting the notebook is a different tool.
	if hasAny(l, "export", "download", "ipynb", "jupyter") {
		return nil, false
	}
	args := map[string]any{}
	if m := asNameRE.FindStringSubmatch(l); m != nil {
		args["label"] = m[1]
	}
	return args, true
}

func extractRestoreState(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if !hasAny(l, "restore", "go back to", "roll back", "rollback", "revert") {
		return nil, false
	}
	args := map[string]any{}
	if m := numberRE.FindStringSubmatch(l); m != nil {
		args["label"] = m[1]
	}
	for _, kw := range []string{"state ", "snapshot ", "to "} {
		if i := strings.LastIndex(l, kw); i >= 0 {
			tail := strings.Trim(strings.TrimSpace(l[i+len(kw):]), ".!?\"'")
			if tail != "" && !strings.Contains(tail, " ") {
				args["label"] = tail
			}
		}
	}
	if _, ok := args["label"]; !ok {
		return nil, false
	}
	return args, true
}

func extractExplainPlan(utterance string) (map[string]any, bool) {
	l := lc(utterance)
	if hasAny(l, "explain the plan", "plan choice", "why did the optimizer", "plan alternatives",
		"pareto", "which plan", "physical plan") {
		return map[string]any{}, true
	}
	return nil, false
}
