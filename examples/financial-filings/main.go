// Financial filings: the numeric-extraction workload over a file-backed
// corpus.
//
// It spills a synthetic 10-K corpus to an on-disk NDJSON file, registers
// the file on a pz.Context without loading it whole, filters for
// profitable fiscal years, extracts key figures (revenue, net income)
// with typed schema fields, aggregates revenue by the pipeline, and
// scores the filter and the numeric extraction against ground truth.
//
//	go run ./examples/financial-filings
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/workloads"
	"repro/pz"
)

func main() {
	cfg := corpus.FinanceConfig{NumFilings: 300, ProfitableRate: 0.6, Seed: 23}
	path := filepath.Join(os.TempDir(), "palimpzest-filings.ndjson")
	if _, err := corpus.SaveNDJSON(path, corpus.NewFinanceGenerator(cfg), cfg.Seed, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s (%d filings)\n\n", path, cfg.NumFilings)

	ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
	if err != nil {
		log.Fatal(err)
	}
	src, err := ctx.RegisterNDJSON("filings", path)
	if err != nil {
		log.Fatal(err)
	}

	figures, err := workloads.FinanceFiguresSchema()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ctx.Dataset("filings")
	if err != nil {
		log.Fatal(err)
	}
	pipeline := ds.
		Filter(workloads.FinancePredicate).
		Convert(figures, figures.Doc(), pz.OneToOne).
		Sort("revenue_musd", true)
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report(6))

	// Score against the ground truth carried through the NDJSON round
	// trip: the profitability filter and per-field numeric accuracy.
	inputs, err := src.Records()
	if err != nil {
		log.Fatal(err)
	}
	filter := metrics.FilterQualityByTruth(inputs, res.Records, workloads.FinancePredicate)
	revAcc, n := metrics.FieldAccuracy(res.Records, "revenue_musd", "revenue_musd")
	niAcc, _ := metrics.FieldAccuracy(res.Records, "net_income_musd", "net_income_musd")
	fmt.Printf("\nfilter quality:     %s\n", filter)
	fmt.Printf("numeric extraction: revenue %.3f, net income %.3f over %d filings\n", revAcc, niAcc, n)
}
