// Real-estate search: one of the paper's three demo scenarios.
//
// A home buyer wants modern, recently renovated listings; the pipeline
// combines semantic retrieval (vector search over embeddings), an LLM
// filter, structured extraction, and conventional relational analytics
// (group-by average price per neighborhood) — the mixed LLM + relational
// workload the paper's introduction motivates.
//
//	go run ./examples/realestate
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/pz"
)

func main() {
	ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
	if err != nil {
		log.Fatal(err)
	}
	docs := corpus.GenerateRealEstate(corpus.DefaultRealEstate())
	if _, err := ctx.RegisterDocs("listings", pz.TextFile, docs); err != nil {
		log.Fatal(err)
	}

	listing, err := pz.NewSchema("Listing", "A real estate listing.",
		pz.Field{Name: "address", Type: pz.String, Desc: "The street address of the listing"},
		pz.Field{Name: "neighborhood", Type: pz.String, Desc: "The neighborhood of the listing"},
		pz.Field{Name: "price", Type: pz.Float, Desc: "The asking price in dollars"},
		pz.Field{Name: "bedrooms", Type: pz.Int, Desc: "The number of bedrooms"},
	)
	if err != nil {
		log.Fatal(err)
	}

	ds, _ := ctx.Dataset("listings")

	// 1. Shortlist the most relevant listings with vector retrieval.
	// 2. Confirm modernity with an LLM filter.
	// 3. Extract structure, then answer with plain relational analytics.
	pipeline := ds.
		Retrieve("modern renovated kitchen with designer finishes and smart home features", 30).
		Filter("The listing has a modern, recently renovated interior").
		Convert(listing, listing.Doc(), pz.OneToOne).
		GroupBy([]string{"neighborhood"}, pz.Avg, "price").
		Sort("value", true).
		Limit(5)

	res, err := ctx.Execute(pipeline, pz.MaxQualityAtCost(0.25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top neighborhoods by average price of modern listings:")
	for i, r := range res.Records {
		fmt.Printf("%d. %-16s avg $%.0f over %d listings\n",
			i+1, r.GetString("neighborhood"), r.GetFloat("value"), r.GetInt("count"))
	}
	fmt.Printf("\nplan: %s\nsimulated runtime %s, cost $%.4f (budget $0.25)\n",
		res.Plan, res.Elapsed.Round(1e9), res.CostUSD)
}
