// Scientific discovery through chat: the paper's §3 demonstration, scripted.
//
// A medical researcher uploads a library of papers, asks in natural
// language for the colorectal-cancer studies and their public datasets,
// picks an optimization goal, runs the pipeline, inspects statistics, and
// exports the generated code — exactly the Figure 3-6 flow.
//
//	go run ./examples/scientific-discovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/palimpchat"
	"repro/pz"
)

func main() {
	// Materialize the demo library: 11 synthetic papers as simulated PDFs.
	dir := filepath.Join(os.TempDir(), "palimpchat-scidisc")
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("sigmod-demo", dir, docs); err != nil {
		log.Fatal(err)
	}

	session, err := palimpchat.NewSession(palimpchat.Options{
		Config: pz.Config{Parallelism: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	conversation := []string{
		"load the papers from " + dir + " as sigmod-demo",
		"I am interested in papers about colorectal cancer and for these extract the dataset name, description and url",
		"optimize for maximum quality",
		"run the pipeline",
		"how much runtime was needed and how much did the LLM calls cost?",
		"show me the extracted records",
		"show me the code for the pipeline",
	}
	for _, utterance := range conversation {
		fmt.Printf("\n> %s\n", utterance)
		reply, err := session.Chat(utterance)
		if err != nil {
			log.Fatalf("chat failed: %v", err)
		}
		fmt.Println(reply)
	}

	// Export the session notebook, as the demo's final step.
	out := filepath.Join(dir, "session.ipynb")
	if err := session.SaveNotebook(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnotebook exported to %s (%d cells)\n", out, session.Notebook().Len())
}
