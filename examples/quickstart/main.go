// Quickstart: the smallest useful Palimpzest pipeline.
//
// It generates the paper's demo corpus (11 synthetic biomedical papers —
// the smallest of the five ground-truthed domains; see the README's
// scenario table), registers it as a dataset, filters with a
// natural-language predicate, extracts structured records with a
// dynamically-derived schema, and executes under the max-quality policy —
// the programmatic equivalent of the paper's Figure 6.
//
// The other scenario programs under examples/ scale this pattern up:
// legal-discovery and realestate drive the chat and directory-ingestion
// paths, and support-triage and financial-filings run over on-disk
// NDJSON corpora registered without loading (generate your own at any
// size with `go run ./cmd/pzcorpus generate`; docs/howto-corpus.md has
// the walkthrough).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/pz"
)

func main() {
	ctx, err := pz.NewContext(pz.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Register the demo corpus in memory. Real deployments register a
	// folder (ctx.RegisterDir) or an NDJSON corpus file streamed from
	// disk (ctx.RegisterNDJSON).
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := ctx.RegisterDocs("sigmod-demo", pz.PDFFile, docs); err != nil {
		log.Fatal(err)
	}

	// Derive the extraction schema from names + descriptions (Figure 2).
	clinical, err := pz.DeriveSchema("ClinicalData",
		"A schema for extracting clinical data datasets from papers.",
		[]string{"name", "description", "url"},
		[]string{
			"The name of the clinical data dataset",
			"A short description of the content of the dataset",
			"The public URL where the dataset can be accessed",
		})
	if err != nil {
		log.Fatal(err)
	}

	// Build the logical pipeline (Figure 6).
	ds, err := ctx.Dataset("sigmod-demo")
	if err != nil {
		log.Fatal(err)
	}
	pipeline := ds.
		Filter("The papers are about colorectal cancer").
		Convert(clinical, clinical.Doc(), pz.OneToMany)

	// Execute under a policy; the optimizer picks the physical plan.
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report(10))

	fmt.Println("\nSame pipeline, cheapest plan:")
	ds2, _ := ctx.Dataset("sigmod-demo")
	cheap, err := ctx.Execute(ds2.
		Filter("The papers are about colorectal cancer").
		Convert(clinical, clinical.Doc(), pz.OneToMany),
		pz.MinCost())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-cost plan %s produced %d records for $%.4f\n",
		cheap.Plan, len(cheap.Records), cheap.CostUSD)
}
