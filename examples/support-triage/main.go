// Support triage: the customer-support workload over a file-backed
// corpus.
//
// It spills a synthetic ticket corpus to an on-disk NDJSON file (the same
// format `pzcorpus generate` writes), registers the file on a pz.Context
// without loading it whole, filters for urgent tickets, extracts routing
// fields with a derived schema, and scores both stages against the hidden
// ground truth the corpus carries.
//
//	go run ./examples/support-triage
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/workloads"
	"repro/pz"
)

func main() {
	// Spill the corpus to disk exactly as `pzcorpus generate -domain
	// support -n 400 -out tickets.ndjson` would.
	cfg := corpus.SupportConfig{NumTickets: 400, UrgentRate: 0.3, Seed: 17}
	path := filepath.Join(os.TempDir(), "palimpzest-tickets.ndjson")
	if _, err := corpus.SaveNDJSON(path, corpus.NewSupportGenerator(cfg), cfg.Seed, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s (%d tickets)\n\n", path, cfg.NumTickets)

	// Register the file-backed corpus; Parallelism > 1 selects the
	// pipelined engine, which streams records straight from the file.
	ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
	if err != nil {
		log.Fatal(err)
	}
	src, err := ctx.RegisterNDJSON("tickets", path)
	if err != nil {
		log.Fatal(err)
	}

	route, err := workloads.SupportRouteSchema()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ctx.Dataset("tickets")
	if err != nil {
		log.Fatal(err)
	}
	pipeline := ds.
		Filter(workloads.SupportPredicate).
		Convert(route, route.Doc(), pz.OneToOne).
		Sort("ticket_id", false)
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report(6))

	// Score against the ground truth carried through the NDJSON round
	// trip: triage quality (did the filter keep the urgent tickets?) and
	// routing accuracy (is the extracted category the labeled one?).
	inputs, err := src.Records()
	if err != nil {
		log.Fatal(err)
	}
	triage := metrics.FilterQualityByTruth(inputs, res.Records, workloads.SupportPredicate)
	catAcc, n := metrics.FieldAccuracy(res.Records, "category", "category")
	priAcc, _ := metrics.FieldAccuracy(res.Records, "priority", "priority")
	fmt.Printf("\ntriage quality:   %s\n", triage)
	fmt.Printf("routing accuracy: category %.3f, priority %.3f over %d tickets\n", catAcc, priAcc, n)
}
