// Legal discovery: one of the paper's three demo scenarios.
//
// A legal team screens a contract collection for indemnification clauses
// and extracts the parties and effective dates — half through the chat
// interface, half through the programmatic API, showing how "expert users
// can either further iterate on the code produced using the chat
// interface, or program their pipelines directly within Palimpzest".
//
//	go run ./examples/legal-discovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/palimpchat"
	"repro/pz"
)

func main() {
	dir := filepath.Join(os.TempDir(), "palimpchat-legal")
	docs := corpus.GenerateLegal(corpus.DefaultLegal())
	if _, err := dataset.MaterializeCorpus("contracts", dir, docs); err != nil {
		log.Fatal(err)
	}

	// Part 1 — non-expert path: chat.
	fmt.Println("=== via chat ===")
	session, err := palimpchat.NewSession(palimpchat.Options{
		Config: pz.Config{Parallelism: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []string{
		"load the contracts from " + dir + " as contracts",
		"keep only contracts that contain an indemnification clause",
		"extract the party_a, party_b and effective_date",
		"minimize the cost no matter the quality",
		"run the pipeline",
	} {
		fmt.Printf("\n> %s\n", u)
		reply, err := session.Chat(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(reply)
	}

	// Part 2 — expert path: the same pipeline in code, max quality.
	fmt.Println("\n=== via the pz API (expert iteration) ===")
	ctx, err := pz.NewContext(pz.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctx.RegisterDir("contracts", dir); err != nil {
		log.Fatal(err)
	}
	parties, err := pz.DeriveSchema("ContractParties",
		"Parties and effective date of a contract.",
		[]string{"party_a", "party_b", "effective_date"},
		[]string{
			"The first party to the agreement",
			"The second party to the agreement",
			"The effective date of the agreement (YYYY-MM-DD)",
		})
	if err != nil {
		log.Fatal(err)
	}
	ds, _ := ctx.Dataset("contracts")
	pipeline := ds.
		Filter("The contract contains an indemnification clause").
		Convert(parties, parties.Doc(), pz.OneToOne).
		Sort("effective_date", false)
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report(8))
}
