// Command palimpchat is the interactive chat interface to Palimpzest: type
// natural-language requests, and the Archytas agent builds and runs
// declarative AI pipelines for you.
//
// Usage:
//
//	palimpchat [-demo] [-trace] [-parallelism N]
//
// With -demo, the paper's scientific-discovery corpus (11 synthetic
// biomedical papers, 6 embedded public-dataset references) is materialized
// into a temporary folder and pre-registered as "sigmod-demo", so you can
// immediately try the paper's session:
//
//	> I am interested in papers about colorectal cancer and for these extract the dataset name, description and url
//	> optimize for maximum quality
//	> run the pipeline
//	> how much runtime was needed and how much did the LLM calls cost?
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/palimpchat"
	"repro/pz"
)

func main() {
	demo := flag.Bool("demo", false, "materialize and pre-register the paper's demo corpus")
	trace := flag.Bool("trace", false, "print ReAct Thought/Action/Observation traces")
	parallelism := flag.Int("parallelism", 4, "max concurrent LLM calls per operator")
	cache := flag.Bool("cache", true, "memoize LLM responses so re-running a pipeline is free")
	flag.Parse()

	session, err := palimpchat.NewSession(palimpchat.Options{
		Config: pz.Config{Parallelism: *parallelism, EnableCache: *cache},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "palimpchat:", err)
		os.Exit(1)
	}

	fmt.Println("PalimpChat — declarative and interactive AI analytics")
	fmt.Println("Type a request in natural language; 'help' lists tools; 'quit' exits.")

	if *demo {
		dir, err := setupDemo(session)
		if err != nil {
			fmt.Fprintln(os.Stderr, "palimpchat: demo setup:", err)
			os.Exit(1)
		}
		fmt.Printf("Demo corpus registered as \"sigmod-demo\" (11 papers in %s).\n", dir)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("\n> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch strings.ToLower(line) {
		case "":
			continue
		case "quit", "exit", "q":
			fmt.Println("bye")
			return
		case "help", "tools", "?":
			fmt.Print(session.Agent().Toolbox().Describe())
			continue
		case "notebook":
			fmt.Print(session.Notebook().Render())
			continue
		}
		before := len(session.Steps())
		reply, err := session.Chat(line)
		if *trace {
			for _, st := range session.Steps()[before:] {
				fmt.Print(st)
			}
		}
		if err != nil {
			fmt.Println("!", err)
			continue
		}
		fmt.Println(reply)
	}
}

// setupDemo materializes the paper workload and loads it through the
// agent's own tool (so the notebook records the step).
func setupDemo(s *palimpchat.Session) (string, error) {
	dir := filepath.Join(os.TempDir(), "palimpchat-demo")
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("sigmod-demo", dir, docs); err != nil {
		return "", err
	}
	_, err := s.Agent().Invoke("load_dataset", map[string]any{
		"path": dir, "name": "sigmod-demo",
	})
	return dir, err
}
