package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/workloads"
)

func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 11})
	if _, err := corpus.SaveNDJSON(path, g, 11, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func baseOptions() serveOptions {
	return serveOptions{
		parallelism: 2, maxInflight: 2, maxQueue: 4, planCache: 8,
		healthInterval: time.Second, partitionTimeout: time.Minute,
		stragglerAfter: time.Minute, partitionRetries: 3,
	}
}

func TestRunValidation(t *testing.T) {
	dir := t.TempDir()
	notCorpus := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(notCorpus, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		datasets map[string]string
		mutate   func(*serveOptions)
	}{
		{"zero parallelism", nil, func(o *serveOptions) { o.parallelism = 0 }},
		{"negative partitions", nil, func(o *serveOptions) { o.partitions = -1 }},
		{"negative reopt after", nil, func(o *serveOptions) { o.reoptAfter = -1 }},
		{"negative reopt divergence", nil, func(o *serveOptions) { o.reoptDivergence = -0.1 }},
		{"cluster zero retries", nil, func(o *serveOptions) { o.cluster = true; o.partitionRetries = 0 }},
		{"cluster zero partition timeout", nil, func(o *serveOptions) { o.cluster = true; o.partitionTimeout = 0 }},
		{"cluster zero straggler after", nil, func(o *serveOptions) { o.cluster = true; o.stragglerAfter = 0 }},
		{"cluster negative straggler after", nil, func(o *serveOptions) { o.cluster = true; o.stragglerAfter = -time.Second }},
		{"missing dataset", map[string]string{"x": filepath.Join(dir, "nope")}, nil},
		{"unsupported dataset file", map[string]string{"x": notCorpus}, nil},
		{"bad static worker", nil, func(o *serveOptions) {
			o.cluster = true
			o.workers = map[string]string{"w": "not-a-url"}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := baseOptions()
			if c.mutate != nil {
				c.mutate(&opts)
			}
			if err := run(":0", c.datasets, nil, opts); err == nil {
				t.Fatal("run accepted invalid configuration")
			}
		})
	}
}

// TestCoordinatorLifecycle boots the daemon in cluster mode with one
// static in-process worker, scatters a partitioned query through the
// public HTTP API, checks the registry endpoint, and shuts down
// gracefully on interrupt.
func TestCoordinatorLifecycle(t *testing.T) {
	path := writeCorpus(t, 60)
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name: "w1", Parallelism: 2, ChunkSize: 16,
		Datasets: map[string]string{"tickets": path},
	})
	if err != nil {
		t.Fatal(err)
	}
	worker := httptest.NewServer(w.Handler())
	defer worker.Close()

	addr := freeAddr(t)
	opts := baseOptions()
	opts.cluster = true
	opts.partitions = 4
	opts.workers = map[string]string{"w1": worker.URL}
	done := make(chan error, 1)
	go func() {
		done <- run(addr, map[string]string{"tickets": path}, nil, opts)
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	workers, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(workers), `"w1"`) {
		t.Fatalf("/v1/workers = %s, want w1 registered", workers)
	}

	spec, err := json.Marshal(map[string]any{
		"dataset":    map[string]string{"name": "tickets"},
		"ops":        []map[string]string{{"op": "filter", "predicate": workloads.SupportPredicate}},
		"policy":     "max-quality",
		"partitions": 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	qresp, err := http.Post(base+"/v1/query?wait=1", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", qresp.StatusCode, body)
	}
	if !strings.Contains(string(body), "cluster-scatter") {
		t.Fatalf("query response does not report a scattered plan: %s", body)
	}

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not shut down on interrupt")
	}
}
