// Command pzserve runs Palimpzest as a concurrent query-serving daemon: an
// HTTP/JSON API over one shared pz.Context, with admission control (bounded
// in-flight queries and wait queue, load-shedding with 429), a cross-query
// plan cache that skips re-optimization on repeat queries, and per-tenant
// cost accounting.
//
// Usage:
//
//	pzserve -addr :8077 -dataset papers=./pdfs [-dataset tickets=./corpus.ndjson]
//	        [-parallelism 4] [-partitions 0] [-batch 0] [-sample 0]
//	        [-reopt-after 0] [-reopt-divergence 0]
//	        [-max-inflight 8] [-max-queue 16] [-plan-cache 128]
//	        [-llm-cache=true] [-llm-cache-capacity 4096]
//	        [-budget 0] [-tenant-budget alice=1.50]
//	        [-slow-query-sim-sec 30]
//	        [-cluster] [-worker w1=http://host:8078]
//	        [-health-interval 5s] [-partition-timeout 60s]
//	        [-partition-retries 3] [-straggler-after 30s]
//
// With -cluster (or any static -worker registration) pzserve also acts as
// the coordinator of a scatter/gather cluster (see internal/cluster):
// pzworker daemons register under /v1/workers, and partitioned queries over
// indexed NDJSON datasets are scattered across the healthy pool, with
// failed or straggling partitions retried and a graceful local fallback
// when no workers are available.
//
// API:
//
//	POST /v1/query            submit a pipeline spec (async; ?wait=1 blocks)
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/trace  the job's query trace (span tree)
//	POST /v1/jobs/{id}/cancel abort a job
//	GET  /v1/debug/traces     ring of recent query traces
//	GET  /v1/debug/slowlog    slow-query log
//	GET  /metrics             Prometheus text exposition (?format=json
//	                          for counters, caches, tenants, cluster)
//	GET  /healthz             liveness
//	POST /v1/workers/register worker self-registration (cluster mode)
//	POST /v1/workers/deregister
//	GET  /v1/workers          healthy worker pool (cluster mode)
//
// The spec format is the same JSON cmd/pzrun reads (see internal/serve);
// the submitting tenant comes from the X-PZ-Tenant header ("default" when
// absent). See docs/architecture.md ("Serving layer") and the README's
// curl walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/pz"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	parallelism := flag.Int("parallelism", 4, "max concurrent LLM calls per operator (>1 selects the pipelined streaming engine)")
	partitions := flag.Int("partitions", 0, "default partition fan-out for indexed NDJSON datasets (0 = single reader; per-query specs override)")
	batch := flag.Int("batch", 0, "record batch size between pipeline stages (0 = auto)")
	sample := flag.Int("sample", 0, "sentinel calibration sample size")
	reoptAfter := flag.Int("reopt-after", 0, "default mid-flight re-optimization batch window (0 = disabled; per-query specs override)")
	reoptDivergence := flag.Float64("reopt-divergence", 0, "default relative estimate error that triggers a re-plan (0 = engine default)")
	maxInflight := flag.Int("max-inflight", 8, "max concurrently executing queries")
	maxQueue := flag.Int("max-queue", 16, "max queries waiting for a slot before load-shedding with 429")
	planCache := flag.Int("plan-cache", 128, "cross-query plan cache capacity")
	llmCache := flag.Bool("llm-cache", true, "memoize LLM responses across queries")
	llmCacheCap := flag.Int("llm-cache-capacity", 4096, "LLM cache entry bound (0 = unbounded)")
	budget := flag.Float64("budget", 0, "default per-tenant cost budget in USD (0 = unlimited)")
	slowQuerySec := flag.Float64("slow-query-sim-sec", 30, "slow-query log threshold in simulated seconds (0 disables /v1/debug/slowlog retention)")
	clusterMode := flag.Bool("cluster", false, "act as a scatter/gather coordinator (mounts /v1/workers; implied by -worker)")
	healthInterval := flag.Duration("health-interval", 5*time.Second, "worker health-check probe interval (cluster mode)")
	partitionTimeout := flag.Duration("partition-timeout", 60*time.Second, "per-partition worker request timeout (cluster mode)")
	partitionRetries := flag.Int("partition-retries", 3, "max attempts per partition before forcing local execution (cluster mode)")
	stragglerAfter := flag.Duration("straggler-after", 30*time.Second, "re-issue a partition still in flight after this long (cluster mode)")

	workers := map[string]string{}
	flag.Func("worker", "name=url static worker registration; implies -cluster (repeatable)", func(v string) error {
		name, url, ok := strings.Cut(v, "=")
		if !ok || name == "" || url == "" {
			return fmt.Errorf("want name=url, got %q", v)
		}
		workers[name] = url
		return nil
	})
	datasets := map[string]string{}
	flag.Func("dataset", "name=path dataset registration: a folder, or an .ndjson corpus file (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		datasets[name] = path
		return nil
	})
	budgets := map[string]float64{}
	flag.Func("tenant-budget", "tenant=usd budget override (repeatable)", func(v string) error {
		name, usd, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want tenant=usd, got %q", v)
		}
		f, err := strconv.ParseFloat(usd, 64)
		if err != nil {
			return err
		}
		budgets[name] = f
		return nil
	})
	flag.Parse()

	if err := run(*addr, datasets, budgets, serveOptions{
		parallelism: *parallelism, partitions: *partitions, batch: *batch, sample: *sample,
		reoptAfter: *reoptAfter, reoptDivergence: *reoptDivergence,
		maxInflight: *maxInflight, maxQueue: *maxQueue, planCache: *planCache,
		llmCache: *llmCache, llmCacheCap: *llmCacheCap, budget: *budget,
		slowQuerySec: *slowQuerySec,
		cluster:      *clusterMode || len(workers) > 0, workers: workers,
		healthInterval: *healthInterval, partitionTimeout: *partitionTimeout,
		partitionRetries: *partitionRetries, stragglerAfter: *stragglerAfter,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pzserve:", err)
		os.Exit(1)
	}
}

type serveOptions struct {
	parallelism, partitions          int
	batch, sample                    int
	reoptAfter                       int
	reoptDivergence                  float64
	maxInflight, maxQueue, planCache int
	llmCache                         bool
	llmCacheCap                      int
	budget                           float64
	slowQuerySec                     float64

	cluster                          bool
	workers                          map[string]string
	healthInterval, partitionTimeout time.Duration
	stragglerAfter                   time.Duration
	partitionRetries                 int
}

func run(addr string, datasets map[string]string, budgets map[string]float64, opts serveOptions) error {
	if opts.parallelism < 1 {
		return fmt.Errorf("-parallelism must be >= 1, got %d", opts.parallelism)
	}
	if opts.partitions < 0 {
		return fmt.Errorf("-partitions must be >= 0, got %d", opts.partitions)
	}
	if opts.reoptAfter < 0 {
		return fmt.Errorf("-reopt-after must be >= 0, got %d", opts.reoptAfter)
	}
	if opts.reoptDivergence < 0 {
		return fmt.Errorf("-reopt-divergence must be >= 0, got %g", opts.reoptDivergence)
	}
	if opts.cluster && opts.partitionRetries < 1 {
		return fmt.Errorf("-partition-retries must be >= 1, got %d", opts.partitionRetries)
	}
	if opts.cluster && opts.partitionTimeout <= 0 {
		return fmt.Errorf("-partition-timeout must be > 0, got %v", opts.partitionTimeout)
	}
	if opts.cluster && opts.stragglerAfter <= 0 {
		return fmt.Errorf("-straggler-after must be > 0, got %v", opts.stragglerAfter)
	}
	if opts.slowQuerySec < 0 {
		return fmt.Errorf("-slow-query-sim-sec must be >= 0, got %v", opts.slowQuerySec)
	}
	ctx, err := pz.NewContext(pz.Config{
		Parallelism:       opts.parallelism,
		Partitions:        opts.partitions,
		StreamBatchSize:   opts.batch,
		SampleSize:        opts.sample,
		EnableCache:       opts.llmCache,
		CacheCapacity:     opts.llmCacheCap,
		ReoptAfterBatches: opts.reoptAfter,
		ReoptDivergence:   opts.reoptDivergence,
	})
	if err != nil {
		return err
	}
	for name, path := range datasets {
		st, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("dataset %q: %w", name, err)
		}
		switch {
		case st.IsDir():
			if _, err := ctx.RegisterDir(name, path); err != nil {
				return err
			}
		case strings.EqualFold(filepath.Ext(path), ".ndjson"):
			if _, err := ctx.RegisterNDJSON(name, path); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dataset %q: %s is neither a directory nor an .ndjson corpus", name, path)
		}
		log.Printf("pzserve: registered dataset %q from %s", name, path)
	}
	counters := metrics.NewCounters()
	var reg *cluster.Registry
	var coord *cluster.Coordinator
	if opts.cluster {
		reg = cluster.NewRegistry(cluster.RegistryConfig{Counters: counters})
		for name, url := range opts.workers {
			if err := reg.Register(name, url); err != nil {
				return fmt.Errorf("worker %q: %w", name, err)
			}
			log.Printf("pzserve: registered static worker %q at %s", name, url)
		}
		coord, err = cluster.NewCoordinator(cluster.Config{
			Registry:         reg,
			Counters:         counters,
			Parallelism:      opts.parallelism,
			MaxAttempts:      opts.partitionRetries,
			PartitionTimeout: opts.partitionTimeout,
			StragglerAfter:   opts.stragglerAfter,
		})
		if err != nil {
			return err
		}
		reg.StartHealthLoop(opts.healthInterval)
		defer reg.Stop()
	}

	cfg := serve.Config{
		Context:          ctx,
		MaxInflight:      opts.maxInflight,
		MaxQueue:         opts.maxQueue,
		PlanCacheSize:    opts.planCache,
		DefaultBudgetUSD: opts.budget,
		TenantBudgets:    budgets,
		Counters:         counters,
		Histograms:       metrics.NewHistograms(),
		SlowQuerySimSec:  opts.slowQuerySec,
	}
	if coord != nil {
		cfg.Cluster = coord
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	var handler http.Handler = srv.Handler()
	if reg != nil {
		// The registry's worker-management endpoints share the serving
		// API's address space; everything else falls through to the
		// query-serving handler.
		mux := http.NewServeMux()
		mux.Handle("/v1/workers", cluster.RegistryHandler(reg))
		mux.Handle("/v1/workers/", cluster.RegistryHandler(reg))
		mux.Handle("/", srv.Handler())
		handler = mux
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Print("pzserve: shutting down")
		srv.Close()
		_ = httpSrv.Shutdown(context.Background())
	}()

	mode := "standalone"
	if opts.cluster {
		mode = fmt.Sprintf("cluster coordinator (%d static workers)", len(opts.workers))
	}
	log.Printf("pzserve: serving on %s (inflight=%d queue=%d plan-cache=%d, %s)",
		addr, opts.maxInflight, opts.maxQueue, opts.planCache, mode)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
