// Command pzcorpus generates, validates, and summarizes on-disk NDJSON
// corpora — the corpus-at-scale tooling in front of internal/corpus.
//
// Usage:
//
//	pzcorpus generate -domain support -n 100000 -out corpus.ndjson
//	                  [-rate 0.3] [-seed 17] [-size 50MB]
//	pzcorpus generate -spec specs/support-triage.json -out corpus.ndjson
//	pzcorpus validate [-spec file.json] corpus.ndjson
//	pzcorpus stats    corpus.ndjson
//	pzcorpus domains
//
// generate streams the chosen domain's generator straight to disk — for
// the streaming-native domains (support, finance) memory stays constant
// at any -n — and writes a manifest (seed, config, counts, SHA-256)
// alongside. -size targets an approximate output size instead of a
// document count (the tool probes a small sample to estimate bytes per
// document). -spec compiles a config-driven domain spec (see
// internal/corpus/spec and docs/howto-corpus.md) and registers it before
// generation, so declarative domains flow through the same path as the Go
// ones. validate re-derives the manifest checksum and checks every line's
// ground truth against the Truth contract (see internal/corpus); it exits
// non-zero on any mismatch (pass -spec so spec-generated corpora resolve
// their domain hook). stats prints the manifest plus a fresh streaming
// pass over the file. domains lists the registry.
//
// Registered corpora plug into pipelines via pz.Context.RegisterNDJSON,
// the {"dataset": {"name": ..., "file": ...}} spec field of pzrun and
// pzserve, and docs/howto-corpus.md's walkthrough.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/corpus"
	"repro/internal/corpus/spec"
	"repro/internal/llm"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = runGenerate(args, os.Stdout)
	case "validate":
		err = runValidate(args, os.Stdout)
	case "stats":
		err = runStats(args, os.Stdout)
	case "index":
		err = runIndex(args, os.Stdout)
	case "embed":
		err = runEmbed(args, os.Stdout)
	case "domains":
		err = runDomains(args, os.Stdout)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "pzcorpus: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pzcorpus:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `pzcorpus — generate, validate, and summarize NDJSON corpora

commands:
  generate [-domain D | -spec F] -out F [-n N | -size S] [-rate R] [-seed N] [-embed]
  validate [-spec F] F   re-derive checksum, check every line's ground truth
  stats    F        manifest + fresh streaming statistics
  index    F        back-fill the byte-offset partition index [-partitions P]
  embed    F        write the embedding sidecar (enables cascade plans)
  domains           list registered corpus domains
`)
}

// runGenerate streams a domain generator to an NDJSON file + manifest.
func runGenerate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	domain := fs.String("domain", "", "corpus domain (see `pzcorpus domains`)")
	specPath := fs.String("spec", "", "domain-spec file to compile and register (JSON; see docs/howto-corpus.md)")
	n := fs.Int("n", 0, "number of documents (0 = domain default)")
	size := fs.String("size", "", "approximate output size (e.g. 50MB) instead of -n")
	rate := fs.Float64("rate", -1, "positive-class fraction (negative = domain default)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output corpus path (required)")
	embed := fs.Bool("embed", false, "also write the embedding sidecar (as `pzcorpus embed` would)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath != "" {
		name, err := registerSpec(*specPath)
		if err != nil {
			return err
		}
		if *domain != "" && *domain != name {
			return fmt.Errorf("generate: -spec %s declares domain %q, -domain says %q", *specPath, name, *domain)
		}
		*domain = name
	}
	if *domain == "" || *out == "" {
		return fmt.Errorf("generate: -domain (or -spec) and -out are required")
	}
	if *rate > 1 {
		return fmt.Errorf("generate: -rate %v out of range (want a fraction in [0,1], or omit for the domain default)", *rate)
	}
	if *size != "" {
		target, err := parseSize(*size)
		if err != nil {
			return err
		}
		nn, err := docsForSize(*domain, *rate, *seed, target)
		if err != nil {
			return err
		}
		*n = nn
	}
	g, err := corpus.NewGenerator(*domain, *n, *rate, *seed)
	if err != nil {
		return err
	}
	cfg := struct {
		NumDocs int     `json:"num_docs"`
		Rate    float64 `json:"rate"`
	}{NumDocs: g.Len(), Rate: *rate}
	m, err := corpus.SaveNDJSON(*out, g, *seed, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d %s docs, %s, sha256 %s…\n",
		*out, m.NumDocs, m.Domain, fmtBytes(m.Bytes), m.SHA256[:12])
	printLabelCounts(stdout, m.LabelCounts, m.NumDocs)
	if *embed {
		return embedCorpus(*out, stdout)
	}
	return nil
}

// embedCorpus writes a corpus's embedding sidecar with the catalog's
// deterministic document embedding and reports the resulting reference —
// the shared implementation of `pzcorpus embed` and `generate -embed`.
func embedCorpus(path string, stdout io.Writer) error {
	m, err := corpus.EmbedNDJSON(path, llm.EmbedDim, llm.EmbedVector)
	if err != nil {
		return err
	}
	e := m.Embeddings
	fmt.Fprintf(stdout, "wrote %s: %d vectors of dim %d, %s, sha256 %s…\n",
		path+corpus.EmbedSuffix, e.NumVectors, e.Dim, fmtBytes(e.Bytes), shaPrefix(e.SHA256))
	return nil
}

// runEmbed back-fills the embedding sidecar of an existing corpus, making
// it eligible for the optimizer's cascade-filter plans.
func runEmbed(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("embed", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("embed: exactly one corpus path expected")
	}
	return embedCorpus(fs.Arg(0), stdout)
}

// docsForSize estimates the document count that lands near targetBytes by
// probing a small sample of the domain's output.
func docsForSize(domain string, rate float64, seed int64, targetBytes int64) (int, error) {
	const probe = 64
	g, err := corpus.NewGenerator(domain, probe, rate, seed)
	if err != nil {
		return 0, err
	}
	m, err := corpus.WriteNDJSON(io.Discard, g)
	if err != nil {
		return 0, err
	}
	if m.NumDocs == 0 || m.Bytes == 0 {
		return 0, fmt.Errorf("generate: domain %s produced no probe documents", domain)
	}
	n := int(targetBytes / (m.Bytes / int64(m.NumDocs)))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// registerSpec compiles a domain-spec file and registers its domain in
// the corpus registry (idempotently per process), returning the name.
func registerSpec(path string) (string, error) {
	c, err := spec.Load(path)
	if err != nil {
		return "", err
	}
	name := c.Spec().Name
	if _, ok := corpus.DomainByName(name); !ok {
		if err := c.Register(); err != nil {
			return "", err
		}
	}
	return name, nil
}

// runValidate checks a corpus against its manifest and the Truth contract.
func runValidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	specPath := fs.String("spec", "", "domain-spec file to register before validation (so the corpus's domain hook resolves)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath != "" {
		if _, err := registerSpec(*specPath); err != nil {
			return err
		}
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("validate: exactly one corpus path expected")
	}
	path := fs.Arg(0)
	rep, err := corpus.ValidateNDJSON(path)
	if err != nil {
		return err
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(stdout, "note: %s\n", n)
	}
	if !rep.OK() {
		for _, e := range rep.Errors {
			fmt.Fprintf(stdout, "INVALID %s: %s\n", path, e)
		}
		return fmt.Errorf("validate: %s failed %d check(s)", path, len(rep.Errors))
	}
	fmt.Fprintf(stdout, "OK %s: %d docs, %s, sha256 %s…\n",
		path, rep.Docs, fmtBytes(rep.Bytes), rep.SHA256[:12])
	printLabelCounts(stdout, rep.LabelCounts, rep.Docs)
	return nil
}

// runStats prints the manifest plus fresh streaming statistics.
func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: exactly one corpus path expected")
	}
	path := fs.Arg(0)

	if m, err := corpus.ReadManifest(path); err == nil {
		fmt.Fprintf(stdout, "manifest: domain=%s docs=%d seed=%d sha256=%s…\n",
			m.Domain, m.NumDocs, m.Seed, shaPrefix(m.SHA256))
		if m.Index != nil {
			fmt.Fprintf(stdout, "index:    %d checkpoints, stride %d (partitioned scans available)\n",
				len(m.Index.Offsets), m.Index.Stride)
		} else {
			fmt.Fprintln(stdout, "index:    none (back-fill with `pzcorpus index`)")
		}
	} else if os.IsNotExist(err) {
		fmt.Fprintln(stdout, "manifest: none")
	} else {
		return err
	}

	r, err := corpus.OpenNDJSON(path)
	if err != nil {
		return err
	}
	defer r.Close()
	docs, totalTokens, totalBytes := 0, 0, int64(0)
	labels := map[string]int{}
	for {
		d, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		docs++
		totalTokens += llm.CountTokens(d.Text)
		totalBytes += int64(len(d.Text))
		if d.Truth != nil {
			for l, v := range d.Truth.Labels {
				if v {
					labels[l]++
				}
			}
		}
	}
	if docs == 0 {
		return fmt.Errorf("stats: %s contains no documents", path)
	}
	fmt.Fprintf(stdout, "documents:  %d\n", docs)
	fmt.Fprintf(stdout, "text bytes: %s (avg %s/doc)\n", fmtBytes(totalBytes), fmtBytes(totalBytes/int64(docs)))
	fmt.Fprintf(stdout, "avg tokens: %.0f/doc\n", float64(totalTokens)/float64(docs))
	printLabelCounts(stdout, labels, docs)
	return nil
}

// runIndex back-fills the byte-offset partition index of an existing
// corpus (corpora written before the index format, or by hand) and shows
// the partition layout the index yields.
func runIndex(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	parts := fs.Int("partitions", 8, "partition count to preview after indexing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("index: exactly one corpus path expected")
	}
	path := fs.Arg(0)
	m, created, err := corpus.IndexNDJSON(path)
	if err != nil {
		return err
	}
	verb := "updated"
	if created {
		verb = "created"
	}
	if m.Index == nil {
		fmt.Fprintf(stdout, "%s manifest for %s: corpus is empty, no index written\n", verb, path)
		return nil
	}
	fmt.Fprintf(stdout, "%s manifest for %s: %d docs, %d checkpoints (stride %d), sha256 %s…\n",
		verb, path, m.NumDocs, len(m.Index.Offsets), m.Index.Stride, shaPrefix(m.SHA256))
	for _, p := range m.Partitions(*parts) {
		fmt.Fprintf(stdout, "partition %d: %6d docs @ byte offset %d\n", p.Ordinal, p.Docs, p.Offset)
	}
	return nil
}

// shaPrefix shortens a checksum for display (tolerating short or missing
// checksums in hand-made manifests).
func shaPrefix(sha string) string {
	if len(sha) > 12 {
		sha = sha[:12]
	}
	return sha
}

// runDomains lists the corpus domain registry.
func runDomains(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("domains", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, d := range corpus.Domains() {
		mode := "materializing"
		if d.Streaming {
			mode = "streaming"
		}
		fmt.Fprintf(stdout, "%-11s %-13s default n=%d rate=%.2f  %s\n",
			d.Name, "("+mode+")", d.DefaultDocs, d.DefaultRate, d.Description)
	}
	return nil
}

func printLabelCounts(w io.Writer, labels map[string]int, docs int) {
	if len(labels) == 0 || docs == 0 {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "label %s: %d/%d (%.0f%%)\n", k, labels[k], docs, 100*float64(labels[k])/float64(docs))
	}
}

// parseSize parses "500000", "50KB", "50MB", "1GB" into bytes.
func parseSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, strings.TrimSuffix(t, "GB")
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, strings.TrimSuffix(t, "MB")
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, strings.TrimSuffix(t, "KB")
	case strings.HasSuffix(t, "B"):
		t = strings.TrimSuffix(t, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 50MB)", s)
	}
	return n * mult, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
