package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateValidateStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "support.ndjson")
	var out bytes.Buffer
	err := runGenerate([]string{"-domain", "support", "-n", "500", "-seed", "3", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "500 support docs") {
		t.Errorf("generate output: %q", out.String())
	}
	if _, err := os.Stat(path + ".manifest.json"); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}

	out.Reset()
	if err := runValidate([]string{path}, &out); err != nil {
		t.Fatalf("validate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK ") {
		t.Errorf("validate output: %q", out.String())
	}

	out.Reset()
	if err := runStats([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"domain=support", "documents:  500", "label urgent: 150/500"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestValidateFailsOnTamperedCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ndjson")
	var out bytes.Buffer
	if err := runGenerate([]string{"-domain", "finance", "-n", "50", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(data, []byte("revenue"), []byte("REVENUE"), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runValidate([]string{path}, &out); err == nil {
		t.Fatalf("tampered corpus validated:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("validate output: %q", out.String())
	}
}

func TestGenerateBySize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sized.ndjson")
	var out bytes.Buffer
	if err := runGenerate([]string{"-domain", "support", "-size", "300KB", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// The probe-based estimate should land within a factor of two.
	if st.Size() < 150<<10 || st.Size() > 600<<10 {
		t.Errorf("-size 300KB produced %d bytes", st.Size())
	}
	if err := runValidate([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestDomainsListsRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := runDomains(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"biomed", "legal", "realestate", "support", "finance", "streaming"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("domains output missing %q", want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1024":  1024,
		"300KB": 300 << 10,
		"50MB":  50 << 20,
		"1GB":   1 << 30,
		"2B":    2,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MB", "0"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
