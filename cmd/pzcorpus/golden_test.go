package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

// Golden-file tests for the CLI's human-facing output: corpus generation
// is deterministic byte for byte, so `pzcorpus stats` and `pzcorpus
// index` must print exactly what they printed when the goldens were
// recorded — formatting drift is a regression. Regenerate with
// `go test ./cmd/pzcorpus -run Golden -update`.

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, testdata, name string, got []byte) {
	t.Helper()
	path := filepath.Join(testdata, name)
	if *update {
		if err := os.MkdirAll(testdata, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output drifted from golden file:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenStatsAndIndex(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	testdata := filepath.Join(wd, "testdata")
	dir := t.TempDir()
	t.Chdir(dir) // CLI output embeds the path; keep it relative and stable

	g, err := corpus.NewGenerator(corpus.DomainSupport, 60, -1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.SaveNDJSON("support.ndjson", g, 5, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := runStats([]string{"support.ndjson"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, testdata, "stats_support.golden", buf.Bytes())

	// Strip the index to exercise the back-fill path `pzcorpus index`
	// exists for, then re-index and snapshot its report.
	m, err := corpus.ReadManifest("support.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	m.Index = nil
	if err := corpus.WriteManifest("support.ndjson", m); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := runIndex([]string{"-partitions", "4", "support.ndjson"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, testdata, "index_support.golden", buf.Bytes())

	// And the stats view of an index-less corpus points at the back-fill.
	m.Index = nil
	if err := corpus.WriteManifest("support.ndjson", m); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := runStats([]string{"support.ndjson"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, testdata, "stats_support_noindex.golden", buf.Bytes())
}

// TestGoldenGenerateSpec snapshots the config-driven generation path:
// `pzcorpus generate -spec` compiles and registers the domain spec, then
// streams it to disk like any Go domain, and `validate -spec` resolves
// the spec domain's validation hook for the on-disk corpus.
func TestGoldenGenerateSpec(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	testdata := filepath.Join(wd, "testdata")
	specFile := filepath.Join(wd, "..", "..", "specs", "support-triage.json")
	t.Chdir(t.TempDir()) // CLI output embeds the corpus path; keep it stable

	var buf bytes.Buffer
	if err := runGenerate([]string{"-spec", specFile, "-n", "120", "-seed", "5", "-out", "triage.ndjson"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, testdata, "generate_spec.golden", buf.Bytes())

	buf.Reset()
	if err := runValidate([]string{"-spec", specFile, "triage.ndjson"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, testdata, "validate_spec.golden", buf.Bytes())

	// The spec twin writes byte-identical NDJSON to the Go support domain
	// at the same size/seed: same checksum, different manifest domain.
	if err := runGenerate([]string{"-domain", "support", "-n", "120", "-seed", "5", "-out", "go.ndjson"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	ms, err := corpus.ReadManifest("triage.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	mg, err := corpus.ReadManifest("go.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if ms.SHA256 != mg.SHA256 {
		t.Fatalf("spec corpus checksum %s != Go corpus %s", ms.SHA256, mg.SHA256)
	}
	if ms.Domain != "support-triage" || mg.Domain != "support" {
		t.Fatalf("manifest domains: %q / %q", ms.Domain, mg.Domain)
	}
}
