package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
)

func writeCorpus(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: 10, UrgentRate: 0.3, Seed: 7})
	if _, err := corpus.SaveNDJSON(path, g, 7, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestRunValidation(t *testing.T) {
	path := writeCorpus(t)
	dir := t.TempDir()
	notNDJSON := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(notNDJSON, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := map[string]string{"tickets": path}
	cases := []struct {
		name        string
		datasets    map[string]string
		parallelism int
		chunk       int
		heartbeat   time.Duration
	}{
		{"zero parallelism", ok, 0, 8, time.Second},
		{"zero chunk", ok, 1, 0, time.Second},
		{"zero heartbeat", ok, 1, 8, 0},
		{"no datasets", nil, 1, 8, time.Second},
		{"missing file", map[string]string{"x": filepath.Join(dir, "nope.ndjson")}, 1, 8, time.Second},
		{"directory", map[string]string{"x": dir}, 1, 8, time.Second},
		{"not ndjson", map[string]string{"x": notNDJSON}, 1, 8, time.Second},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(":0", "w", "", "", c.datasets, c.parallelism, c.chunk, c.heartbeat)
			if err == nil {
				t.Fatal("run accepted invalid configuration")
			}
		})
	}
}

func TestRegisterAgainstBrokenCoordinator(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	if err := register(srv.URL, "w", "http://127.0.0.1:1"); err == nil {
		t.Fatal("register swallowed a coordinator error")
	}
	if err := deregister(srv.URL, "w"); err == nil {
		t.Fatal("deregister swallowed a coordinator error")
	}
	path := writeCorpus(t)
	err := run(freeAddr(t), "w", srv.URL, "", map[string]string{"tickets": path}, 1, 8, time.Second)
	if err == nil {
		t.Fatal("run started despite failed registration")
	}
}

// TestWorkerLifecycle drives the daemon end to end: self-registration
// with a coordinator registry, heartbeat re-registration, serving
// /healthz, and deregistration + graceful shutdown on interrupt.
func TestWorkerLifecycle(t *testing.T) {
	path := writeCorpus(t)
	reg := cluster.NewRegistry(cluster.RegistryConfig{})
	mux := http.NewServeMux()
	mux.Handle("/v1/workers", cluster.RegistryHandler(reg))
	mux.Handle("/v1/workers/", cluster.RegistryHandler(reg))
	coord := httptest.NewServer(mux)
	defer coord.Close()

	addr := freeAddr(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, "w1", coord.URL, "http://"+addr,
			map[string]string{"tickets": path}, 1, 8, 20*time.Millisecond)
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg.Len(); got != 1 {
		t.Fatalf("registry has %d workers after startup, want 1", got)
	}
	// Outlive a couple of heartbeat intervals: re-registration must keep
	// the worker present, not duplicate or drop it.
	time.Sleep(60 * time.Millisecond)
	if got := reg.Len(); got != 1 {
		t.Fatalf("registry has %d workers after heartbeats, want 1", got)
	}

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not shut down on interrupt")
	}
	if got := reg.Len(); got != 0 {
		t.Fatalf("registry has %d workers after shutdown, want 0 (deregistered)", got)
	}
}

func TestDefaultNameAndAdvertise(t *testing.T) {
	// A bare ":port" addr synthesizes a name; exercised via the error-free
	// prefix of run against a coordinator that rejects everything, so run
	// fails fast at registration after the defaults are applied.
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusTeapot)
	}))
	defer srv.Close()
	path := writeCorpus(t)
	err := run(":18099", "", srv.URL, "", map[string]string{"tickets": path}, 1, 8, time.Second)
	if err == nil {
		t.Fatal("run ignored registration failure")
	}
	if want := fmt.Sprintf("status %d", http.StatusTeapot); !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want registration %s", err, want)
	}
}
