// Command pzworker runs one worker of a Palimpzest scatter/gather cluster:
// an HTTP daemon that executes partition sub-plans shipped by a pzserve
// coordinator (see internal/cluster). Each request carries a serve.Spec
// prefix plan plus a byte range of an indexed NDJSON corpus; the worker
// opens its own range reader over the shared corpus file, runs the plan on
// a private pz.Context, and streams the resulting records back in
// sequence-tagged NDJSON chunks.
//
// Usage:
//
//	pzworker -addr :8078 -dataset tickets=./corpus.ndjson
//	         [-name worker-1] [-parallelism 4] [-chunk 256]
//	         [-coordinator http://coord:8077] [-advertise http://me:8078]
//	         [-heartbeat 5s]
//
// With -coordinator set, the worker registers itself with the coordinator's
// registry on startup and re-registers every -heartbeat interval (the
// registry treats re-registration as a liveness heartbeat), then
// deregisters on shutdown. -advertise is the URL the coordinator should
// dial back; it defaults from -addr, which only works when both run on the
// same host.
//
// API:
//
//	POST /v1/partition  execute a partition sub-plan, stream result chunks
//	GET  /metrics       Prometheus text exposition: counters plus a
//	                    per-partition sim-latency histogram (?format=json
//	                    for the JSON form)
//	GET  /healthz       liveness (the coordinator's health checks hit this)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8078", "listen address")
	name := flag.String("name", "", "worker name reported to the coordinator (default: host:port of -addr)")
	parallelism := flag.Int("parallelism", 4, "max concurrent LLM calls per operator within a partition")
	chunk := flag.Int("chunk", 256, "records per streamed result chunk")
	coordinator := flag.String("coordinator", "", "coordinator base URL to self-register with (empty = standalone)")
	advertise := flag.String("advertise", "", "URL the coordinator should dial this worker at (default: http://<addr>)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "re-registration interval while -coordinator is set")

	datasets := map[string]string{}
	flag.Func("dataset", "name=path .ndjson corpus registration; must mirror the coordinator's (repeatable)", func(v string) error {
		n, path, ok := strings.Cut(v, "=")
		if !ok || n == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		datasets[n] = path
		return nil
	})
	flag.Parse()

	if err := run(*addr, *name, *coordinator, *advertise, datasets, *parallelism, *chunk, *heartbeat); err != nil {
		fmt.Fprintln(os.Stderr, "pzworker:", err)
		os.Exit(1)
	}
}

func run(addr, name, coordinator, advertise string, datasets map[string]string, parallelism, chunk int, heartbeat time.Duration) error {
	if parallelism < 1 {
		return fmt.Errorf("-parallelism must be >= 1, got %d", parallelism)
	}
	if chunk < 1 {
		return fmt.Errorf("-chunk must be >= 1, got %d", chunk)
	}
	if heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be positive, got %s", heartbeat)
	}
	if len(datasets) == 0 {
		return fmt.Errorf("at least one -dataset name=path is required")
	}
	for n, path := range datasets {
		st, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("dataset %q: %w", n, err)
		}
		if st.IsDir() || !strings.EqualFold(filepath.Ext(path), ".ndjson") {
			return fmt.Errorf("dataset %q: %s is not an .ndjson corpus file", n, path)
		}
	}
	if name == "" {
		name = strings.TrimPrefix(addr, ":")
		if strings.HasPrefix(addr, ":") {
			name = "worker" + addr
		}
	}
	if advertise == "" {
		advertise = "http://" + strings.TrimPrefix(addr, "http://")
	}

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:        name,
		Parallelism: parallelism,
		ChunkSize:   chunk,
		Datasets:    datasets,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: w.Handler()}

	stopHeartbeat := make(chan struct{})
	heartbeatDone := make(chan struct{})
	if coordinator != "" {
		if err := register(coordinator, name, advertise); err != nil {
			return fmt.Errorf("registering with coordinator: %w", err)
		}
		log.Printf("pzworker: registered with %s as %q (%s)", coordinator, name, advertise)
		go func() {
			defer close(heartbeatDone)
			t := time.NewTicker(heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stopHeartbeat:
					return
				case <-t.C:
					if err := register(coordinator, name, advertise); err != nil {
						log.Printf("pzworker: heartbeat: %v", err)
					}
				}
			}
		}()
	} else {
		close(heartbeatDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Print("pzworker: shutting down")
		close(stopHeartbeat)
		<-heartbeatDone
		if coordinator != "" {
			if err := deregister(coordinator, name); err != nil {
				log.Printf("pzworker: deregister: %v", err)
			}
		}
		_ = httpSrv.Shutdown(context.Background())
	}()

	log.Printf("pzworker: %q serving on %s (parallelism=%d chunk=%d datasets=%d)",
		name, addr, parallelism, chunk, len(datasets))
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// register announces the worker to the coordinator's registry; the registry
// treats repeat registrations as liveness heartbeats.
func register(coordinator, name, url string) error {
	return post(coordinator+"/v1/workers/register", map[string]string{"name": name, "url": url})
}

func deregister(coordinator, name string) error {
	return post(coordinator+"/v1/workers/deregister", map[string]string{"name": name})
}

func post(url string, body map[string]string) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return nil
}
