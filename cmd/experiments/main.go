// Command experiments regenerates every reproducible artifact of the
// PalimpChat paper and prints the paper-vs-measured tables recorded in
// EXPERIMENTS.md. Run with no arguments; use -only to run a subset:
//
//	go run ./cmd/experiments
//	go run ./cmd/experiments -only e1,e5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e1..e8,ablations); empty = all")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }
	failed := false
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
		failed = true
	}

	if run("e1") {
		fmt.Println("## E1 — Scientific discovery (paper §3, Figure 5)")
		r, err := experiments.RunE1()
		if err != nil {
			fail("e1", err)
		} else {
			fmt.Println(r.Table())
			fmt.Println("Chosen plan:", r.Plan)
			fmt.Println()
			fmt.Println("```")
			fmt.Print(r.Report)
			fmt.Println("```")
		}
		fmt.Println()
	}

	if run("e2") {
		fmt.Println("## E2 — Chat pipeline construction (Figures 3-4)")
		dir, err := os.MkdirTemp("", "palimpchat-e2-")
		if err != nil {
			fail("e2", err)
		} else {
			defer os.RemoveAll(dir)
			r, err := experiments.RunE2(dir)
			if err != nil {
				fail("e2", err)
			} else {
				fmt.Println(r.Table())
			}
		}
		fmt.Println()
	}

	if run("e3") {
		fmt.Println("## E3 — Generated pipeline code (Figure 6)")
		dir, err := os.MkdirTemp("", "palimpchat-e3-")
		if err != nil {
			fail("e3", err)
		} else {
			defer os.RemoveAll(dir)
			r, err := experiments.RunE3(dir)
			if err != nil {
				fail("e3", err)
			} else {
				fmt.Println(r.Table())
				fmt.Printf("Missing elements: %d/%d\n\n", r.Missing, len(experiments.Figure6Elements))
				fmt.Println("```python")
				fmt.Print(r.Code)
				fmt.Println("```")
			}
		}
		fmt.Println()
	}

	if run("e4") {
		fmt.Println("## E4 — Additional demo scenarios (legal discovery, real estate)")
		legal, err := experiments.RunE4Legal()
		if err != nil {
			fail("e4", err)
		}
		re, err := experiments.RunE4RealEstate()
		if err != nil {
			fail("e4", err)
		}
		if legal != nil && re != nil {
			fmt.Println(experiments.E4Table([]*experiments.E4Result{legal, re}))
		}
		fmt.Println()
	}

	if run("e5") {
		fmt.Println("## E5 — Optimizer policy sweep (paper §2.1)")
		rows, err := experiments.RunE5()
		if err != nil {
			fail("e5", err)
		} else {
			fmt.Println(experiments.E5Table(rows))
		}
		fmt.Println()
	}

	if run("e6") {
		fmt.Println("## E6 — Physical plan space and Pareto pruning")
		rows, err := experiments.RunE6()
		if err != nil {
			fail("e6", err)
		} else {
			fmt.Println(experiments.E6Table(rows))
		}
		fmt.Println()
	}

	if run("e7") {
		fmt.Println("## E7 — Sentinel (sample-based) calibration")
		rows, err := experiments.RunE7()
		if err != nil {
			fail("e7", err)
		} else {
			fmt.Println(experiments.E7Table(rows))
		}
		fmt.Println()
	}

	if run("e8") {
		fmt.Println("## E8 — Docstring-driven tool routing")
		r, err := experiments.RunE8()
		if err != nil {
			fail("e8", err)
		} else {
			fmt.Println(r.Table())
		}
		fmt.Println()
	}

	if run("e9") {
		fmt.Println("## E9 — Library-size scaling")
		rows, err := experiments.RunScale([]int{11, 33, 66, 110})
		if err != nil {
			fail("e9", err)
		} else {
			fmt.Println(experiments.ScaleTable(rows))
		}
		fmt.Println()
	}

	if run("ablations") {
		fmt.Println("## Ablation — conversion strategy (bonded vs field-at-a-time)")
		conv, err := experiments.RunAblationConvert()
		if err != nil {
			fail("ablations", err)
		} else {
			fmt.Println(experiments.AblationConvertTable(conv))
		}
		fmt.Println()
		fmt.Println("## Ablation — embedding pre-filter")
		pre, err := experiments.RunAblationPrefilter()
		if err != nil {
			fail("ablations", err)
		} else {
			fmt.Println(experiments.AblationPrefilterTable(pre))
		}
	}

	if failed {
		os.Exit(1)
	}
}
