package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// Golden-file tests for the CLI's human-facing output. Every figure
// pzbench prints is simulated-clock (wall time stays in the JSON
// artifact only), so `pzbench run` over the committed testdata track
// must print exactly what it printed when the goldens were recorded.
// Regenerate with `go test ./cmd/pzbench -run Golden -update`.

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, testdata, name string, got []byte) {
	t.Helper()
	path := filepath.Join(testdata, name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output drifted from golden file:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenRunAndCheck(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	testdata := filepath.Join(wd, "testdata")
	track := filepath.Join(testdata, "track.json")
	t.Chdir(t.TempDir()) // artifact paths print relative and stable

	var buf bytes.Buffer
	if err := runRun([]string{"-track", track, "-sha", "", "-corpus-dir", "corpora"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, testdata, "run.golden", buf.Bytes())

	buf.Reset()
	if err := runCheck([]string{"BENCH_trajectory.json"}, &buf); err != nil {
		t.Fatalf("check: %v", err)
	}
	checkGolden(t, testdata, "check.golden", buf.Bytes())

	// The artifact itself must be schema-valid and cover the full grid
	// (2 domains × 2 parallelism × 2 partitions — the CI smoke shape).
	tr, err := bench.ReadTrajectory("BENCH_trajectory.json")
	if err != nil {
		t.Fatal(err)
	}
	domains, par, parts := map[string]bool{}, map[int]bool{}, map[int]bool{}
	for _, c := range tr.Cells {
		domains[c.Domain], par[c.Parallelism], parts[c.Partitions] = true, true, true
	}
	if len(domains) < 2 || len(par) < 2 || len(parts) < 2 {
		t.Fatalf("grid coverage: %d domains, %d parallelism, %d partitions (want >= 2 each)",
			len(domains), len(par), len(parts))
	}
	if !domains["support-triage"] {
		t.Fatalf("spec-driven domain missing from trajectory: %v", domains)
	}
}

func TestRunErrors(t *testing.T) {
	if err := runRun([]string{}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-track is required") {
		t.Fatalf("want missing-track error, got %v", err)
	}
	if err := runRun([]string{"-track", filepath.Join(t.TempDir(), "nope.json")}, &bytes.Buffer{}); err == nil {
		t.Fatalf("want missing-file error")
	}
	if err := runCheck([]string{}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("want arity error, got %v", err)
	}
	if err := runCheck([]string{filepath.Join(t.TempDir(), "nope.json")}, &bytes.Buffer{}); err == nil {
		t.Fatalf("want missing-trajectory error")
	}
}
