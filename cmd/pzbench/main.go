// Command pzbench runs rally-style benchmark tracks — the unified
// replacement for the per-PR BENCH_*.json scatter.
//
// Usage:
//
//	pzbench run -track tracks/smoke.json [-out BENCH_trajectory.json]
//	            [-corpus-dir corpora] [-server URL] [-sha GITSHA]
//	pzbench check BENCH_trajectory.json
//
// run loads a track file (a benchmark grid: datasets × parallelism ×
// partitions × policies; see docs/howto-bench.md), generates or reuses
// the corpora under -corpus-dir, executes every cell through the real pz
// engine — or against a running pzserve when -server is given — and
// writes one schema-versioned trajectory artifact: per-cell simulated
// time, cost, quality-vs-truth, and throughput, stamped with the git SHA
// and the track digest. Cells print as they finish; all printed figures
// are simulated-clock, so output is deterministic for a fixed track and
// code revision. check validates an existing trajectory artifact and
// exits non-zero if it is structurally unsound.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = runRun(args, os.Stdout)
	case "check":
		err = runCheck(args, os.Stdout)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "pzbench: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pzbench:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `pzbench — run benchmark tracks, emit one trajectory artifact

commands:
  run   -track F [-out F] [-corpus-dir D] [-server URL] [-sha SHA]
  check F           validate an existing trajectory artifact
`)
}

// runRun executes a full track and writes the trajectory artifact.
func runRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	track := fs.String("track", "", "track file (required; see docs/howto-bench.md)")
	out := fs.String("out", "BENCH_trajectory.json", "trajectory output path")
	corpusDir := fs.String("corpus-dir", "corpora", "directory for generated corpora (reused when manifests match)")
	server := fs.String("server", "", "pzserve base URL to run cells against (default: in-process engine)")
	sha := fs.String("sha", os.Getenv("GITHUB_SHA"), "git SHA to stamp the trajectory with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *track == "" {
		return fmt.Errorf("run: -track is required")
	}
	t, digest, err := bench.LoadTrack(*track)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "track %s: %d cells over %d dataset(s)\n", t.Name, t.Cells(), len(t.Datasets))
	tr, err := bench.Run(t, digest, bench.Options{
		CorpusDir: *corpusDir,
		TrackDir:  filepath.Dir(*track),
		ServerURL: *server,
		GitSHA:    *sha,
		Progress:  func(line string) { fmt.Fprintln(stdout, line) },
	})
	if err != nil {
		return err
	}
	tr.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	outcomes, err := bench.EvalAssertions(t, tr)
	if err != nil {
		return err
	}
	tr.Assertions = outcomes
	if err := tr.Validate(); err != nil {
		return err
	}
	if err := tr.Write(*out); err != nil {
		return err
	}
	var simMS int64
	var cost float64
	for _, c := range tr.Cells {
		simMS += c.ElapsedSimMS
		cost += c.CostUSD
	}
	fmt.Fprintf(stdout, "wrote %s: %d cells, sim total %.1f s, cost total $%.4f\n",
		*out, len(tr.Cells), float64(simMS)/1000, cost)
	failed := 0
	for _, o := range outcomes {
		fmt.Fprintln(stdout, "assert", o)
		if !o.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("run: %d of %d assertions failed", failed, len(outcomes))
	}
	return nil
}

// runCheck validates an existing trajectory artifact.
func runCheck(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("check: exactly one trajectory path expected")
	}
	path := fs.Arg(0)
	tr, err := bench.ReadTrajectory(path)
	if err != nil {
		return err
	}
	datasets := map[string]bool{}
	for _, c := range tr.Cells {
		datasets[c.Dataset] = true
	}
	fmt.Fprintf(stdout, "OK %s: track %s, %d cells over %d dataset(s), schema v%d, digest %s…\n",
		path, tr.Track, len(tr.Cells), len(datasets), tr.SchemaVersion, tr.TrackDigest[:12])
	return nil
}
