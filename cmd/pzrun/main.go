// Command pzrun executes a declarative Palimpzest pipeline described in a
// JSON spec file — the expert, non-chat path into the same engine.
//
// Usage:
//
//	pzrun -spec pipeline.json [-policy max-quality] [-param 0] [-records 10]
//	      [-parallelism 4] [-batch 0] [-progress] [-sample 0]
//
// Spec format:
//
//	{
//	  "dataset": {"name": "papers", "dir": "./pdfs"},
//	  "ops": [
//	    {"op": "filter", "predicate": "The papers are about colorectal cancer"},
//	    {"op": "convert", "schema": "ClinicalData",
//	     "doc": "Datasets referenced by papers.",
//	     "fields": ["name", "description", "url"],
//	     "descriptions": ["Dataset name", "Short description", "Public URL"],
//	     "cardinality": "one_to_many"},
//	    {"op": "limit", "n": 10}
//	  ]
//	}
//
// Supported ops: filter, convert, project, limit, distinct, aggregate,
// groupby, sort, retrieve.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pz"
)

type spec struct {
	Dataset struct {
		Name string `json:"name"`
		Dir  string `json:"dir"`
	} `json:"dataset"`
	Ops []opSpec `json:"ops"`
}

type opSpec struct {
	Op           string   `json:"op"`
	Predicate    string   `json:"predicate"`
	Schema       string   `json:"schema"`
	Doc          string   `json:"doc"`
	Fields       []string `json:"fields"`
	Descriptions []string `json:"descriptions"`
	Cardinality  string   `json:"cardinality"`
	N            int      `json:"n"`
	K            int      `json:"k"`
	Query        string   `json:"query"`
	Field        string   `json:"field"`
	Func         string   `json:"func"`
	Keys         []string `json:"keys"`
	Descending   bool     `json:"descending"`
}

func main() {
	specPath := flag.String("spec", "", "pipeline spec JSON file (required)")
	policyName := flag.String("policy", "max-quality", "optimization policy")
	param := flag.Float64("param", 0, "parameter for constrained policies")
	maxRecords := flag.Int("records", 10, "output records to display")
	parallelism := flag.Int("parallelism", 4, "max concurrent LLM calls per operator (>1 selects the pipelined streaming engine)")
	batch := flag.Int("batch", 0, "record batch size between pipeline stages (0 = auto; floored at -parallelism)")
	progress := flag.Bool("progress", false, "print per-stage progress events to stderr")
	sample := flag.Int("sample", 0, "sentinel calibration sample size")
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*specPath, *policyName, *param, *maxRecords, *parallelism, *batch, *sample, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "pzrun:", err)
		os.Exit(1)
	}
}

func run(specPath, policyName string, param float64, maxRecords, parallelism, batch, sample int, progress bool) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var sp spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return fmt.Errorf("parse %s: %w", specPath, err)
	}
	if sp.Dataset.Dir == "" {
		return fmt.Errorf("spec needs dataset.dir")
	}
	if sp.Dataset.Name == "" {
		sp.Dataset.Name = "dataset"
	}

	cfg := pz.Config{Parallelism: parallelism, StreamBatchSize: batch, SampleSize: sample}
	if progress {
		cfg.OnProgress = func(p pz.Progress) {
			fmt.Fprintf(os.Stderr, "pzrun: op %d %-30s batches=%d records=%d\n",
				p.OpIndex, p.OpID, p.Batches, p.Records)
		}
	}
	ctx, err := pz.NewContext(cfg)
	if err != nil {
		return err
	}
	if _, err := ctx.RegisterDir(sp.Dataset.Name, sp.Dataset.Dir); err != nil {
		return err
	}
	ds, err := ctx.Dataset(sp.Dataset.Name)
	if err != nil {
		return err
	}
	for i, op := range sp.Ops {
		ds, err = applyOp(ds, op)
		if err != nil {
			return fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
	}
	policy, err := pz.ParsePolicy(policyName, param)
	if err != nil {
		return err
	}
	fmt.Println("logical plan:")
	fmt.Println(indent(ds.Describe()))
	res, err := ctx.Execute(ds, policy)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(res.Report(maxRecords))
	return nil
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}

func applyOp(ds *pz.Dataset, op opSpec) (*pz.Dataset, error) {
	switch strings.ToLower(op.Op) {
	case "filter":
		return ds.Filter(op.Predicate), nil
	case "convert":
		name := op.Schema
		if name == "" {
			name = "Extracted"
		}
		sc, err := pz.DeriveSchema(name, op.Doc, op.Fields, op.Descriptions)
		if err != nil {
			return nil, err
		}
		card := pz.OneToOne
		if strings.EqualFold(op.Cardinality, "one_to_many") {
			card = pz.OneToMany
		}
		return ds.Convert(sc, sc.Doc(), card), nil
	case "project":
		return ds.Project(op.Fields...), nil
	case "limit":
		return ds.Limit(op.N), nil
	case "distinct":
		return ds.Distinct(op.Fields...), nil
	case "aggregate":
		f, err := parseAgg(op.Func)
		if err != nil {
			return nil, err
		}
		return ds.Aggregate(f, op.Field), nil
	case "groupby":
		f, err := parseAgg(op.Func)
		if err != nil {
			return nil, err
		}
		return ds.GroupBy(op.Keys, f, op.Field), nil
	case "sort":
		return ds.Sort(op.Field, op.Descending), nil
	case "retrieve":
		return ds.Retrieve(op.Query, op.K), nil
	default:
		return nil, fmt.Errorf("unknown op %q", op.Op)
	}
}

func parseAgg(name string) (pz.AggFunc, error) {
	switch strings.ToLower(name) {
	case "count", "":
		return pz.Count, nil
	case "sum":
		return pz.Sum, nil
	case "avg", "average", "mean":
		return pz.Avg, nil
	case "min":
		return pz.Min, nil
	case "max":
		return pz.Max, nil
	default:
		return pz.Count, fmt.Errorf("unknown aggregate %q", name)
	}
}
