// Command pzrun executes a declarative Palimpzest pipeline described in a
// JSON spec file — the expert, non-chat path into the same engine. It runs
// the pipeline in-process by default, or submits it to a running pzserve
// daemon with -server.
//
// Usage:
//
//	pzrun -spec pipeline.json [-policy max-quality] [-param 0] [-records 10]
//	      [-parallelism 4] [-partitions 0] [-batch 0] [-progress] [-sample 0]
//	      [-reopt-after 0] [-reopt-divergence 0]
//	      [-timeout 0] [-trace out.json]
//	      [-server http://host:8077] [-tenant name]
//
// The spec format is internal/serve's wire Spec — the same JSON pzserve
// accepts on /v1/query:
//
//	{
//	  "dataset": {"name": "papers", "dir": "./pdfs"},
//	  "ops": [
//	    {"op": "filter", "predicate": "The papers are about colorectal cancer"},
//	    {"op": "convert", "schema": "ClinicalData",
//	     "doc": "Datasets referenced by papers.",
//	     "fields": ["name", "description", "url"],
//	     "descriptions": ["Dataset name", "Short description", "Public URL"],
//	     "cardinality": "one_to_many"},
//	    {"op": "limit", "n": 10}
//	  ]
//	}
//
// Supported ops: filter, convert, project, limit, distinct, aggregate,
// groupby, sort, retrieve. A policy in the spec wins over the -policy
// flag, so a spec file submitted to pzserve behaves identically here.
// -timeout bounds the run (local or remote) and exits non-zero when it
// fires. -trace writes the query's span tree (per-stage and
// per-partition record counts, observed selectivity, simulated time,
// cost; see docs/howto-observability.md) to a JSON file — locally from
// the engine's own trace, remotely by fetching /v1/jobs/{id}/trace
// after the run. With -server, dataset.dir is not needed: the daemon
// resolves dataset.name against its own registry.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
	"repro/pz"
)

// options collects the flag-derived run configuration.
type options struct {
	policy      string
	param       float64
	maxRecords  int
	parallelism int
	partitions  int
	batch       int
	sample      int
	reoptAfter  int
	reoptDiv    float64
	progress    bool
	timeout     time.Duration
	server      string
	tenant      string
	tracePath   string
}

func main() {
	specPath := flag.String("spec", "", "pipeline spec JSON file (required)")
	var opts options
	flag.StringVar(&opts.policy, "policy", "max-quality", "optimization policy (spec-file policy wins when set)")
	flag.Float64Var(&opts.param, "param", 0, "parameter for constrained policies")
	flag.IntVar(&opts.maxRecords, "records", 10, "output records to display")
	flag.IntVar(&opts.parallelism, "parallelism", 4, "max concurrent LLM calls per operator (>1 selects the pipelined streaming engine)")
	flag.IntVar(&opts.partitions, "partitions", 0, "partition fan-out for indexed NDJSON datasets (0 = single reader locally / server default with -server; spec-file partitions win)")
	flag.IntVar(&opts.batch, "batch", 0, "record batch size between pipeline stages (0 = auto; floored at -parallelism)")
	flag.BoolVar(&opts.progress, "progress", false, "print per-stage progress events to stderr")
	flag.IntVar(&opts.sample, "sample", 0, "sentinel calibration sample size")
	flag.IntVar(&opts.reoptAfter, "reopt-after", 0, "batches each filter stage observes before the engine checks for a mid-flight re-plan (0 = disabled; spec-file reopt_after wins)")
	flag.Float64Var(&opts.reoptDiv, "reopt-divergence", 0, "relative estimate error that triggers a re-plan (0 = engine default; spec-file reopt_divergence wins)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "abort the run after this long (0 = no timeout)")
	flag.StringVar(&opts.server, "server", "", "submit the spec to a running pzserve at this base URL instead of executing locally")
	flag.StringVar(&opts.tenant, "tenant", "", "tenant name sent to -server via X-PZ-Tenant")
	flag.StringVar(&opts.tracePath, "trace", "", "write the query's trace (span tree) to this JSON file")
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if opts.parallelism < 1 {
		fmt.Fprintf(os.Stderr, "pzrun: -parallelism must be >= 1, got %d\n", opts.parallelism)
		os.Exit(2)
	}
	if opts.partitions < 0 {
		fmt.Fprintf(os.Stderr, "pzrun: -partitions must be >= 0, got %d\n", opts.partitions)
		os.Exit(2)
	}
	if opts.reoptAfter < 0 {
		fmt.Fprintf(os.Stderr, "pzrun: -reopt-after must be >= 0, got %d\n", opts.reoptAfter)
		os.Exit(2)
	}
	if opts.reoptDiv < 0 {
		fmt.Fprintf(os.Stderr, "pzrun: -reopt-divergence must be >= 0, got %g\n", opts.reoptDiv)
		os.Exit(2)
	}
	if err := run(*specPath, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pzrun:", err)
		os.Exit(1)
	}
}

// run loads the spec and dispatches to local or remote execution. The
// -timeout flag becomes a context deadline either way, so a stuck run
// aborts cleanly with a non-zero exit instead of hanging.
func run(specPath string, opts options) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	sp, err := serve.ParseSpec(data)
	if err != nil {
		return fmt.Errorf("parse %s: %w", specPath, err)
	}
	if sp.Policy == "" {
		sp.Policy = opts.policy
		sp.PolicyParam = opts.param
	}
	// A partition fan-out in the spec file wins, so a spec submitted to
	// pzserve behaves identically here; the flag fills the gap either way
	// (Build applies it locally, the JSON body carries it remotely).
	if sp.Partitions == 0 {
		sp.Partitions = opts.partitions
	}
	// Same precedence for the re-optimization knobs: spec values win,
	// flags fill the gap, and both travel the wire with -server.
	if sp.ReoptAfter == 0 {
		sp.ReoptAfter = opts.reoptAfter
	}
	if sp.ReoptDivergence == 0 {
		sp.ReoptDivergence = opts.reoptDiv
	}
	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	if opts.server != "" {
		return runRemote(ctx, sp, opts)
	}
	return runLocal(ctx, sp, opts)
}

// runLocal optimizes and executes the pipeline in-process over a fresh
// pz.Context, honoring ctx cancellation via ExecuteContext.
func runLocal(ctx context.Context, sp *serve.Spec, opts options) error {
	cfg := pz.Config{Parallelism: opts.parallelism, StreamBatchSize: opts.batch, SampleSize: opts.sample}
	if opts.progress {
		cfg.OnProgress = func(p pz.Progress) {
			fmt.Fprintf(os.Stderr, "pzrun: op %d %-30s batches=%d records=%d\n",
				p.OpIndex, p.OpID, p.Batches, p.Records)
		}
	}
	pzctx, err := pz.NewContext(cfg)
	if err != nil {
		return err
	}
	ds, err := sp.Build(pzctx)
	if err != nil {
		return err
	}
	policy, err := sp.ParsePolicy()
	if err != nil {
		return err
	}
	fmt.Println("logical plan:")
	fmt.Println(indent(ds.Describe()))
	res, err := pzctx.ExecuteContext(ctx, ds, policy)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(res.Report(opts.maxRecords))
	if ri := res.Reopt; ri != nil {
		fmt.Printf("reopt: phase=%s divergence=%.3f threshold=%.3f triggered=%t swapped=%t\n",
			ri.Phase, ri.Divergence, ri.Threshold, ri.Triggered, ri.Swapped)
		if ri.Swapped {
			fmt.Printf("reopt: new plan %s\n", ri.NewPlan)
		}
	}
	if opts.tracePath != "" {
		if err := writeTrace(opts.tracePath, trace.NewDocument(res.Trace)); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace renders a trace document to a file as indented JSON.
func writeTrace(path string, doc *trace.Document) error {
	data, err := doc.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pzrun: trace written to %s\n", path)
	return nil
}

// runRemote submits the spec to a pzserve daemon synchronously
// (/v1/query?wait=1) and renders the returned result. Canceling ctx drops
// the connection, which aborts the job server-side.
func runRemote(ctx context.Context, sp *serve.Spec, opts options) error {
	body, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	base := strings.TrimRight(opts.server, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := base + "/v1/query?wait=1"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.tenant != "" {
		req.Header.Set("X-PZ-Tenant", opts.tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: status %d: %s", resp.StatusCode, data)
	}
	var view serve.JobView
	if err := json.Unmarshal(data, &view); err != nil {
		return fmt.Errorf("server: parse response: %w", err)
	}
	if view.Status != serve.StatusDone || view.Result == nil {
		return fmt.Errorf("server: job %s %s: %s", view.ID, view.Status, view.Error)
	}
	r := view.Result
	fmt.Printf("job %s (%s)\n", view.ID, r.Policy)
	fmt.Println("physical plan:")
	fmt.Println(indent(r.Plan))
	var records []map[string]string
	if err := json.Unmarshal(r.Records, &records); err != nil {
		return err
	}
	shown := records
	if opts.maxRecords >= 0 && len(shown) > opts.maxRecords {
		shown = shown[:opts.maxRecords]
	}
	pretty, err := json.MarshalIndent(shown, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(pretty))
	cached := ""
	if r.PlanCached {
		cached = ", plan cached"
	}
	fmt.Printf("%d records (%d shown) in %d ms simulated, $%.4f%s\n",
		r.Count, len(shown), r.ElapsedSimMS, r.CostUSD, cached)
	if opts.tracePath != "" {
		if err := fetchTrace(ctx, base, view.ID, opts.tracePath); err != nil {
			return fmt.Errorf("fetch trace for job %s: %w", view.ID, err)
		}
	}
	return nil
}

// fetchTrace retrieves a completed job's trace from the server and
// writes it to a file.
func fetchTrace(ctx context.Context, base, jobID, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+jobID+"/trace", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var doc trace.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("parse trace: %w", err)
	}
	return writeTrace(path, &doc)
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
