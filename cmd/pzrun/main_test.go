package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"encoding/json"
	"repro/internal/corpus"
	"repro/internal/dataset"

	"repro/internal/serve"
	"repro/internal/trace"
	"repro/pz"
)

func writeSpec(t *testing.T, spec string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func demoCorpusDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("papers", dir, docs); err != nil {
		t.Fatal(err)
	}
	return dir
}

// baseOptions mirrors the test defaults the old positional run() calls
// used: small display, modest parallelism, no sampling.
func baseOptions(policy string) options {
	return options{policy: policy, maxRecords: 3, parallelism: 2, sample: 0}
}

func TestRunDemoSpec(t *testing.T) {
	dir := demoCorpusDir(t)
	spec := `{
	  "dataset": {"name": "papers", "dir": "` + dir + `"},
	  "ops": [
	    {"op": "filter", "predicate": "The papers are about colorectal cancer"},
	    {"op": "convert", "schema": "ClinicalData",
	     "doc": "Datasets referenced by papers.",
	     "fields": ["name", "description", "url"],
	     "descriptions": ["Dataset name", "Short description", "Public URL"],
	     "cardinality": "one_to_many"},
	    {"op": "sort", "field": "name"},
	    {"op": "limit", "n": 10}
	  ]
	}`
	opts := baseOptions("max-quality")
	opts.batch = 3
	if err := run(writeSpec(t, spec), opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecAllRelationalOps(t *testing.T) {
	dir := t.TempDir()
	docs := corpus.GenerateRealEstate(corpus.RealEstateConfig{NumListings: 20, ModernRate: 0.5, Seed: 3})
	if _, err := dataset.MaterializeCorpus("listings", dir, docs); err != nil {
		t.Fatal(err)
	}
	spec := `{
	  "dataset": {"name": "listings", "dir": "` + dir + `"},
	  "ops": [
	    {"op": "retrieve", "query": "modern kitchen", "k": 10},
	    {"op": "convert", "schema": "Listing", "doc": "A listing.",
	     "fields": ["neighborhood", "price:float"],
	     "descriptions": ["The neighborhood", "The price in dollars"]},
	    {"op": "groupby", "keys": ["neighborhood"], "func": "avg", "field": "price"},
	    {"op": "sort", "field": "value", "descending": true},
	    {"op": "distinct", "fields": ["neighborhood"]},
	    {"op": "project", "fields": ["neighborhood", "value"]},
	    {"op": "limit", "n": 3}
	  ]
	}`
	opts := baseOptions("min-cost")
	opts.maxRecords = 5
	if err := run(writeSpec(t, spec), opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecErrors(t *testing.T) {
	dir := demoCorpusDir(t)
	cases := map[string]string{
		"bad json":    `{not json`,
		"missing dir": `{"dataset": {"name": "x"}, "ops": []}`,
		"unknown op":  `{"dataset": {"name": "x", "dir": "` + dir + `"}, "ops": [{"op": "frobnicate"}]}`,
		"bad agg":     `{"dataset": {"name": "x", "dir": "` + dir + `"}, "ops": [{"op": "aggregate", "func": "median"}]}`,
	}
	for name, spec := range cases {
		if err := run(writeSpec(t, spec), baseOptions("max-quality")); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := run("/nonexistent/spec.json", baseOptions("max-quality")); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run(writeSpec(t, `{"dataset": {"name": "p", "dir": "`+dir+`"}, "ops": []}`), baseOptions("bogus-policy")); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestRunSpecPolicyWinsOverFlag: a policy embedded in the spec file is
// used even when the -policy flag carries a different (here invalid)
// value, so specs behave identically locally and via pzserve.
func TestRunSpecPolicyWinsOverFlag(t *testing.T) {
	dir := demoCorpusDir(t)
	spec := `{"dataset": {"name": "papers", "dir": "` + dir + `"},
	  "ops": [{"op": "limit", "n": 2}], "policy": "min-cost"}`
	if err := run(writeSpec(t, spec), baseOptions("bogus-policy")); err != nil {
		t.Fatalf("spec policy should override the flag: %v", err)
	}
}

// TestRunTimeoutAborts: a -timeout too short for the pipeline aborts the
// run cleanly with the context's deadline error (main turns any run()
// error into a non-zero exit).
func TestRunTimeoutAborts(t *testing.T) {
	dir := demoCorpusDir(t)
	spec := `{
	  "dataset": {"name": "papers", "dir": "` + dir + `"},
	  "ops": [
	    {"op": "filter", "predicate": "The papers are about colorectal cancer"},
	    {"op": "filter", "predicate": "The papers report a clinical trial"}
	  ]
	}`
	opts := baseOptions("max-quality")
	opts.timeout = time.Nanosecond
	err := run(writeSpec(t, spec), opts)
	if err == nil {
		t.Fatal("run with 1ns timeout succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error = %v, want context.DeadlineExceeded", err)
	}
}

// serveForTest starts an in-process pzserve with the demo corpus
// registered under "papers" and returns its base URL.
func serveForTest(t *testing.T, onStart func(context.Context, *serve.Job)) string {
	t.Helper()
	pzctx, err := pz.NewContext(pz.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pzctx.RegisterDir("papers", demoCorpusDir(t)); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Context: pzctx, OnJobStart: onStart})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL
}

// TestRunServerMode: -server submits the spec to a pzserve daemon, which
// resolves the dataset by name (no dir in the spec) and returns the result.
func TestRunServerMode(t *testing.T) {
	url := serveForTest(t, nil)
	spec := `{
	  "dataset": {"name": "papers"},
	  "ops": [{"op": "filter", "predicate": "The papers are about colorectal cancer"}]
	}`
	opts := baseOptions("min-cost")
	opts.server = url
	opts.tenant = "cli"
	if err := run(writeSpec(t, spec), opts); err != nil {
		t.Fatal(err)
	}
}

// TestRunServerModeErrors: server-side rejections (unknown dataset) and a
// client -timeout expiring mid-run both surface as errors.
func TestRunServerModeErrors(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	url := serveForTest(t, func(ctx context.Context, _ *serve.Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	})
	spec := `{"dataset": {"name": "nope"}, "ops": []}`
	opts := baseOptions("min-cost")
	opts.server = url
	if err := run(writeSpec(t, spec), opts); err == nil {
		t.Error("unknown dataset accepted by server mode")
	}

	spec = `{"dataset": {"name": "papers"},
	  "ops": [{"op": "filter", "predicate": "The papers are about colorectal cancer"}]}`
	opts.timeout = 50 * time.Millisecond
	if err := run(writeSpec(t, spec), opts); err == nil {
		t.Error("remote run outlived the client timeout")
	}
}

// TestRunTraceArtifact: -trace writes a versioned span-tree document in
// both local and server mode (where it is fetched from the daemon after
// the run).
func TestRunTraceArtifact(t *testing.T) {
	dir := demoCorpusDir(t)
	spec := `{
	  "dataset": {"name": "papers", "dir": "` + dir + `"},
	  "ops": [{"op": "filter", "predicate": "The papers are about colorectal cancer"}]
	}`
	specPath := writeSpec(t, spec)

	checkArtifact := func(path string) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("trace artifact not written: %v", err)
		}
		var doc trace.Document
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("trace artifact is not a document: %v", err)
		}
		if doc.SchemaVersion != trace.SchemaVersion {
			t.Errorf("artifact schema v%d, want v%d", doc.SchemaVersion, trace.SchemaVersion)
		}
		if doc.Trace == nil || doc.Trace.Kind != trace.KindQuery || len(doc.Trace.Stages()) == 0 {
			t.Errorf("artifact trace = %+v, want a query root with stages", doc.Trace)
		}
	}

	opts := baseOptions("max-quality")
	opts.tracePath = filepath.Join(t.TempDir(), "local.json")
	if err := run(specPath, opts); err != nil {
		t.Fatal(err)
	}
	checkArtifact(opts.tracePath)

	remoteSpec := `{
	  "dataset": {"name": "papers"},
	  "ops": [{"op": "filter", "predicate": "The papers are about colorectal cancer"}]
	}`
	opts = baseOptions("min-cost")
	opts.server = serveForTest(t, nil)
	opts.tracePath = filepath.Join(t.TempDir(), "remote.json")
	if err := run(writeSpec(t, remoteSpec), opts); err != nil {
		t.Fatal(err)
	}
	checkArtifact(opts.tracePath)
}
