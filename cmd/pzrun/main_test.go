package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/pz"
)

func writeSpec(t *testing.T, dir, spec string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func demoCorpusDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("papers", dir, docs); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunDemoSpec(t *testing.T) {
	dir := demoCorpusDir(t)
	spec := `{
	  "dataset": {"name": "papers", "dir": "` + dir + `"},
	  "ops": [
	    {"op": "filter", "predicate": "The papers are about colorectal cancer"},
	    {"op": "convert", "schema": "ClinicalData",
	     "doc": "Datasets referenced by papers.",
	     "fields": ["name", "description", "url"],
	     "descriptions": ["Dataset name", "Short description", "Public URL"],
	     "cardinality": "one_to_many"},
	    {"op": "sort", "field": "name"},
	    {"op": "limit", "n": 10}
	  ]
	}`
	if err := run(writeSpec(t, dir, spec), "max-quality", 0, 3, 2, 3, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecAllRelationalOps(t *testing.T) {
	dir := t.TempDir()
	docs := corpus.GenerateRealEstate(corpus.RealEstateConfig{NumListings: 20, ModernRate: 0.5, Seed: 3})
	if _, err := dataset.MaterializeCorpus("listings", dir, docs); err != nil {
		t.Fatal(err)
	}
	spec := `{
	  "dataset": {"name": "listings", "dir": "` + dir + `"},
	  "ops": [
	    {"op": "retrieve", "query": "modern kitchen", "k": 10},
	    {"op": "convert", "schema": "Listing", "doc": "A listing.",
	     "fields": ["neighborhood", "price:float"],
	     "descriptions": ["The neighborhood", "The price in dollars"]},
	    {"op": "groupby", "keys": ["neighborhood"], "func": "avg", "field": "price"},
	    {"op": "sort", "field": "value", "descending": true},
	    {"op": "distinct", "fields": ["neighborhood"]},
	    {"op": "project", "fields": ["neighborhood", "value"]},
	    {"op": "limit", "n": 3}
	  ]
	}`
	if err := run(writeSpec(t, dir, spec), "min-cost", 0, 5, 2, 0, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecErrors(t *testing.T) {
	dir := demoCorpusDir(t)
	cases := map[string]string{
		"bad json":    `{not json`,
		"missing dir": `{"dataset": {"name": "x"}, "ops": []}`,
		"unknown op":  `{"dataset": {"name": "x", "dir": "` + dir + `"}, "ops": [{"op": "frobnicate"}]}`,
		"bad agg":     `{"dataset": {"name": "x", "dir": "` + dir + `"}, "ops": [{"op": "aggregate", "func": "median"}]}`,
	}
	for name, spec := range cases {
		if err := run(writeSpec(t, dir, spec), "max-quality", 0, 3, 1, 0, 0, false); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := run("/nonexistent/spec.json", "max-quality", 0, 3, 1, 0, 0, false); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run(writeSpec(t, dir, `{"dataset": {"name": "p", "dir": "`+dir+`"}, "ops": []}`), "bogus-policy", 0, 3, 1, 0, 0, false); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestParseAgg(t *testing.T) {
	for name, want := range map[string]pz.AggFunc{
		"count": pz.Count, "": pz.Count, "sum": pz.Sum,
		"avg": pz.Avg, "mean": pz.Avg, "min": pz.Min, "max": pz.Max,
	} {
		got, err := parseAgg(name)
		if err != nil || got != want {
			t.Errorf("parseAgg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseAgg("median"); err == nil {
		t.Error("unknown aggregate accepted")
	}
}
