// Package record implements Palimpzest's data records: dynamically-typed
// tuples conforming to a schema, with lineage pointers back to the parent
// record(s) they were derived from. Lineage is what lets the execution
// engine attribute extracted outputs (e.g. a dataset mention) to the source
// paper, and lets one-to-many Convert operators fan out while retaining
// provenance (paper §3: the ClinicalData extraction is ONE_TO_MANY).
package record

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/schema"
)

var nextID atomic.Int64

// ResetIDs resets the process-wide record ID counter. Only tests should
// call this; it keeps golden outputs deterministic.
func ResetIDs() { nextID.Store(0) }

// Record is one data item flowing through a pipeline. Records are created
// with New and should be treated as immutable once handed to an operator;
// derive new records with Derive or Project instead of mutating.
type Record struct {
	id     int64
	schema *schema.Schema
	values map[string]any
	// parents are the IDs of the records this one was derived from.
	parents []int64
	// source names the dataset or file this record originated from.
	source string
	// truth carries hidden ground-truth annotations attached by the
	// synthetic corpus generators. The simulated LLM reads it through the
	// oracle interface; real operators never touch it.
	truth map[string]any
}

// New creates a record of the given schema. Missing fields default to the
// zero value of their type; unknown field names in values are an error.
func New(s *schema.Schema, values map[string]any) (*Record, error) {
	if s == nil {
		return nil, fmt.Errorf("record: nil schema")
	}
	r := &Record{
		id:     nextID.Add(1),
		schema: s,
		values: make(map[string]any, s.Len()),
	}
	for name, v := range values {
		f, ok := s.Field(name)
		if !ok {
			return nil, fmt.Errorf("record: schema %s has no field %q", s.Name(), name)
		}
		cv, err := coerce(f.Type, v)
		if err != nil {
			return nil, fmt.Errorf("record: field %q: %w", name, err)
		}
		r.values[name] = cv
	}
	for _, f := range s.Fields() {
		if _, ok := r.values[f.Name]; !ok {
			r.values[f.Name] = f.Type.Zero()
		}
	}
	return r, nil
}

// MustNew is New that panics on error, for tests and generators.
func MustNew(s *schema.Schema, values map[string]any) *Record {
	r, err := New(s, values)
	if err != nil {
		panic(err)
	}
	return r
}

// coerce converts common alternative Go representations into the canonical
// one for a field type (int -> int64, float32 -> float64, numeric strings
// for Int/Float fields produced by LLM extraction).
func coerce(t schema.FieldType, v any) (any, error) {
	if v == nil {
		return t.Zero(), nil
	}
	switch t {
	case schema.Int:
		switch x := v.(type) {
		case int:
			return int64(x), nil
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cannot parse %q as int", x)
			}
			return n, nil
		}
	case schema.Float:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("cannot parse %q as float", x)
			}
			return f, nil
		}
	case schema.Bool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case string:
			b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(x)))
			if err != nil {
				return nil, fmt.Errorf("cannot parse %q as bool", x)
			}
			return b, nil
		}
	case schema.String:
		switch x := v.(type) {
		case string:
			return x, nil
		case fmt.Stringer:
			return x.String(), nil
		case int:
			return strconv.Itoa(x), nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case bool:
			return strconv.FormatBool(x), nil
		}
	case schema.StringList:
		switch x := v.(type) {
		case []string:
			return x, nil
		case []any:
			out := make([]string, len(x))
			for i, e := range x {
				s, ok := e.(string)
				if !ok {
					return nil, fmt.Errorf("list element %d is %T, not string", i, e)
				}
				out[i] = s
			}
			return out, nil
		case string:
			return []string{x}, nil
		}
	case schema.Bytes:
		switch x := v.(type) {
		case []byte:
			return x, nil
		case string:
			return []byte(x), nil
		}
	}
	if t.CheckValue(v) {
		return v, nil
	}
	return nil, fmt.Errorf("value %v (%T) not assignable to %s", v, v, t)
}

// ID returns the record's unique id.
func (r *Record) ID() int64 { return r.id }

// Schema returns the record's schema.
func (r *Record) Schema() *schema.Schema { return r.schema }

// Source returns the dataset/file name the record originated from.
func (r *Record) Source() string { return r.source }

// SetSource records the record's origin; used by data sources at scan time.
func (r *Record) SetSource(src string) { r.source = src }

// Parents returns the ids of the records this one was derived from.
func (r *Record) Parents() []int64 {
	out := make([]int64, len(r.parents))
	copy(out, r.parents)
	return out
}

// Get returns the value of the named field.
func (r *Record) Get(name string) (any, bool) {
	v, ok := r.values[name]
	return v, ok
}

// GetString returns the string form of the named field ("" when absent).
func (r *Record) GetString(name string) string {
	v, ok := r.values[name]
	if !ok || v == nil {
		return ""
	}
	switch x := v.(type) {
	case string:
		return x
	case []byte:
		return string(x)
	case []string:
		return strings.Join(x, ", ")
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// GetInt returns the named field as int64 (0 when absent or non-numeric).
func (r *Record) GetInt(name string) int64 {
	switch x := r.values[name].(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	default:
		return 0
	}
}

// GetFloat returns the named field as float64 (0 when absent/non-numeric).
func (r *Record) GetFloat(name string) float64 {
	switch x := r.values[name].(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	default:
		return 0
	}
}

// GetBool returns the named field as bool (false when absent).
func (r *Record) GetBool(name string) bool {
	b, _ := r.values[name].(bool)
	return b
}

// Set assigns a field value, coercing to the schema's declared type.
func (r *Record) Set(name string, v any) error {
	f, ok := r.schema.Field(name)
	if !ok {
		return fmt.Errorf("record: schema %s has no field %q", r.schema.Name(), name)
	}
	cv, err := coerce(f.Type, v)
	if err != nil {
		return fmt.Errorf("record: field %q: %w", name, err)
	}
	r.values[name] = cv
	return nil
}

// Text concatenates all string-ish field values; this is the "document
// text" the simulated LLM and embedding models see for a record.
func (r *Record) Text() string {
	var b strings.Builder
	for _, f := range r.schema.Fields() {
		s := r.GetString(f.Name)
		if s == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		b.WriteString(s)
	}
	return b.String()
}

// Derive creates a record of schema s derived from r: values are the given
// map, lineage points at r, and source/ground-truth annotations carry over.
func (r *Record) Derive(s *schema.Schema, values map[string]any) (*Record, error) {
	// Carry over any field of s that r already has and values does not set.
	merged := make(map[string]any, s.Len())
	for _, f := range s.Fields() {
		if v, ok := r.values[f.Name]; ok {
			merged[f.Name] = v
		}
	}
	for k, v := range values {
		merged[k] = v
	}
	child, err := New(s, merged)
	if err != nil {
		return nil, err
	}
	child.parents = []int64{r.id}
	child.source = r.source
	child.truth = r.truth
	return child, nil
}

// Project returns a new record restricted to the projected schema.
func (r *Record) Project(names ...string) (*Record, error) {
	ps, err := r.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	vals := make(map[string]any, len(names))
	for _, n := range names {
		vals[n] = r.values[n]
	}
	return r.Derive(ps, vals)
}

// Clone returns a deep-enough copy of the record with a fresh id and
// lineage pointing at the original.
func (r *Record) Clone() *Record {
	vals := make(map[string]any, len(r.values))
	for k, v := range r.values {
		vals[k] = v
	}
	c := &Record{
		id:      nextID.Add(1),
		schema:  r.schema,
		values:  vals,
		parents: []int64{r.id},
		source:  r.source,
		truth:   r.truth,
	}
	return c
}

// SetTruth attaches a hidden ground-truth annotation. Only the synthetic
// corpus generators call this.
func (r *Record) SetTruth(key string, v any) {
	if r.truth == nil {
		r.truth = map[string]any{}
	}
	r.truth[key] = v
}

// Truth reads a hidden ground-truth annotation. Only the simulated LLM
// oracle and the metrics package call this.
func (r *Record) Truth(key string) (any, bool) {
	v, ok := r.truth[key]
	return v, ok
}

// TruthKeys returns the sorted ground-truth keys (for tests).
func (r *Record) TruthKeys() []string {
	out := make([]string, 0, len(r.truth))
	for k := range r.truth {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the record compactly for logs and chat output.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d{", r.schema.Name(), r.id)
	for i, f := range r.schema.Fields() {
		if i > 0 {
			b.WriteString(", ")
		}
		v := r.GetString(f.Name)
		if len(v) > 40 {
			v = v[:40] + "…"
		}
		fmt.Fprintf(&b, "%s=%q", f.Name, v)
	}
	b.WriteString("}")
	return b.String()
}

// Values returns a copy of the record's field values keyed by field name.
func (r *Record) Values() map[string]any {
	out := make(map[string]any, len(r.values))
	for k, v := range r.values {
		out[k] = v
	}
	return out
}
