package record

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

var paperSchema = schema.MustNew("PDFFile", "A PDF file.",
	schema.Field{Name: "filename", Type: schema.String},
	schema.Field{Name: "contents", Type: schema.String},
)

var clinicalSchema = schema.MustNew("ClinicalData", "Extracted dataset info.",
	schema.Field{Name: "filename", Type: schema.String},
	schema.Field{Name: "name", Type: schema.String},
	schema.Field{Name: "url", Type: schema.String},
)

func TestNewDefaultsMissingFields(t *testing.T) {
	r, err := New(paperSchema, map[string]any{"filename": "p1.pdf"})
	if err != nil {
		t.Fatal(err)
	}
	if r.GetString("contents") != "" {
		t.Errorf("contents default = %q", r.GetString("contents"))
	}
	if r.GetString("filename") != "p1.pdf" {
		t.Errorf("filename = %q", r.GetString("filename"))
	}
}

func TestNewRejectsUnknownField(t *testing.T) {
	if _, err := New(paperSchema, map[string]any{"nope": 1}); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestNewNilSchema(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestIDsUnique(t *testing.T) {
	a := MustNew(paperSchema, nil)
	b := MustNew(paperSchema, nil)
	if a.ID() == b.ID() {
		t.Fatalf("duplicate ids %d", a.ID())
	}
}

func TestCoercions(t *testing.T) {
	s := schema.MustNew("T", "",
		schema.Field{Name: "i", Type: schema.Int},
		schema.Field{Name: "f", Type: schema.Float},
		schema.Field{Name: "b", Type: schema.Bool},
		schema.Field{Name: "s", Type: schema.String},
		schema.Field{Name: "l", Type: schema.StringList},
		schema.Field{Name: "y", Type: schema.Bytes},
	)
	r, err := New(s, map[string]any{
		"i": "42", "f": "2.5", "b": "true", "s": 7,
		"l": []any{"a", "b"}, "y": "bytes",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.GetInt("i") != 42 || r.GetFloat("f") != 2.5 || !r.GetBool("b") {
		t.Errorf("numeric coercions wrong: %v %v %v", r.GetInt("i"), r.GetFloat("f"), r.GetBool("b"))
	}
	if r.GetString("s") != "7" {
		t.Errorf("string coercion = %q", r.GetString("s"))
	}
	v, _ := r.Get("l")
	if !reflect.DeepEqual(v, []string{"a", "b"}) {
		t.Errorf("list coercion = %v", v)
	}
	y, _ := r.Get("y")
	if !reflect.DeepEqual(y, []byte("bytes")) {
		t.Errorf("bytes coercion = %v", y)
	}
}

func TestCoercionErrors(t *testing.T) {
	s := schema.MustNew("T", "", schema.Field{Name: "i", Type: schema.Int})
	if _, err := New(s, map[string]any{"i": "not-a-number"}); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := New(s, map[string]any{"i": []string{"x"}}); err == nil {
		t.Error("slice as int accepted")
	}
}

func TestIntFloatCrossReads(t *testing.T) {
	s := schema.MustNew("T", "",
		schema.Field{Name: "i", Type: schema.Int},
		schema.Field{Name: "f", Type: schema.Float})
	r := MustNew(s, map[string]any{"i": 3, "f": 4.5})
	if r.GetFloat("i") != 3.0 {
		t.Errorf("GetFloat(int field) = %v", r.GetFloat("i"))
	}
	if r.GetInt("f") != 4 {
		t.Errorf("GetInt(float field) = %v", r.GetInt("f"))
	}
}

func TestSet(t *testing.T) {
	r := MustNew(paperSchema, nil)
	if err := r.Set("filename", "x.pdf"); err != nil {
		t.Fatal(err)
	}
	if r.GetString("filename") != "x.pdf" {
		t.Errorf("filename = %q", r.GetString("filename"))
	}
	if err := r.Set("bogus", 1); err == nil {
		t.Error("Set on unknown field accepted")
	}
}

func TestDeriveLineageAndCarryOver(t *testing.T) {
	p := MustNew(paperSchema, map[string]any{"filename": "p1.pdf", "contents": "text"})
	p.SetSource("sigmod-demo")
	p.SetTruth("relevant", true)
	c, err := p.Derive(clinicalSchema, map[string]any{"name": "TCGA-COAD", "url": "https://x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Parents(); len(got) != 1 || got[0] != p.ID() {
		t.Errorf("parents = %v, want [%d]", got, p.ID())
	}
	if c.Source() != "sigmod-demo" {
		t.Errorf("source = %q", c.Source())
	}
	// filename is shared between schemas and carries over.
	if c.GetString("filename") != "p1.pdf" {
		t.Errorf("carried filename = %q", c.GetString("filename"))
	}
	if v, ok := c.Truth("relevant"); !ok || v != true {
		t.Errorf("truth not carried: %v %v", v, ok)
	}
}

func TestProjectRecord(t *testing.T) {
	r := MustNew(clinicalSchema, map[string]any{"name": "D", "url": "u", "filename": "f"})
	p, err := r.Project("url")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 1 || p.GetString("url") != "u" {
		t.Fatalf("projection wrong: %v", p)
	}
	if _, err := r.Project("missing"); err == nil {
		t.Error("projecting missing field accepted")
	}
}

func TestClone(t *testing.T) {
	r := MustNew(paperSchema, map[string]any{"filename": "a"})
	r.SetSource("src")
	c := r.Clone()
	if c.ID() == r.ID() {
		t.Error("clone shares id")
	}
	if got := c.Parents(); len(got) != 1 || got[0] != r.ID() {
		t.Errorf("clone parents = %v", got)
	}
	_ = c.Set("filename", "b")
	if r.GetString("filename") != "a" {
		t.Error("clone mutation leaked into original")
	}
}

func TestText(t *testing.T) {
	r := MustNew(paperSchema, map[string]any{"filename": "p.pdf", "contents": "colorectal cancer study"})
	txt := r.Text()
	if !strings.Contains(txt, "p.pdf") || !strings.Contains(txt, "colorectal") {
		t.Fatalf("Text = %q", txt)
	}
}

func TestStringTruncates(t *testing.T) {
	long := strings.Repeat("x", 100)
	r := MustNew(paperSchema, map[string]any{"contents": long})
	s := r.String()
	if len(s) > 200 {
		t.Errorf("String too long: %d bytes", len(s))
	}
	if !strings.Contains(s, "PDFFile#") {
		t.Errorf("String = %q", s)
	}
}

func TestTruthKeysSorted(t *testing.T) {
	r := MustNew(paperSchema, nil)
	r.SetTruth("b", 1)
	r.SetTruth("a", 2)
	if got := r.TruthKeys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("TruthKeys = %v", got)
	}
}

func TestValuesIsCopy(t *testing.T) {
	r := MustNew(paperSchema, map[string]any{"filename": "a"})
	v := r.Values()
	v["filename"] = "mutated"
	if r.GetString("filename") != "a" {
		t.Error("Values() exposed internal map")
	}
}

func TestStringFieldCoercionProperty(t *testing.T) {
	s := schema.MustNew("T", "", schema.Field{Name: "v", Type: schema.String})
	f := func(x string) bool {
		r, err := New(s, map[string]any{"v": x})
		return err == nil && r.GetString("v") == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	s := schema.MustNew("T", "", schema.Field{Name: "v", Type: schema.Int})
	f := func(x int64) bool {
		r, err := New(s, map[string]any{"v": x})
		return err == nil && r.GetInt("v") == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
