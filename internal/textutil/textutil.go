// Package textutil provides the lightweight natural-language substrate used
// across the repository: tokenization, stopword removal, a small suffix
// stemmer, tf-idf vectorization, cosine similarity, and keyword extraction.
//
// Two consumers depend on it: the Archytas planner (internal/agent), which
// scores tool docstrings against user utterances, and the simulated LLM
// semantic fallback (internal/llm), which evaluates natural-language
// predicates against record text when no corpus ground truth is available.
package textutil

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// stopwords is a compact English stopword list. It intentionally keeps
// domain-ish words ("data", "model") because those carry signal for tool
// routing.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"if": true, "then": true, "else": true, "of": true, "to": true, "in": true,
	"on": true, "at": true, "by": true, "for": true, "with": true, "about": true,
	"is": true, "are": true, "was": true, "were": true, "be": true, "been": true,
	"being": true, "am": true, "do": true, "does": true, "did": true, "can": true,
	"could": true, "should": true, "would": true, "will": true, "shall": true,
	"may": true, "might": true, "must": true, "this": true, "that": true,
	"these": true, "those": true, "it": true, "its": true, "i": true, "we": true,
	"you": true, "they": true, "he": true, "she": true, "them": true, "us": true,
	"my": true, "our": true, "your": true, "their": true, "me": true,
	"as": true, "from": true, "into": true, "out": true, "up": true, "down": true,
	"not": true, "no": true, "so": true, "than": true, "too": true, "very": true,
	"just": true, "there": true, "here": true, "when": true, "where": true,
	"which": true, "who": true, "whom": true, "what": true, "how": true,
	"all": true, "any": true, "each": true, "some": true, "such": true,
	"only": true, "own": true, "same": true, "both": true, "more": true,
	"most": true, "other": true, "please": true, "want": true, "like": true,
	"would_like": true, "im": true, "id": true, "lets": true, "let": true,
}

// IsStopword reports whether the lowercase token w is a stopword.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// Tokenize splits text into lowercase word tokens. Runs of letters and
// digits form tokens; everything else is a separator. Apostrophes inside
// words are dropped ("don't" -> "dont") so contractions stay single tokens.
func Tokenize(text string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' || r == '’':
			// drop apostrophes inside words
		default:
			flush()
		}
	}
	flush()
	return toks
}

// Stem applies a tiny suffix-stripping stemmer (a pragmatic subset of
// Porter's rules). It is deliberately conservative: it only strips when the
// remaining stem is at least three characters, so short domain terms survive.
func Stem(w string) string {
	if len(w) <= 3 {
		return w
	}
	suffixes := []struct {
		suf, rep string
	}{
		{"ization", "ize"}, {"ational", "ate"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"iveness", "ive"}, {"tional", "tion"},
		{"biliti", "ble"}, {"lessli", "less"},
		{"ation", "ate"}, {"izer", "ize"}, {"ator", "ate"},
		{"alism", "al"}, {"aliti", "al"}, {"iviti", "ive"},
		{"ements", ""}, {"ement", ""},
		{"ingly", ""}, {"edly", ""},
		{"ies", "y"}, {"ied", "y"},
		{"sses", "ss"}, {"ness", ""}, {"ion", ""},
		{"ing", ""}, {"ed", ""}, {"ly", ""}, {"es", ""},
		{"s", ""},
	}
	for _, s := range suffixes {
		if strings.HasSuffix(w, s.suf) {
			stem := w[:len(w)-len(s.suf)] + s.rep
			if len(stem) >= 3 {
				// Undouble trailing consonants introduced by -ing/-ed
				// stripping ("filtering"->"filter", "stopped"->"stop").
				if (s.suf == "ing" || s.suf == "ed") && len(stem) >= 4 {
					last := stem[len(stem)-1]
					prev := stem[len(stem)-2]
					if last == prev && !isVowel(rune(last)) && last != 'l' && last != 's' && last != 'z' {
						stem = stem[:len(stem)-1]
					}
				}
				return stem
			}
		}
	}
	return w
}

func isVowel(r rune) bool {
	switch r {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Terms tokenizes, removes stopwords, and stems. This is the canonical text
// normalization used for all similarity computations in the repository.
func Terms(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if stopwords[t] {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// TermFreq returns the term-frequency map of the normalized terms of text.
func TermFreq(text string) map[string]float64 {
	tf := map[string]float64{}
	for _, t := range Terms(text) {
		tf[t]++
	}
	return tf
}

// Cosine returns the cosine similarity between two term-frequency vectors.
// It returns 0 when either vector is empty.
func Cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate over the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for k, av := range a {
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
	}
	if dot == 0 {
		return 0
	}
	return dot / (norm(a) * norm(b))
}

func norm(v map[string]float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Overlap returns |terms(a) ∩ terms(b)| / |terms(a)|: the fraction of a's
// normalized terms that also appear in b. Useful as an asymmetric "is the
// query covered by the document" score. Returns 0 when a has no terms.
func Overlap(a, b string) float64 {
	ta := Terms(a)
	if len(ta) == 0 {
		return 0
	}
	tb := map[string]bool{}
	for _, t := range Terms(b) {
		tb[t] = true
	}
	hit := 0
	seen := map[string]bool{}
	uniq := 0
	for _, t := range ta {
		if seen[t] {
			continue
		}
		seen[t] = true
		uniq++
		if tb[t] {
			hit++
		}
	}
	return float64(hit) / float64(uniq)
}

// Corpus is a tf-idf model over a set of documents. Build one with
// NewCorpus, then Vectorize queries/documents against it and compare with
// Cosine. Zero-value Corpus is not usable.
type Corpus struct {
	docFreq map[string]int
	numDocs int
}

// NewCorpus builds a tf-idf model from the given documents.
func NewCorpus(docs []string) *Corpus {
	c := &Corpus{docFreq: map[string]int{}}
	for _, d := range docs {
		c.Add(d)
	}
	return c
}

// Add incorporates one document into the document-frequency statistics.
func (c *Corpus) Add(doc string) {
	c.numDocs++
	seen := map[string]bool{}
	for _, t := range Terms(doc) {
		if !seen[t] {
			seen[t] = true
			c.docFreq[t]++
		}
	}
}

// NumDocs returns the number of documents added to the corpus.
func (c *Corpus) NumDocs() int { return c.numDocs }

// IDF returns the smoothed inverse document frequency of term t.
func (c *Corpus) IDF(t string) float64 {
	df := c.docFreq[t]
	return math.Log(float64(c.numDocs+1)/float64(df+1)) + 1
}

// Vectorize returns the tf-idf vector of text under this corpus.
func (c *Corpus) Vectorize(text string) map[string]float64 {
	v := map[string]float64{}
	for t, f := range TermFreq(text) {
		v[t] = f * c.IDF(t)
	}
	return v
}

// Similarity is a convenience for Cosine(Vectorize(a), Vectorize(b)).
func (c *Corpus) Similarity(a, b string) float64 {
	return Cosine(c.Vectorize(a), c.Vectorize(b))
}

// Keywords returns the top-k terms of text ranked by tf-idf weight under the
// corpus. Ties break lexicographically so output is deterministic.
func (c *Corpus) Keywords(text string, k int) []string {
	v := c.Vectorize(text)
	type kw struct {
		term string
		w    float64
	}
	all := make([]kw, 0, len(v))
	for t, w := range v {
		all = append(all, kw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].term < all[j].term
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].term
	}
	return out
}

// Sentences splits text into sentences on ., !, ? followed by whitespace.
// It keeps abbreviating periods inside tokens like "e.g." imperfectly; this
// is adequate for the synthetic corpora which are generated with regular
// punctuation.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	rs := []rune(text)
	for i := 0; i < len(rs); i++ {
		b.WriteRune(rs[i])
		if rs[i] == '.' || rs[i] == '!' || rs[i] == '?' {
			if i+1 >= len(rs) || unicode.IsSpace(rs[i+1]) {
				s := strings.TrimSpace(b.String())
				if s != "" {
					out = append(out, s)
				}
				b.Reset()
			}
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// TruncateWords returns at most n whitespace-separated words of s, appending
// an ellipsis when truncation occurred.
func TruncateWords(s string, n int) string {
	fields := strings.Fields(s)
	if len(fields) <= n {
		return s
	}
	return strings.Join(fields[:n], " ") + "…"
}
