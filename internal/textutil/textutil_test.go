package textutil

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Filter the Papers, about colorectal-cancer!")
	want := []string{"filter", "the", "papers", "about", "colorectal", "cancer"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	got := Tokenize("don't can't we're")
	want := []string{"dont", "cant", "were"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndPunct(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("...!!!,,,"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Tumör Zürich café")
	want := []string{"tumör", "zürich", "café"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"filtering":   "filter",
		"filtered":    "filter",
		"filters":     "filter",
		"datasets":    "dataset",
		"extraction":  "extract",
		"studies":     "study",
		"cancers":     "cancer",
		"running":     "run",
		"stopped":     "stop",
		"cat":         "cat",
		"aggregation": "aggregate",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemNeverTooShort(t *testing.T) {
	f := func(s string) bool {
		w := strings.ToLower(s)
		st := Stem(w)
		return len(w) <= 3 || len(st) >= 3 || st == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermsDropsStopwords(t *testing.T) {
	got := Terms("the papers are about colorectal cancer")
	for _, g := range got {
		if IsStopword(g) {
			t.Errorf("stopword %q survived Terms", g)
		}
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "cancer") || !strings.Contains(joined, "colorectal") {
		t.Errorf("content words missing from %v", got)
	}
}

func TestCosineIdentical(t *testing.T) {
	v := TermFreq("colorectal cancer gene mutation study")
	if got := Cosine(v, v); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self-cosine = %v, want 1", got)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	a := TermFreq("colorectal cancer")
	b := TermFreq("mortgage refinancing")
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", got)
	}
}

func TestCosineEmpty(t *testing.T) {
	if got := Cosine(nil, TermFreq("x y z")); got != 0 {
		t.Fatalf("empty cosine = %v", got)
	}
}

func TestCosineSymmetricAndBounded(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := TermFreq(a), TermFreq(b)
		x, y := Cosine(va, vb), Cosine(vb, va)
		return math.Abs(x-y) < 1e-9 && x >= 0 && x <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap("colorectal cancer", "a study of colorectal cancer in adults"); got != 1 {
		t.Errorf("full overlap = %v, want 1", got)
	}
	if got := Overlap("colorectal cancer", "real estate listings"); got != 0 {
		t.Errorf("no overlap = %v, want 0", got)
	}
	half := Overlap("colorectal mortgage", "colorectal things")
	if math.Abs(half-0.5) > 1e-9 {
		t.Errorf("half overlap = %v, want 0.5", half)
	}
}

func TestOverlapEmptyQuery(t *testing.T) {
	if got := Overlap("", "anything"); got != 0 {
		t.Errorf("Overlap(empty) = %v", got)
	}
	if got := Overlap("the a of", "anything"); got != 0 {
		t.Errorf("Overlap(stopwords only) = %v", got)
	}
}

func TestCorpusIDFOrdering(t *testing.T) {
	c := NewCorpus([]string{
		"colorectal cancer study",
		"colorectal cancer dataset",
		"breast cancer dataset",
		"mortgage refinancing guide",
	})
	// "cancer" appears in 3 docs, "mortgage" in 1: rarer term has higher IDF.
	if c.IDF("cancer") >= c.IDF("mortgag") && c.IDF("cancer") >= c.IDF("mortgage") {
		t.Errorf("IDF(cancer)=%v should be < IDF(mortgage)=%v", c.IDF("cancer"), c.IDF(Stem("mortgage")))
	}
}

func TestCorpusSimilarityRanks(t *testing.T) {
	docs := []string{
		"This paper studies colorectal cancer gene mutation in tumor cells.",
		"We present a real estate pricing model for urban listings.",
		"A legal analysis of indemnification clauses in commercial contracts.",
	}
	c := NewCorpus(docs)
	q := "papers about colorectal cancer"
	best, bestScore := -1, -1.0
	for i, d := range docs {
		if s := c.Similarity(q, d); s > bestScore {
			best, bestScore = i, s
		}
	}
	if best != 0 {
		t.Fatalf("best doc = %d (score %v), want 0", best, bestScore)
	}
}

func TestKeywordsDeterministic(t *testing.T) {
	c := NewCorpus([]string{"alpha beta gamma", "alpha delta", "alpha epsilon"})
	a := c.Keywords("alpha beta beta gamma", 3)
	b := c.Keywords("alpha beta beta gamma", 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Keywords not deterministic: %v vs %v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("Keywords len = %d, want 3", len(a))
	}
	if a[0] != "beta" {
		t.Errorf("top keyword = %q, want beta (tf=2, rare)", a[0])
	}
}

func TestKeywordsKLargerThanVocab(t *testing.T) {
	c := NewCorpus([]string{"one two"})
	got := c.Keywords("one two", 10)
	if len(got) != 2 {
		t.Fatalf("Keywords len = %d, want 2", len(got))
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("First sentence. Second one! Third? trailing")
	want := []string{"First sentence.", "Second one!", "Third?", "trailing"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sentences = %v, want %v", got, want)
	}
}

func TestSentencesNoSplitInsideToken(t *testing.T) {
	got := Sentences("Visit https://data.example.org/x.csv for data. Done.")
	if len(got) != 2 {
		t.Fatalf("Sentences = %v, want 2 sentences", got)
	}
}

func TestTruncateWords(t *testing.T) {
	if got := TruncateWords("a b c d", 2); got != "a b…" {
		t.Errorf("TruncateWords = %q", got)
	}
	if got := TruncateWords("a b", 5); got != "a b" {
		t.Errorf("no-op truncate = %q", got)
	}
}

func TestTermFreqCounts(t *testing.T) {
	tf := TermFreq("cancer cancer dataset")
	if tf["cancer"] != 2 {
		t.Errorf("tf[cancer] = %v, want 2", tf["cancer"])
	}
	if tf["dataset"] != 1 {
		t.Errorf("tf[dataset] = %v, want 1", tf["dataset"])
	}
}
