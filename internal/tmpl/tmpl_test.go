package tmpl

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func render(t *testing.T, src string, env Env) string {
	t.Helper()
	out, err := Render(src, env)
	if err != nil {
		t.Fatalf("Render(%q) error: %v", src, err)
	}
	return out
}

func TestRenderPlainText(t *testing.T) {
	if got := render(t, "no variables here", nil); got != "no variables here" {
		t.Fatalf("got %q", got)
	}
}

func TestRenderSimpleVariable(t *testing.T) {
	got := render(t, `schema = {{ schema_name }}`, Env{"schema_name": "ClinicalData"})
	if got != "schema = ClinicalData" {
		t.Fatalf("got %q", got)
	}
}

func TestRenderFigure2Style(t *testing.T) {
	// Mirrors the paper's Figure 2 tool template.
	src := `class_name = "{{ schema_name }}"
fields = {{ field_names|join:", " }}`
	env := Env{
		"schema_name": "Author",
		"field_names": []string{"name", "email", "affiliation"},
	}
	got := render(t, src, env)
	want := "class_name = \"Author\"\nfields = name, email, affiliation"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestRenderDottedPath(t *testing.T) {
	env := Env{"record": map[string]any{"url": "https://data.example.org/d1"}}
	if got := render(t, "{{record.url}}", env); got != "https://data.example.org/d1" {
		t.Fatalf("got %q", got)
	}
}

func TestRenderIndexedPath(t *testing.T) {
	env := Env{"fields": []string{"name", "description", "url"}}
	if got := render(t, "{{fields.2}}", env); got != "url" {
		t.Fatalf("got %q", got)
	}
}

func TestRenderNestedEnv(t *testing.T) {
	env := Env{"a": Env{"b": Env{"c": 42}}}
	if got := render(t, "{{a.b.c}}", env); got != "42" {
		t.Fatalf("got %q", got)
	}
}

func TestUndefinedVariableErrors(t *testing.T) {
	_, err := Render("{{missing}}", Env{"present": 1})
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("err = %v, want undefined variable", err)
	}
	if !strings.Contains(err.Error(), "present") {
		t.Errorf("error should list bound names: %v", err)
	}
}

func TestMissingFieldErrors(t *testing.T) {
	_, err := Render("{{r.nope}}", Env{"r": map[string]any{"yes": 1}})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestBadIndexErrors(t *testing.T) {
	for _, src := range []string{"{{xs.9}}", "{{xs.-1}}", "{{xs.foo}}"} {
		if _, err := Render(src, Env{"xs": []string{"a"}}); err == nil {
			t.Errorf("Render(%q): want error", src)
		}
	}
}

func TestUnbalancedBraces(t *testing.T) {
	for _, src := range []string{"{{a", "a}}", "{{}}"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestFilters(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want string
	}{
		{"{{x|upper}}", Env{"x": "abc"}, "ABC"},
		{"{{x|lower}}", Env{"x": "ABC"}, "abc"},
		{"{{x|title}}", Env{"x": "clinical data"}, "Clinical Data"},
		{"{{x|quote}}", Env{"x": `a"b`}, `"a\"b"`},
		{"{{x|trim}}", Env{"x": "  hi  "}, "hi"},
		{"{{x|join}}", Env{"x": []string{"a", "b"}}, "a, b"},
		{`{{x|join:" / "}}`, Env{"x": []any{"a", 1}}, "a / 1"},
		{"{{x|length}}", Env{"x": []string{"a", "b", "c"}}, "3"},
		{"{{x|length}}", Env{"x": "abcd"}, "4"},
		{`{{x|default:"fallback"}}`, Env{"x": ""}, "fallback"},
		{`{{x|default:"fallback"}}`, Env{"x": "real"}, "real"},
		{"{{x|trim|upper}}", Env{"x": " chained "}, "CHAINED"},
	}
	for _, c := range cases {
		if got := render(t, c.src, c.env); got != c.want {
			t.Errorf("Render(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestUnknownFilterErrors(t *testing.T) {
	if _, err := Render("{{x|frobnicate}}", Env{"x": 1}); err == nil {
		t.Fatal("want error for unknown filter")
	}
}

func TestVars(t *testing.T) {
	tpl := MustParse("{{schema_name}} {{ field_names|join }} {{record.url}} {{schema_name}}")
	got := tpl.Vars()
	want := []string{"field_names", "record", "schema_name"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestVarsPlain(t *testing.T) {
	if got := MustParse("nothing").Vars(); len(got) != 0 {
		t.Fatalf("Vars = %v, want empty", got)
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"a": 1}
	c := e.Clone()
	c["a"] = 2
	c["b"] = 3
	if e["a"] != 1 {
		t.Error("clone mutated original value")
	}
	if _, ok := e["b"]; ok {
		t.Error("clone added key to original")
	}
}

func TestStringify(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{nil, ""},
		{"s", "s"},
		{true, "true"},
		{7, "7"},
		{int64(8), "8"},
		{2.5, "2.5"},
		{[]string{"a", "b"}, "a, b"},
		{[]any{1, "x"}, "1, x"},
	}
	for _, c := range cases {
		if got := Stringify(c.in); got != c.want {
			t.Errorf("Stringify(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderLiteralRoundTrip(t *testing.T) {
	// Any text without braces renders to itself.
	f := func(s string) bool {
		if strings.Contains(s, "{{") || strings.Contains(s, "}}") {
			return true
		}
		got, err := Render(s, nil)
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRenderIdempotentTemplate(t *testing.T) {
	tpl := MustParse("{{a}}-{{b}}")
	e := Env{"a": "x", "b": "y"}
	r1, err1 := tpl.Render(e)
	r2, err2 := tpl.Render(e)
	if err1 != nil || err2 != nil || r1 != r2 {
		t.Fatalf("renders differ: %q/%v vs %q/%v", r1, err1, r2, err2)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad template")
		}
	}()
	MustParse("{{oops")
}
