// Package tmpl implements the Jinja-style {{variable}} template syntax used
// by Archytas tools (paper Figure 2): "if a variable is expressed in round
// brackets as {{variable}}, the Archytas agent will fill the variable with a
// variable available at run-time in the Python execution environment".
//
// The engine supports dotted lookups into nested maps ({{record.url}}),
// indexed lookups into slices ({{fields.0}}), and a small set of pipe
// filters ({{name|upper}}, {{desc|quote}}, {{items|join:", "}}). Rendering
// is strict by default: referencing an unknown variable is an error, which
// surfaces agent bugs instead of silently emitting empty strings.
package tmpl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Env is the runtime variable environment a template is rendered against.
type Env map[string]any

// Clone returns a shallow copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Names returns the sorted variable names bound in the environment.
func (e Env) Names() []string {
	out := make([]string, 0, len(e))
	for k := range e {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Template is a parsed template. Parse once, render many times.
type Template struct {
	src   string
	parts []part
}

type part struct {
	lit  string // literal text when expr == ""
	expr string // raw expression between {{ }}
}

// Parse compiles src into a Template. It returns an error on unbalanced
// braces.
func Parse(src string) (*Template, error) {
	t := &Template{src: src}
	rest := src
	for {
		open := strings.Index(rest, "{{")
		if open < 0 {
			if strings.Contains(rest, "}}") {
				return nil, fmt.Errorf("tmpl: unmatched }} in %q", snippet(rest))
			}
			if rest != "" {
				t.parts = append(t.parts, part{lit: rest})
			}
			return t, nil
		}
		if open > 0 {
			t.parts = append(t.parts, part{lit: rest[:open]})
		}
		rest = rest[open+2:]
		close := strings.Index(rest, "}}")
		if close < 0 {
			return nil, fmt.Errorf("tmpl: unmatched {{ in %q", snippet(rest))
		}
		expr := strings.TrimSpace(rest[:close])
		if expr == "" {
			return nil, fmt.Errorf("tmpl: empty expression {{}}")
		}
		t.parts = append(t.parts, part{expr: expr})
		rest = rest[close+2:]
	}
}

func snippet(s string) string {
	if len(s) > 32 {
		return s[:32] + "..."
	}
	return s
}

// MustParse is Parse that panics on error; for templates defined as package
// constants.
func MustParse(src string) *Template {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

// Vars returns the sorted set of root variable names referenced by the
// template. The agent uses this to check that every required runtime
// variable is bound before invoking a tool.
func (t *Template) Vars() []string {
	seen := map[string]bool{}
	for _, p := range t.parts {
		if p.expr == "" {
			continue
		}
		path := strings.SplitN(p.expr, "|", 2)[0]
		root := strings.TrimSpace(strings.SplitN(path, ".", 2)[0])
		seen[root] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Source returns the original template source.
func (t *Template) Source() string { return t.src }

// Render evaluates the template against env.
func (t *Template) Render(env Env) (string, error) {
	var b strings.Builder
	for _, p := range t.parts {
		if p.expr == "" {
			b.WriteString(p.lit)
			continue
		}
		v, err := eval(p.expr, env)
		if err != nil {
			return "", err
		}
		b.WriteString(v)
	}
	return b.String(), nil
}

// Render is a one-shot Parse+Render convenience.
func Render(src string, env Env) (string, error) {
	t, err := Parse(src)
	if err != nil {
		return "", err
	}
	return t.Render(env)
}

func eval(expr string, env Env) (string, error) {
	segs := strings.Split(expr, "|")
	val, err := lookup(strings.TrimSpace(segs[0]), env)
	if err != nil {
		return "", err
	}
	for _, f := range segs[1:] {
		val, err = applyFilter(strings.TrimSpace(f), val)
		if err != nil {
			return "", err
		}
	}
	return Stringify(val), nil
}

func lookup(path string, env Env) (any, error) {
	fields := strings.Split(path, ".")
	var cur any
	root := fields[0]
	cur, ok := env[root]
	if !ok {
		return nil, fmt.Errorf("tmpl: undefined variable %q (bound: %s)", root, strings.Join(env.Names(), ", "))
	}
	for _, f := range fields[1:] {
		switch c := cur.(type) {
		case Env:
			v, ok := c[f]
			if !ok {
				return nil, fmt.Errorf("tmpl: %q has no field %q", path, f)
			}
			cur = v
		case map[string]any:
			v, ok := c[f]
			if !ok {
				return nil, fmt.Errorf("tmpl: %q has no field %q", path, f)
			}
			cur = v
		case map[string]string:
			v, ok := c[f]
			if !ok {
				return nil, fmt.Errorf("tmpl: %q has no field %q", path, f)
			}
			cur = v
		case []any:
			i, err := strconv.Atoi(f)
			if err != nil || i < 0 || i >= len(c) {
				return nil, fmt.Errorf("tmpl: bad index %q into %q (len %d)", f, path, len(c))
			}
			cur = c[i]
		case []string:
			i, err := strconv.Atoi(f)
			if err != nil || i < 0 || i >= len(c) {
				return nil, fmt.Errorf("tmpl: bad index %q into %q (len %d)", f, path, len(c))
			}
			cur = c[i]
		default:
			return nil, fmt.Errorf("tmpl: cannot descend into %T at %q.%s", cur, path, f)
		}
	}
	return cur, nil
}

func applyFilter(f string, v any) (any, error) {
	name, arg := f, ""
	if i := strings.Index(f, ":"); i >= 0 {
		name, arg = f[:i], strings.TrimSpace(f[i+1:])
		// Strip one matching pair of surrounding quotes, preserving any
		// whitespace inside them ({{x|join:" / "}}).
		if len(arg) >= 2 && (arg[0] == '"' || arg[0] == '\'') && arg[len(arg)-1] == arg[0] {
			arg = arg[1 : len(arg)-1]
		}
	}
	switch name {
	case "upper":
		return strings.ToUpper(Stringify(v)), nil
	case "lower":
		return strings.ToLower(Stringify(v)), nil
	case "title":
		return titleCase(Stringify(v)), nil
	case "quote":
		return strconv.Quote(Stringify(v)), nil
	case "trim":
		return strings.TrimSpace(Stringify(v)), nil
	case "join":
		items, err := asStrings(v)
		if err != nil {
			return nil, err
		}
		if arg == "" {
			arg = ", "
		}
		return strings.Join(items, arg), nil
	case "length":
		switch c := v.(type) {
		case string:
			return len(c), nil
		case []any:
			return len(c), nil
		case []string:
			return len(c), nil
		default:
			return nil, fmt.Errorf("tmpl: length of %T unsupported", v)
		}
	case "default":
		if Stringify(v) == "" {
			return arg, nil
		}
		return v, nil
	default:
		return nil, fmt.Errorf("tmpl: unknown filter %q", name)
	}
}

func titleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		fields[i] = strings.ToUpper(f[:1]) + f[1:]
	}
	return strings.Join(fields, " ")
}

func asStrings(v any) ([]string, error) {
	switch c := v.(type) {
	case []string:
		return c, nil
	case []any:
		out := make([]string, len(c))
		for i, x := range c {
			out[i] = Stringify(x)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("tmpl: join of %T unsupported", v)
	}
}

// Stringify converts a template value to its rendered string form.
func Stringify(v any) string {
	switch c := v.(type) {
	case nil:
		return ""
	case string:
		return c
	case bool:
		return strconv.FormatBool(c)
	case int:
		return strconv.Itoa(c)
	case int64:
		return strconv.FormatInt(c, 10)
	case float64:
		return strconv.FormatFloat(c, 'g', -1, 64)
	case []string:
		return strings.Join(c, ", ")
	case []any:
		parts := make([]string, len(c))
		for i, x := range c {
			parts[i] = Stringify(x)
		}
		return strings.Join(parts, ", ")
	case fmt.Stringer:
		return c.String()
	default:
		return fmt.Sprintf("%v", c)
	}
}
