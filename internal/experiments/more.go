package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/palimpchat"
	"repro/pz"
)

// E2Result summarizes the chat-driven pipeline construction (Figures 3-4).
type E2Result struct {
	// Utterances is the scripted conversation.
	Utterances []string
	// Actions is the chained tool sequence the agent produced.
	Actions []string
	// OutputDatasets is the record count after "run the pipeline".
	OutputDatasets int
	// DecomposedSteps counts tool calls triggered by the single compound
	// request (Figure 4: "the agent ... may decide to decompose a user
	// question into several tasks").
	DecomposedSteps int
	// Transcript is the rendered notebook.
	Transcript string
}

// RunE2 drives the full §3 conversation through PalimpChat.
func RunE2(dir string) (*E2Result, error) {
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("sigmod-demo", dir, docs); err != nil {
		return nil, err
	}
	s, err := palimpchat.NewSession(palimpchat.Options{})
	if err != nil {
		return nil, err
	}
	compound := "I am interested in papers about colorectal cancer and for these extract the dataset name, description and url"
	utterances := []string{
		"load the papers from " + dir + " as sigmod-demo",
		compound,
		"optimize for maximum quality",
		"run the pipeline",
		"how much runtime was needed and how much did the LLM calls cost?",
	}
	before := 0
	var decomposed int
	for _, u := range utterances {
		if _, err := s.Chat(u); err != nil {
			return nil, fmt.Errorf("chat %q: %w", u, err)
		}
		if u == compound {
			decomposed = len(s.Steps()) - before
		}
		before = len(s.Steps())
	}
	var actions []string
	for _, st := range s.Steps() {
		actions = append(actions, st.Action)
	}
	out := 0
	if res := s.LastResult(); res != nil {
		out = len(res.Records)
	}
	return &E2Result{
		Utterances:      utterances,
		Actions:         actions,
		OutputDatasets:  out,
		DecomposedSteps: decomposed,
		Transcript:      s.Notebook().Render(),
	}, nil
}

// Table renders the E2 comparison.
func (r *E2Result) Table() string {
	var b strings.Builder
	b.WriteString("| metric | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| chat-built pipeline yields datasets | 6 | %d |\n", r.OutputDatasets)
	fmt.Fprintf(&b, "| compound request decomposed into tool calls | several (Fig. 4) | %d |\n", r.DecomposedSteps)
	fmt.Fprintf(&b, "| tool chain | load→filter→convert→policy→execute→stats | %s |\n",
		strings.Join(r.Actions, "→"))
	return b.String()
}

// E3Result checks the generated code against Figure 6's structure.
type E3Result struct {
	// Code is the generated pipeline program.
	Code string
	// Elements maps each required Figure 6 element to presence.
	Elements map[string]bool
	// Missing counts absent elements.
	Missing int
}

// Figure6Elements are the structural landmarks of the paper's Figure 6.
var Figure6Elements = []string{
	"#Set input dataset",
	"pz.Dataset(source=",
	"#Filter dataset",
	"dataset.filter(",
	"#Create new schema",
	"field_names = [",
	"field_descriptions = [",
	"pz.Field(desc=desc)",
	"type(class_name, (pz.Schema,), schema)",
	"#Perform conversion",
	"pz.Cardinality.ONE_TO_MANY",
	"#Execute workload",
	"policy = pz.MaxQuality()",
	"records, execution_stats = Execute(output, policy=policy)",
}

// RunE3 builds the demo pipeline via chat and validates the exported code.
func RunE3(dir string) (*E3Result, error) {
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := dataset.MaterializeCorpus("sigmod-demo", dir, docs); err != nil {
		return nil, err
	}
	s, err := palimpchat.NewSession(palimpchat.Options{})
	if err != nil {
		return nil, err
	}
	for _, u := range []string{
		"load the papers from " + dir + " as sigmod-demo",
		"filter for papers about colorectal cancer",
		"extract the dataset name, description and url",
	} {
		if _, err := s.Chat(u); err != nil {
			return nil, err
		}
	}
	code, err := s.GenerateCode()
	if err != nil {
		return nil, err
	}
	res := &E3Result{Code: code, Elements: map[string]bool{}}
	for _, el := range Figure6Elements {
		present := strings.Contains(code, el)
		res.Elements[el] = present
		if !present {
			res.Missing++
		}
	}
	return res, nil
}

// Table renders the E3 checklist.
func (r *E3Result) Table() string {
	var b strings.Builder
	b.WriteString("| Figure 6 element | present |\n|---|---|\n")
	for _, el := range Figure6Elements {
		mark := "yes"
		if !r.Elements[el] {
			mark = "MISSING"
		}
		fmt.Fprintf(&b, "| `%s` | %s |\n", el, mark)
	}
	return b.String()
}

// E4Result is one additional demo scenario's outcome.
type E4Result struct {
	Scenario    string
	Inputs      int
	Outputs     int
	CostUSD     float64
	Runtime     time.Duration
	QualityNote string
}

// RunE4Legal runs the legal-discovery scenario: filter contracts with
// indemnification clauses and extract parties and dates.
func RunE4Legal() (*E4Result, error) {
	ctx, err := pz.NewContext(pz.Config{Parallelism: 4})
	if err != nil {
		return nil, err
	}
	docs := corpus.GenerateLegal(corpus.DefaultLegal())
	src, err := ctx.RegisterDocs("legal", pz.TextFile, docs)
	if err != nil {
		return nil, err
	}
	inputs, _ := src.Records()
	parties, err := pz.DeriveSchema("ContractParties",
		"Parties and effective date of a contract.",
		[]string{"party_a", "party_b", "effective_date"},
		[]string{"The first party to the agreement", "The second party to the agreement", "The effective date of the agreement"})
	if err != nil {
		return nil, err
	}
	ds, _ := ctx.Dataset("legal")
	pipeline := ds.Filter("The contract contains an indemnification clause").
		Convert(parties, parties.Doc(), pz.OneToOne)
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		return nil, err
	}
	fq := metrics.FilterQuality(inputs, parentsOf(res.Records, inputs), "The contract contains an indemnification clause")
	acc, n := metrics.FieldAccuracy(res.Records, "party_a", "party_a")
	return &E4Result{
		Scenario: "legal discovery",
		Inputs:   len(inputs),
		Outputs:  len(res.Records),
		CostUSD:  res.CostUSD,
		Runtime:  res.Elapsed,
		QualityNote: fmt.Sprintf("filter %s; party_a accuracy %.2f over %d",
			fq.String(), acc, n),
	}, nil
}

// parentsOf maps output records back to the input records they derive
// from (via lineage), for filter-quality scoring after a convert.
func parentsOf(outputs, inputs []*pz.Record) []*pz.Record {
	byID := map[int64]*pz.Record{}
	for _, r := range inputs {
		byID[r.ID()] = r
	}
	seen := map[int64]bool{}
	var out []*pz.Record
	for _, r := range outputs {
		for _, pid := range r.Parents() {
			if p, ok := byID[pid]; ok && !seen[pid] {
				seen[pid] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// RunE4RealEstate runs the real-estate search scenario: retrieve modern
// listings, extract structure, and aggregate prices per neighborhood.
func RunE4RealEstate() (*E4Result, error) {
	ctx, err := pz.NewContext(pz.Config{Parallelism: 4})
	if err != nil {
		return nil, err
	}
	docs := corpus.GenerateRealEstate(corpus.DefaultRealEstate())
	src, err := ctx.RegisterDocs("listings", pz.TextFile, docs)
	if err != nil {
		return nil, err
	}
	inputs, _ := src.Records()
	listing, err := pz.DeriveSchema("Listing", "A real estate listing.",
		[]string{"neighborhood", "price:float", "bedrooms:int"},
		[]string{"The neighborhood of the listing", "The asking price in dollars", "The number of bedrooms"})
	if err != nil {
		return nil, err
	}
	ds, _ := ctx.Dataset("listings")
	pipeline := ds.Retrieve("modern renovated kitchen with designer finishes", 30).
		Filter("The listing has a modern, recently renovated interior").
		Convert(listing, listing.Doc(), pz.OneToOne).
		GroupBy([]string{"neighborhood"}, pz.Avg, "price").
		Sort("value", true)
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		return nil, err
	}
	return &E4Result{
		Scenario:    "real estate search",
		Inputs:      len(inputs),
		Outputs:     len(res.Records),
		CostUSD:     res.CostUSD,
		Runtime:     res.Elapsed,
		QualityNote: fmt.Sprintf("top neighborhoods by avg modern-listing price, %d groups", len(res.Records)),
	}, nil
}

// E4Table renders the demo-scenario results.
func E4Table(rows []*E4Result) string {
	var b strings.Builder
	b.WriteString("| scenario | inputs | outputs | cost | runtime | quality |\n|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | $%.3f | %.0fs | %s |\n",
			r.Scenario, r.Inputs, r.Outputs, r.CostUSD, r.Runtime.Seconds(), r.QualityNote)
	}
	return b.String()
}

// E6Row is one plan-enumeration measurement.
type E6Row struct {
	PipelineOps int
	SpaceSize   int
	Enumerated  int
	Pruned      int
	EnumTime    time.Duration
	PruneTime   time.Duration
}

// RunE6 measures the physical plan space versus pipeline length, with and
// without Pareto pruning (paper §2.1: "a search space of all possible
// physical plans").
func RunE6() ([]E6Row, error) {
	var rows []E6Row
	for nFilters := 1; nFilters <= 4; nFilters++ {
		ctx, ds, _, err := BiomedContext(pz.Config{})
		if err != nil {
			return nil, err
		}
		_ = ctx
		pipeline := ds
		for i := 0; i < nFilters; i++ {
			pipeline = pipeline.Filter(fmt.Sprintf("predicate %d about colorectal cancer", i))
		}
		clinical := ClinicalSchema()
		pipeline = pipeline.Convert(clinical, clinical.Doc(), pz.OneToMany)

		chain := pipeline.Chain()
		space := optimizer.PlanSpaceSize(chain)

		start := time.Now()
		_, all, err := optimizer.New(optimizer.Options{}).Optimize(chain, optimizer.MaxQuality{}, nil)
		if err != nil {
			return nil, err
		}
		enumTime := time.Since(start)

		start = time.Now()
		_, pruned, err := optimizer.New(optimizer.Options{Pruning: true}).Optimize(chain, optimizer.MaxQuality{}, nil)
		if err != nil {
			return nil, err
		}
		pruneTime := time.Since(start)

		rows = append(rows, E6Row{
			PipelineOps: len(chain),
			SpaceSize:   space,
			Enumerated:  len(all),
			Pruned:      len(pruned),
			EnumTime:    enumTime,
			PruneTime:   pruneTime,
		})
	}
	return rows, nil
}

// E6Table renders plan-space growth.
func E6Table(rows []E6Row) string {
	var b strings.Builder
	b.WriteString("| pipeline ops | plan space | enumerated | after pruning | enum time | prune time |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %s | %s |\n",
			r.PipelineOps, r.SpaceSize, r.Enumerated, r.Pruned,
			r.EnumTime.Round(time.Microsecond), r.PruneTime.Round(time.Microsecond))
	}
	return b.String()
}

// E7Row is one sentinel-calibration measurement.
type E7Row struct {
	SampleSize    int
	EstFinalCard  float64
	ActualRecords int
	SamplingCost  float64
	PlanChanged   bool
}

// RunE7 measures how sample-based calibration sharpens the optimizer's
// cardinality estimates (the sentinel execution of the Palimpzest
// substrate the demo runs on).
func RunE7() ([]E7Row, error) {
	base, err := planForSample(0)
	if err != nil {
		return nil, err
	}
	var rows []E7Row
	for _, k := range []int{0, 1, 2, 4, 8, 11} {
		row, err := planForSample(k)
		if err != nil {
			return nil, err
		}
		row.PlanChanged = row.planStr != base.planStr
		rows = append(rows, row.E7Row)
	}
	return rows, nil
}

type e7run struct {
	E7Row
	planStr string
}

func planForSample(k int) (*e7run, error) {
	ctx, ds, _, err := BiomedContext(pz.Config{SampleSize: k})
	if err != nil {
		return nil, err
	}
	pipeline := DemoPipeline(ds)
	res, err := ctx.Execute(pipeline, pz.MaxQuality())
	if err != nil {
		return nil, err
	}
	samplingCost := 0.0
	if k > 0 {
		// Sampling cost is the optimizer-context usage beyond the plan's
		// own execution; approximate as total minus a no-sampling run.
		plain, err := runPlainCost()
		if err != nil {
			return nil, err
		}
		samplingCost = res.CostUSD - plain
		if samplingCost < 0 {
			samplingCost = 0
		}
	}
	return &e7run{
		E7Row: E7Row{
			SampleSize:    k,
			EstFinalCard:  res.Plan.Final.Cardinality,
			ActualRecords: len(res.Records),
			SamplingCost:  samplingCost,
		},
		planStr: res.Plan.String(),
	}, nil
}

var plainCostCache *float64

func runPlainCost() (float64, error) {
	if plainCostCache != nil {
		return *plainCostCache, nil
	}
	ctx, ds, _, err := BiomedContext(pz.Config{})
	if err != nil {
		return 0, err
	}
	res, err := ctx.Execute(DemoPipeline(ds), pz.MaxQuality())
	if err != nil {
		return 0, err
	}
	plainCostCache = &res.CostUSD
	return res.CostUSD, nil
}

// E7Table renders calibration results.
func E7Table(rows []E7Row) string {
	var b strings.Builder
	b.WriteString("| sample size | estimated output card. | actual records | sampling cost | plan changed |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %.1f | %d | $%.3f | %v |\n",
			r.SampleSize, r.EstFinalCard, r.ActualRecords, r.SamplingCost, r.PlanChanged)
	}
	return b.String()
}

// routingCase is one labeled utterance for E8.
type routingCase struct {
	Utterance string
	WantTool  string
}

// RoutingSuite is the labeled utterance set used for E8 (tool routing).
var RoutingSuite = []routingCase{
	{"load the papers from ./pdfs", "load_dataset"},
	{"register the folder ./contracts as legal", "load_dataset"},
	{"use the folder ./listings as the input dataset", "load_dataset"},
	{"create a schema called Author with fields name, email, affiliation", "create_schema"},
	{"define a new schema named Listing with the fields price, bedrooms", "create_schema"},
	{"filter for papers about colorectal cancer", "filter_dataset"},
	{"keep only contracts that contain an indemnification clause", "filter_dataset"},
	{"I am interested in listings with a modern renovated interior", "filter_dataset"},
	{"extract the dataset name, description and url", "convert_dataset"},
	{"pull out the party_a, party_b and effective_date", "convert_dataset"},
	{"convert the records using the ClinicalData schema", "convert_dataset"},
	{"optimize for maximum quality", "set_policy"},
	{"minimize the cost no matter the quality", "set_policy"},
	{"best quality under 120 seconds", "set_policy"},
	{"run the pipeline", "execute_pipeline"},
	{"execute the workload now", "execute_pipeline"},
	{"how much runtime was needed and how much did the LLM calls cost?", "show_statistics"},
	{"show the execution statistics", "show_statistics"},
	{"show me the extracted records", "show_records"},
	{"display the first 5 results", "show_records"},
	{"what is the current pipeline?", "describe_pipeline"},
	{"show me the code for the pipeline", "generate_code"},
	{"export the notebook to ./session.ipynb", "export_notebook"},
	{"reset the pipeline", "reset_pipeline"},
	{"what datasets are available?", "list_datasets"},
	{"save the current state as before-filter", "save_state"},
	{"restore the state before-filter", "restore_state"},
	{"explain the plan choice", "explain_plan"},
}

// E8Result compares routing accuracy with and without docstring examples
// (paper §2.3: "Providing a few examples of usage within the docstring
// proved to be the most efficient solution to improve the quality of the
// reasoning agent"). Two routing modes are measured: the full router (slot
// extractors + docstrings) and docstring similarity alone, which isolates
// the examples' contribution.
type E8Result struct {
	Cases int
	// Full router (extractors + docstrings).
	FullWith, FullWithout int
	// Docstring-similarity-only router.
	DocWith, DocWithout int
}

// RunE8 measures routing accuracy on the labeled suite.
func RunE8() (*E8Result, error) {
	type router func(s *palimpchat.Session, utterance string) string
	full := func(s *palimpchat.Session, u string) string {
		scores := s.Agent().Toolbox().Route(u)
		if len(scores) == 0 {
			return ""
		}
		return scores[0].Tool.Name
	}
	docOnly := func(s *palimpchat.Session, u string) string {
		scores := s.Agent().Toolbox().RouteByDoc(u)
		if len(scores) == 0 {
			return ""
		}
		return scores[0].Tool.Name
	}
	run := func(withoutExamples bool, route router) (int, error) {
		s, err := palimpchat.NewSession(palimpchat.Options{WithoutDocExamples: withoutExamples})
		if err != nil {
			return 0, err
		}
		correct := 0
		for _, c := range RoutingSuite {
			if route(s, c.Utterance) == c.WantTool {
				correct++
			}
		}
		return correct, nil
	}
	res := &E8Result{Cases: len(RoutingSuite)}
	var err error
	if res.FullWith, err = run(false, full); err != nil {
		return nil, err
	}
	if res.FullWithout, err = run(true, full); err != nil {
		return nil, err
	}
	if res.DocWith, err = run(false, docOnly); err != nil {
		return nil, err
	}
	if res.DocWithout, err = run(true, docOnly); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the E8 comparison.
func (r *E8Result) Table() string {
	pct := func(n int) float64 { return float64(n) / float64(r.Cases) }
	var b strings.Builder
	b.WriteString("| router | examples | correct | accuracy |\n|---|---|---|---|\n")
	fmt.Fprintf(&b, "| full (extractors + docstrings) | yes | %d/%d | %.2f |\n", r.FullWith, r.Cases, pct(r.FullWith))
	fmt.Fprintf(&b, "| full (extractors + docstrings) | no | %d/%d | %.2f |\n", r.FullWithout, r.Cases, pct(r.FullWithout))
	fmt.Fprintf(&b, "| docstring similarity only | yes | %d/%d | %.2f |\n", r.DocWith, r.Cases, pct(r.DocWith))
	fmt.Fprintf(&b, "| docstring similarity only | no | %d/%d | %.2f |\n", r.DocWithout, r.Cases, pct(r.DocWithout))
	return b.String()
}

// AblationConvert compares bonded vs field-at-a-time conversion on the
// demo workload (cost up, quality up — DESIGN.md ablation).
type AblationConvert struct {
	Strategy string
	CostUSD  float64
	Runtime  time.Duration
	F1       float64
}

// RunAblationConvert executes both conversion strategies with the
// mid-tier model so quality differences are visible.
func RunAblationConvert() ([]AblationConvert, error) {
	var out []AblationConvert
	for _, bonded := range []bool{true, false} {
		ctx, ds, inputs, err := BiomedContext(pz.Config{})
		if err != nil {
			return nil, err
		}
		clinical := ClinicalSchema()
		chain := ds.Filter(DemoPredicate).Convert(clinical, clinical.Doc(), pz.OneToMany).Chain()
		phys := []ops.Physical{
			&ops.ScanExec{Source: chain[0].(*ops.Scan).Source},
			&ops.LLMFilterExec{Filter: chain[1].(*ops.Filter), Model: "atlas-large"},
			&ops.LLMConvertExec{Convert: chain[2].(*ops.Convert), Model: "pigeon-7b", Bonded: bonded},
		}
		res, err := ctx.Executor().RunPhysical(phys)
		if err != nil {
			return nil, err
		}
		q := metrics.ExtractionQuality(inputs, toPz(res.Records), corpus.DatasetMentionKind)
		name := "bonded"
		if !bonded {
			name = "field-at-a-time"
		}
		// Isolate the convert operator's own cost/time: the (identical)
		// upstream filter dominates pipeline totals and would mask the
		// strategy difference.
		row := AblationConvert{Strategy: name, F1: q.F1}
		for _, op := range res.Stats.Ops() {
			if op.Kind == "convert" {
				row.CostUSD = op.CostUSD
				row.Runtime = op.Time
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func toPz(rs []*pz.Record) []*pz.Record { return rs }

// AblationConvertTable renders the conversion-strategy ablation.
func AblationConvertTable(rows []AblationConvert) string {
	var b strings.Builder
	b.WriteString("| strategy | cost | runtime | F1 |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | $%.3f | %.0fs | %.3f |\n", r.Strategy, r.CostUSD, r.Runtime.Seconds(), r.F1)
	}
	return b.String()
}

// AblationPrefilter compares an LLM-only filter against an embedding
// pre-filter feeding a smaller LLM-filtered set.
type AblationPrefilter struct {
	Config  string
	CostUSD float64
	Runtime time.Duration
	F1      float64
}

// RunAblationPrefilter measures the embedding pre-filter design choice.
func RunAblationPrefilter() ([]AblationPrefilter, error) {
	var out []AblationPrefilter
	for _, pre := range []bool{false, true} {
		ctx, ds, inputs, err := BiomedContext(pz.Config{})
		if err != nil {
			return nil, err
		}
		chainDS := ds
		if pre {
			// Retrieval as a cheap semantic pre-filter before the LLM
			// filter.
			chainDS = chainDS.Retrieve(DemoPredicate, 8)
		}
		chainDS = chainDS.Filter(DemoPredicate)
		clinical := ClinicalSchema()
		chainDS = chainDS.Convert(clinical, clinical.Doc(), pz.OneToMany)
		res, err := ctx.Execute(chainDS, pz.MaxQuality())
		if err != nil {
			return nil, err
		}
		q := metrics.ExtractionQuality(inputs, res.Records, corpus.DatasetMentionKind)
		name := "llm filter only"
		if pre {
			name = "embed prefilter + llm filter"
		}
		out = append(out, AblationPrefilter{
			Config:  name,
			CostUSD: res.CostUSD,
			Runtime: res.Elapsed,
			F1:      q.F1,
		})
	}
	return out, nil
}

// AblationPrefilterTable renders the pre-filter ablation.
func AblationPrefilterTable(rows []AblationPrefilter) string {
	var b strings.Builder
	b.WriteString("| configuration | cost | runtime | F1 |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | $%.3f | %.0fs | %.3f |\n", r.Config, r.CostUSD, r.Runtime.Seconds(), r.F1)
	}
	return b.String()
}
