package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/pz"
)

// ScaleRow is one library-size measurement for the scaling experiment
// (E9): the paper's motivation that "as these AI systems grow in scope,
// users face major challenges around runtime cost" — pipeline cost and
// runtime should scale linearly in corpus size, and parallelism should cut
// wall-clock without changing outputs.
type ScaleRow struct {
	Papers       int
	Relevant     int
	Outputs      int
	CostUSD      float64
	RuntimeSeq   time.Duration
	RuntimePar8  time.Duration
	CostPerPaper float64
}

// RunScale executes the demo pipeline over libraries of increasing size.
func RunScale(sizes []int) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, n := range sizes {
		cfg := corpus.BiomedConfig{
			NumPapers:   n,
			NumRelevant: n * 5 / 11,
			NumDatasets: n * 6 / 11,
			Seed:        42,
		}
		runOnce := func(parallelism int) (*pz.Result, error) {
			ctx, err := pz.NewContext(pz.Config{Parallelism: parallelism})
			if err != nil {
				return nil, err
			}
			docs := corpus.GenerateBiomed(cfg)
			if _, err := ctx.RegisterDocs("library", pz.PDFFile, docs); err != nil {
				return nil, err
			}
			ds, err := ctx.Dataset("library")
			if err != nil {
				return nil, err
			}
			clinical := ClinicalSchema()
			return ctx.Execute(
				ds.Filter(DemoPredicate).Convert(clinical, clinical.Doc(), pz.OneToMany),
				pz.MaxQuality())
		}
		seq, err := runOnce(1)
		if err != nil {
			return nil, fmt.Errorf("scale n=%d: %w", n, err)
		}
		par, err := runOnce(8)
		if err != nil {
			return nil, fmt.Errorf("scale n=%d par: %w", n, err)
		}
		if len(seq.Records) != len(par.Records) {
			return nil, fmt.Errorf("scale n=%d: parallelism changed outputs (%d vs %d)",
				n, len(seq.Records), len(par.Records))
		}
		rows = append(rows, ScaleRow{
			Papers:       n,
			Relevant:     cfg.NumRelevant,
			Outputs:      len(seq.Records),
			CostUSD:      seq.CostUSD,
			RuntimeSeq:   seq.Elapsed,
			RuntimePar8:  par.Elapsed,
			CostPerPaper: seq.CostUSD / float64(n),
		})
	}
	return rows, nil
}

// ScaleTable renders the scaling measurements.
func ScaleTable(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("| papers | relevant | outputs | cost | cost/paper | runtime (seq) | runtime (par=8) |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %d | %d | $%.3f | $%.4f | %.0fs | %.0fs |\n",
			r.Papers, r.Relevant, r.Outputs, r.CostUSD, r.CostPerPaper,
			r.RuntimeSeq.Seconds(), r.RuntimePar8.Seconds())
	}
	return b.String()
}
