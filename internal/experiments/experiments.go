// Package experiments regenerates every reproducible artifact of the paper
// (see DESIGN.md's per-experiment index): the §3 scientific-discovery
// numbers and Figure 5 statistics (E1), the chat pipeline construction of
// Figures 3-4 (E2), the Figure 6 code generation (E3), the legal and
// real-estate demo scenarios (E4), the optimizer policy trade-offs of §2.1
// (E5), plan-space enumeration (E6), sentinel calibration (E7), and
// docstring-driven tool routing (E8), plus ablations of design choices
// called out in DESIGN.md.
//
// Each experiment returns a typed result plus a rendered table; cmd/
// experiments prints them all, and the root bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/pz"
)

// ClinicalSchema is the demo extraction schema (paper Figure 6).
func ClinicalSchema() *pz.Schema {
	s, err := pz.DeriveSchema("ClinicalData",
		"A schema for extracting clinical data datasets from papers.",
		[]string{"name", "description", "url"},
		[]string{
			"The name of the clinical data dataset",
			"A short description of the content of the dataset",
			"The public URL where the dataset can be accessed",
		})
	if err != nil {
		panic(err)
	}
	return s
}

// DemoPredicate is the §3 filter condition.
const DemoPredicate = "The papers are about colorectal cancer"

// BiomedContext builds a pz context over the paper-demo corpus.
func BiomedContext(cfg pz.Config) (*pz.Context, *pz.Dataset, []*pz.Record, error) {
	ctx, err := pz.NewContext(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	src, err := ctx.RegisterDocs("sigmod-demo", pz.PDFFile, docs)
	if err != nil {
		return nil, nil, nil, err
	}
	inputs, err := src.Records()
	if err != nil {
		return nil, nil, nil, err
	}
	ds, err := ctx.Dataset("sigmod-demo")
	if err != nil {
		return nil, nil, nil, err
	}
	return ctx, ds, inputs, nil
}

// DemoPipeline appends the §3 pipeline to a biomed dataset.
func DemoPipeline(ds *pz.Dataset) *pz.Dataset {
	clinical := ClinicalSchema()
	return ds.Filter(DemoPredicate).Convert(clinical, clinical.Doc(), pz.OneToMany)
}

// E1Result is the scientific-discovery headline reproduction.
type E1Result struct {
	// InputPapers and OutputDatasets reproduce "out of an input dataset of
	// 11 papers, the pipeline managed to extract 6 publicly available
	// datasets".
	InputPapers    int
	OutputDatasets int
	// Runtime and CostUSD reproduce "about 240s ... about 0.35 USD".
	Runtime time.Duration
	CostUSD float64
	// Plan is the chosen physical plan.
	Plan string
	// ExtractionF1 is measured against corpus ground truth.
	ExtractionF1 float64
	// Report is the Figure 5-style statistics panel.
	Report string
}

// RunE1 executes the §3 pipeline under MaxQuality.
func RunE1() (*E1Result, error) {
	ctx, ds, inputs, err := BiomedContext(pz.Config{})
	if err != nil {
		return nil, err
	}
	res, err := ctx.Execute(DemoPipeline(ds), pz.MaxQuality())
	if err != nil {
		return nil, err
	}
	q := metrics.ExtractionQuality(inputs, res.Records, corpus.DatasetMentionKind)
	return &E1Result{
		InputPapers:    len(inputs),
		OutputDatasets: len(res.Records),
		Runtime:        res.Elapsed,
		CostUSD:        res.CostUSD,
		Plan:           res.Plan.String(),
		ExtractionF1:   q.F1,
		Report:         res.Report(6),
	}, nil
}

// Table renders the E1 paper-vs-measured comparison.
func (r *E1Result) Table() string {
	var b strings.Builder
	b.WriteString("| metric | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| input papers | 11 | %d |\n", r.InputPapers)
	fmt.Fprintf(&b, "| datasets extracted | 6 | %d |\n", r.OutputDatasets)
	fmt.Fprintf(&b, "| runtime | ~240 s | %.0f s (simulated) |\n", r.Runtime.Seconds())
	fmt.Fprintf(&b, "| cost | ~$0.35 | $%.2f |\n", r.CostUSD)
	fmt.Fprintf(&b, "| extraction F1 (vs ground truth) | URLs manually verified | %.3f |\n", r.ExtractionF1)
	return b.String()
}

// E5Row is one policy's estimated and measured behaviour.
type E5Row struct {
	Policy       string
	Plan         string
	EstCost      float64
	EstTime      float64
	EstQuality   float64
	MeasCost     float64
	MeasTime     time.Duration
	MeasRecords  int
	ExtractionF1 float64
	Violated     bool
}

// RunE5 sweeps optimization policies over the §3 workload (paper §2.1's
// optimizer claims: policy choice changes the physical plan and lands the
// promised trade-offs).
func RunE5() ([]E5Row, error) {
	policies := []pz.Policy{
		pz.MaxQuality(),
		pz.MinCost(),
		pz.MinTime(),
		pz.MaxQualityAtCost(0.10),
		pz.MaxQualityAtTime(60),
		pz.MinCostAtQuality(0.80),
	}
	var rows []E5Row
	for _, pol := range policies {
		ctx, ds, inputs, err := BiomedContext(pz.Config{})
		if err != nil {
			return nil, err
		}
		res, err := ctx.Execute(DemoPipeline(ds), pol)
		if err != nil {
			return nil, err
		}
		q := metrics.ExtractionQuality(inputs, res.Records, corpus.DatasetMentionKind)
		rows = append(rows, E5Row{
			Policy:       pol.Name(),
			Plan:         shortPlan(res.Plan.String()),
			EstCost:      res.Plan.Cost(),
			EstTime:      res.Plan.Time(),
			EstQuality:   res.Plan.Quality(),
			MeasCost:     res.CostUSD,
			MeasTime:     res.Elapsed,
			MeasRecords:  len(res.Records),
			ExtractionF1: q.F1,
			Violated:     res.Plan.ConstraintViolated,
		})
	}
	return rows, nil
}

// shortPlan compresses a plan string for table display.
func shortPlan(p string) string {
	p = strings.ReplaceAll(p, "scan(sigmod-demo) -> ", "")
	p = strings.ReplaceAll(p, "llm-", "")
	p = strings.ReplaceAll(p, "atlas-", "")
	return p
}

// E5Table renders the policy sweep.
func E5Table(rows []E5Row) string {
	var b strings.Builder
	b.WriteString("| policy | plan | est cost | est time | est quality | meas cost | meas time | records | F1 |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		flag := ""
		if r.Violated {
			flag = " (!)"
		}
		fmt.Fprintf(&b, "| %s%s | %s | $%.3f | %.0fs | %.3f | $%.3f | %.0fs | %d | %.3f |\n",
			r.Policy, flag, r.Plan, r.EstCost, r.EstTime, r.EstQuality,
			r.MeasCost, r.MeasTime.Seconds(), r.MeasRecords, r.ExtractionF1)
	}
	return b.String()
}
