// Package workloads builds shared synthetic workloads used by both the
// executor tests and the top-level benchmarks, so the streaming-engine
// acceptance test (internal/exec) and BenchmarkExecEngines measure exactly
// the same plan. It deliberately does not import internal/exec.
package workloads

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/schema"
)

// StreamPredicates are the three balanced filter predicates of the
// streaming-engine comparison workload; every generated record's text
// satisfies all of them (modulo per-model noise), keeping the stages
// balanced so they overlap fully under the pipelined engine.
var StreamPredicates = [3]string{
	"alpha beta study",
	"gamma delta cohort",
	"epsilon zeta trial",
}

// StreamSourceName is the registry name of the streaming workload's
// dataset (shared by StreamSource and serve-layer registrations so plan
// fingerprints agree).
const StreamSourceName = "stream-bench"

// StreamRecords builds the n synthetic text records of the streaming
// workload, for callers that register them themselves (e.g. a pz.Context
// behind the serving layer). Every record satisfies StreamPredicates.
func StreamRecords(n int) ([]*record.Record, *schema.Schema, error) {
	recs := make([]*record.Record, 0, n)
	for i := 0; i < n; i++ {
		r, err := record.New(schema.TextFile, map[string]any{
			"filename": fmt.Sprintf("doc-%03d.txt", i),
			"contents": fmt.Sprintf("doc %d alpha beta gamma delta epsilon zeta study cohort trial", i),
		})
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, r)
	}
	return recs, schema.TextFile, nil
}

// StreamSource builds an in-memory source of n text records whose contents
// satisfy StreamPredicates.
func StreamSource(n int) (dataset.Source, error) {
	recs, s, err := StreamRecords(n)
	if err != nil {
		return nil, err
	}
	return dataset.NewMemSource(StreamSourceName, s, recs)
}

// StreamChain is the streaming-engine comparison workload: n records
// flowing through three balanced LLM filter stages.
func StreamChain(n int) ([]ops.Logical, error) {
	src, err := StreamSource(n)
	if err != nil {
		return nil, err
	}
	chain := []ops.Logical{&ops.Scan{Source: src}}
	for _, p := range StreamPredicates {
		chain = append(chain, &ops.Filter{Predicate: p})
	}
	return chain, nil
}

// StreamPlan resolves StreamChain to its champion physical plan.
func StreamPlan(n int) ([]ops.Physical, error) {
	chain, err := StreamChain(n)
	if err != nil {
		return nil, err
	}
	return optimizer.ChampionPlan(chain)
}

// The two corpus-scale workloads over the streaming-native domains
// (internal/corpus support and finance). Both take any dataset.Source —
// an in-memory DocsSource or a file-backed NDJSONSource — so the same
// chain runs over a registered 100k-document corpus file in
// BenchmarkCorpusScale and over small in-memory corpora in tests.

// SupportPredicate is the triage filter of the support workload; its gold
// answer is the corpus UrgentLabel.
const SupportPredicate = "The ticket is urgent and needs immediate attention"

// FinancePredicate is the profitability filter of the finance workload;
// its gold answer is the corpus ProfitableLabel.
const FinancePredicate = "The filing reports a profitable fiscal year"

// SupportRouteSchema is the routing extraction target of the support
// workload: who the ticket is from and where it should go.
func SupportRouteSchema() (*schema.Schema, error) {
	return schema.Derive("TicketRoute",
		"Routing fields extracted from a customer-support ticket.",
		[]string{"ticket_id", "product", "category", "priority"},
		[]string{
			"The ticket identifier (TCK-...)",
			"The product the ticket concerns",
			"The support category the ticket should route to",
			"The ticket priority (P1..P4)",
		})
}

// FinanceFiguresSchema is the numeric extraction target of the finance
// workload: the filing's key figures.
func FinanceFiguresSchema() (*schema.Schema, error) {
	return schema.Derive("KeyFigures",
		"Key financial figures extracted from an annual filing.",
		[]string{"company", "fiscal_year:int", "revenue_musd:float", "net_income_musd:float", "eps:float"},
		[]string{
			"The filing company's legal name",
			"The fiscal year the filing covers",
			"Total revenue in millions of USD",
			"Net income in millions of USD (negative for a loss)",
			"Diluted earnings per share in USD (negative for a loss)",
		})
}

// SupportTriageChain is the support workload: tickets flowing through the
// urgency filter into routing extraction.
func SupportTriageChain(src dataset.Source) ([]ops.Logical, error) {
	route, err := SupportRouteSchema()
	if err != nil {
		return nil, err
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: SupportPredicate},
		&ops.Convert{Target: route, Desc: route.Doc(), Card: ops.OneToOne},
	}, nil
}

// FinanceExtractChain is the finance workload: filings flowing through
// the profitability filter into key-figure extraction.
func FinanceExtractChain(src dataset.Source) ([]ops.Logical, error) {
	figures, err := FinanceFiguresSchema()
	if err != nil {
		return nil, err
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: FinancePredicate},
		&ops.Convert{Target: figures, Desc: figures.Doc(), Card: ops.OneToOne},
	}, nil
}
