// Package workloads builds shared synthetic workloads used by both the
// executor tests and the top-level benchmarks, so the streaming-engine
// acceptance test (internal/exec) and BenchmarkExecEngines measure exactly
// the same plan. It deliberately does not import internal/exec.
package workloads

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/schema"
)

// StreamPredicates are the three balanced filter predicates of the
// streaming-engine comparison workload; every generated record's text
// satisfies all of them (modulo per-model noise), keeping the stages
// balanced so they overlap fully under the pipelined engine.
var StreamPredicates = [3]string{
	"alpha beta study",
	"gamma delta cohort",
	"epsilon zeta trial",
}

// StreamSourceName is the registry name of the streaming workload's
// dataset (shared by StreamSource and serve-layer registrations so plan
// fingerprints agree).
const StreamSourceName = "stream-bench"

// StreamRecords builds the n synthetic text records of the streaming
// workload, for callers that register them themselves (e.g. a pz.Context
// behind the serving layer). Every record satisfies StreamPredicates.
func StreamRecords(n int) ([]*record.Record, *schema.Schema, error) {
	recs := make([]*record.Record, 0, n)
	for i := 0; i < n; i++ {
		r, err := record.New(schema.TextFile, map[string]any{
			"filename": fmt.Sprintf("doc-%03d.txt", i),
			"contents": fmt.Sprintf("doc %d alpha beta gamma delta epsilon zeta study cohort trial", i),
		})
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, r)
	}
	return recs, schema.TextFile, nil
}

// StreamSource builds an in-memory source of n text records whose contents
// satisfy StreamPredicates.
func StreamSource(n int) (dataset.Source, error) {
	recs, s, err := StreamRecords(n)
	if err != nil {
		return nil, err
	}
	return dataset.NewMemSource(StreamSourceName, s, recs)
}

// StreamChain is the streaming-engine comparison workload: n records
// flowing through three balanced LLM filter stages.
func StreamChain(n int) ([]ops.Logical, error) {
	src, err := StreamSource(n)
	if err != nil {
		return nil, err
	}
	chain := []ops.Logical{&ops.Scan{Source: src}}
	for _, p := range StreamPredicates {
		chain = append(chain, &ops.Filter{Predicate: p})
	}
	return chain, nil
}

// StreamPlan resolves StreamChain to its champion physical plan.
func StreamPlan(n int) ([]ops.Physical, error) {
	chain, err := StreamChain(n)
	if err != nil {
		return nil, err
	}
	return optimizer.ChampionPlan(chain)
}
