package workloads_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/workloads"
	"repro/pz"
)

// TestStreamRecords: the synthetic records are well-formed and every one
// satisfies every stream predicate, the invariant that keeps the pipeline
// stages balanced.
func TestStreamRecords(t *testing.T) {
	const n = 12
	recs, sc, err := workloads.StreamRecords(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	if sc == nil {
		t.Fatal("nil schema")
	}
	seen := map[string]bool{}
	for _, r := range recs {
		name := r.GetString("filename")
		if name == "" || seen[name] {
			t.Fatalf("filename %q empty or duplicated", name)
		}
		seen[name] = true
		contents := r.GetString("contents")
		for _, pred := range workloads.StreamPredicates {
			for _, word := range strings.Fields(pred) {
				if !strings.Contains(contents, word) {
					t.Fatalf("record %q misses predicate word %q", name, word)
				}
			}
		}
	}
}

// TestStreamSourceAndChain: the source registers under the shared name and
// the chain is scan + one filter per predicate.
func TestStreamSourceAndChain(t *testing.T) {
	src, err := workloads.StreamSource(5)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != workloads.StreamSourceName {
		t.Errorf("source name %q, want %q", src.Name(), workloads.StreamSourceName)
	}
	chain, err := workloads.StreamChain(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1+len(workloads.StreamPredicates) {
		t.Fatalf("chain length %d, want %d", len(chain), 1+len(workloads.StreamPredicates))
	}
}

// TestStreamChainOptimizesUnderEveryPolicy: the workload admits a plan
// under each policy the optimizer knows, pure and constrained alike.
func TestStreamChainOptimizesUnderEveryPolicy(t *testing.T) {
	chain, err := workloads.StreamChain(6)
	if err != nil {
		t.Fatal(err)
	}
	policies := []struct {
		name  string
		param float64
	}{
		{"max-quality", 0},
		{"min-cost", 0},
		{"min-time", 0},
		{"quality-at-cost", 5},
		{"quality-at-time", 600},
		{"cost-at-quality", 0.5},
		{"time-at-quality", 0.5},
	}
	for _, pc := range policies {
		policy, err := optimizer.ParsePolicy(pc.name, pc.param)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		plan, candidates, err := optimizer.New(optimizer.Options{Pruning: true}).Optimize(chain, policy, nil)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		if plan == nil || len(plan.Ops) == 0 {
			t.Fatalf("%s: empty plan", pc.name)
		}
		if len(candidates) == 0 {
			t.Fatalf("%s: no candidate plans", pc.name)
		}
	}
	if phys, err := workloads.StreamPlan(6); err != nil || len(phys) == 0 {
		t.Fatalf("StreamPlan: %d ops, err %v", len(phys), err)
	}
}

// TestCorpusWorkloadChains: the support-triage and finance-extraction
// chains type-check over both in-memory and file-backed sources and admit
// a champion plan.
func TestCorpusWorkloadChains(t *testing.T) {
	supportDocs := corpus.GenerateSupport(corpus.SupportConfig{NumTickets: 10, UrgentRate: 0.5, Seed: 1})
	supportSrc, err := dataset.NewDocsSource("tickets", schema.TextFile, supportDocs)
	if err != nil {
		t.Fatal(err)
	}
	financePath := filepath.Join(t.TempDir(), "filings.ndjson")
	g := corpus.NewFinanceGenerator(corpus.FinanceConfig{NumFilings: 10, ProfitableRate: 0.5, Seed: 2})
	if _, err := corpus.SaveNDJSON(financePath, g, 2, nil); err != nil {
		t.Fatal(err)
	}
	financeSrc, err := dataset.NewNDJSONSource("filings", financePath)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		name  string
		chain func() ([]ops.Logical, error)
	}{
		{"support", func() ([]ops.Logical, error) { return workloads.SupportTriageChain(supportSrc) }},
		{"finance", func() ([]ops.Logical, error) { return workloads.FinanceExtractChain(financeSrc) }},
	} {
		chain, err := c.chain()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if _, err := ops.ValidatePlan(chain); err != nil {
			t.Fatalf("%s: chain does not type-check: %v", c.name, err)
		}
		phys, err := optimizer.ChampionPlan(chain)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(phys) != len(chain) {
			t.Fatalf("%s: champion plan has %d ops for %d logical", c.name, len(phys), len(chain))
		}
	}
}

// TestStreamSpecRoundTrip: the workload chain survives the serve-layer
// wire encoding — chain -> Spec -> JSON -> Spec -> Dataset re-encodes to
// the identical Spec and executes to byte-identical records.
func TestStreamSpecRoundTrip(t *testing.T) {
	const n = 8
	chain, err := workloads.StreamChain(n)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.FromChain(chain, "min-cost", 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dataset.Name != workloads.StreamSourceName {
		t.Fatalf("encoded dataset %q, want %q", spec.Dataset.Name, workloads.StreamSourceName)
	}
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := serve.ParseSpec(wire)
	if err != nil {
		t.Fatal(err)
	}

	ctx, err := pz.NewContext(pz.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs, sc, err := workloads.StreamRecords(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterRecords(workloads.StreamSourceName, sc, recs); err != nil {
		t.Fatal(err)
	}
	ds, err := decoded.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	reencoded, err := serve.FromChain(ds.Chain(), "min-cost", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, reencoded) {
		t.Fatalf("spec round-trip drift:\nbefore: %+v\nafter:  %+v", spec, reencoded)
	}

	// The decoded pipeline and a hand-built builder pipeline execute to
	// byte-identical output.
	policy, err := decoded.ParsePolicy()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.Execute(ds, policy)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ctx.Dataset(workloads.StreamSourceName)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range workloads.StreamPredicates {
		ref = ref.Filter(p)
	}
	want, err := ctx.Execute(ref, policy)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := serve.RecordsJSON(got.Records)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := serve.RecordsJSON(want.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) == 0 || !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("decoded spec records differ from builder pipeline:\nspec:    %s\nbuilder: %s", gotJSON, wantJSON)
	}
}
