// Package notebook implements the Beaker-style hybrid notebook/chat
// environment PalimpChat is hosted in (paper §2.3): cells that mix chat
// messages, generated code, and outputs; "comprehensive state management
// that allows users to restore previous notebook states"; and export of a
// Jupyter-like JSON document containing "all inputs and generated snippets
// of code".
package notebook

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// CellType discriminates notebook cells.
type CellType string

// Cell types.
const (
	// Markdown is prose (chat narration).
	Markdown CellType = "markdown"
	// Code is a generated or user-written code snippet.
	Code CellType = "code"
	// ChatUser is a user chat message.
	ChatUser CellType = "chat_user"
	// ChatAgent is an agent chat reply.
	ChatAgent CellType = "chat_agent"
)

// Cell is one notebook entry.
type Cell struct {
	// ID is the stable cell identifier.
	ID int `json:"id"`
	// Type is the cell type.
	Type CellType `json:"cell_type"`
	// Source is the cell content.
	Source string `json:"source"`
	// Output is the cell's execution output (code cells).
	Output string `json:"output,omitempty"`
	// ExecutionCount orders executed code cells (0 = never executed).
	ExecutionCount int `json:"execution_count,omitempty"`
}

// Notebook is an append-mostly cell list with snapshot/restore.
type Notebook struct {
	cells     []Cell
	nextID    int
	execCount int
	snapshots []snapshot
}

type snapshot struct {
	label     string
	takenAt   time.Time
	cells     []Cell
	nextID    int
	execCount int
}

// New returns an empty notebook.
func New() *Notebook { return &Notebook{nextID: 1} }

// Len returns the number of cells.
func (n *Notebook) Len() int { return len(n.cells) }

// Cells returns a copy of the cells in order.
func (n *Notebook) Cells() []Cell {
	out := make([]Cell, len(n.cells))
	copy(out, n.cells)
	return out
}

// Cell returns the cell with the given id.
func (n *Notebook) Cell(id int) (Cell, error) {
	for _, c := range n.cells {
		if c.ID == id {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("notebook: no cell %d", id)
}

func (n *Notebook) add(t CellType, source string) int {
	id := n.nextID
	n.nextID++
	n.cells = append(n.cells, Cell{ID: id, Type: t, Source: source})
	return id
}

// AddMarkdown appends a prose cell and returns its id.
func (n *Notebook) AddMarkdown(text string) int { return n.add(Markdown, text) }

// AddChatUser appends a user chat message cell.
func (n *Notebook) AddChatUser(text string) int { return n.add(ChatUser, text) }

// AddChatAgent appends an agent reply cell.
func (n *Notebook) AddChatAgent(text string) int { return n.add(ChatAgent, text) }

// AddCode appends a code cell.
func (n *Notebook) AddCode(code string) int { return n.add(Code, code) }

// SetOutput records execution output on a code cell and stamps its
// execution count.
func (n *Notebook) SetOutput(id int, output string) error {
	for i := range n.cells {
		if n.cells[i].ID == id {
			if n.cells[i].Type != Code {
				return fmt.Errorf("notebook: cell %d is %s, not code", id, n.cells[i].Type)
			}
			n.execCount++
			n.cells[i].Output = output
			n.cells[i].ExecutionCount = n.execCount
			return nil
		}
	}
	return fmt.Errorf("notebook: no cell %d", id)
}

// Snapshot saves the current state under a label and returns the snapshot
// index.
func (n *Notebook) Snapshot(label string) int {
	cells := make([]Cell, len(n.cells))
	copy(cells, n.cells)
	n.snapshots = append(n.snapshots, snapshot{
		label: label, takenAt: time.Now(),
		cells: cells, nextID: n.nextID, execCount: n.execCount,
	})
	return len(n.snapshots) - 1
}

// Snapshots lists snapshot labels in order.
func (n *Notebook) Snapshots() []string {
	out := make([]string, len(n.snapshots))
	for i, s := range n.snapshots {
		out[i] = s.label
	}
	return out
}

// Restore rewinds the notebook to snapshot idx. Later snapshots stay
// available (restoring forward again is allowed).
func (n *Notebook) Restore(idx int) error {
	if idx < 0 || idx >= len(n.snapshots) {
		return fmt.Errorf("notebook: no snapshot %d (have %d)", idx, len(n.snapshots))
	}
	s := n.snapshots[idx]
	n.cells = make([]Cell, len(s.cells))
	copy(n.cells, s.cells)
	n.nextID = s.nextID
	n.execCount = s.execCount
	return nil
}

// ipynb is the exported JSON document shape (a compact ipynb dialect).
type ipynb struct {
	NBFormat int            `json:"nbformat"`
	Metadata map[string]any `json:"metadata"`
	Cells    []ipynbCell    `json:"cells"`
}

type ipynbCell struct {
	CellType       string   `json:"cell_type"`
	Source         []string `json:"source"`
	Outputs        []string `json:"outputs,omitempty"`
	ExecutionCount int      `json:"execution_count,omitempty"`
}

// ExportJSON renders the notebook as a Jupyter-like JSON document. Chat
// cells export as markdown with a speaker prefix.
func (n *Notebook) ExportJSON() ([]byte, error) {
	doc := ipynb{
		NBFormat: 4,
		Metadata: map[string]any{"generator": "palimpchat"},
	}
	for _, c := range n.cells {
		ic := ipynbCell{Source: splitLines(c.Source)}
		switch c.Type {
		case Code:
			ic.CellType = "code"
			if c.Output != "" {
				ic.Outputs = splitLines(c.Output)
			}
			ic.ExecutionCount = c.ExecutionCount
		case ChatUser:
			ic.CellType = "markdown"
			ic.Source = splitLines("**User:** " + c.Source)
		case ChatAgent:
			ic.CellType = "markdown"
			ic.Source = splitLines("**PalimpChat:** " + c.Source)
		default:
			ic.CellType = "markdown"
		}
		doc.Cells = append(doc.Cells, ic)
	}
	return json.MarshalIndent(doc, "", "  ")
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// Render prints the notebook as plain text for terminal display.
func (n *Notebook) Render() string {
	var b strings.Builder
	for _, c := range n.cells {
		switch c.Type {
		case ChatUser:
			fmt.Fprintf(&b, "[%d] user> %s\n", c.ID, c.Source)
		case ChatAgent:
			fmt.Fprintf(&b, "[%d] chat> %s\n", c.ID, indent(c.Source, "      "))
		case Code:
			fmt.Fprintf(&b, "[%d] code:\n%s\n", c.ID, indent(c.Source, "    "))
			if c.Output != "" {
				fmt.Fprintf(&b, "    out[%d]:\n%s\n", c.ExecutionCount, indent(c.Output, "    "))
			}
		default:
			fmt.Fprintf(&b, "[%d] %s\n", c.ID, c.Source)
		}
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
