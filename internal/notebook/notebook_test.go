package notebook

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestAddAndCells(t *testing.T) {
	nb := New()
	u := nb.AddChatUser("load my papers")
	a := nb.AddChatAgent("loaded 11 papers")
	c := nb.AddCode("dataset = pz.Dataset(...)")
	m := nb.AddMarkdown("notes")
	if nb.Len() != 4 {
		t.Fatalf("Len = %d", nb.Len())
	}
	ids := []int{u, a, c, m}
	if !reflect.DeepEqual(ids, []int{1, 2, 3, 4}) {
		t.Errorf("ids = %v", ids)
	}
	cell, err := nb.Cell(c)
	if err != nil || cell.Type != Code {
		t.Errorf("Cell = %+v, %v", cell, err)
	}
	if _, err := nb.Cell(99); err == nil {
		t.Error("missing cell accepted")
	}
}

func TestSetOutput(t *testing.T) {
	nb := New()
	c1 := nb.AddCode("print(1)")
	c2 := nb.AddCode("print(2)")
	if err := nb.SetOutput(c2, "2"); err != nil {
		t.Fatal(err)
	}
	if err := nb.SetOutput(c1, "1"); err != nil {
		t.Fatal(err)
	}
	a, _ := nb.Cell(c1)
	b, _ := nb.Cell(c2)
	if b.ExecutionCount != 1 || a.ExecutionCount != 2 {
		t.Errorf("execution counts = %d, %d", a.ExecutionCount, b.ExecutionCount)
	}
	md := nb.AddMarkdown("x")
	if err := nb.SetOutput(md, "nope"); err == nil {
		t.Error("output on markdown accepted")
	}
	if err := nb.SetOutput(123, "x"); err == nil {
		t.Error("output on missing cell accepted")
	}
}

func TestSnapshotRestore(t *testing.T) {
	nb := New()
	nb.AddChatUser("first")
	idx := nb.Snapshot("before-filter")
	nb.AddChatUser("second")
	nb.AddCode("filter(...)")
	if nb.Len() != 3 {
		t.Fatalf("Len = %d", nb.Len())
	}
	if err := nb.Restore(idx); err != nil {
		t.Fatal(err)
	}
	if nb.Len() != 1 {
		t.Fatalf("after restore Len = %d", nb.Len())
	}
	// New cells after restore get fresh ids consistent with the snapshot.
	id := nb.AddChatUser("redo")
	if id != 2 {
		t.Errorf("post-restore id = %d, want 2", id)
	}
	if err := nb.Restore(99); err == nil {
		t.Error("bad snapshot index accepted")
	}
	if got := nb.Snapshots(); !reflect.DeepEqual(got, []string{"before-filter"}) {
		t.Errorf("Snapshots = %v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	nb := New()
	c := nb.AddCode("x")
	nb.Snapshot("s0")
	_ = nb.SetOutput(c, "mutated-after-snapshot")
	if err := nb.Restore(0); err != nil {
		t.Fatal(err)
	}
	cell, _ := nb.Cell(c)
	if cell.Output != "" {
		t.Errorf("snapshot captured later mutation: %q", cell.Output)
	}
}

func TestExportJSON(t *testing.T) {
	nb := New()
	nb.AddChatUser("hello")
	nb.AddChatAgent("hi, I loaded the dataset")
	code := nb.AddCode("dataset = pz.Dataset(source=\"demo\")\noutput = dataset")
	_ = nb.SetOutput(code, "11 records")
	data, err := nb.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc["nbformat"] != float64(4) {
		t.Errorf("nbformat = %v", doc["nbformat"])
	}
	cells := doc["cells"].([]any)
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	first := cells[0].(map[string]any)
	if first["cell_type"] != "markdown" {
		t.Errorf("chat exported as %v", first["cell_type"])
	}
	src := first["source"].([]any)[0].(string)
	if !strings.Contains(src, "**User:** hello") {
		t.Errorf("source = %q", src)
	}
	codeCell := cells[2].(map[string]any)
	if codeCell["cell_type"] != "code" || codeCell["execution_count"] != float64(1) {
		t.Errorf("code cell = %v", codeCell)
	}
}

func TestRender(t *testing.T) {
	nb := New()
	nb.AddChatUser("query")
	c := nb.AddCode("line1\nline2")
	_ = nb.SetOutput(c, "result")
	out := nb.Render()
	for _, want := range []string{"user> query", "code:", "line1", "out[1]:", "result"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCellsIsCopy(t *testing.T) {
	nb := New()
	nb.AddMarkdown("original")
	cells := nb.Cells()
	cells[0].Source = "mutated"
	got, _ := nb.Cell(1)
	if got.Source != "original" {
		t.Error("Cells exposed internal state")
	}
}

func TestSplitLines(t *testing.T) {
	if got := splitLines(""); got != nil {
		t.Errorf("splitLines(empty) = %v", got)
	}
	got := splitLines("a\nb")
	if !reflect.DeepEqual(got, []string{"a\n", "b"}) {
		t.Errorf("splitLines = %q", got)
	}
	got = splitLines("a\n")
	if !reflect.DeepEqual(got, []string{"a\n"}) {
		t.Errorf("splitLines trailing = %q", got)
	}
}
