package dataset

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/record"
)

// partitionedSource writes a support corpus (indexed by WriteNDJSON) and
// opens it as an NDJSONSource.
func partitionedSource(t *testing.T, n int) *NDJSONSource {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 11})
	if _, err := corpus.SaveNDJSON(path, g, 11, nil); err != nil {
		t.Fatal(err)
	}
	src, err := NewNDJSONSource("tickets", path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// renderRecord serializes a record's content (fields and truth identity
// excluded from record IDs, which reflect allocation order).
func renderRecord(r *record.Record) string {
	var b strings.Builder
	for _, f := range r.Schema().FieldNames() {
		fmt.Fprintf(&b, "%s=%q;", f, r.GetString(f))
	}
	return b.String()
}

// TestIteratePartitionEquivalence: for randomized fan-outs, concatenating
// IteratePartition across the layout yields exactly the records (content
// and order) of one IterateRecords pass — the dataset-level half of the
// partition≡sequential property.
func TestIteratePartitionEquivalence(t *testing.T) {
	const n = 87
	src := partitionedSource(t, n)
	var want []string
	if err := src.IterateRecords(func(r *record.Record) error {
		want = append(want, renderRecord(r))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("sequential iteration yielded %d records, want %d", len(want), n)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		max := 2 + rng.Intn(n)
		layout := src.PartitionLayout(max)
		if len(layout) < 2 {
			t.Fatalf("PartitionLayout(%d) = %v, want a real split", max, layout)
		}
		var got []string
		for part, docs := range layout {
			count := 0
			if err := src.IteratePartition(len(layout), part, func(r *record.Record) error {
				got = append(got, renderRecord(r))
				count++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if count != docs {
				t.Fatalf("partition %d yielded %d records, layout says %d", part, count, docs)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%d-way partitioned iteration yielded %d records, want %d", len(layout), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d differs under %d-way partitioning:\nsequential:  %s\npartitioned: %s",
					i, len(layout), want[i], got[i])
			}
		}
	}
}

// TestIteratePartitionErrStop: the early-stop contract holds on the
// partitioned path too.
func TestIteratePartitionErrStop(t *testing.T) {
	src := partitionedSource(t, 40)
	layout := src.PartitionLayout(4)
	if len(layout) != 4 {
		t.Fatalf("layout = %v, want 4 partitions", layout)
	}
	seen := 0
	err := src.IteratePartition(4, 1, func(*record.Record) error {
		seen++
		if seen == 3 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStop leaked: %v", err)
	}
	if seen != 3 {
		t.Fatalf("saw %d records after ErrStop at 3", seen)
	}
}

// TestIteratePartitionBounds: out-of-range partition ordinals error
// instead of silently reading the wrong bytes.
func TestIteratePartitionBounds(t *testing.T) {
	src := partitionedSource(t, 24)
	for _, part := range []int{-1, 4, 99} {
		if err := src.IteratePartition(4, part, func(*record.Record) error { return nil }); err == nil {
			t.Errorf("IteratePartition(4, %d) accepted an out-of-range ordinal", part)
		}
	}
}

// TestPartitionLayoutUnavailable: sources without a manifest index are
// not partitionable and must say so, sending the engine down the
// sequential path.
func TestPartitionLayoutUnavailable(t *testing.T) {
	src := partitionedSource(t, 30)
	src.manifest = nil // as if the corpus had no (usable) manifest
	if layout := src.PartitionLayout(8); layout != nil {
		t.Fatalf("index-less source offered layout %v", layout)
	}
	if err := src.IteratePartition(2, 0, func(*record.Record) error { return nil }); err == nil {
		t.Fatal("index-less source iterated a partition")
	}
}
