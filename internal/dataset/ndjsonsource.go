package dataset

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"repro/internal/corpus"
	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/schema"
)

// ErrStop is the sentinel a RecordIterator yield function returns to end
// iteration early without error; IterateRecords swallows it and returns
// nil.
var ErrStop = errors.New("dataset: stop iteration")

// RecordIterator is an optional Source capability: sources that can yield
// records incrementally, without materializing the whole dataset. The
// pipelined executor streams such sources from disk batch by batch, and
// the optimizer samples them without a full load.
type RecordIterator interface {
	// IterateRecords calls yield for every record in dataset order. A
	// non-nil error from yield stops iteration and is returned, except
	// ErrStop, which stops iteration and returns nil.
	IterateRecords(yield func(*record.Record) error) error
}

// SourceStats summarizes a dataset for the optimizer's cost model.
type SourceStats struct {
	// NumRecords is the dataset's exact cardinality.
	NumRecords int
	// AvgTokens is the mean per-record text size in LLM tokens,
	// estimated from a prefix sample.
	AvgTokens float64
}

// Stater is an optional Source capability: sources that know their
// cardinality and record size without materializing records (e.g. from a
// corpus manifest). The optimizer seeds its cost model from Stats instead
// of calling Records when the capability is available.
type Stater interface {
	// Stats returns the summary and whether it is trustworthy; ok=false
	// sends callers down the materializing path.
	Stats() (SourceStats, bool)
}

// PartitionedSource is an optional Source capability: datasets that can
// be read as independent contiguous partitions, each by its own range
// reader (e.g. an NDJSON corpus whose manifest carries a byte-offset
// partition index). The pipelined executor fans one source+map pipeline
// out per partition and merges the results back into exact dataset order,
// so a partitioned read is observably identical to IterateRecords — just
// spread across parallel readers.
type PartitionedSource interface {
	// PartitionLayout returns the per-partition record counts, in dataset
	// order, for a fan-out of at most max partitions. nil (or a single
	// entry) means partitioned reads are unavailable — no index, or a
	// corpus too small to split.
	PartitionLayout(max int) []int
	// IteratePartition calls yield for every record of partition part
	// (0-based) of the layout computed for parts total partitions, under
	// the same ErrStop contract as IterateRecords.
	IteratePartition(parts, part int, yield func(*record.Record) error) error
}

// EmbeddingSource is an optional Source capability: corpora that carry a
// precomputed embedding sidecar (see corpus.EmbedNDJSON). The optimizer
// only enumerates the cascade-filter physical strategy over sources with
// this capability — the prefilter is free exactly because the vectors
// were paid for once at corpus-build time.
type EmbeddingSource interface {
	// Embeddings returns the sidecar index, or (nil, nil) when the corpus
	// has no sidecar. The load is lazy and cached: a cascade is only
	// worth pricing when the capability is actually consulted.
	Embeddings() (*corpus.EmbedIndex, error)
}

// statsSampleDocs is how many leading documents Stats-capable sources
// read to estimate AvgTokens (matches the optimizer's own prefix sample).
const statsSampleDocs = 16

// NDJSONSource is a file-backed dataset over an on-disk NDJSON corpus
// (see internal/corpus: one JSON document + embedded ground truth per
// line, manifest alongside). Records yields everything for the sequential
// engine, but the source's point is the streaming capabilities: it
// implements RecordIterator, so the pipelined executor reads the file
// batch by batch in constant memory, and Stater, so the optimizer costs a
// pipeline without loading the corpus at all.
type NDJSONSource struct {
	name   string
	path   string
	schema *schema.Schema
	stats  SourceStats
	// manifest is the corpus manifest when present; its partition index
	// (if any) is what backs the PartitionedSource capability, and its
	// embeddings reference (if any) the EmbeddingSource capability.
	manifest *corpus.Manifest

	embedOnce sync.Once
	embedIx   *corpus.EmbedIndex
	embedErr  error
}

// NewNDJSONSource opens the corpus at path and prepares a source. The
// record schema is chosen from the first document's filename extension
// (".pdf" → PDFFile, ".txt" → TextFile, ...); cardinality comes from the
// manifest when present and a line count otherwise, and the average
// record size is estimated from the first documents.
func NewNDJSONSource(name, path string) (*NDJSONSource, error) {
	r, err := corpus.OpenNDJSON(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer r.Close()
	src := &NDJSONSource{name: name, path: path, stats: SourceStats{NumRecords: r.Len()},
		manifest: r.Manifest()}
	totalTokens, sampled := 0, 0
	for sampled < statsSampleDocs {
		d, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// Surface corruption at registration, with its line number,
			// rather than later from an executing pipeline.
			return nil, fmt.Errorf("dataset: %w", err)
		}
		if src.schema == nil {
			s, ok := schema.ForExtension(filepath.Ext(d.Filename))
			if !ok {
				s = schema.TextFile
			}
			src.schema = s
		}
		totalTokens += llm.CountTokens(d.Text)
		sampled++
	}
	if src.schema == nil {
		return nil, fmt.Errorf("dataset: corpus %s contains no documents", path)
	}
	if sampled > 0 {
		src.stats.AvgTokens = float64(totalTokens) / float64(sampled)
	}
	return src, nil
}

// Name implements Source.
func (n *NDJSONSource) Name() string { return n.name }

// Schema implements Source.
func (n *NDJSONSource) Schema() *schema.Schema { return n.schema }

// Path returns the backing corpus file.
func (n *NDJSONSource) Path() string { return n.path }

// Len returns the dataset's cardinality without reading records.
func (n *NDJSONSource) Len() int { return n.stats.NumRecords }

// Stats implements Stater.
func (n *NDJSONSource) Stats() (SourceStats, bool) { return n.stats, true }

// Embeddings implements EmbeddingSource: the sidecar named by the
// manifest is opened (and checksum-verified against the manifest's
// reference) once, on first use, and cached for the process lifetime.
func (n *NDJSONSource) Embeddings() (*corpus.EmbedIndex, error) {
	if n.manifest == nil || n.manifest.Embeddings == nil {
		return nil, nil
	}
	n.embedOnce.Do(func() {
		ix, err := corpus.OpenEmbedSidecar(n.path, n.manifest.Embeddings)
		if err != nil {
			n.embedErr = fmt.Errorf("dataset: %w", err)
			return
		}
		n.embedIx = ix
	})
	return n.embedIx, n.embedErr
}

// IterateRecords implements RecordIterator: each call re-opens the file
// and decodes one document at a time, so memory stays constant in the
// corpus size.
func (n *NDJSONSource) IterateRecords(yield func(*record.Record) error) error {
	r, err := corpus.OpenNDJSON(n.path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return drainDocs(r, n.schema, n.name, yield)
}

// drainDocs yields every document of r as a record under schema s and
// source name, closing r when done — the shared read loop of NDJSONSource
// and NDJSONRangeSource.
func drainDocs(r *corpus.DocReader, s *schema.Schema, source string, yield func(*record.Record) error) error {
	defer r.Close()
	for {
		d, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("dataset: %w", err)
		}
		rec, err := corpus.DocRecord(d, s, source)
		if err != nil {
			return err
		}
		if err := yield(rec); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// partitions computes the corpus partition layout for at most max
// partitions (nil without a manifest index).
func (n *NDJSONSource) partitions(max int) []corpus.Partition {
	if n.manifest == nil {
		return nil
	}
	return n.manifest.Partitions(max)
}

// PartitionRanges exposes the byte-range partition layout behind
// PartitionLayout: one corpus.Partition (ordinal, byte offset, exact
// document count) per slice of an at-most-max-way split. The cluster
// coordinator scatters these ranges across workers, each of which opens
// its own OpenNDJSONRange reader — the partition index is the cluster's
// scatter unit. nil (or a single entry) means the corpus cannot be split.
func (n *NDJSONSource) PartitionRanges(max int) []corpus.Partition {
	parts := n.partitions(max)
	if len(parts) < 2 {
		return nil
	}
	return parts
}

// PartitionLayout implements PartitionedSource: the per-partition record
// counts derived from the manifest's byte-offset index. Sources without
// an index (hand-made corpora, manifests written before the index format)
// return nil and scan sequentially.
func (n *NDJSONSource) PartitionLayout(max int) []int {
	parts := n.partitions(max)
	if len(parts) < 2 {
		return nil
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i] = p.Docs
	}
	return out
}

// IteratePartition implements PartitionedSource: an independent range
// reader seeks straight to the partition's byte offset and decodes
// exactly its documents, so concurrent partition iterations never share
// state beyond the file itself.
func (n *NDJSONSource) IteratePartition(parts, part int, yield func(*record.Record) error) error {
	layout := n.partitions(parts)
	if part < 0 || part >= len(layout) {
		return fmt.Errorf("dataset: no partition %d in %d-way layout over %s", part, len(layout), n.name)
	}
	p := layout[part]
	r, err := corpus.OpenNDJSONRange(n.path, p.Offset, p.Docs)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return drainDocs(r, n.schema, n.name, yield)
}

// Records implements Source by draining IterateRecords — the
// materializing path the sequential engine and quality scoring take.
func (n *NDJSONSource) Records() ([]*record.Record, error) {
	out := make([]*record.Record, 0, n.stats.NumRecords)
	err := n.IterateRecords(func(r *record.Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
