// Package dataset implements Palimpzest's input layer: named data sources
// that yield records. "At the core of Palimpzest, there are datasets:
// collections of input records. ... this could either be a local folder,
// for which every file will constitute an individual record; or an iterable
// object in memory, for which every item will be a record" (paper §3).
//
// A DirSource reads a folder, auto-selecting the record schema from file
// extensions (the paper's "native PDFFile schema ... automatically chosen
// ... given their extension"); a MemSource wraps in-memory records; a
// DocsSource wraps synthetic corpus documents directly. A process-wide
// Registry provides the named registration used by the chat tools.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/record"
	"repro/internal/schema"
)

// Source is a registered dataset: a name, a record schema, and a way to
// materialize records. Sources must be safe for repeated Records calls.
type Source interface {
	// Name identifies the dataset in the registry and in record lineage.
	Name() string
	// Schema is the schema of records the source yields.
	Schema() *schema.Schema
	// Records materializes all records of the dataset.
	Records() ([]*record.Record, error)
}

// MemSource is an in-memory dataset.
type MemSource struct {
	name   string
	schema *schema.Schema
	recs   []*record.Record
}

// NewMemSource builds an in-memory source. All records must conform to s.
func NewMemSource(name string, s *schema.Schema, recs []*record.Record) (*MemSource, error) {
	if s == nil {
		return nil, fmt.Errorf("dataset: nil schema for %q", name)
	}
	for i, r := range recs {
		if r.Schema() != s && !schema.Equal(r.Schema(), s) {
			return nil, fmt.Errorf("dataset %q: record %d has schema %s, want %s",
				name, i, r.Schema().Name(), s.Name())
		}
		r.SetSource(name)
	}
	return &MemSource{name: name, schema: s, recs: recs}, nil
}

// Name implements Source.
func (m *MemSource) Name() string { return m.name }

// Schema implements Source.
func (m *MemSource) Schema() *schema.Schema { return m.schema }

// Records implements Source.
func (m *MemSource) Records() ([]*record.Record, error) {
	out := make([]*record.Record, len(m.recs))
	copy(out, m.recs)
	return out, nil
}

// Len returns the number of records without materializing copies.
func (m *MemSource) Len() int { return len(m.recs) }

// Registry maps dataset names to sources. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: map[string]Source{}}
}

// Register adds a source under its name. Re-registering a name replaces the
// previous source (the chat flow re-registers while iterating).
func (r *Registry) Register(s Source) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("dataset: cannot register unnamed source")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[s.Name()] = s
	return nil
}

// Lookup returns the named source.
func (r *Registry) Lookup(name string) (Source, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sources[name]
	if !ok {
		return nil, fmt.Errorf("dataset: no dataset registered as %q (have: %v)", name, r.names())
	}
	return s, nil
}

// Names returns the sorted registered dataset names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names()
}

func (r *Registry) names() []string {
	out := make([]string, 0, len(r.sources))
	for k := range r.sources {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a registration; removing an absent name is a no-op.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sources, name)
}
