package dataset

import (
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
)

// writeSupportCorpus spills a small support corpus and returns its path.
func writeSupportCorpus(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "support.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 13})
	if _, err := corpus.SaveNDJSON(path, g, 13, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNDJSONSourceStatsAndSchema(t *testing.T) {
	src, err := NewNDJSONSource("tickets", writeSupportCorpus(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "tickets" {
		t.Errorf("name = %q", src.Name())
	}
	if !schema.Equal(src.Schema(), schema.TextFile) {
		t.Errorf("schema = %s, want TextFile for .txt filenames", src.Schema().Name())
	}
	st, ok := src.Stats()
	if !ok {
		t.Fatal("Stats() not trustworthy")
	}
	if st.NumRecords != 30 {
		t.Errorf("NumRecords = %d, want 30", st.NumRecords)
	}
	if st.AvgTokens <= 0 {
		t.Errorf("AvgTokens = %v, want > 0", st.AvgTokens)
	}
}

func TestNDJSONSourcePDFSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "papers.ndjson")
	g := corpus.NewBiomedGenerator(corpus.BiomedConfig{NumPapers: 3, NumRelevant: 1, NumDatasets: 2, Seed: 7})
	if _, err := corpus.SaveNDJSON(path, g, 7, nil); err != nil {
		t.Fatal(err)
	}
	src, err := NewNDJSONSource("papers", path)
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(src.Schema(), schema.PDFFile) {
		t.Errorf("schema = %s, want PDFFile for .pdf filenames", src.Schema().Name())
	}
}

func TestNDJSONSourceRecordsMatchDocs(t *testing.T) {
	path := writeSupportCorpus(t, 20)
	src, err := NewNDJSONSource("tickets", path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	want := corpus.GenerateSupport(corpus.SupportConfig{NumTickets: 20, UrgentRate: 0.3, Seed: 13})
	if len(recs) != len(want) {
		t.Fatalf("records = %d, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Source() != "tickets" {
			t.Fatalf("record %d source = %q", i, r.Source())
		}
		if r.GetString("filename") != want[i].Filename || r.GetString("contents") != want[i].Text {
			t.Fatalf("record %d content differs from generated doc", i)
		}
		truth := corpus.TruthOf(r)
		if truth == nil {
			t.Fatalf("record %d lost ground truth across the disk round trip", i)
		}
		if truth.Fields["ticket_id"] != want[i].Truth.Fields["ticket_id"] {
			t.Fatalf("record %d truth differs", i)
		}
	}
}

func TestNDJSONSourceIterateEarlyStop(t *testing.T) {
	src, err := NewNDJSONSource("tickets", writeSupportCorpus(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	var got []*record.Record
	err = src.IterateRecords(func(r *record.Record) error {
		got = append(got, r)
		if len(got) == 5 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStop must not surface: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("iterated %d records, want 5", len(got))
	}
}

func TestNDJSONSourceEmptyCorpusRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{})
	if _, err := corpus.SaveNDJSON(path, g, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNDJSONSource("empty", path); err == nil {
		t.Fatal("empty corpus accepted")
	}
}
