package dataset

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/pdfsim"
	"repro/internal/record"
	"repro/internal/schema"
)

// TruthSidecar is the filename of the optional ground-truth sidecar a
// corpus can leave next to its files. When present, DirSource re-attaches
// the hidden annotations to the loaded records so that the simulated LLM
// oracle and the metrics layer keep working across a disk round-trip.
const TruthSidecar = "_groundtruth.json"

// DirSource reads every regular file in a directory as one record,
// reproducing Palimpzest's local-folder datasets. The record schema is
// chosen from the dominant file extension.
type DirSource struct {
	name   string
	dir    string
	schema *schema.Schema
	files  []string
}

// NewDirSource scans dir (non-recursively) and prepares a source. The
// schema is auto-selected from the most common file extension; an empty or
// missing directory is an error.
func NewDirSource(name, dir string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var files []string
	extCount := map[string]int{}
	for _, e := range entries {
		if e.IsDir() || e.Name() == TruthSidecar || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		files = append(files, e.Name())
		extCount[filepath.Ext(e.Name())]++
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("dataset: directory %s contains no data files", dir)
	}
	sort.Strings(files)
	// Pick the dominant extension deterministically (count desc, name asc).
	exts := make([]string, 0, len(extCount))
	for e := range extCount {
		exts = append(exts, e)
	}
	sort.Slice(exts, func(i, j int) bool {
		if extCount[exts[i]] != extCount[exts[j]] {
			return extCount[exts[i]] > extCount[exts[j]]
		}
		return exts[i] < exts[j]
	})
	s, _ := schema.ForExtension(exts[0])
	return &DirSource{name: name, dir: dir, schema: s, files: files}, nil
}

// Name implements Source.
func (d *DirSource) Name() string { return d.name }

// Schema implements Source.
func (d *DirSource) Schema() *schema.Schema { return d.schema }

// Dir returns the backing directory.
func (d *DirSource) Dir() string { return d.dir }

// NumFiles returns how many files the source will read.
func (d *DirSource) NumFiles() int { return len(d.files) }

// Records implements Source: it parses every file with the reader for its
// extension and re-attaches sidecar ground truth when available.
func (d *DirSource) Records() ([]*record.Record, error) {
	truths, err := loadSidecar(filepath.Join(d.dir, TruthSidecar))
	if err != nil {
		return nil, err
	}
	var out []*record.Record
	for _, f := range d.files {
		data, err := os.ReadFile(filepath.Join(d.dir, f))
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		recs, err := parseFile(f, data, d.schema)
		if err != nil {
			return nil, fmt.Errorf("dataset: parse %s: %w", f, err)
		}
		for _, r := range recs {
			r.SetSource(d.name)
			if gt, ok := truths[f]; ok {
				r.SetTruth(corpus.TruthKey, gt)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// parseFile converts one file into records according to its extension. The
// target schema decides the shape; CSV files fan out to one record per row.
func parseFile(name string, data []byte, target *schema.Schema) ([]*record.Record, error) {
	ext := filepath.Ext(name)
	switch {
	case ext == ".pdf" || pdfsim.IsPDF(data):
		text, err := pdfsim.ExtractText(data)
		if err != nil {
			return nil, err
		}
		r, err := record.New(target, map[string]any{"filename": name, "contents": text})
		if err != nil {
			return nil, err
		}
		return []*record.Record{r}, nil
	case ext == ".csv" && schema.Equal(target, schema.CSVRow):
		return parseCSV(name, data)
	case ext == ".json":
		return parseJSON(name, data, target)
	case ext == ".html" || ext == ".htm":
		text := StripTags(string(data))
		vals := map[string]any{"contents": text}
		if target.Has("filename") {
			vals["filename"] = name
		}
		if target.Has("url") {
			vals["url"] = name
		}
		if target.Has("title") {
			vals["title"] = htmlTitle(string(data))
		}
		r, err := record.New(target, vals)
		if err != nil {
			return nil, err
		}
		return []*record.Record{r}, nil
	default:
		r, err := record.New(target, map[string]any{"filename": name, "contents": string(data)})
		if err != nil {
			return nil, err
		}
		return []*record.Record{r}, nil
	}
}

func parseCSV(name string, data []byte) ([]*record.Record, error) {
	rd := csv.NewReader(bytes.NewReader(data))
	rd.FieldsPerRecord = -1
	rows, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([]*record.Record, 0, len(rows))
	for i, row := range rows {
		r, err := record.New(schema.CSVRow, map[string]any{
			"filename": name, "row": i, "cells": row,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func parseJSON(name string, data []byte, target *schema.Schema) ([]*record.Record, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var any0 any
	if err := dec.Decode(&any0); err != nil {
		return nil, err
	}
	items, ok := any0.([]any)
	if !ok {
		items = []any{any0}
	}
	out := make([]*record.Record, 0, len(items))
	for _, it := range items {
		compact, err := json.Marshal(it)
		if err != nil {
			return nil, err
		}
		r, err := record.New(target, map[string]any{
			"filename": name, "contents": string(compact),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// StripTags removes HTML tags and collapses whitespace; a minimal visible-
// text extractor for .html inputs.
func StripTags(html string) string {
	var b strings.Builder
	inTag := false
	for _, r := range html {
		switch {
		case r == '<':
			inTag = true
			b.WriteRune(' ')
		case r == '>':
			inTag = false
		case !inTag:
			b.WriteRune(r)
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

func htmlTitle(html string) string {
	lower := strings.ToLower(html)
	i := strings.Index(lower, "<title>")
	if i < 0 {
		return ""
	}
	j := strings.Index(lower[i:], "</title>")
	if j < 0 {
		return ""
	}
	return strings.TrimSpace(html[i+len("<title>") : i+j])
}

// sidecarEntry is the JSON shape of one document's ground truth.
type sidecarEntry struct {
	Filename string        `json:"filename"`
	Truth    *corpus.Truth `json:"truth"`
}

// WriteSidecar persists ground truth for docs next to their files so that a
// later DirSource load re-attaches it.
func WriteSidecar(dir string, docs []*corpus.Doc) error {
	entries := make([]sidecarEntry, 0, len(docs))
	for _, d := range docs {
		entries = append(entries, sidecarEntry{Filename: d.Filename, Truth: d.Truth})
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, TruthSidecar), data, 0o644)
}

func loadSidecar(path string) (map[string]*corpus.Truth, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var entries []sidecarEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("dataset: bad sidecar %s: %w", path, err)
	}
	out := make(map[string]*corpus.Truth, len(entries))
	for _, e := range entries {
		out[e.Filename] = e.Truth
	}
	return out, nil
}

// MaterializeCorpus writes docs (plus the ground-truth sidecar) into dir and
// returns a DirSource over it. This is the one-call path the examples and
// experiments use to stand up a paper workload on disk.
func MaterializeCorpus(name, dir string, docs []*corpus.Doc) (*DirSource, error) {
	if _, err := corpus.WriteFiles(dir, docs); err != nil {
		return nil, err
	}
	if err := WriteSidecar(dir, docs); err != nil {
		return nil, err
	}
	return NewDirSource(name, dir)
}

// DocsSource wraps corpus documents directly (no disk round-trip). Records
// are materialized once and cached, so repeated Records calls return the
// same record instances: lineage from pipeline outputs stays joinable with
// the inputs a caller saved (the metrics layer relies on this).
type DocsSource struct {
	name   string
	schema *schema.Schema
	docs   []*corpus.Doc

	once sync.Once
	recs []*record.Record
	err  error
}

// NewDocsSource builds a source over in-memory corpus documents using the
// given record schema (must have filename/contents fields).
func NewDocsSource(name string, s *schema.Schema, docs []*corpus.Doc) (*DocsSource, error) {
	if !s.Has("filename") || !s.Has("contents") {
		return nil, fmt.Errorf("dataset: schema %s lacks filename/contents", s.Name())
	}
	return &DocsSource{name: name, schema: s, docs: docs}, nil
}

// Name implements Source.
func (d *DocsSource) Name() string { return d.name }

// Schema implements Source.
func (d *DocsSource) Schema() *schema.Schema { return d.schema }

// Records implements Source.
func (d *DocsSource) Records() ([]*record.Record, error) {
	d.once.Do(func() {
		d.recs, d.err = corpus.Records(d.docs, d.schema, d.name)
	})
	if d.err != nil {
		return nil, d.err
	}
	out := make([]*record.Record, len(d.recs))
	copy(out, d.recs)
	return out, nil
}
