package dataset

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/schema"
)

// NDJSONRangeSource is one contiguous byte-range slice of an on-disk
// NDJSON corpus, registered as a dataset in its own right: exactly docs
// documents starting at a byte offset that falls on a document boundary.
// It is the worker-side view of a scattered partition — the cluster
// coordinator splits an indexed corpus with NDJSONSource.PartitionRanges
// and each worker registers the range it was handed, so a per-partition
// sub-plan runs against precisely the records of that partition and
// nothing else. Like NDJSONSource it implements RecordIterator (constant
// memory) and Stater (the optimizer costs the sub-plan without a load).
type NDJSONRangeSource struct {
	name   string
	path   string
	offset int64
	docs   int
	schema *schema.Schema
	stats  SourceStats
}

// NewNDJSONRangeSource opens the corpus slice [offset, offset+docs) and
// prepares a source. The schema comes from the first in-range document's
// filename extension and the average record size from a leading sample,
// mirroring NewNDJSONSource; an offset off a document boundary or a range
// past EOF surfaces here, at registration, rather than mid-pipeline.
func NewNDJSONRangeSource(name, path string, offset int64, docs int) (*NDJSONRangeSource, error) {
	if docs < 1 {
		return nil, fmt.Errorf("dataset: range over %s needs at least 1 document, got %d", path, docs)
	}
	r, err := corpus.OpenNDJSONRange(path, offset, docs)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer r.Close()
	src := &NDJSONRangeSource{name: name, path: path, offset: offset, docs: docs,
		stats: SourceStats{NumRecords: docs}}
	totalTokens, sampled := 0, 0
	for sampled < statsSampleDocs && sampled < docs {
		d, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("dataset: range %s@%d wants %d documents, file ends after %d",
				path, offset, docs, sampled)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		if src.schema == nil {
			s, ok := schema.ForExtension(filepath.Ext(d.Filename))
			if !ok {
				s = schema.TextFile
			}
			src.schema = s
		}
		totalTokens += llm.CountTokens(d.Text)
		sampled++
	}
	if sampled > 0 {
		src.stats.AvgTokens = float64(totalTokens) / float64(sampled)
	}
	return src, nil
}

// Name implements Source.
func (n *NDJSONRangeSource) Name() string { return n.name }

// Schema implements Source.
func (n *NDJSONRangeSource) Schema() *schema.Schema { return n.schema }

// Stats implements Stater.
func (n *NDJSONRangeSource) Stats() (SourceStats, bool) { return n.stats, true }

// IterateRecords implements RecordIterator: each call opens a fresh range
// reader, so memory stays constant in the range size and concurrent
// iterations never share state beyond the file itself.
func (n *NDJSONRangeSource) IterateRecords(yield func(*record.Record) error) error {
	r, err := corpus.OpenNDJSONRange(n.path, n.offset, n.docs)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return drainDocs(r, n.schema, n.name, yield)
}

// Records implements Source by draining IterateRecords.
func (n *NDJSONRangeSource) Records() ([]*record.Record, error) {
	out := make([]*record.Record, 0, n.docs)
	err := n.IterateRecords(func(r *record.Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
