package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
)

func TestMemSource(t *testing.T) {
	recs := []*record.Record{
		record.MustNew(schema.TextFile, map[string]any{"filename": "a.txt", "contents": "alpha"}),
		record.MustNew(schema.TextFile, map[string]any{"filename": "b.txt", "contents": "beta"}),
	}
	src, err := NewMemSource("mem", schema.TextFile, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := src.Records()
	if err != nil || len(got) != 2 {
		t.Fatalf("Records = %d, %v", len(got), err)
	}
	if got[0].Source() != "mem" {
		t.Errorf("source = %q", got[0].Source())
	}
	if src.Len() != 2 {
		t.Errorf("Len = %d", src.Len())
	}
}

func TestMemSourceSchemaMismatch(t *testing.T) {
	recs := []*record.Record{record.MustNew(schema.PDFFile, nil)}
	if _, err := NewMemSource("m", schema.CSVRow, recs); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if _, err := NewMemSource("m", nil, nil); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	src, _ := NewMemSource("sigmod-demo", schema.TextFile, nil)
	if err := reg.Register(src); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Lookup("sigmod-demo")
	if err != nil || got.Name() != "sigmod-demo" {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := reg.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "sigmod-demo") {
		t.Errorf("missing lookup error should list names: %v", err)
	}
	src2, _ := NewMemSource("other", schema.TextFile, nil)
	_ = reg.Register(src2)
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"other", "sigmod-demo"}) {
		t.Errorf("Names = %v", got)
	}
	reg.Remove("other")
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"sigmod-demo"}) {
		t.Errorf("after Remove Names = %v", got)
	}
	if err := reg.Register(nil); err == nil {
		t.Error("nil registration accepted")
	}
}

func TestDirSourcePDFs(t *testing.T) {
	dir := t.TempDir()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	src, err := MaterializeCorpus("sigmod-demo", dir, docs)
	if err != nil {
		t.Fatal(err)
	}
	if src.Schema().Name() != "PDFFile" {
		t.Errorf("auto schema = %s, want PDFFile", src.Schema().Name())
	}
	if src.NumFiles() != 11 {
		t.Errorf("files = %d", src.NumFiles())
	}
	recs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("records = %d", len(recs))
	}
	// Ground truth survives the disk round-trip via the sidecar.
	withTruth := 0
	for _, r := range recs {
		if corpus.TruthOf(r) != nil {
			withTruth++
		}
		if !strings.Contains(r.GetString("contents"), ".") {
			t.Errorf("%s: empty-ish contents", r.GetString("filename"))
		}
		if r.Source() != "sigmod-demo" {
			t.Errorf("source = %q", r.Source())
		}
	}
	if withTruth != 11 {
		t.Errorf("records with truth = %d, want 11", withTruth)
	}
}

func TestDirSourceNoSidecar(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "note.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewDirSource("plain", dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := src.Records()
	if err != nil || len(recs) != 1 {
		t.Fatalf("records = %d, %v", len(recs), err)
	}
	if corpus.TruthOf(recs[0]) != nil {
		t.Error("unexpected ground truth without sidecar")
	}
	if src.Schema().Name() != "TextFile" {
		t.Errorf("schema = %s", src.Schema().Name())
	}
}

func TestDirSourceErrors(t *testing.T) {
	if _, err := NewDirSource("x", "/nonexistent/path"); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := NewDirSource("x", empty); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestDirSourceSkipsHiddenAndSidecar(t *testing.T) {
	dir := t.TempDir()
	_ = os.WriteFile(filepath.Join(dir, ".hidden"), []byte("x"), 0o644)
	_ = os.WriteFile(filepath.Join(dir, TruthSidecar), []byte("[]"), 0o644)
	_ = os.WriteFile(filepath.Join(dir, "real.txt"), []byte("x"), 0o644)
	src, err := NewDirSource("d", dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumFiles() != 1 {
		t.Errorf("files = %d, want 1", src.NumFiles())
	}
}

func TestParseCSVFansOut(t *testing.T) {
	dir := t.TempDir()
	csvData := "name,price\nalpha,10\nbeta,20\n"
	_ = os.WriteFile(filepath.Join(dir, "data.csv"), []byte(csvData), 0o644)
	src, err := NewDirSource("csv", dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Schema().Name() != "CSVRow" {
		t.Fatalf("schema = %s", src.Schema().Name())
	}
	recs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d, want 3 (header + 2)", len(recs))
	}
	cells, _ := recs[1].Get("cells")
	if !reflect.DeepEqual(cells, []string{"alpha", "10"}) {
		t.Errorf("cells = %v", cells)
	}
	if recs[2].GetInt("row") != 2 {
		t.Errorf("row = %d", recs[2].GetInt("row"))
	}
}

func TestParseJSONArrayFansOut(t *testing.T) {
	dir := t.TempDir()
	_ = os.WriteFile(filepath.Join(dir, "objs.json"), []byte(`[{"a":1},{"a":2}]`), 0o644)
	src, err := NewDirSource("j", dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := src.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if got := recs[0].GetString("contents"); got != `{"a":1}` {
		t.Errorf("contents = %q", got)
	}
}

func TestParseJSONScalarObject(t *testing.T) {
	dir := t.TempDir()
	_ = os.WriteFile(filepath.Join(dir, "obj.json"), []byte(`{"k":"v"}`), 0o644)
	src, _ := NewDirSource("j", dir)
	recs, err := src.Records()
	if err != nil || len(recs) != 1 {
		t.Fatalf("records = %d, %v", len(recs), err)
	}
}

func TestParseHTML(t *testing.T) {
	dir := t.TempDir()
	html := `<html><head><title>My Page</title></head><body><p>Visible <b>text</b> here.</p></body></html>`
	_ = os.WriteFile(filepath.Join(dir, "page.html"), []byte(html), 0o644)
	src, err := NewDirSource("web", dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Schema().Name() != "WebPage" {
		t.Fatalf("schema = %s", src.Schema().Name())
	}
	recs, err := src.Records()
	if err != nil || len(recs) != 1 {
		t.Fatalf("records = %d, %v", len(recs), err)
	}
	if got := recs[0].GetString("title"); got != "My Page" {
		t.Errorf("title = %q", got)
	}
	txt := recs[0].GetString("contents")
	if strings.Contains(txt, "<") || !strings.Contains(txt, "Visible text here.") {
		t.Errorf("contents = %q", txt)
	}
}

func TestStripTags(t *testing.T) {
	if got := StripTags("<a href='x'>link</a> and  <i>more</i>"); got != "link and more" {
		t.Errorf("StripTags = %q", got)
	}
	if got := StripTags("no tags"); got != "no tags" {
		t.Errorf("StripTags = %q", got)
	}
}

func TestDocsSource(t *testing.T) {
	docs := corpus.GenerateLegal(corpus.LegalConfig{NumContracts: 5, IndemnificationRate: 0.4, Seed: 1})
	src, err := NewDocsSource("legal", schema.TextFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := src.Records()
	if err != nil || len(recs) != 5 {
		t.Fatalf("records = %d, %v", len(recs), err)
	}
	if corpus.TruthOf(recs[0]) == nil {
		t.Error("DocsSource lost ground truth")
	}
	if _, err := NewDocsSource("bad", schema.CSVRow, docs); err == nil {
		t.Error("schema without contents accepted")
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docs := corpus.GenerateLegal(corpus.LegalConfig{NumContracts: 3, IndemnificationRate: 1, Seed: 2})
	if _, err := corpus.WriteFiles(dir, docs); err != nil {
		t.Fatal(err)
	}
	if err := WriteSidecar(dir, docs); err != nil {
		t.Fatal(err)
	}
	truths, err := loadSidecar(filepath.Join(dir, TruthSidecar))
	if err != nil {
		t.Fatal(err)
	}
	if len(truths) != 3 {
		t.Fatalf("truths = %d", len(truths))
	}
	for _, d := range docs {
		gt := truths[d.Filename]
		if gt == nil || !gt.Labels[corpus.IndemnificationLabel] {
			t.Errorf("%s: sidecar truth wrong: %+v", d.Filename, gt)
		}
		if gt.Fields["party_a"] != d.Truth.Fields["party_a"] {
			t.Errorf("%s: fields lost", d.Filename)
		}
	}
}

func TestLoadSidecarErrors(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, TruthSidecar)
	if got, err := loadSidecar(p); got != nil || err != nil {
		t.Errorf("missing sidecar: %v, %v", got, err)
	}
	_ = os.WriteFile(p, []byte("not json"), 0o644)
	if _, err := loadSidecar(p); err == nil {
		t.Error("corrupt sidecar accepted")
	}
}
