package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The NDJSON corpus format: one JSON-encoded Doc per line (filename, full
// text, embedded Truth), written in generator order, plus a manifest JSON
// file alongside (corpus path + ManifestSuffix) recording how the corpus
// was produced and a SHA-256 checksum of the NDJSON bytes. The format is
// append-only and line-delimited, so writers stream with constant memory
// and readers never need the whole file: internal/dataset registers these
// files as lazily-iterated sources, and cmd/pzcorpus generates, validates,
// and summarizes them.

// ManifestSuffix is appended to a corpus path to name its manifest file:
// "corpus.ndjson" → "corpus.ndjson.manifest.json".
const ManifestSuffix = ".manifest.json"

// NDJSONFormatVersion is the current on-disk format version, recorded in
// every manifest.
const NDJSONFormatVersion = 1

// Manifest describes one on-disk NDJSON corpus: provenance (domain, seed,
// config), counts, and the checksum `pzcorpus validate` re-derives.
type Manifest struct {
	// FormatVersion is the NDJSON corpus format version.
	FormatVersion int `json:"format_version"`
	// Domain is the generating domain name ("" for hand-made corpora).
	Domain string `json:"domain,omitempty"`
	// NumDocs is the number of document lines in the corpus file.
	NumDocs int `json:"num_docs"`
	// Seed is the generator seed the corpus was produced with.
	Seed int64 `json:"seed,omitempty"`
	// Config is the generator config, verbatim, for reproduction.
	Config json.RawMessage `json:"config,omitempty"`
	// SHA256 is the hex checksum of the corpus file's bytes.
	SHA256 string `json:"sha256"`
	// Bytes is the corpus file's size.
	Bytes int64 `json:"bytes"`
	// LabelCounts counts documents whose Truth sets each label true —
	// the corpus's class balance at a glance.
	LabelCounts map[string]int `json:"label_counts,omitempty"`
	// Index is the byte-offset partition index (see PartitionIndex):
	// checkpoint offsets that let partition-parallel scans open one range
	// reader per corpus slice. Absent on corpora written before the index
	// existed; back-fill with IndexNDJSON / `pzcorpus index`.
	Index *PartitionIndex `json:"index,omitempty"`
	// Embeddings references the per-document embedding sidecar file (see
	// EmbeddingsRef and the format comment in embed.go). Absent on corpora
	// without one; back-fill with EmbedNDJSON / `pzcorpus embed`.
	Embeddings *EmbeddingsRef `json:"embeddings,omitempty"`
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteNDJSON drains g to w as NDJSON and returns the manifest describing
// what was written (checksum, byte count, label counts). Memory is one
// document plus the generator's own footprint, so an index-addressable
// generator spills any corpus size with constant memory.
func WriteNDJSON(w io.Writer, g Generator) (*Manifest, error) {
	h := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(w, h)}
	bw := bufio.NewWriterSize(cw, 1<<16)
	// lw counts encoded bytes above the buffer, so lw.n is always the byte
	// offset of the next document line — the partition index checkpoints.
	lw := &countingWriter{w: bw}
	enc := json.NewEncoder(lw)
	enc.SetEscapeHTML(false)

	m := &Manifest{
		FormatVersion: NDJSONFormatVersion,
		Domain:        g.Domain(),
		LabelCounts:   map[string]int{},
	}
	ix := newIndexBuilder()
	for {
		d, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("corpus: generate doc %d: %w", m.NumDocs, err)
		}
		ix.note(m.NumDocs, lw.n)
		if err := enc.Encode(d); err != nil {
			return nil, fmt.Errorf("corpus: encode doc %d: %w", m.NumDocs, err)
		}
		m.NumDocs++
		if d.Truth != nil {
			for label, v := range d.Truth.Labels {
				if v {
					m.LabelCounts[label]++
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	m.Bytes = cw.n
	m.SHA256 = hex.EncodeToString(h.Sum(nil))
	m.Index = ix.index(m.NumDocs)
	return m, nil
}

// SaveNDJSON writes g's corpus to path and the manifest next to it. seed
// and config document provenance (config may be nil; it is stored
// verbatim as JSON). Returns the written manifest.
func SaveNDJSON(path string, g Generator, seed int64, config any) (*Manifest, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	m, err := WriteNDJSON(f, g)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	m.Seed = seed
	if config != nil {
		raw, err := json.Marshal(config)
		if err != nil {
			return nil, fmt.Errorf("corpus: marshal config: %w", err)
		}
		m.Config = raw
	}
	if err := WriteManifest(path, m); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteManifest stores m next to the corpus at path.
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return os.WriteFile(path+ManifestSuffix, append(data, '\n'), 0o644)
}

// ReadManifest loads the manifest of the corpus at path. os.IsNotExist
// holds on the returned error when the corpus has no manifest.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path + ManifestSuffix)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corpus: bad manifest for %s: %w", path, err)
	}
	// Reject malformed counts and indexes here, before they can size
	// allocations (Len-capacity slices) or aim range readers at garbage
	// offsets. A corrupt manifest is an error, not a crash.
	if m.NumDocs < 0 || m.Bytes < 0 {
		return nil, fmt.Errorf("corpus: bad manifest for %s: negative counts (docs=%d bytes=%d)", path, m.NumDocs, m.Bytes)
	}
	if m.Index != nil {
		if err := m.Index.check(m.NumDocs, m.Bytes); err != nil {
			return nil, fmt.Errorf("corpus: bad manifest for %s: %w", path, err)
		}
	}
	if m.Embeddings != nil {
		if err := m.Embeddings.check(m.NumDocs); err != nil {
			return nil, fmt.Errorf("corpus: bad manifest for %s: %w", path, err)
		}
	}
	return &m, nil
}

// maxNDJSONLine bounds one corpus line (a full document plus JSON
// escaping); generated documents top out around 32 KB.
const maxNDJSONLine = 8 << 20

// DocReader streams documents from an NDJSON corpus file one line at a
// time. It implements Generator, so a file-backed corpus flows through
// the same API as a synthetic one (Collect, WriteNDJSON, validation).
// Close it when done; Next returns io.EOF at end of file — or, for a
// range reader (OpenNDJSONRange), after the range's document count.
type DocReader struct {
	domain string
	n      int
	// remaining is the document budget of a range reader; -1 means
	// unlimited (a whole-file reader).
	remaining int
	manifest  *Manifest
	f         *os.File
	sc        *bufio.Scanner
	line      int
}

// OpenNDJSON opens the corpus at path. Domain and document count come
// from the manifest when present; a manifest-less file is counted with
// one streaming pre-pass so Len stays exact.
func OpenNDJSON(path string) (*DocReader, error) {
	r := &DocReader{remaining: -1}
	m, err := ReadManifest(path)
	switch {
	case err == nil:
		r.domain, r.n, r.manifest = m.Domain, m.NumDocs, m
	case os.IsNotExist(err):
		n, cerr := countLines(path)
		if cerr != nil {
			return nil, cerr
		}
		r.n = n
	default:
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	r.f = f
	r.sc = newLineScanner(f)
	return r, nil
}

func newLineScanner(rd io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64<<10), maxNDJSONLine)
	return sc
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	sc := newLineScanner(f)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

// Domain implements Generator (empty for manifest-less corpora).
func (r *DocReader) Domain() string { return r.domain }

// Manifest returns the corpus manifest OpenNDJSON loaded (nil for
// manifest-less corpora and range readers), saving callers a second
// read-and-validate pass.
func (r *DocReader) Manifest() *Manifest { return r.manifest }

// Len implements Generator.
func (r *DocReader) Len() int { return r.n }

// Next implements Generator: it decodes the next non-empty line (stopping
// at the range's document budget for a range reader).
func (r *DocReader) Next() (*Doc, error) {
	if r.remaining == 0 {
		return nil, io.EOF
	}
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var d Doc
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, fmt.Errorf("corpus: %s line %d: %w", r.f.Name(), r.line, err)
		}
		if r.remaining > 0 {
			r.remaining--
		}
		return &d, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", r.f.Name(), err)
	}
	return nil, io.EOF
}

// Close releases the underlying file.
func (r *DocReader) Close() error { return r.f.Close() }
