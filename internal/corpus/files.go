package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/pdfsim"
	"repro/internal/record"
	"repro/internal/schema"
)

// WriteFiles materializes docs into dir. Documents whose filename ends in
// .pdf are wrapped in the simulated PDF container; all others are written as
// plain text. It returns the written paths in docs order.
func WriteFiles(dir string, docs []*Doc) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	paths := make([]string, 0, len(docs))
	for _, d := range docs {
		p := filepath.Join(dir, d.Filename)
		var data []byte
		if strings.HasSuffix(d.Filename, ".pdf") {
			data = pdfsim.Encode(titleOf(d.Text), d.Text)
		} else {
			data = []byte(d.Text)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			return nil, fmt.Errorf("corpus: write %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Records wraps docs into records of the given schema. The schema must have
// "filename" and "contents" string fields (the built-in file schemas do).
// Each record carries the document's ground truth under TruthKey and its
// source set to sourceName.
func Records(docs []*Doc, s *schema.Schema, sourceName string) ([]*record.Record, error) {
	out := make([]*record.Record, 0, len(docs))
	for _, d := range docs {
		r, err := DocRecord(d, s, sourceName)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DocRecord wraps one document into a record of the given schema (which
// must have "filename" and "contents" string fields), carrying the
// document's ground truth under TruthKey — the per-document unit behind
// Records, used by streaming sources that never hold a whole corpus.
func DocRecord(d *Doc, s *schema.Schema, sourceName string) (*record.Record, error) {
	r, err := record.New(s, map[string]any{
		"filename": d.Filename,
		"contents": d.Text,
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	r.SetSource(sourceName)
	r.SetTruth(TruthKey, d.Truth)
	return r, nil
}

// TruthOf retrieves the ground truth attached to a record (nil when the
// record has none, e.g. user-supplied data).
func TruthOf(r *record.Record) *Truth {
	v, ok := r.Truth(TruthKey)
	if !ok {
		return nil
	}
	t, _ := v.(*Truth)
	return t
}
