package corpus

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Generator is the streaming generation API: documents are produced one at
// a time, in a deterministic order fixed by the generator's config and
// seed. The index-addressable generators behind the two scale domains
// (support, finance) run in constant memory at any corpus size; the three
// paper-demo domains (biomed, legal, realestate) materialize their slice
// first because their document interleave is a trailing shuffle over the
// whole collection — they are paper-exact shapes, not scale corpora.
//
// For every domain, the slice API (GenerateX) and the streaming API
// (NewXGenerator) yield byte-identical documents for the same config:
// GenerateX is defined as collecting the stream (new domains), or the
// stream is defined as iterating the slice (paper domains).
type Generator interface {
	// Domain names the workload domain ("support", "finance", ...).
	Domain() string
	// Len is the total number of documents the generator yields.
	Len() int
	// Next returns the next document, or io.EOF after the last one. A
	// generator is single-use; construct a new one to re-stream.
	Next() (*Doc, error)
}

// Domain name constants, as accepted by NewGenerator and cmd/pzcorpus.
const (
	DomainBiomed     = "biomed"
	DomainLegal      = "legal"
	DomainRealEstate = "realestate"
	DomainSupport    = "support"
	DomainFinance    = "finance"
)

// Collect drains a generator into a slice. Only reader-backed generators
// (e.g. an NDJSON DocReader) can return an error; the synthetic domain
// generators never do.
func Collect(g Generator) ([]*Doc, error) {
	docs := make([]*Doc, 0, g.Len())
	for {
		d, err := g.Next()
		if err == io.EOF {
			return docs, nil
		}
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
}

// SliceGenerator streams a pre-materialized document slice — the adapter
// that gives the paper-demo domains the Generator interface. Memory is
// O(len(docs)), paid by whoever built the slice.
type SliceGenerator struct {
	domain string
	docs   []*Doc
	next   int
}

// NewSliceGenerator wraps docs in a single-use streaming view.
func NewSliceGenerator(domain string, docs []*Doc) *SliceGenerator {
	return &SliceGenerator{domain: domain, docs: docs}
}

// Domain implements Generator.
func (g *SliceGenerator) Domain() string { return g.domain }

// Len implements Generator.
func (g *SliceGenerator) Len() int { return len(g.docs) }

// Next implements Generator.
func (g *SliceGenerator) Next() (*Doc, error) {
	if g.next >= len(g.docs) {
		return nil, io.EOF
	}
	d := g.docs[g.next]
	g.next++
	return d, nil
}

// indexGen is the constant-memory generator base of the scale domains:
// document i is produced by gen(i) from a per-index RNG (see docRNG), so
// the stream holds no state beyond a cursor and any prefix of the corpus
// is independent of the rest.
type indexGen struct {
	domain string
	n      int
	next   int
	gen    func(i int) *Doc
}

// Domain implements Generator.
func (g *indexGen) Domain() string { return g.domain }

// Len implements Generator.
func (g *indexGen) Len() int { return g.n }

// Next implements Generator.
func (g *indexGen) Next() (*Doc, error) {
	if g.next >= g.n {
		return nil, io.EOF
	}
	d := g.gen(g.next)
	g.next++
	return d, nil
}

// mix64 derives a statistically independent per-document seed from the
// corpus seed and a document index (splitmix64 finalizer).
func mix64(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(int64(i)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// docRNG is the per-document RNG of the index-addressable generators:
// document i's content depends only on (seed, i), never on how many
// documents were generated before it.
func docRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(mix64(seed, i)))
}

// scatter maps document indices to pseudo-random positions in [0, n) via
// an affine permutation with a seed-derived stride coprime to n. Testing
// pos(i) < k marks exactly k documents as the positive class, spread
// across the corpus, with constant memory — the streaming replacement for
// "generate positives first, then shuffle".
type scatter struct {
	n, stride, offset int
}

func newScatter(seed int64, n int) scatter {
	if n <= 1 {
		return scatter{n: n, stride: 1}
	}
	h := uint64(mix64(seed, -7))
	stride := 1 + int(h%uint64(n-1))
	for gcd(stride, n) != 1 {
		stride++
		if stride >= n {
			stride = 1
		}
	}
	offset := int((h >> 32) % uint64(n))
	return scatter{n: n, stride: stride, offset: offset}
}

func (s scatter) pos(i int) int {
	if s.n <= 1 {
		return 0
	}
	// 64-bit arithmetic: i*stride reaches ~1e10 on a 100k corpus, which
	// would overflow (and go negative) on 32-bit platforms and break the
	// cross-platform byte-for-byte determinism guarantee.
	return int((int64(i)*int64(s.stride) + int64(s.offset)) % int64(s.n))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Streaming views of the paper-demo domains. These materialize the slice
// (the legacy generators interleave documents with a trailing shuffle) and
// stream it; use them for API uniformity, not for memory savings.

// NewBiomedGenerator streams GenerateBiomed(cfg).
func NewBiomedGenerator(cfg BiomedConfig) Generator {
	return NewSliceGenerator(DomainBiomed, GenerateBiomed(cfg))
}

// NewLegalGenerator streams GenerateLegal(cfg).
func NewLegalGenerator(cfg LegalConfig) Generator {
	return NewSliceGenerator(DomainLegal, GenerateLegal(cfg))
}

// NewRealEstateGenerator streams GenerateRealEstate(cfg).
func NewRealEstateGenerator(cfg RealEstateConfig) Generator {
	return NewSliceGenerator(DomainRealEstate, GenerateRealEstate(cfg))
}

// Domain describes one corpus domain: how to build a generator from the
// common (size, rate, seed) knobs, and how to check a generated document's
// domain-specific Truth/text consistency. cmd/pzcorpus and the docs
// enumerate domains through this registry.
type Domain struct {
	// Name is the registry key ("support", "biomed", ...).
	Name string
	// Description is a one-line summary for CLI help and docs.
	Description string
	// Workload names the demo scenario the domain backs.
	Workload string
	// DefaultDocs is the corpus size used when the caller gives none.
	DefaultDocs int
	// DefaultRate is the domain's positive-class fraction (relevant
	// papers, urgent tickets, ...) when the caller gives none.
	DefaultRate float64
	// Streaming reports whether New returns a constant-memory,
	// index-addressable generator (false for the paper-demo domains,
	// which materialize their slice first).
	Streaming bool
	// New builds a generator of n documents. rate overrides the domain's
	// positive-class fraction when >= 0; pass a negative rate for the
	// default.
	New func(n int, rate float64, seed int64) Generator
	// Validate checks domain-specific consistency between a document's
	// Truth and its text (nil when the generic checks suffice).
	Validate func(*Doc) error
}

// domains is the registry backing Domains and NewGenerator.
var domains = map[string]Domain{
	DomainBiomed: {
		Name:        DomainBiomed,
		Description: "biomedical papers with embedded public-dataset mentions",
		Workload:    "scientific discovery (filter + one-to-many extraction)",
		DefaultDocs: 11, DefaultRate: 5.0 / 11,
		New: func(n int, rate float64, seed int64) Generator {
			if rate < 0 {
				rate = 5.0 / 11
			}
			relevant := int(float64(n)*rate + 0.5)
			// Keep dataset mentions proportional (the E9 scaling ratio)
			// so selectivities, and therefore plan choices, track size.
			return NewBiomedGenerator(BiomedConfig{
				NumPapers: n, NumRelevant: relevant,
				NumDatasets: relevant * 6 / 5, Seed: seed,
			})
		},
		Validate: validateBiomedDoc,
	},
	DomainLegal: {
		Name:        DomainLegal,
		Description: "contracts, a fraction carrying indemnification clauses",
		Workload:    "legal discovery (clause filter + party extraction)",
		DefaultDocs: 40, DefaultRate: 0.4,
		New: func(n int, rate float64, seed int64) Generator {
			if rate < 0 {
				rate = 0.4
			}
			return NewLegalGenerator(LegalConfig{NumContracts: n, IndemnificationRate: rate, Seed: seed})
		},
		Validate: validateLegalDoc,
	},
	DomainRealEstate: {
		Name:        DomainRealEstate,
		Description: "property listings with prices, sizes, and modern/dated interiors",
		Workload:    "real-estate search (semantic filter + aggregation)",
		DefaultDocs: 120, DefaultRate: 0.35,
		New: func(n int, rate float64, seed int64) Generator {
			if rate < 0 {
				rate = 0.35
			}
			return NewRealEstateGenerator(RealEstateConfig{NumListings: n, ModernRate: rate, Seed: seed})
		},
		Validate: validateRealEstateDoc,
	},
	DomainSupport: {
		Name:        DomainSupport,
		Description: "customer-support tickets for triage and routing",
		Workload:    "support triage (urgency filter + category routing)",
		DefaultDocs: 200, DefaultRate: 0.3,
		Streaming: true,
		New: func(n int, rate float64, seed int64) Generator {
			if rate < 0 {
				rate = 0.3
			}
			return NewSupportGenerator(SupportConfig{NumTickets: n, UrgentRate: rate, Seed: seed})
		},
		Validate: validateSupportDoc,
	},
	DomainFinance: {
		Name:        DomainFinance,
		Description: "annual financial filings with extractable key figures",
		Workload:    "financial analysis (profitability filter + numeric extraction)",
		DefaultDocs: 150, DefaultRate: 0.6,
		Streaming: true,
		New: func(n int, rate float64, seed int64) Generator {
			if rate < 0 {
				rate = 0.6
			}
			return NewFinanceGenerator(FinanceConfig{NumFilings: n, ProfitableRate: rate, Seed: seed})
		},
		Validate: validateFinanceDoc,
	},
}

// Domains returns every registered domain, sorted by name.
func Domains() []Domain {
	out := make([]Domain, 0, len(domains))
	for _, d := range domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DomainByName looks a domain up in the registry.
func DomainByName(name string) (Domain, bool) {
	d, ok := domains[name]
	return d, ok
}

// NewGenerator builds a generator for the named domain with the common
// knobs: n documents (the domain default when n <= 0), positive-class rate
// (the domain default when negative), and seed.
func NewGenerator(domain string, n int, rate float64, seed int64) (Generator, error) {
	d, ok := domains[domain]
	if !ok {
		names := make([]string, 0, len(domains))
		for _, dd := range Domains() {
			names = append(names, dd.Name)
		}
		return nil, fmt.Errorf("corpus: unknown domain %q (have: %v)", domain, names)
	}
	if n <= 0 {
		n = d.DefaultDocs
	}
	return d.New(n, rate, seed), nil
}
