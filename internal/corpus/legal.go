package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// LegalConfig controls the legal-contracts generator used by the paper's
// legal-discovery demo scenario.
type LegalConfig struct {
	// NumContracts is the collection size.
	NumContracts int
	// IndemnificationRate is the fraction of contracts containing an
	// indemnification clause (the scenario's filter target).
	IndemnificationRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultLegal returns the legal-discovery workload used by examples and
// benches: 40 contracts, 40% with indemnification clauses.
func DefaultLegal() LegalConfig {
	return LegalConfig{NumContracts: 40, IndemnificationRate: 0.4, Seed: 7}
}

// IndemnificationLabel is the ground-truth boolean label set on contracts
// that contain an indemnification clause.
const IndemnificationLabel = "indemnification"

// ClauseMentionKind is the Mention.Kind for contract clauses.
const ClauseMentionKind = "clause"

var companyA = []string{
	"Acme Logistics LLC", "Borealis Software Inc", "Cobalt Manufacturing Corp",
	"Delta Freight Partners", "Evergreen Data Systems", "Foxglove Pharmaceuticals",
	"Granite Peak Holdings", "Harbor Light Media",
}

var companyB = []string{
	"Ironwood Capital Group", "Juniper Cloud Services", "Kestrel Analytics Ltd",
	"Lakeshore Retail Co", "Meridian Health Partners", "Northgate Construction",
	"Obsidian Security Inc", "Pinnacle Foods Corp",
}

var contractKinds = []string{
	"Master Services Agreement", "Software License Agreement",
	"Supply Agreement", "Consulting Agreement", "Non-Disclosure Agreement",
}

var neutralClauses = []struct{ name, text string }{
	{"governing law", "This Agreement shall be governed by the laws of the State of Delaware without regard to conflict of law principles."},
	{"termination", "Either party may terminate this Agreement upon thirty days written notice to the other party."},
	{"confidentiality", "Each party shall hold the other party's Confidential Information in strict confidence and use it solely to perform its obligations."},
	{"payment terms", "Invoices are payable net forty-five days from receipt; late amounts accrue interest at one percent per month."},
	{"force majeure", "Neither party shall be liable for delay caused by events beyond its reasonable control, including natural disasters and labor disputes."},
	{"assignment", "Neither party may assign this Agreement without the prior written consent of the other party, not to be unreasonably withheld."},
}

const indemnificationText = "Each party (the Indemnifying Party) shall indemnify, defend, and hold harmless the other party from and against any and all claims, damages, liabilities, and expenses arising out of the Indemnifying Party's breach of this Agreement or negligence."

// GenerateLegal produces the synthetic contract collection. Each contract's
// ground truth carries the parties, effective date, contract kind, and
// whether an indemnification clause is present (plus the clause mentions).
func GenerateLegal(cfg LegalConfig) []*Doc {
	if cfg.NumContracts <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numIndem := int(float64(cfg.NumContracts)*cfg.IndemnificationRate + 0.5)

	docs := make([]*Doc, 0, cfg.NumContracts)
	for i := 0; i < cfg.NumContracts; i++ {
		hasIndem := i < numIndem
		docs = append(docs, genContract(rng, i, hasIndem))
	}
	docs = shuffled(rng, docs)
	for i, d := range docs {
		d.Filename = fmt.Sprintf("contract-%03d.txt", i+1)
	}
	return docs
}

func genContract(rng *rand.Rand, idx int, hasIndem bool) *Doc {
	pa := pick(rng, companyA)
	pb := pick(rng, companyB)
	kind := pick(rng, contractKinds)
	year := 2019 + rng.Intn(6)
	month := 1 + rng.Intn(12)
	day := 1 + rng.Intn(28)
	date := fmt.Sprintf("%04d-%02d-%02d", year, month, day)
	termMonths := 12 * (1 + rng.Intn(4))

	clauses := shuffled(rng, neutralClauses)[:3+rng.Intn(3)]

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", strings.ToUpper(kind))
	fmt.Fprintf(&b, "This %s (the Agreement) is entered into as of %s (the Effective Date) by and between %s and %s.\n\n",
		kind, date, pa, pb)
	fmt.Fprintf(&b, "1. Term. The initial term of this Agreement is %d months from the Effective Date.\n\n", termMonths)
	truth := &Truth{
		Topics: []string{"contract", strings.ToLower(kind)},
		Labels: map[string]bool{IndemnificationLabel: hasIndem},
		Fields: map[string]string{
			"party_a":        pa,
			"party_b":        pb,
			"effective_date": date,
			"contract_kind":  kind,
		},
		Numbers: map[string]float64{"term_months": float64(termMonths)},
	}
	sec := 2
	for _, c := range clauses {
		fmt.Fprintf(&b, "%d. %s. %s\n\n", sec, titleWords(c.name), c.text)
		truth.Mentions = append(truth.Mentions, Mention{
			Kind:   ClauseMentionKind,
			Fields: map[string]string{"name": c.name, "text": c.text},
		})
		sec++
	}
	if hasIndem {
		fmt.Fprintf(&b, "%d. Indemnification. %s\n\n", sec, indemnificationText)
		truth.Mentions = append(truth.Mentions, Mention{
			Kind:   ClauseMentionKind,
			Fields: map[string]string{"name": "indemnification", "text": indemnificationText},
		})
		truth.Topics = append(truth.Topics, "indemnification")
		sec++
	}
	fmt.Fprintf(&b, "IN WITNESS WHEREOF, the parties have executed this Agreement as of the Effective Date.\n%s\n%s\n", pa, pb)
	return &Doc{Text: b.String(), Truth: truth}
}

func titleWords(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		fields[i] = strings.ToUpper(f[:1]) + f[1:]
	}
	return strings.Join(fields, " ")
}
