package corpus

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzEmbedSidecar hammers the embedding-sidecar reader and the
// manifest's embeddings-reference validation with arbitrary bytes:
// whatever the sidecar file and the manifest's reference claim —
// truncated headers, hostile dimension/count geometry, checksum and key
// mismatches — loading must fail with errors, never panic, and never
// allocate beyond what the actual file size supports. Mirrors
// FuzzNDJSONRead. Run longer with
// `go test -fuzz FuzzEmbedSidecar ./internal/corpus`.
func FuzzEmbedSidecar(f *testing.F) {
	// A well-formed one-doc corpus + sidecar as the happy-path seed.
	ix := NewEmbedIndex(2)
	ix.Add("a.txt", []float64{0.5, -0.5})
	var side []byte
	{
		hdr := make([]byte, embedHeaderBytes)
		copy(hdr, embedMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:], EmbedFormatVersion)
		binary.LittleEndian.PutUint32(hdr[12:], 2)
		binary.LittleEndian.PutUint64(hdr[16:], 1)
		row := make([]byte, 8+8)
		binary.LittleEndian.PutUint64(row, FilenameKey("a.txt"))
		binary.LittleEndian.PutUint32(row[8:], math.Float32bits(0.5))
		binary.LittleEndian.PutUint32(row[12:], math.Float32bits(-0.5))
		side = append(hdr, row...)
	}
	corpusLine := []byte(`{"filename":"a.txt","text":"alpha beta","truth":{"labels":{"x":true}}}` + "\n")

	f.Add(side, corpusLine, 2, 1, false)
	f.Add([]byte(nil), corpusLine, 2, 1, false)
	f.Add(side[:embedHeaderBytes], corpusLine, 2, 0, true)
	f.Add(side[:10], corpusLine, 2, 1, true)                               // truncated header
	f.Add(append([]byte("XXXXXXXX"), side[8:]...), corpusLine, 2, 1, true) // bad magic
	f.Add(side, corpusLine, 4096, 1, true)                                 // dim disagrees with file
	f.Add(side, corpusLine, -1, -7, true)                                  // negative geometry
	{
		huge := append([]byte(nil), side...)
		binary.LittleEndian.PutUint64(huge[16:], 1<<50) // header claims absurd count
		f.Add(huge, corpusLine, 2, 1, true)
	}

	f.Fuzz(func(t *testing.T, sideBytes, corpusBytes []byte, dim, count int, withManifest bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.ndjson")
		if err := os.WriteFile(path, corpusBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+EmbedSuffix, sideBytes, 0o644); err != nil {
			t.Fatal(err)
		}

		// Direct open, with and without a manifest reference. Success
		// must imply the in-memory geometry matches the file exactly —
		// the reader may never allocate rows the file cannot back.
		checkOpen := func(ref *EmbeddingsRef) {
			got, err := OpenEmbedSidecar(path, ref)
			if err != nil {
				return
			}
			if got.Dim() < 1 || got.Dim() > MaxEmbedDim || got.Len() < 0 {
				t.Fatalf("loaded impossible geometry dim=%d len=%d", got.Dim(), got.Len())
			}
			if want := embedSize(got.Dim(), got.Len()); want != int64(len(sideBytes)) {
				t.Fatalf("loaded %d vectors of dim %d from a %d-byte file (want %d bytes)",
					got.Len(), got.Dim(), len(sideBytes), want)
			}
		}
		checkOpen(nil)
		ref := &EmbeddingsRef{
			File:       "fuzz.ndjson" + EmbedSuffix,
			SHA256:     "0000000000000000000000000000000000000000000000000000000000000000",
			Dim:        dim,
			NumVectors: count,
			Bytes:      int64(len(sideBytes)),
		}
		checkOpen(ref)

		if withManifest {
			// A manifest carrying the (possibly hostile) reference:
			// ReadManifest must reject impossible geometry before any
			// reader can act on it, and validation must never panic.
			manifest := fmt.Sprintf(
				`{"format_version":1,"num_docs":%d,"sha256":"","bytes":%d,"embeddings":{"file":%q,"sha256":%q,"dim":%d,"num_vectors":%d,"bytes":%d}}`,
				count, len(corpusBytes), ref.File, ref.SHA256, dim, count, len(sideBytes))
			if err := os.WriteFile(path+ManifestSuffix, []byte(manifest), 0o644); err != nil {
				t.Fatal(err)
			}
			if m, err := ReadManifest(path); err == nil && m.Embeddings != nil {
				if m.Embeddings.Dim < 1 || m.Embeddings.Dim > MaxEmbedDim || m.Embeddings.NumVectors < 0 {
					t.Fatalf("manifest accepted impossible embeddings geometry: %+v", m.Embeddings)
				}
			}
			if rep, err := ValidateNDJSON(path); err == nil && rep.Docs < 0 {
				t.Fatalf("validation counted %d docs", rep.Docs)
			}
		}
	})
}
