package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// RealEstateConfig controls the listings generator used by the paper's
// real-estate search demo scenario.
type RealEstateConfig struct {
	// NumListings is the number of listings to generate.
	NumListings int
	// ModernRate is the fraction of listings with a modern, recently
	// renovated interior (the scenario's semantic filter target).
	ModernRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultRealEstate returns the real-estate workload used by examples and
// benches: 120 listings, 35% modern.
func DefaultRealEstate() RealEstateConfig {
	return RealEstateConfig{NumListings: 120, ModernRate: 0.35, Seed: 11}
}

// ModernLabel is the ground-truth label for modern/renovated listings.
const ModernLabel = "modern"

var neighborhoods = []string{
	"Back Bay", "Beacon Hill", "Cambridgeport", "Davis Square", "East Boston",
	"Fenway", "Jamaica Plain", "Kendall Square", "North End", "South End",
	"Somerville", "Charlestown",
}

var streets = []string{
	"Maple Street", "Oak Avenue", "Harbor Road", "Elm Court", "Beacon Street",
	"Main Street", "Chestnut Lane", "Willow Way", "Park Drive", "River Road",
}

var modernPhrases = []string{
	"Fully renovated in the last two years with a sleek modern kitchen and quartz countertops",
	"Contemporary open floor plan with floor-to-ceiling windows and smart home controls",
	"Brand new stainless appliances, recessed lighting, and polished concrete floors",
	"Designer finishes throughout with an updated spa-like bathroom and new HVAC",
}

var datedPhrases = []string{
	"Charming older unit with original hardwood and vintage fixtures, ready for your updates",
	"Classic layout with dated kitchen; great bones and plenty of potential",
	"Well-kept traditional interior featuring wall-to-wall carpet and oak cabinetry",
	"Estate sale condition; appliances are functional but original to the building",
}

// GenerateRealEstate produces the synthetic listings. Ground truth carries
// address, neighborhood, price, bedrooms, bathrooms, square footage, and
// the modern/dated label.
func GenerateRealEstate(cfg RealEstateConfig) []*Doc {
	if cfg.NumListings <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numModern := int(float64(cfg.NumListings)*cfg.ModernRate + 0.5)

	docs := make([]*Doc, 0, cfg.NumListings)
	for i := 0; i < cfg.NumListings; i++ {
		docs = append(docs, genListing(rng, i, i < numModern))
	}
	docs = shuffled(rng, docs)
	for i, d := range docs {
		d.Filename = fmt.Sprintf("listing-%03d.txt", i+1)
	}
	return docs
}

func genListing(rng *rand.Rand, idx int, modern bool) *Doc {
	num := 10 + rng.Intn(990)
	street := pick(rng, streets)
	hood := pick(rng, neighborhoods)
	address := fmt.Sprintf("%d %s, %s", num, street, hood)
	beds := 1 + rng.Intn(4)
	baths := 1 + rng.Intn(3)
	sqft := 450 + 50*rng.Intn(40) + 220*beds
	base := 320000 + 155000*beds + 90000*baths + 410*sqft/10
	if modern {
		base = base * 120 / 100
	}
	price := float64(base + 1000*rng.Intn(50))

	phrase := pick(rng, datedPhrases)
	if modern {
		phrase = pick(rng, modernPhrases)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Listing: %s\n\n", address)
	fmt.Fprintf(&b, "Price: %s\n", fmtUSD(price))
	fmt.Fprintf(&b, "Bedrooms: %d  Bathrooms: %d  Size: %d sqft\n\n", beds, baths, sqft)
	fmt.Fprintf(&b, "Description. %s. Located in %s with easy access to transit and local shops. ", phrase, hood)
	fmt.Fprintf(&b, "Monthly HOA fee of $%d. Listed by Harborview Realty.\n", 150+10*rng.Intn(40))

	topics := []string{"real estate", hood}
	if modern {
		topics = append(topics, "modern renovated")
	}
	truth := &Truth{
		Topics: topics,
		Labels: map[string]bool{ModernLabel: modern},
		Fields: map[string]string{
			"address":      address,
			"neighborhood": hood,
		},
		Numbers: map[string]float64{
			"price":     price,
			"bedrooms":  float64(beds),
			"bathrooms": float64(baths),
			"sqft":      float64(sqft),
		},
	}
	return &Doc{Text: b.String(), Truth: truth}
}
