package corpus

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// embedTestCorpus generates a small support corpus with a manifest at a
// temp path and returns the corpus path.
func embedTestCorpus(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "support.ndjson")
	g, err := NewGenerator(DomainSupport, n, -1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveNDJSON(path, g, 7, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// testEmbed is a deterministic stand-in embedding function.
func testEmbed(text string) []float64 {
	v := make([]float64, 4)
	for i := 0; i < len(text); i++ {
		v[i%4] += float64(text[i]%13) - 6
	}
	return v
}

func TestEmbedNDJSONRoundTrip(t *testing.T) {
	path := embedTestCorpus(t, 20)
	m, err := EmbedNDJSON(path, 4, testEmbed)
	if err != nil {
		t.Fatal(err)
	}
	if m.Embeddings == nil {
		t.Fatal("manifest has no embeddings reference")
	}
	if m.Embeddings.Dim != 4 || m.Embeddings.NumVectors != 20 {
		t.Fatalf("bad reference geometry: %+v", m.Embeddings)
	}

	// The rewritten manifest must still read back (ReadManifest validates
	// the reference), and the sidecar must load and agree with it.
	m2, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := OpenEmbedSidecar(path, m2.Embeddings)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 20 || ix.Dim() != 4 {
		t.Fatalf("loaded %d vectors of dim %d, want 20 of 4", ix.Len(), ix.Dim())
	}

	// Row vectors must round-trip by filename (within float32 precision).
	r, err := OpenNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	docs, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		got, ok := ix.Vector(d.Filename)
		if !ok {
			t.Fatalf("no vector for %s", d.Filename)
		}
		want := testEmbed(d.Text)
		for i := range want {
			if diff := got[i] - want[i]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("%s component %d: got %v want %v", d.Filename, i, got[i], want[i])
			}
		}
	}

	// Full corpus validation must pass with the sidecar attached.
	rep, err := ValidateNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("validation failed: %v", rep.Errors)
	}
}

func TestOpenEmbedSidecarRejectsCorruption(t *testing.T) {
	path := embedTestCorpus(t, 8)
	if _, err := EmbedNDJSON(path, 4, testEmbed); err != nil {
		t.Fatal(err)
	}
	side := path + EmbedSuffix
	good, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			if err := os.WriteFile(side, mutate(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenEmbedSidecar(path, m.Embeddings); err == nil {
				t.Fatal("corrupt sidecar loaded without error")
			}
		})
	}

	corrupt("truncated-header", func(b []byte) []byte { return b[:10] })
	corrupt("truncated-rows", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad-version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], 99)
		return b
	})
	corrupt("dim-mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[12:], 8)
		return b
	})
	corrupt("huge-count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 1<<40)
		return b
	})
	corrupt("flipped-payload-byte", func(b []byte) []byte {
		b[len(b)-1] ^= 0xff // breaks the checksum (and possibly finiteness)
		return b
	})
}

func TestReadManifestRejectsBadEmbeddingsRef(t *testing.T) {
	path := embedTestCorpus(t, 5)
	if _, err := EmbedNDJSON(path, 4, testEmbed); err != nil {
		t.Fatal(err)
	}
	manifest := path + ManifestSuffix
	good, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(name, from, to string) {
		t.Run(name, func(t *testing.T) {
			s := strings.Replace(string(good), from, to, 1)
			if s == string(good) {
				t.Fatalf("replacement %q not applied", from)
			}
			if err := os.WriteFile(manifest, []byte(s), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadManifest(path); err == nil {
				t.Fatal("bad manifest accepted")
			}
			if err := os.WriteFile(manifest, good, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
	bad("negative-dim", `"dim": 4`, `"dim": -1`)
	bad("oversized-dim", `"dim": 4`, `"dim": 99999`)
	bad("count-mismatch", `"num_vectors": 5`, `"num_vectors": 6`)
	bad("short-digest", m1stShaPrefix(string(good)), `"sha256": "abc"`)
}

// m1stShaPrefix finds the embeddings sha256 line to replace (the manifest
// has two sha256 fields; the embeddings one is inside the nested object).
func m1stShaPrefix(manifest string) string {
	i := strings.Index(manifest, `"embeddings"`)
	j := strings.Index(manifest[i:], `"sha256"`)
	k := strings.Index(manifest[i+j:], `,`)
	return manifest[i+j : i+j+k]
}

func TestValidateNDJSONDetectsForeignSidecar(t *testing.T) {
	// A sidecar regenerated from a different corpus (wrong keys) must fail
	// validation even when its own geometry is self-consistent.
	pathA := embedTestCorpus(t, 6)
	if _, err := EmbedNDJSON(pathA, 4, testEmbed); err != nil {
		t.Fatal(err)
	}
	// Overwrite with vectors keyed by the wrong filenames but keep the
	// manifest ref in sync (size and checksum valid).
	ix := NewEmbedIndex(4)
	for i := 0; i < 6; i++ {
		ix.Add("someone-else.txt"+string(rune('a'+i)), []float64{1, 2, 3, 4})
	}
	f, err := os.Create(pathA + EmbedSuffix)
	if err != nil {
		t.Fatal(err)
	}
	n, sum, err := WriteEmbedSidecar(f, ix)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(pathA)
	if err != nil {
		t.Fatal(err)
	}
	m.Embeddings.SHA256 = sum
	m.Embeddings.Bytes = n
	if err := WriteManifest(pathA, m); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateNDJSON(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("validation passed with a foreign sidecar")
	}
}
