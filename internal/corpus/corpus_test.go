package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pdfsim"
	"repro/internal/schema"
)

func TestPaperDemoBiomedShape(t *testing.T) {
	cfg := PaperDemoBiomed()
	docs := GenerateBiomed(cfg)
	if len(docs) != 11 {
		t.Fatalf("papers = %d, want 11", len(docs))
	}
	relevant, datasets := 0, 0
	urls := map[string]bool{}
	for _, d := range docs {
		if d.Truth.HasTopic(ColorectalTopic) {
			relevant++
		}
		for _, m := range d.Truth.MentionsOfKind(DatasetMentionKind) {
			datasets++
			urls[m.Fields["url"]] = true
			// Every mention must be visible in the document text: the
			// pipeline has to be able to extract it.
			if !strings.Contains(d.Text, m.Fields["name"]) || !strings.Contains(d.Text, m.Fields["url"]) {
				t.Errorf("mention %q not embedded in text of %s", m.Fields["name"], d.Filename)
			}
		}
	}
	if relevant != cfg.NumRelevant {
		t.Errorf("relevant papers = %d, want %d", relevant, cfg.NumRelevant)
	}
	if datasets != 6 {
		t.Errorf("dataset mentions = %d, want 6 (the paper's reported count)", datasets)
	}
	if len(urls) != 6 {
		t.Errorf("distinct urls = %d, want 6", len(urls))
	}
}

func TestBiomedDeterministic(t *testing.T) {
	a := GenerateBiomed(PaperDemoBiomed())
	b := GenerateBiomed(PaperDemoBiomed())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Filename != b[i].Filename || a[i].Text != b[i].Text {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestBiomedSeedChangesOutput(t *testing.T) {
	cfg := PaperDemoBiomed()
	cfg2 := cfg
	cfg2.Seed = 99
	a, b := GenerateBiomed(cfg), GenerateBiomed(cfg2)
	same := true
	for i := range a {
		if a[i].Text != b[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestBiomedIrrelevantHaveNoDatasets(t *testing.T) {
	for _, d := range GenerateBiomed(PaperDemoBiomed()) {
		if !d.Truth.HasTopic(ColorectalTopic) {
			if len(d.Truth.MentionsOfKind(DatasetMentionKind)) != 0 {
				t.Errorf("irrelevant paper %s has dataset mentions", d.Filename)
			}
			if d.Truth.Labels["colorectal"] {
				t.Errorf("irrelevant paper %s labeled colorectal", d.Filename)
			}
		}
	}
}

func TestBiomedEdgeConfigs(t *testing.T) {
	if docs := GenerateBiomed(BiomedConfig{}); docs != nil {
		t.Errorf("zero papers should give nil, got %d", len(docs))
	}
	docs := GenerateBiomed(BiomedConfig{NumPapers: 2, NumRelevant: 5, NumDatasets: 100, Seed: 1})
	if len(docs) != 2 {
		t.Fatalf("clamped papers = %d", len(docs))
	}
}

func TestGenerateLegalShape(t *testing.T) {
	cfg := DefaultLegal()
	docs := GenerateLegal(cfg)
	if len(docs) != 40 {
		t.Fatalf("contracts = %d, want 40", len(docs))
	}
	indem := 0
	for _, d := range docs {
		if d.Truth.Labels[IndemnificationLabel] {
			indem++
			if !strings.Contains(d.Text, "Indemnification") {
				t.Errorf("%s labeled indemnification but clause missing from text", d.Filename)
			}
		} else if strings.Contains(d.Text, "Indemnification") {
			t.Errorf("%s has clause but label false", d.Filename)
		}
		for _, k := range []string{"party_a", "party_b", "effective_date"} {
			v := d.Truth.Fields[k]
			if v == "" || !strings.Contains(d.Text, v) {
				t.Errorf("%s: ground-truth field %s=%q not in text", d.Filename, k, v)
			}
		}
	}
	if want := 16; indem != want {
		t.Errorf("indemnification contracts = %d, want %d (40 * 0.4)", indem, want)
	}
}

func TestGenerateRealEstateShape(t *testing.T) {
	cfg := DefaultRealEstate()
	docs := GenerateRealEstate(cfg)
	if len(docs) != 120 {
		t.Fatalf("listings = %d, want 120", len(docs))
	}
	modern := 0
	for _, d := range docs {
		if d.Truth.Labels[ModernLabel] {
			modern++
		}
		if d.Truth.Numbers["price"] <= 0 || d.Truth.Numbers["bedrooms"] <= 0 {
			t.Errorf("%s: bad numbers %v", d.Filename, d.Truth.Numbers)
		}
		if !strings.Contains(d.Text, d.Truth.Fields["address"]) {
			t.Errorf("%s: address not in text", d.Filename)
		}
	}
	if want := 42; modern != want {
		t.Errorf("modern listings = %d, want %d (120 * 0.35)", modern, want)
	}
}

func TestModernListingsCostMore(t *testing.T) {
	docs := GenerateRealEstate(DefaultRealEstate())
	var modSum, modN, oldSum, oldN float64
	for _, d := range docs {
		if d.Truth.Labels[ModernLabel] {
			modSum += d.Truth.Numbers["price"]
			modN++
		} else {
			oldSum += d.Truth.Numbers["price"]
			oldN++
		}
	}
	if modSum/modN <= oldSum/oldN {
		t.Errorf("modern mean %.0f <= dated mean %.0f", modSum/modN, oldSum/oldN)
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	docs := GenerateBiomed(BiomedConfig{NumPapers: 3, NumRelevant: 1, NumDatasets: 2, Seed: 5})
	paths, err := WriteFiles(dir, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !pdfsim.IsPDF(data) {
		t.Error(".pdf file not in simulated PDF container")
	}
	text, err := pdfsim.ExtractText(data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Abstract") {
		t.Errorf("extracted text lost content: %q", text[:60])
	}
	// Text corpora are written verbatim.
	legal, err := WriteFiles(dir, GenerateLegal(LegalConfig{NumContracts: 1, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(legal[0])
	if pdfsim.IsPDF(raw) {
		t.Error(".txt contract wrapped as PDF")
	}
	if filepath.Ext(legal[0]) != ".txt" {
		t.Errorf("contract extension = %s", filepath.Ext(legal[0]))
	}
}

func TestRecordsAndTruthOf(t *testing.T) {
	docs := GenerateBiomed(BiomedConfig{NumPapers: 2, NumRelevant: 1, NumDatasets: 1, Seed: 9})
	recs, err := Records(docs, schema.PDFFile, "demo-src")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.Source() != "demo-src" {
			t.Errorf("source = %q", r.Source())
		}
		gt := TruthOf(r)
		if gt == nil {
			t.Fatalf("record %d lost ground truth", i)
		}
		if gt != docs[i].Truth {
			t.Errorf("record %d truth mismatch", i)
		}
		if r.GetString("contents") != docs[i].Text {
			t.Errorf("record %d contents mismatch", i)
		}
	}
}

func TestTruthHelpers(t *testing.T) {
	tr := &Truth{
		Topics: []string{"colorectal cancer", "gene mutation"},
		Mentions: []Mention{
			{Kind: "dataset", Fields: map[string]string{"name": "A"}},
			{Kind: "clause", Fields: map[string]string{"name": "B"}},
		},
	}
	if !tr.HasTopic("papers about COLORECTAL CANCER") {
		t.Error("HasTopic should match query containing topic")
	}
	if !tr.HasTopic("cancer") {
		t.Error("HasTopic should match topic containing query")
	}
	if tr.HasTopic("real estate") {
		t.Error("HasTopic false positive")
	}
	if got := tr.MentionsOfKind("dataset"); len(got) != 1 || got[0].Fields["name"] != "A" {
		t.Errorf("MentionsOfKind = %v", got)
	}
}

func TestFmtUSD(t *testing.T) {
	cases := map[float64]string{
		999:     "$999",
		1000:    "$1,000",
		650000:  "$650,000",
		1234567: "$1,234,567",
	}
	for in, want := range cases {
		if got := fmtUSD(in); got != want {
			t.Errorf("fmtUSD(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSlugify(t *testing.T) {
	if got := slugify("KRAS mutation landscapes!"); got != "kras-mutation-landscapes" {
		t.Errorf("slugify = %q", got)
	}
}
