package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestNDJSONRoundTrip(t *testing.T) {
	cfg := SupportConfig{NumTickets: 25, UrgentRate: 0.4, Seed: 8}
	want := GenerateSupport(cfg)
	path := filepath.Join(t.TempDir(), "support.ndjson")
	m, err := SaveNDJSON(path, NewSupportGenerator(cfg), cfg.Seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDocs != 25 || m.Domain != DomainSupport || m.Seed != 8 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.LabelCounts[UrgentLabel] != 10 {
		t.Errorf("manifest urgent count = %d, want 10", m.LabelCounts[UrgentLabel])
	}

	r, err := OpenNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Domain() != DomainSupport || r.Len() != 25 {
		t.Fatalf("reader domain=%q len=%d", r.Domain(), r.Len())
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d docs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Filename != want[i].Filename || got[i].Text != want[i].Text {
			t.Fatalf("doc %d content differs after round trip", i)
		}
		if !reflect.DeepEqual(got[i].Truth, want[i].Truth) {
			t.Fatalf("doc %d truth differs after round trip:\n got %+v\nwant %+v",
				i, got[i].Truth, want[i].Truth)
		}
	}
}

func TestWriteNDJSONChecksumIsContentOnly(t *testing.T) {
	cfg := FinanceConfig{NumFilings: 10, ProfitableRate: 0.5, Seed: 4}
	var a, b bytes.Buffer
	ma, err := WriteNDJSON(&a, NewFinanceGenerator(cfg))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := WriteNDJSON(&b, NewFinanceGenerator(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if ma.SHA256 != mb.SHA256 || ma.Bytes != mb.Bytes {
		t.Fatal("same config produced different NDJSON bytes")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("buffers differ")
	}
}

func TestOpenNDJSONWithoutManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.ndjson")
	var buf bytes.Buffer
	if _, err := WriteNDJSON(&buf, NewSupportGenerator(SupportConfig{NumTickets: 7, UrgentRate: 0.3, Seed: 2})); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 7 {
		t.Errorf("line-count fallback Len = %d, want 7", r.Len())
	}
	if r.Domain() != "" {
		t.Errorf("manifest-less Domain = %q, want empty", r.Domain())
	}
	docs, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 7 {
		t.Errorf("read %d docs", len(docs))
	}
}

func TestValidateNDJSONPassesFreshCorpus(t *testing.T) {
	for _, domain := range []string{DomainBiomed, DomainLegal, DomainRealEstate, DomainSupport, DomainFinance} {
		g, err := NewGenerator(domain, 40, -1, 6)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), domain+".ndjson")
		if _, err := SaveNDJSON(path, g, 6, nil); err != nil {
			t.Fatal(err)
		}
		rep, err := ValidateNDJSON(path)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("%s: fresh corpus failed validation: %v", domain, rep.Errors)
		}
		if rep.Docs != 40 {
			t.Errorf("%s: validated %d docs", domain, rep.Docs)
		}
	}
}

func TestValidateNDJSONCatchesCorruption(t *testing.T) {
	write := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "c.ndjson")
		g := NewSupportGenerator(SupportConfig{NumTickets: 12, UrgentRate: 0.5, Seed: 5})
		if _, err := SaveNDJSON(path, g, 5, nil); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("flipped byte fails checksum", func(t *testing.T) {
		path := write(t)
		data, _ := os.ReadFile(path)
		i := bytes.Index(data, []byte("Priority: P"))
		data[i+len("Priority: P")] ^= 1
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ValidateNDJSON(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatal("corrupted corpus validated")
		}
		if !strings.Contains(strings.Join(rep.Errors, "\n"), "checksum") {
			t.Errorf("no checksum error in %v", rep.Errors)
		}
	})

	t.Run("truncated file fails count and checksum", func(t *testing.T) {
		path := write(t)
		data, _ := os.ReadFile(path)
		half := data[:len(data)/2]
		half = half[:bytes.LastIndexByte(half, '\n')+1] // keep whole lines
		if err := os.WriteFile(path, half, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ValidateNDJSON(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatal("truncated corpus validated")
		}
	})

	t.Run("garbage line reported with line number", func(t *testing.T) {
		path := write(t)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("{not json\n"); err != nil {
			t.Fatal(err)
		}
		f.Close()
		rep, err := ValidateNDJSON(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatal("garbage line validated")
		}
		if !strings.Contains(strings.Join(rep.Errors, "\n"), "line 13") {
			t.Errorf("expected a line-13 error, got %v", rep.Errors)
		}
	})

	t.Run("missing manifest passes with a note", func(t *testing.T) {
		path := write(t)
		if err := os.Remove(path + ManifestSuffix); err != nil {
			t.Fatal(err)
		}
		rep, err := ValidateNDJSON(path)
		if err != nil {
			t.Fatal(err)
		}
		// Hand-made corpora have no manifest; content checks alone must
		// suffice, with the limitation surfaced as a note, not an error.
		if !rep.OK() {
			t.Fatalf("manifest-less corpus failed: %v", rep.Errors)
		}
		if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "manifest") {
			t.Fatalf("missing-manifest note absent: %v", rep.Notes)
		}
	})
}
