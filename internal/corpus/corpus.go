// Package corpus generates the synthetic, ground-truthed document
// collections that stand in for the paper's demo datasets: biomedical
// papers (the §3 scientific-discovery scenario), legal contracts (legal
// discovery), and real-estate listings (real-estate search).
//
// Every generated record carries hidden ground-truth annotations (topic
// labels, extractable entity mentions, scalar fields). The simulated LLM in
// internal/llm reads these through its oracle to decide answers, and the
// metrics package scores pipeline outputs against them. Generation is fully
// deterministic given a seed, so experiments and golden tests are
// reproducible.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Truth is the hidden ground-truth annotation attached to a generated
// document. It is stored on records under the "gt" truth key.
type Truth struct {
	// Topics are the subjects this document is genuinely about, e.g.
	// ["colorectal cancer", "gene mutation"].
	Topics []string
	// Mentions are extractable entities embedded in the text, e.g. public
	// dataset references. Kind discriminates entity families.
	Mentions []Mention
	// Labels are named boolean properties ("indemnification": true).
	Labels map[string]bool
	// Fields are scalar extractable string attributes ("party_a": "...").
	Fields map[string]string
	// Numbers are numeric attributes ("price": 650000).
	Numbers map[string]float64
}

// Mention is one extractable entity with named attributes.
type Mention struct {
	Kind   string
	Fields map[string]string
}

// TruthKey is the record truth-annotation key under which a *Truth is
// stored.
const TruthKey = "gt"

// Doc is one generated document before it is wrapped in a record: a
// filename, full text, and its ground truth.
type Doc struct {
	Filename string
	Text     string
	Truth    *Truth
}

// HasTopic reports whether the document is about a topic whose name shares
// terms with the query (case-insensitive substring either way).
func (t *Truth) HasTopic(query string) bool {
	q := strings.ToLower(strings.TrimSpace(query))
	for _, topic := range t.Topics {
		tl := strings.ToLower(topic)
		if strings.Contains(q, tl) || strings.Contains(tl, q) {
			return true
		}
	}
	return false
}

// MentionsOfKind returns the mentions of the given kind.
func (t *Truth) MentionsOfKind(kind string) []Mention {
	var out []Mention
	for _, m := range t.Mentions {
		if m.Kind == kind {
			out = append(out, m)
		}
	}
	return out
}

// pick returns a random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// shuffled returns a shuffled copy of xs.
func shuffled[T any](rng *rand.Rand, xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// sentenceJoin joins sentences with spaces and ensures terminal periods.
func sentenceJoin(ss ...string) string {
	var b strings.Builder
	for i, s := range ss {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(s)
		if !strings.HasSuffix(s, ".") && !strings.HasSuffix(s, "!") && !strings.HasSuffix(s, "?") {
			b.WriteString(".")
		}
	}
	return b.String()
}

// slugify converts a title into a filename stem.
func slugify(s string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteRune('-')
				lastDash = true
			}
		}
	}
	return strings.Trim(b.String(), "-")
}

// fmtUSD renders a dollar amount with thousands separators.
func fmtUSD(v float64) string {
	n := int64(v)
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return "$" + strings.Join(parts, ",")
}
