// Package corpus generates the synthetic, ground-truthed document
// collections behind every workload in this repro. Five domains are
// registered (see Domains): biomedical papers (the §3 scientific-discovery
// scenario), legal contracts (legal discovery), real-estate listings
// (real-estate search), customer-support tickets (triage/routing), and
// financial filings (numeric extraction).
//
// Every generated document carries a hidden Truth annotation (topic
// labels, extractable entity mentions, scalar fields, numbers). The
// simulated LLM in internal/llm reads it through its oracle to decide
// answers, and the metrics package scores pipeline outputs against it.
//
// Determinism guarantees: generation is a pure function of the domain
// config, whose Seed fixes every random choice — same config, same corpus,
// byte for byte, on any platform. Each domain offers two equivalent APIs:
// a slice API (GenerateBiomed, GenerateSupport, ...) that materializes the
// corpus, and a streaming API (Generator, NewSupportGenerator, ...) that
// yields documents one at a time; for a given config the two produce
// identical document sequences. The support and finance generators are
// index-addressable — document i depends only on (seed, i) — so streaming
// them runs in constant memory at any corpus size. Corpora can be spilled
// to disk in the NDJSON format (one Doc per line plus a checksummed
// manifest; see WriteNDJSON) and registered file-backed through
// internal/dataset without loading them whole.
//
// The Truth contract: a Doc's Truth must be answerable from its Text —
// every Fields value, Mention field value, and Numbers rendering appears
// in the text, and boolean Labels agree with what the text states — so
// the oracle's gold answers are always ones a perfect real model could
// also produce. ValidateDoc (plus per-domain checks via
// Domain.Validate) enforces this; `pzcorpus validate` applies it to
// on-disk corpora.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Truth is the hidden ground-truth annotation attached to a generated
// document. It is stored on records under the "gt" truth key. The JSON
// tags define its on-disk shape in both the NDJSON corpus format and the
// directory ground-truth sidecar.
type Truth struct {
	// Topics are the subjects this document is genuinely about, e.g.
	// ["colorectal cancer", "gene mutation"].
	Topics []string `json:"topics,omitempty"`
	// Mentions are extractable entities embedded in the text, e.g. public
	// dataset references. Kind discriminates entity families.
	Mentions []Mention `json:"mentions,omitempty"`
	// Labels are named boolean properties ("indemnification": true).
	Labels map[string]bool `json:"labels,omitempty"`
	// Fields are scalar extractable string attributes ("party_a": "...").
	Fields map[string]string `json:"fields,omitempty"`
	// Numbers are numeric attributes ("price": 650000).
	Numbers map[string]float64 `json:"numbers,omitempty"`
}

// Mention is one extractable entity with named attributes.
type Mention struct {
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields"`
}

// TruthKey is the record truth-annotation key under which a *Truth is
// stored.
const TruthKey = "gt"

// Doc is one generated document before it is wrapped in a record: a
// filename, full text, and its ground truth. A Doc is also one line of
// the NDJSON corpus format (see WriteNDJSON), which the JSON tags define.
type Doc struct {
	Filename string `json:"filename"`
	Text     string `json:"text"`
	Truth    *Truth `json:"truth"`
}

// HasTopic reports whether the document is about a topic whose name shares
// terms with the query (case-insensitive substring either way).
func (t *Truth) HasTopic(query string) bool {
	q := strings.ToLower(strings.TrimSpace(query))
	for _, topic := range t.Topics {
		tl := strings.ToLower(topic)
		if strings.Contains(q, tl) || strings.Contains(tl, q) {
			return true
		}
	}
	return false
}

// MentionsOfKind returns the mentions of the given kind.
func (t *Truth) MentionsOfKind(kind string) []Mention {
	var out []Mention
	for _, m := range t.Mentions {
		if m.Kind == kind {
			out = append(out, m)
		}
	}
	return out
}

// pick returns a random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// shuffled returns a shuffled copy of xs.
func shuffled[T any](rng *rand.Rand, xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// sentenceJoin joins sentences with spaces and ensures terminal periods.
func sentenceJoin(ss ...string) string {
	var b strings.Builder
	for i, s := range ss {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(s)
		if !strings.HasSuffix(s, ".") && !strings.HasSuffix(s, "!") && !strings.HasSuffix(s, "?") {
			b.WriteString(".")
		}
	}
	return b.String()
}

// slugify converts a title into a filename stem.
func slugify(s string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteRune('-')
				lastDash = true
			}
		}
	}
	return strings.Trim(b.String(), "-")
}

// fmtUSD renders a dollar amount with thousands separators.
func fmtUSD(v float64) string {
	return "$" + groupDigits(int64(v))
}

// groupDigits renders n with thousands separators ("650,000").
func groupDigits(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := ""
	if strings.HasPrefix(s, "-") {
		neg, s = "-", s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return neg + strings.Join(parts, ",")
}
