package corpus

import (
	"fmt"
	"math/rand"
)

// SDK hooks for building domains outside this package — most notably the
// config-driven domain specs of internal/corpus/spec. They expose the
// exact primitives the hand-written scale domains (support, finance) are
// built from, so an externally-defined domain can be draw-for-draw
// compatible with a hand-written twin: the same per-document RNG
// derivation, the same positive-class scatter, and the same
// index-addressable generator base.

// DocRNG returns the per-document RNG of the index-addressable
// generators: document i's stream depends only on (seed, i), never on how
// many documents were generated before it. Domains built on DocRNG are
// constant-memory at any corpus size and can be range-partitioned freely.
func DocRNG(seed int64, i int) *rand.Rand { return docRNG(seed, i) }

// NewIndexGenerator builds a streaming generator over an index-addressable
// document function: gen(i) must be a pure function of i (derive all
// randomness from DocRNG). n <= 0 yields an empty generator.
func NewIndexGenerator(domain string, n int, gen func(i int) *Doc) Generator {
	if n <= 0 {
		return &indexGen{domain: domain}
	}
	return &indexGen{domain: domain, n: n, gen: gen}
}

// PositiveScatter marks exactly round(n*rate) of n documents as the
// positive class (urgent tickets, profitable filings, ...), spread
// pseudo-randomly across the corpus with constant memory — the streaming
// replacement for "generate positives first, then shuffle". It is the
// same scatter the hand-written scale domains use, so a spec-compiled
// twin marks the same document indices positive.
type PositiveScatter struct {
	s scatter
	k int
}

// NewPositiveScatter derives a scatter from (seed, n) with a positive
// count of round(n*rate). Rates outside [0,1] are clamped.
func NewPositiveScatter(seed int64, n int, rate float64) PositiveScatter {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return PositiveScatter{s: newScatter(seed, n), k: int(float64(n)*rate + 0.5)}
}

// Positive reports whether document i belongs to the positive class.
func (p PositiveScatter) Positive(i int) bool { return p.s.pos(i) < p.k }

// Positives returns how many documents are positive.
func (p PositiveScatter) Positives() int { return p.k }

// RegisterDomain adds a domain to the registry behind Domains, DomainByName,
// and NewGenerator, making it reachable from every corpus entry point
// (`pzcorpus generate`, manifest-driven validation, the pzbench harness)
// exactly like the built-in Go domains. The name must be non-empty and
// not already registered.
func RegisterDomain(d Domain) error {
	if d.Name == "" {
		return fmt.Errorf("corpus: registered domain has no name")
	}
	if d.New == nil {
		return fmt.Errorf("corpus: domain %q has no generator constructor", d.Name)
	}
	if _, exists := domains[d.Name]; exists {
		return fmt.Errorf("corpus: domain %q already registered", d.Name)
	}
	domains[d.Name] = d
	return nil
}
