package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Corpus validation: the checks behind `pzcorpus validate`. ValidateDoc
// enforces the Truth contract on one document — the annotation must be
// internally consistent and answerable from the text, so the simulated
// oracle's gold answers are ones a perfect real model could produce.
// ValidateNDJSON applies it to every line of an on-disk corpus and
// re-derives the manifest checksum.

// ValidateDoc checks the generic Truth contract: the document is named
// and non-empty, carries at least one annotation, and every Fields value,
// Mention field value, and Numbers rendering is present in the text
// (case-insensitively), so the oracle can answer extraction requests from
// content a real model could also see.
func ValidateDoc(d *Doc) error {
	if d.Filename == "" {
		return fmt.Errorf("empty filename")
	}
	if strings.TrimSpace(d.Text) == "" {
		return fmt.Errorf("%s: empty text", d.Filename)
	}
	t := d.Truth
	if t == nil {
		return fmt.Errorf("%s: no ground truth", d.Filename)
	}
	if len(t.Topics)+len(t.Labels)+len(t.Fields)+len(t.Numbers)+len(t.Mentions) == 0 {
		return fmt.Errorf("%s: truth carries no annotations", d.Filename)
	}
	lower := strings.ToLower(d.Text)
	for _, topic := range t.Topics {
		if strings.TrimSpace(topic) == "" {
			return fmt.Errorf("%s: blank topic", d.Filename)
		}
	}
	for k, v := range t.Fields {
		if v == "" {
			return fmt.Errorf("%s: field %s is empty", d.Filename, k)
		}
		if !strings.Contains(lower, strings.ToLower(v)) {
			return fmt.Errorf("%s: field %s=%q not present in text", d.Filename, k, v)
		}
	}
	for i, m := range t.Mentions {
		if m.Kind == "" {
			return fmt.Errorf("%s: mention %d has no kind", d.Filename, i)
		}
		for k, v := range m.Fields {
			if v != "" && !strings.Contains(lower, strings.ToLower(v)) {
				return fmt.Errorf("%s: mention %d field %s=%q not present in text", d.Filename, i, k, v)
			}
		}
	}
	for k, n := range t.Numbers {
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return fmt.Errorf("%s: number %s is not finite", d.Filename, k)
		}
		if !numberInText(d.Text, n) {
			return fmt.Errorf("%s: number %s=%v not present in text", d.Filename, k, n)
		}
	}
	return nil
}

// fnv64 hashes s with FNV-1a (inline to avoid allocating a hash.Hash64
// per line in the validation loop).
func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// numberInText reports whether any conventional rendering of v appears in
// text: plain integer, thousands-grouped integer, or fixed/shortest float.
func numberInText(text string, v float64) bool {
	if v == math.Trunc(v) {
		n := int64(v)
		return strings.Contains(text, strconv.FormatInt(n, 10)) ||
			strings.Contains(text, groupDigits(n))
	}
	return strings.Contains(text, strconv.FormatFloat(v, 'f', 2, 64)) ||
		strings.Contains(text, strconv.FormatFloat(v, 'g', -1, 64))
}

// Domain validators for the paper-demo domains (the scale domains define
// theirs next to their generators).

func validateBiomedDoc(d *Doc) error {
	crc := d.Truth.Labels["colorectal"]
	if crc != d.Truth.HasTopic(ColorectalTopic) {
		return fmt.Errorf("colorectal label %t disagrees with topics %v", crc, d.Truth.Topics)
	}
	if !crc && len(d.Truth.MentionsOfKind(DatasetMentionKind)) > 0 {
		return fmt.Errorf("off-topic paper carries dataset mentions")
	}
	return nil
}

func validateLegalDoc(d *Doc) error {
	indem := d.Truth.Labels[IndemnificationLabel]
	if indem != strings.Contains(d.Text, "Indemnification") {
		return fmt.Errorf("indemnification label %t disagrees with text", indem)
	}
	return nil
}

func validateRealEstateDoc(d *Doc) error {
	if d.Truth.Numbers["price"] <= 0 {
		return fmt.Errorf("non-positive price %v", d.Truth.Numbers["price"])
	}
	if d.Truth.Numbers["bedrooms"] < 1 {
		return fmt.Errorf("listing has %v bedrooms", d.Truth.Numbers["bedrooms"])
	}
	return nil
}

// maxValidationErrors caps how many per-line problems one validation run
// reports before giving up on a corpus.
const maxValidationErrors = 20

// ValidationReport is the outcome of validating one on-disk corpus.
type ValidationReport struct {
	// Path is the corpus file checked.
	Path string
	// Docs, Bytes, and SHA256 are re-derived from the file.
	Docs   int
	Bytes  int64
	SHA256 string
	// LabelCounts are re-derived true-label counts.
	LabelCounts map[string]int
	// Errors lists every problem found (manifest mismatches, contract
	// violations), capped at maxValidationErrors.
	Errors []string
	// Notes are informational observations that do not fail validation
	// (e.g. a hand-made corpus with no manifest, which limits the run to
	// content checks).
	Notes []string
}

// OK reports whether the corpus passed every check.
func (r *ValidationReport) OK() bool { return len(r.Errors) == 0 }

func (r *ValidationReport) errf(format string, args ...any) bool {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	return len(r.Errors) >= maxValidationErrors
}

// ValidateNDJSON checks the corpus at path in one streaming pass:
// checksum and counts are re-derived and compared against the manifest,
// and every line must decode, carry a unique filename, and satisfy
// ValidateDoc plus the generating domain's Validate hook. I/O failures
// return an error; content problems land in the report's Errors. A
// corpus without a manifest can still pass — the limitation is recorded
// in Notes and only the content checks apply.
func ValidateNDJSON(path string) (*ValidationReport, error) {
	rep := &ValidationReport{Path: path, LabelCounts: map[string]int{}}
	m, err := ReadManifest(path)
	if os.IsNotExist(err) {
		// Hand-made corpora legitimately have no manifest; note it and
		// run the content checks alone.
		m = nil
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("manifest %s missing: content checks only, no checksum verification", path+ManifestSuffix))
	} else if err != nil {
		return nil, err
	}

	var domainCheck func(*Doc) error
	if m != nil && m.Domain != "" {
		d, ok := DomainByName(m.Domain)
		if !ok {
			rep.errf("manifest names unknown domain %q", m.Domain)
		} else {
			domainCheck = d.Validate
		}
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	sc := newLineScanner(io.TeeReader(f, h))

	// Duplicate-filename detection keeps 64-bit filename hashes, not the
	// names themselves — ~8 bytes per document instead of the full
	// string, so validating a multi-million-document corpus stays cheap.
	// A hash collision would report a spurious duplicate; at 64 bits the
	// odds are negligible (~n²/2^65).
	seen := map[uint64]bool{}
	// When the manifest references an embedding sidecar, keep the filename
	// hashes in document order so the sidecar's row keys can be checked
	// against the corpus exactly (8 bytes per document, same budget as the
	// duplicate detector).
	var docKeys []uint64
	ixb := newIndexBuilder()
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		lineStart := rep.Bytes
		rep.Bytes += int64(len(raw)) + 1 // the scanner strips the newline
		if len(raw) == 0 {
			continue
		}
		var d Doc
		if err := json.Unmarshal(raw, &d); err != nil {
			if rep.errf("line %d: %v", line, err) {
				return rep, nil
			}
			continue
		}
		ixb.note(rep.Docs, lineStart)
		rep.Docs++
		nameHash := fnv64(d.Filename)
		if seen[nameHash] {
			if rep.errf("line %d: duplicate filename %s", line, d.Filename) {
				return rep, nil
			}
		}
		seen[nameHash] = true
		if m != nil && m.Embeddings != nil {
			docKeys = append(docKeys, nameHash)
		}
		if err := ValidateDoc(&d); err != nil {
			if rep.errf("line %d: %v", line, err) {
				return rep, nil
			}
			continue
		}
		if domainCheck != nil {
			if err := domainCheck(&d); err != nil {
				if rep.errf("line %d: %s: %v", line, d.Filename, err) {
					return rep, nil
				}
			}
		}
		for label, v := range d.Truth.Labels {
			if v {
				rep.LabelCounts[label]++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", path, err)
	}
	rep.SHA256 = hex.EncodeToString(h.Sum(nil))

	if m != nil {
		if rep.SHA256 != m.SHA256 {
			rep.errf("checksum mismatch: file %s, manifest %s", rep.SHA256, m.SHA256)
		}
		if rep.Docs != m.NumDocs {
			rep.errf("document count mismatch: file %d, manifest %d", rep.Docs, m.NumDocs)
		}
		for label, want := range m.LabelCounts {
			if got := rep.LabelCounts[label]; got != want {
				rep.errf("label %q count mismatch: file %d, manifest %d", label, got, want)
			}
		}
		validateIndex(rep, m.Index, ixb)
		if m.Embeddings != nil {
			validateEmbeddings(rep, path, m.Embeddings, docKeys)
		}
	}
	return rep, nil
}

// validateIndex compares a manifest's partition index against the one
// re-derived from the file. The index builder is deterministic in the
// document sequence, so a correct index matches checkpoint for
// checkpoint; a missing index is only noted — older corpora without one
// remain valid, just not partitionable.
func validateIndex(rep *ValidationReport, got *PartitionIndex, ixb *indexBuilder) {
	want := ixb.index(rep.Docs)
	if got == nil {
		if want != nil {
			rep.Notes = append(rep.Notes,
				"manifest has no partition index: partitioned scans unavailable, back-fill with `pzcorpus index`")
		}
		return
	}
	if want == nil {
		rep.errf("manifest carries a partition index but the corpus has no documents")
		return
	}
	if got.Stride != want.Stride {
		rep.errf("partition index stride mismatch: file %d, manifest %d", want.Stride, got.Stride)
		return
	}
	if len(got.Offsets) != len(want.Offsets) {
		rep.errf("partition index checkpoint count mismatch: file %d, manifest %d",
			len(want.Offsets), len(got.Offsets))
		return
	}
	for k := range want.Offsets {
		if got.Offsets[k] != want.Offsets[k] {
			rep.errf("partition index checkpoint %d mismatch: file offset %d, manifest %d",
				k, want.Offsets[k], got.Offsets[k])
			return
		}
	}
}
