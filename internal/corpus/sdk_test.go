package corpus

import (
	"io"
	"strconv"
	"strings"
	"testing"
)

func TestDocRNGMatchesInternal(t *testing.T) {
	for _, i := range []int{0, 1, 999} {
		if a, b := DocRNG(17, i).Int63(), docRNG(17, i).Int63(); a != b {
			t.Fatalf("doc %d: exported DocRNG diverges from internal: %d vs %d", i, a, b)
		}
	}
}

func TestNewIndexGenerator(t *testing.T) {
	g := NewIndexGenerator("t", 3, func(i int) *Doc {
		return &Doc{Filename: strings.Repeat("x", i+1)}
	})
	if g.Domain() != "t" || g.Len() != 3 {
		t.Fatalf("domain %q len %d", g.Domain(), g.Len())
	}
	for want := 1; want <= 3; want++ {
		d, err := g.Next()
		if err != nil || len(d.Filename) != want {
			t.Fatalf("doc %d: %v %v", want, d, err)
		}
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after the last doc, got %v", err)
	}
	empty := NewIndexGenerator("t", 0, nil)
	if empty.Len() != 0 {
		t.Fatalf("empty generator has Len %d", empty.Len())
	}
	if _, err := empty.Next(); err != io.EOF {
		t.Fatalf("empty generator: want io.EOF, got %v", err)
	}
}

func TestPositiveScatter(t *testing.T) {
	for _, tc := range []struct {
		n    int
		rate float64
		want int
	}{
		{100, 0.3, 30},
		{100, 0, 0},
		{100, 1, 100},
		{100, -0.5, 0}, // clamped
		{100, 2.0, 100},
		{0, 0.5, 0},
		{7, 0.5, 4}, // round(3.5)
	} {
		ps := NewPositiveScatter(9, tc.n, tc.rate)
		if ps.Positives() != tc.want {
			t.Fatalf("n=%d rate=%v: Positives %d, want %d", tc.n, tc.rate, ps.Positives(), tc.want)
		}
		got := 0
		for i := 0; i < tc.n; i++ {
			if ps.Positive(i) {
				got++
			}
		}
		if got != tc.want {
			t.Fatalf("n=%d rate=%v: marked %d, want %d", tc.n, tc.rate, got, tc.want)
		}
	}
}

func TestRegisterDomainErrors(t *testing.T) {
	if err := RegisterDomain(Domain{}); err == nil {
		t.Fatalf("nameless domain registered")
	}
	if err := RegisterDomain(Domain{Name: "no-ctor"}); err == nil {
		t.Fatalf("constructor-less domain registered")
	}
	if err := RegisterDomain(Domain{Name: DomainSupport, New: func(int, float64, int64) Generator { return nil }}); err == nil {
		t.Fatalf("duplicate of %q registered", DomainSupport)
	}
	// The registered domain must behave like a real one (seed-sensitive
	// text): the registry-wide determinism test sweeps every entry.
	name := "sdk-test-domain"
	if err := RegisterDomain(Domain{Name: name, DefaultDocs: 1, New: func(n int, rate float64, seed int64) Generator {
		return NewIndexGenerator(name, n, func(i int) *Doc {
			return &Doc{
				Filename: "d",
				Text:     strconv.FormatInt(DocRNG(seed, i).Int63(), 10),
				Truth:    &Truth{Topics: []string{"t"}},
			}
		})
	}}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, ok := DomainByName(name); !ok {
		t.Fatalf("registered domain not resolvable")
	}
}
