package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// SupportConfig controls the customer-support ticket generator — the
// triage/routing workload. Tickets carry a priority, a product, and a
// category; the scenario's filter target is urgency, and its routing
// target is the category field.
type SupportConfig struct {
	// NumTickets is the corpus size.
	NumTickets int
	// UrgentRate is the fraction of tickets that are genuinely urgent
	// (priority P1/P2, outage-grade language).
	UrgentRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSupport returns the support-triage workload used by examples and
// benches: 200 tickets, 30% urgent.
func DefaultSupport() SupportConfig {
	return SupportConfig{NumTickets: 200, UrgentRate: 0.3, Seed: 17}
}

// UrgentLabel is the ground-truth boolean label on urgent tickets — what
// the triage filter predicate ("The ticket is urgent ...") matches.
const UrgentLabel = "urgent"

var supportProducts = []string{
	"Orion Gateway", "Lumen Dashboard", "Atlas Sync", "Quill Editor",
	"Beacon Alerts", "Vault Storage", "Pulse Analytics", "Relay Webhooks",
}

var supportChannels = []string{"email", "chat", "phone", "web form"}

var supportCustomers = []string{
	"Dana Whitfield", "Marcus Oyelaran", "Priya Raghavan", "Tomás Herrera",
	"Yuki Tanaka", "Leila Haddad", "Grace Okafor", "Sven Lindqvist",
	"Noor Al-Amin", "Ivan Petrov", "Maya Goldberg", "Chen Wei",
}

// supportCategories drive the routing workload: each category has its own
// complaint vocabulary, so category extraction is answerable from text.
var supportCategories = []struct {
	name    string
	subject string
	body    string
}{
	{"billing", "Unexpected charge on latest invoice",
		"Our latest invoice shows a charge we cannot reconcile with our plan. The billing page lists a line item that does not match our subscription tier, and the total is higher than last month."},
	{"authentication", "Users unable to sign in",
		"Several of our users report failed sign-in attempts. Password resets do not arrive, and single sign-on redirects land on an error page instead of the application."},
	{"performance", "Dashboard loading extremely slowly",
		"Page loads that used to take a second now take close to a minute. The slowdown started recently and affects every view, not just the heavy reports."},
	{"data-export", "Scheduled export producing empty files",
		"Our nightly export job completes without errors but the delivered files are empty. Manual exports from the UI produce the expected rows, so the scheduler path seems broken."},
	{"integration", "Webhook deliveries failing with timeouts",
		"Webhook calls to our endpoint began timing out. Our endpoint logs show no incoming requests, and the delivery dashboard lists repeated retries followed by permanent failures."},
	{"mobile", "App crashes on startup after update",
		"Since the latest app update, the mobile client crashes immediately on launch. Reinstalling does not help, and the crash occurs on multiple device models."},
}

var urgentPhrases = []string{
	"Production is completely down and all of our users are blocked",
	"This is a complete outage affecting every customer-facing workflow",
	"We are losing transactions every minute this remains broken",
	"Our launch is tonight and this blocks the entire release",
}

var routinePhrases = []string{
	"This is not blocking day-to-day work but we would like a fix soon",
	"We found a workaround for now, sharing in case it helps diagnosis",
	"No immediate impact, logging it so it is tracked",
	"Whenever your team has a chance to look, we would appreciate an update",
}

// NewSupportGenerator returns the streaming support-ticket generator:
// ticket i is derived from a per-index RNG (constant memory at any
// NumTickets), and exactly round(NumTickets*UrgentRate) tickets are
// urgent, scattered deterministically across the corpus.
func NewSupportGenerator(cfg SupportConfig) Generator {
	if cfg.NumTickets <= 0 {
		return &indexGen{domain: DomainSupport}
	}
	urgent := int(float64(cfg.NumTickets)*cfg.UrgentRate + 0.5)
	sc := newScatter(cfg.Seed, cfg.NumTickets)
	return &indexGen{domain: DomainSupport, n: cfg.NumTickets, gen: func(i int) *Doc {
		return genTicket(docRNG(cfg.Seed, i), i, sc.pos(i) < urgent)
	}}
}

// GenerateSupport materializes the support corpus — byte-identical to
// draining NewSupportGenerator(cfg).
func GenerateSupport(cfg SupportConfig) []*Doc {
	docs, _ := Collect(NewSupportGenerator(cfg)) // index generators never error
	return docs
}

func genTicket(rng *rand.Rand, idx int, urgent bool) *Doc {
	cat := supportCategories[rng.Intn(len(supportCategories))]
	product := pick(rng, supportProducts)
	customer := pick(rng, supportCustomers)
	channel := pick(rng, supportChannels)
	id := fmt.Sprintf("TCK-%06d", idx+1)

	priority := fmt.Sprintf("P%d", 3+rng.Intn(2))
	phrase := pick(rng, routinePhrases)
	responseHours := float64(24 * (1 + rng.Intn(3)))
	if urgent {
		priority = fmt.Sprintf("P%d", 1+rng.Intn(2))
		phrase = pick(rng, urgentPhrases)
		responseHours = float64(1 + rng.Intn(4))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Ticket %s — %s\n\n", id, cat.subject)
	fmt.Fprintf(&b, "Priority: %s  Channel: %s  Product: %s\n", priority, channel, product)
	fmt.Fprintf(&b, "Category: %s\n", cat.name)
	fmt.Fprintf(&b, "Customer: %s\n\n", customer)
	fmt.Fprintf(&b, "Message. %s\n\n", sentenceJoin(
		fmt.Sprintf("We use %s across several teams", product),
		cat.body,
		phrase,
	))
	fmt.Fprintf(&b, "Requested first response within %.0f hours.\n", responseHours)

	truth := &Truth{
		Topics: []string{"support ticket", cat.name},
		Labels: map[string]bool{UrgentLabel: urgent},
		Fields: map[string]string{
			"ticket_id": id,
			"customer":  customer,
			"product":   product,
			"category":  cat.name,
			"priority":  priority,
			"channel":   channel,
		},
		Numbers: map[string]float64{"response_hours": responseHours},
	}
	return &Doc{
		Filename: fmt.Sprintf("ticket-%06d.txt", idx+1),
		Text:     b.String(),
		Truth:    truth,
	}
}

// validateSupportDoc checks the support domain's invariants: the urgent
// label agrees with the recorded priority, and the priority/category are
// present in the text for the oracle to extract.
func validateSupportDoc(d *Doc) error {
	pri := d.Truth.Fields["priority"]
	urgent := d.Truth.Labels[UrgentLabel]
	if got := pri == "P1" || pri == "P2"; got != urgent {
		return fmt.Errorf("urgent label %t disagrees with priority %s", urgent, pri)
	}
	if !strings.Contains(d.Text, "Priority: "+pri) {
		return fmt.Errorf("priority %s not stated in text", pri)
	}
	if !strings.Contains(d.Text, "Category: "+d.Truth.Fields["category"]) {
		return fmt.Errorf("category %s not stated in text", d.Truth.Fields["category"])
	}
	return nil
}
