package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// BiomedConfig controls the biomedical-papers generator, which reproduces
// the paper's §3 scientific-discovery workload: a digital library of papers
// in which a subset is about colorectal cancer, and the relevant subset
// collectively references a known number of public datasets.
type BiomedConfig struct {
	// NumPapers is the total library size (the paper's demo uses 11).
	NumPapers int
	// NumRelevant is how many papers are genuinely about colorectal cancer.
	NumRelevant int
	// NumDatasets is the total number of public dataset mentions embedded
	// across the relevant papers (the paper's demo extracts 6).
	NumDatasets int
	// Seed makes generation deterministic.
	Seed int64
}

// PaperDemoBiomed is the exact workload shape reported in the paper: 11
// input papers of which the colorectal-cancer filter keeps a subset that
// collectively yields 6 publicly available datasets.
func PaperDemoBiomed() BiomedConfig {
	return BiomedConfig{NumPapers: 11, NumRelevant: 5, NumDatasets: 6, Seed: 42}
}

// ColorectalTopic is the topic label used for relevant papers and is what
// the demo filter predicate ("The papers are about colorectal cancer")
// matches against.
const ColorectalTopic = "colorectal cancer"

// DatasetMentionKind is the Mention.Kind used for public dataset references.
const DatasetMentionKind = "dataset"

var crcDatasets = []Mention{
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "TCGA-COAD",
		"description": "The Cancer Genome Atlas colon adenocarcinoma cohort with genomic and clinical profiles",
		"url":         "https://portal.gdc.cancer.gov/projects/TCGA-COAD",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "TCGA-READ",
		"description": "The Cancer Genome Atlas rectum adenocarcinoma cohort of sequencing data",
		"url":         "https://portal.gdc.cancer.gov/projects/TCGA-READ",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "GEO GSE39582",
		"description": "Expression profiles of 566 colorectal tumors with molecular subtype annotations",
		"url":         "https://www.ncbi.nlm.nih.gov/geo/query/acc.cgi?acc=GSE39582",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "COSMIC",
		"description": "Catalogue of somatic mutations in cancer including KRAS and APC variants",
		"url":         "https://cancer.sanger.ac.uk/cosmic",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "cBioPortal CRC Atlas",
		"description": "Curated colorectal cancer studies with mutation and copy-number calls",
		"url":         "https://www.cbioportal.org/study/summary?id=crc_atlas",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "ICGC CRC-ES",
		"description": "International Cancer Genome Consortium colorectal cohort from Spain",
		"url":         "https://dcc.icgc.org/projects/COCA-CN",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "CPTAC-2 Colon",
		"description": "Proteogenomic characterization of human colon cancer tissue",
		"url":         "https://proteomics.cancer.gov/programs/cptac",
	}},
	{Kind: DatasetMentionKind, Fields: map[string]string{
		"name":        "GEO GSE17536",
		"description": "Gene expression data from 177 colorectal cancer patients with survival follow-up",
		"url":         "https://www.ncbi.nlm.nih.gov/geo/query/acc.cgi?acc=GSE17536",
	}},
}

var crcGenes = []string{"KRAS", "APC", "TP53", "BRAF", "PIK3CA", "SMAD4", "MSH2", "MLH1"}

var crcTitleForms = []string{
	"%s mutation landscapes in colorectal tumor cells",
	"Correlating %s variants with tumor progression in colorectal cancer",
	"A cohort study of %s-driven colorectal carcinogenesis",
	"Somatic %s alterations and survival outcomes in colorectal cancer",
	"Multi-omic profiling of %s mutations in colorectal adenocarcinoma",
}

// offTopics are subjects for the irrelevant papers in the library. The demo
// library "is potentially large, containing unrelated papers".
var offTopics = []struct {
	topic string
	title string
	body  string
}{
	{"breast cancer", "HER2 amplification in breast cancer subtypes",
		"We analyze receptor status across breast tumor biopsies and report amplification frequencies."},
	{"alzheimer disease", "Tau propagation models in early Alzheimer disease",
		"Longitudinal imaging suggests tau spreading along connected cortical regions in early disease."},
	{"influenza", "Seasonal influenza vaccine effectiveness estimation",
		"Test-negative designs estimate moderate vaccine effectiveness across recent seasons."},
	{"diabetes", "Continuous glucose monitoring in type 2 diabetes",
		"Sensor-based monitoring improves glycemic control relative to fingerstick testing."},
	{"cardiology", "Atrial fibrillation detection from wearable ECG",
		"A screening algorithm detects paroxysmal atrial fibrillation from single-lead traces."},
	{"lung cancer", "EGFR inhibitor resistance in non-small cell lung cancer",
		"Acquired resistance mutations limit the durability of targeted therapy in lung tumors."},
	{"microbiome", "Gut microbiome composition after antibiotic exposure",
		"Metagenomic sequencing shows taxonomic shifts that persist for months after treatment."},
	{"genomics methods", "Benchmarking variant callers on synthetic genomes",
		"We compare precision and recall of popular somatic variant callers on simulated reads."},
}

// GenerateBiomed produces the synthetic digital library. The first
// cfg.NumRelevant documents (after shuffling) are about colorectal cancer
// and share the cfg.NumDatasets dataset mentions between them; the rest are
// about unrelated biomedical subjects. Exactly reproducible per seed.
func GenerateBiomed(cfg BiomedConfig) []*Doc {
	if cfg.NumPapers <= 0 {
		return nil
	}
	if cfg.NumRelevant > cfg.NumPapers {
		cfg.NumRelevant = cfg.NumPapers
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Distribute the dataset mentions across the relevant papers so that
	// every relevant paper gets at least one when possible. Beyond the
	// curated list, synthesize additional plausible repository entries so
	// large libraries (the E9 scaling experiment) keep a proportional
	// number of extractable datasets.
	pool := shuffled(rng, crcDatasets)
	for i := len(pool); i < cfg.NumDatasets; i++ {
		acc := 10000 + rng.Intn(89999)
		pool = append(pool, Mention{Kind: DatasetMentionKind, Fields: map[string]string{
			"name":        fmt.Sprintf("GEO GSE%05d", acc),
			"description": fmt.Sprintf("Expression profiles of colorectal tumor cohort %05d with clinical annotations", acc),
			"url":         fmt.Sprintf("https://www.ncbi.nlm.nih.gov/geo/query/acc.cgi?acc=GSE%05d", acc),
		}})
	}
	mentions := pool[:cfg.NumDatasets]
	perPaper := make([][]Mention, cfg.NumRelevant)
	for i, m := range mentions {
		if cfg.NumRelevant == 0 {
			break
		}
		perPaper[i%cfg.NumRelevant] = append(perPaper[i%cfg.NumRelevant], m)
	}

	docs := make([]*Doc, 0, cfg.NumPapers)
	for i := 0; i < cfg.NumRelevant; i++ {
		docs = append(docs, genCRCPaper(rng, i, perPaper[i]))
	}
	for i := cfg.NumRelevant; i < cfg.NumPapers; i++ {
		docs = append(docs, genOffTopicPaper(rng, i))
	}
	// Interleave relevant and irrelevant papers deterministically.
	docs = shuffled(rng, docs)
	for i, d := range docs {
		d.Filename = fmt.Sprintf("paper-%02d-%s.pdf", i+1, slugify(titleOf(d.Text)))
	}
	return docs
}

func titleOf(text string) string {
	line := text
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		line = text[:i]
	}
	if len(line) > 48 {
		line = line[:48]
	}
	return line
}

func genCRCPaper(rng *rand.Rand, idx int, mentions []Mention) *Doc {
	gene := pick(rng, crcGenes)
	title := fmt.Sprintf(pick(rng, crcTitleForms), gene)
	cohort := 80 + rng.Intn(400)

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "Abstract. %s\n\n", sentenceJoin(
		fmt.Sprintf("We study the correlation between %s gene mutation and tumor cells in colorectal cancer", gene),
		fmt.Sprintf("Our cohort comprises %d patients with histologically confirmed colorectal adenocarcinoma", cohort),
		"We report mutation frequencies, co-occurrence patterns, and survival associations",
	))
	fmt.Fprintf(&b, "1. Introduction. %s\n\n", sentenceJoin(
		"Colorectal cancer remains a leading cause of cancer mortality worldwide",
		fmt.Sprintf("Somatic alterations in %s are recurrently observed in colorectal tumor cells", gene),
		"Understanding the mutation landscape informs screening and targeted therapy",
	))
	fmt.Fprintf(&b, "2. Data availability. %s\n", sentenceJoin(
		"All analyses rely on publicly available datasets",
		"The following resources were used in this study and can be accessed freely",
	))
	for _, m := range mentions {
		fmt.Fprintf(&b, "Dataset: %s. %s. Available at %s\n",
			m.Fields["name"], m.Fields["description"], m.Fields["url"])
	}
	fmt.Fprintf(&b, "\n3. Methods. %s\n\n", sentenceJoin(
		"We called somatic variants with a standard pipeline and matched normals",
		fmt.Sprintf("Associations between %s mutation status and tumor cell phenotype were assessed with Cox models", gene),
	))
	fmt.Fprintf(&b, "4. Results. %s\n\n", sentenceJoin(
		fmt.Sprintf("%s mutations were detected in %d%% of colorectal tumors", gene, 20+rng.Intn(50)),
		"Mutation burden correlated with microsatellite instability status",
		"These findings replicate across the public cohorts listed above",
	))
	writePadding(&b, rng, 5, fmt.Sprintf("%s mutation in colorectal tumor cells", gene))

	truth := &Truth{
		Topics:   []string{ColorectalTopic, "gene mutation", "tumor cells"},
		Mentions: mentions,
		Labels:   map[string]bool{"colorectal": true, "public_datasets": len(mentions) > 0},
		Fields: map[string]string{
			"gene":  gene,
			"title": title,
		},
		Numbers: map[string]float64{"cohort_size": float64(cohort)},
	}
	return &Doc{Text: b.String(), Truth: truth}
}

// paddingSections give generated papers a realistic length (~12 KB / ~3000
// tokens), which matters for the latency and cost models: the paper's
// reported ~240 s / ~$0.35 pipeline is dominated by reading long documents.
var paddingSections = []struct{ title, body string }{
	{"Related Work",
		"Prior studies have examined %s from several methodological angles, including retrospective cohort analyses, prospective registries, and meta-analyses of published effect sizes. Our work differs in that it integrates publicly available molecular resources with harmonized clinical annotations, enabling direct comparison of effect estimates across cohorts. We additionally account for batch effects between sequencing centers, which earlier analyses often left uncorrected, and we report calibration diagnostics alongside discrimination metrics so that downstream users can judge transferability to their own populations."},
	{"Statistical Analysis",
		"All statistical analyses concerning %s were performed with standard open-source software. Continuous variables are summarized as medians with interquartile ranges and compared with rank-based tests; categorical variables are compared with exact tests when expected cell counts are small. Multivariable models adjust for age, sex, stage, and center. We report two-sided p-values without adjustment for multiplicity in exploratory analyses and control the false discovery rate in high-dimensional screens. Sensitivity analyses exclude samples with low tumor purity and repeat the primary models under multiple imputation of missing covariates."},
	{"Data Processing",
		"Raw data relevant to %s were processed with a reproducible pipeline: quality control, alignment to the current reference, duplicate marking, and joint variant calling with matched normals where available. Annotation draws on population frequency databases and curated clinical significance resources. All thresholds are specified in the supplementary configuration files, and intermediate artifacts are checksummed so that any step can be audited or re-executed independently. Containerized environments pin every tool version used in this study."},
	{"Limitations",
		"Several limitations of this study of %s deserve mention. First, observational designs cannot exclude residual confounding despite covariate adjustment. Second, cohort heterogeneity in specimen handling may introduce technical variation that mimics biological signal. Third, follow-up duration differs across contributing centers, which complicates time-to-event comparisons. Finally, although we restrict attention to publicly available data to maximize reproducibility, public cohorts may not represent the broader patient population, and external validation in community settings remains necessary."},
	{"Discussion",
		"Taken together, our findings on %s support a model in which molecular context modulates clinical trajectory. The concordance between discovery and validation cohorts strengthens the causal interpretation, while the attenuation of effect sizes in adjusted models suggests that part of the crude association reflects correlated clinical factors. We highlight the value of open data resources for replication: every result in this paper can be regenerated from the cited public datasets and the released analysis code, and we encourage readers to do so."},
	{"Future Directions",
		"Future work on %s should extend these analyses in three directions: richer longitudinal sampling to capture clonal dynamics, integration of additional modalities such as proteomics and imaging, and prospective evaluation of decision rules derived from retrospective cohorts. We are particularly interested in federated analysis approaches that allow institutions to contribute statistical updates without sharing record-level data, which would broaden participation beyond centers able to deposit data publicly."},
}

// writePadding appends n padding sections, each parameterized by topic.
func writePadding(b *strings.Builder, rng *rand.Rand, n int, topic string) {
	sections := shuffled(rng, paddingSections)
	if n > len(sections) {
		n = len(sections)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(b, "%s. ", sections[i].title)
		fmt.Fprintf(b, sections[i].body+"\n\n", topic)
		// Repeat the body once with a continuation sentence to reach
		// realistic section lengths.
		fmt.Fprintf(b, "Continuing, %s\n\n", fmt.Sprintf(strings.ToLower(sections[i].body[:1])+sections[i].body[1:], topic))
	}
}

func genOffTopicPaper(rng *rand.Rand, idx int) *Doc {
	t := offTopics[idx%len(offTopics)]
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", t.title)
	fmt.Fprintf(&b, "Abstract. %s\n\n", t.body)
	fmt.Fprintf(&b, "1. Introduction. %s\n", sentenceJoin(
		fmt.Sprintf("This work concerns %s", t.topic),
		"We review prior art and present a new analysis",
	))
	fmt.Fprintf(&b, "2. Results. %s\n\n", sentenceJoin(
		"Our evaluation shows consistent effects across sites",
		fmt.Sprintf("We discuss implications for %s research", t.topic),
	))
	writePadding(&b, rng, 5, t.topic)
	truth := &Truth{
		Topics: []string{t.topic},
		Labels: map[string]bool{"colorectal": false},
		Fields: map[string]string{"title": t.title},
	}
	return &Doc{Text: b.String(), Truth: truth}
}
