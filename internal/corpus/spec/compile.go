package spec

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/corpus"
)

// Compiled is a validated, cross-referenced domain spec, ready to mint
// generators. Compile once, generate any number of corpora.
type Compiled struct {
	spec         *DomainSpec
	fields       []compiledField
	filename     template
	text         template
	topics       []template
	truthFields  map[string]template
	truthNumbers map[string]int // annotation name -> numeric field index
}

type compiledField struct {
	spec *FieldSpec
	// tmpl is the parsed body of a "template" generator.
	tmpl template
	// cols maps a "pickrow" generator's column names to row indices.
	cols map[string]int
}

// Compile cross-references a parsed spec: every template placeholder must
// resolve, truth numbers must point at numeric fields, and template
// fields may not reference other template fields (which rules out
// reference cycles by construction).
func Compile(s *DomainSpec) (*Compiled, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		spec:         s,
		fields:       make([]compiledField, len(s.Fields)),
		truthFields:  map[string]template{},
		truthNumbers: map[string]int{},
	}
	index := map[string]int{}
	for i := range s.Fields {
		f := &s.Fields[i]
		index[f.Name] = i
		c.fields[i].spec = f
		if f.Gen == "pickrow" {
			cols := make(map[string]int, len(f.Columns))
			for j, col := range f.Columns {
				cols[col] = j
			}
			c.fields[i].cols = cols
		}
	}
	// Template-generator bodies: no references to other template fields.
	for i := range s.Fields {
		f := &s.Fields[i]
		if f.Gen != "template" {
			continue
		}
		tmpl, err := c.parseTemplate(f.Template, index, false)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: field %q: %w", s.Name, f.Name, err)
		}
		c.fields[i].tmpl = tmpl
	}
	var err error
	if c.filename, err = c.parseTemplate(s.Filename, index, true); err != nil {
		return nil, fmt.Errorf("spec: %s: filename: %w", s.Name, err)
	}
	if c.text, err = c.parseTemplate(s.Text, index, true); err != nil {
		return nil, fmt.Errorf("spec: %s: text: %w", s.Name, err)
	}
	for _, topic := range s.Truth.Topics {
		tmpl, err := c.parseTemplate(topic, index, true)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: topic: %w", s.Name, err)
		}
		c.topics = append(c.topics, tmpl)
	}
	for name, body := range s.Truth.Fields {
		if err := checkName("truth field", name); err != nil {
			return nil, err
		}
		tmpl, err := c.parseTemplate(body, index, true)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: truth field %q: %w", s.Name, name, err)
		}
		c.truthFields[name] = tmpl
	}
	for name, body := range s.Truth.Numbers {
		if err := checkName("truth number", name); err != nil {
			return nil, err
		}
		fi, err := c.numericRef(body, index)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: truth number %q: %w", s.Name, name, err)
		}
		c.truthNumbers[name] = fi
	}
	return c, nil
}

// Load reads, parses, and compiles a spec file.
func Load(path string) (*Compiled, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c, err := Compile(s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Spec returns the compiled spec document.
func (c *Compiled) Spec() *DomainSpec { return c.spec }

// Domain packages the compiled spec as a corpus.Domain, interchangeable
// with the hand-written Go domains (registry, pzcorpus, pzbench).
func (c *Compiled) Domain() corpus.Domain {
	rate := 0.0
	if c.spec.Positive != nil {
		rate = c.spec.Positive.Rate
	}
	return corpus.Domain{
		Name:        c.spec.Name,
		Description: c.spec.Description,
		Workload:    c.spec.Workload,
		DefaultDocs: c.spec.Docs,
		DefaultRate: rate,
		Streaming:   true,
		New: func(n int, rate float64, seed int64) corpus.Generator {
			return c.Generator(n, rate, seed)
		},
		Validate: c.validateDoc,
	}
}

// Register adds the compiled domain to the corpus registry.
func (c *Compiled) Register() error { return corpus.RegisterDomain(c.Domain()) }

// Generator mints an index-addressable generator of n documents (the spec
// default when n <= 0) at the given positive-class rate (the spec default
// when negative).
func (c *Compiled) Generator(n int, rate float64, seed int64) corpus.Generator {
	if n <= 0 {
		n = c.spec.Docs
	}
	var ps corpus.PositiveScatter
	if c.spec.Positive != nil {
		if rate < 0 {
			rate = c.spec.Positive.Rate
		}
		ps = corpus.NewPositiveScatter(seed, n, rate)
	}
	return corpus.NewIndexGenerator(c.spec.Name, n, func(i int) *corpus.Doc {
		positive := c.spec.Positive != nil && ps.Positive(i)
		return c.doc(seed, i, positive)
	})
}

// validateDoc is the compiled domain's per-document Validate hook: the
// positive label must be present (true or false) when the spec declares
// one; everything else is covered by the generic Truth contract.
func (c *Compiled) validateDoc(d *corpus.Doc) error {
	if p := c.spec.Positive; p != nil {
		if _, ok := d.Truth.Labels[p.Label]; !ok {
			return fmt.Errorf("label %q missing from truth", p.Label)
		}
	}
	return nil
}

// fieldVal is one field's realized value for one document.
type fieldVal struct {
	str   string
	num   float64
	isNum bool
	row   []string
}

// doc realizes document i. Draw order is the package determinism
// contract: base draws in field order, then positive overrides in field
// order, then (draw-free) template fields, filename, text, and truth.
func (c *Compiled) doc(seed int64, i int, positive bool) *corpus.Doc {
	rng := corpus.DocRNG(seed, i)
	vals := make([]fieldVal, len(c.fields))
	for fi := range c.fields {
		f := c.fields[fi].spec
		switch f.Gen {
		case "pick":
			vals[fi].str = f.Choices[rng.Intn(len(f.Choices))]
		case "pickrow":
			row := f.Rows[rng.Intn(len(f.Rows))]
			vals[fi] = fieldVal{str: row[0], row: row}
		case "int":
			vals[fi] = drawInt(rng, f.Min, f.Max, f.Scale, f.Format)
		case "float":
			vals[fi] = drawFloat(rng, f.Min, f.Max, f.Decimals)
		case "const":
			vals[fi].str = f.Value
		}
	}
	if positive {
		for fi := range c.fields {
			f := c.fields[fi].spec
			o := f.Positive
			if o == nil {
				continue
			}
			switch f.Gen {
			case "pick":
				vals[fi].str = o.Choices[rng.Intn(len(o.Choices))]
			case "int":
				vals[fi] = drawInt(rng, o.Min, o.Max, o.Scale, o.Format)
			case "float":
				vals[fi] = drawFloat(rng, o.Min, o.Max, o.Decimals)
			}
		}
	}
	for fi := range c.fields {
		if c.fields[fi].spec.Gen == "template" {
			vals[fi].str = c.render(c.fields[fi].tmpl, vals, i)
		}
	}

	truth := &corpus.Truth{}
	for _, tmpl := range c.topics {
		truth.Topics = append(truth.Topics, c.render(tmpl, vals, i))
	}
	if p := c.spec.Positive; p != nil {
		truth.Labels = map[string]bool{p.Label: positive}
	}
	if len(c.truthFields) > 0 {
		truth.Fields = make(map[string]string, len(c.truthFields))
		for name, tmpl := range c.truthFields {
			truth.Fields[name] = c.render(tmpl, vals, i)
		}
	}
	if len(c.truthNumbers) > 0 {
		truth.Numbers = make(map[string]float64, len(c.truthNumbers))
		for name, fi := range c.truthNumbers {
			truth.Numbers[name] = vals[fi].num
		}
	}
	return &corpus.Doc{
		Filename: c.render(c.filename, vals, i),
		Text:     c.render(c.text, vals, i),
		Truth:    truth,
	}
}

// drawInt draws from [min, max], scales, and renders. The draw consumes
// exactly one rng.Intn call whenever the range has more than one value,
// matching the hand-written `lo + rng.Intn(hi-lo+1)` idiom.
func drawInt(rng interface{ Intn(int) int }, min, max, scale float64, format string) fieldVal {
	lo, hi := int64(min), int64(max)
	v := lo
	if hi > lo {
		v = lo + int64(rng.Intn(int(hi-lo+1)))
	}
	s := int64(scale)
	if s == 0 {
		s = 1
	}
	v *= s
	str := strconv.FormatInt(v, 10)
	if format != "" {
		str = fmt.Sprintf(format, v)
	}
	return fieldVal{str: str, num: float64(v), isNum: true}
}

// drawFloat draws uniformly from [min, max) and rounds to the given
// decimals — the "seeded noise" generator.
func drawFloat(rng interface{ Float64() float64 }, min, max float64, decimals int) fieldVal {
	v := min + rng.Float64()*(max-min)
	p := math.Pow(10, float64(decimals))
	v = math.Round(v*p) / p
	return fieldVal{str: strconv.FormatFloat(v, 'f', decimals, 64), num: v, isNum: true}
}

// Templates. Placeholders are {field}, {field.column} (pickrow columns),
// {index}/{index1} (document ordinal, 0- and 1-based), and
// {index:%06d}-style padded ordinals. "{{" and "}}" escape literal
// braces.

type template []segment

type segment struct {
	lit string
	// ref is the referenced field index (-1 for literals and builtins).
	ref int
	// col is the pickrow row index (-1 when unused).
	col int
	// isIndex marks an index-builtin segment.
	isIndex bool
	// base is the ordinal offset of an index builtin (0 or 1).
	base int
	// pad is the validated printf format of a padded ordinal ("" = plain).
	pad string
}

func isBuiltinRef(name string) bool { return name == "index" || name == "index1" }

// parseTemplate compiles a template body. allowTemplateFields permits
// references to "template"-generator fields (true for filename/text/truth
// templates, false inside template fields themselves, preventing cycles).
func (c *Compiled) parseTemplate(body string, index map[string]int, allowTemplateFields bool) (template, error) {
	var out template
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			out = append(out, segment{lit: lit.String(), ref: -1, col: -1})
			lit.Reset()
		}
	}
	for pos := 0; pos < len(body); {
		ch := body[pos]
		switch {
		case ch == '{' && pos+1 < len(body) && body[pos+1] == '{':
			lit.WriteByte('{')
			pos += 2
		case ch == '}' && pos+1 < len(body) && body[pos+1] == '}':
			lit.WriteByte('}')
			pos += 2
		case ch == '}':
			return nil, fmt.Errorf("unmatched '}' at byte %d", pos)
		case ch == '{':
			end := strings.IndexByte(body[pos:], '}')
			if end < 0 {
				return nil, fmt.Errorf("unclosed '{' at byte %d", pos)
			}
			seg, err := c.parseRef(body[pos+1:pos+end], index, allowTemplateFields)
			if err != nil {
				return nil, err
			}
			flush()
			out = append(out, seg)
			pos += end + 1
		default:
			lit.WriteByte(ch)
			pos++
		}
	}
	flush()
	return out, nil
}

// parseRef compiles one {...} placeholder body.
func (c *Compiled) parseRef(body string, index map[string]int, allowTemplateFields bool) (segment, error) {
	name := body
	pad := ""
	if colon := strings.IndexByte(body, ':'); colon >= 0 {
		name, pad = body[:colon], body[colon+1:]
	}
	col := ""
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		name, col = name[:dot], name[dot+1:]
	}
	if isBuiltinRef(name) {
		if col != "" {
			return segment{}, fmt.Errorf("{%s} takes no column", body)
		}
		base := 0
		if name == "index1" {
			base = 1
		}
		if pad != "" {
			var err error
			if pad, err = parsePad(pad); err != nil {
				return segment{}, err
			}
		}
		return segment{ref: -1, col: -1, isIndex: true, base: base, pad: pad}, nil
	}
	fi, ok := index[name]
	if !ok {
		return segment{}, fmt.Errorf("reference {%s} names no field", body)
	}
	f := c.fields[fi].spec
	if f.Gen == "template" && !allowTemplateFields {
		return segment{}, fmt.Errorf("reference {%s}: template fields may not reference other template fields", body)
	}
	if pad != "" {
		return segment{}, fmt.Errorf("reference {%s}: padded formats apply to index builtins only", body)
	}
	seg := segment{ref: fi, col: -1}
	if col != "" {
		if f.Gen != "pickrow" {
			return segment{}, fmt.Errorf("reference {%s}: %q is not a pickrow field", body, name)
		}
		ci, ok := c.fields[fi].cols[col]
		if !ok {
			return segment{}, fmt.Errorf("reference {%s}: no column %q in field %q", body, col, name)
		}
		seg.col = ci
	}
	return seg, nil
}

// numericRef resolves a truth-number template, which must be exactly one
// reference to a numeric ("int" or "float") field.
func (c *Compiled) numericRef(body string, index map[string]int) (int, error) {
	tmpl, err := c.parseTemplate(body, index, true)
	if err != nil {
		return 0, err
	}
	if len(tmpl) != 1 || tmpl[0].ref < 0 {
		return 0, fmt.Errorf("%q must be a single {field} reference to a numeric field", body)
	}
	fi := tmpl[0].ref
	if g := c.fields[fi].spec.Gen; g != "int" && g != "float" {
		return 0, fmt.Errorf("%q references %s field %q, want int or float", body, g, c.fields[fi].spec.Name)
	}
	return fi, nil
}

// render evaluates a compiled template for document i.
func (c *Compiled) render(tmpl template, vals []fieldVal, i int) string {
	var b strings.Builder
	for _, seg := range tmpl {
		switch {
		case seg.ref >= 0:
			if seg.col >= 0 {
				b.WriteString(vals[seg.ref].row[seg.col])
			} else {
				b.WriteString(vals[seg.ref].str)
			}
		case seg.isIndex:
			n := i + seg.base
			if seg.pad != "" {
				fmt.Fprintf(&b, seg.pad, n)
			} else {
				b.WriteString(strconv.Itoa(n))
			}
		default:
			b.WriteString(seg.lit)
		}
	}
	return b.String()
}
