package spec

import (
	"encoding/json"
	"io"
	"testing"

	"repro/internal/corpus"
)

// The byte-identity property: specs/support-triage.json is a
// transliteration of the hand-written support domain, and the package
// determinism contract (DocRNG per document, PositiveScatter for the
// class split, two-pass draws in field order) promises that a
// transliterated spec reproduces its Go twin byte for byte — same text,
// same truth, same NDJSON checksum — at any size, seed, and rate.

const supportSpecPath = "../../../specs/support-triage.json"

func loadSupportSpec(t *testing.T) *Compiled {
	t.Helper()
	c, err := Load(supportSpecPath)
	if err != nil {
		t.Fatalf("Load(%s): %v", supportSpecPath, err)
	}
	return c
}

// docJSON canonicalizes a document for comparison: both sides marshal
// through the same encoder, so equal bytes means equal documents.
func docJSON(t *testing.T, d *corpus.Doc) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal doc: %v", err)
	}
	return string(b)
}

func compareDocs(t *testing.T, want, got []*corpus.Doc) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("doc count: Go domain %d, spec domain %d", len(want), len(got))
	}
	for i := range want {
		w, g := docJSON(t, want[i]), docJSON(t, got[i])
		if w != g {
			t.Fatalf("doc %d differs:\n  go:   %s\n  spec: %s", i, w, g)
		}
	}
}

// TestSupportSpecByteIdentitySlice compares the spec-compiled domain
// against the Go slice API (GenerateSupport) over 10k documents at
// several seeds.
func TestSupportSpecByteIdentitySlice(t *testing.T) {
	c := loadSupportSpec(t)
	const n = 10000
	for _, seed := range []int64{1, 17, 42} {
		want := corpus.GenerateSupport(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: seed})
		got, err := corpus.Collect(c.Generator(n, -1, seed)) // -1 = spec default rate 0.3
		if err != nil {
			t.Fatalf("seed %d: collect spec generator: %v", seed, err)
		}
		compareDocs(t, want, got)
	}
}

// TestSupportSpecByteIdentityStream compares the two streaming APIs
// document by document and checks the NDJSON serialization agrees down
// to the checksum.
func TestSupportSpecByteIdentityStream(t *testing.T) {
	c := loadSupportSpec(t)
	const n = 10000
	for _, seed := range []int64{1, 17, 42} {
		gGo := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: seed})
		gSpec := c.Generator(n, -1, seed)
		if gGo.Len() != gSpec.Len() {
			t.Fatalf("seed %d: Len: Go %d, spec %d", seed, gGo.Len(), gSpec.Len())
		}
		for i := 0; ; i++ {
			w, werr := gGo.Next()
			g, gerr := gSpec.Next()
			if werr == io.EOF || gerr == io.EOF {
				if werr != gerr {
					t.Fatalf("seed %d: streams ended unevenly at doc %d: go=%v spec=%v", seed, i, werr, gerr)
				}
				break
			}
			if wj, gj := docJSON(t, w), docJSON(t, g); wj != gj {
				t.Fatalf("seed %d doc %d differs:\n  go:   %s\n  spec: %s", seed, i, wj, gj)
			}
		}

		mGo, err := corpus.WriteNDJSON(io.Discard, corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: seed}))
		if err != nil {
			t.Fatalf("seed %d: write Go NDJSON: %v", seed, err)
		}
		mSpec, err := corpus.WriteNDJSON(io.Discard, c.Generator(n, -1, seed))
		if err != nil {
			t.Fatalf("seed %d: write spec NDJSON: %v", seed, err)
		}
		if mGo.SHA256 != mSpec.SHA256 {
			t.Fatalf("seed %d: NDJSON checksum: Go %s, spec %s", seed, mGo.SHA256, mSpec.SHA256)
		}
		if mGo.NumDocs != mSpec.NumDocs || mGo.Bytes != mSpec.Bytes {
			t.Fatalf("seed %d: NDJSON counts: Go (%d docs, %d bytes), spec (%d docs, %d bytes)",
				seed, mGo.NumDocs, mGo.Bytes, mSpec.NumDocs, mSpec.Bytes)
		}
		if g, s := mGo.LabelCounts[corpus.UrgentLabel], mSpec.LabelCounts[corpus.UrgentLabel]; g != s {
			t.Fatalf("seed %d: urgent count: Go %d, spec %d", seed, g, s)
		}
	}
}

// TestSupportSpecRateAndSizeOverrides proves identity holds away from
// the spec defaults: explicit rates and the default-doc path (n <= 0).
func TestSupportSpecRateAndSizeOverrides(t *testing.T) {
	c := loadSupportSpec(t)
	for _, tc := range []struct {
		n    int
		rate float64
		seed int64
	}{
		{1000, 0.5, 7},
		{1000, 0.0, 7},
		{1000, 1.0, 7},
		{1, 0.3, 3},
		{0, 0.3, 17}, // n <= 0: both sides fall back to 200 default docs
	} {
		n := tc.n
		if n <= 0 {
			n = 200
		}
		want := corpus.GenerateSupport(corpus.SupportConfig{NumTickets: n, UrgentRate: tc.rate, Seed: tc.seed})
		got, err := corpus.Collect(c.Generator(tc.n, tc.rate, tc.seed))
		if err != nil {
			t.Fatalf("%+v: collect: %v", tc, err)
		}
		compareDocs(t, want, got)
	}
}

// TestSupportSpecValidates runs the compiled domain's documents through
// the generic Truth contract and the spec's own Validate hook — the same
// gate `pzcorpus validate` applies on disk.
func TestSupportSpecValidates(t *testing.T) {
	c := loadSupportSpec(t)
	docs, err := corpus.Collect(c.Generator(500, -1, 11))
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	d := c.Domain()
	for i, doc := range docs {
		if err := corpus.ValidateDoc(doc); err != nil {
			t.Fatalf("doc %d: truth contract: %v", i, err)
		}
		if err := d.Validate(doc); err != nil {
			t.Fatalf("doc %d: domain validate: %v", i, err)
		}
	}
}
