package spec

import (
	"os"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// FuzzDomainSpec feeds the spec parser hostile configurations. The
// invariant: Parse/Compile either reject a document with an error or
// produce a domain whose generator runs without panicking and without
// unbounded allocation — every count that could size an allocation is
// capped by the package limits before use.
func FuzzDomainSpec(f *testing.F) {
	if data, err := os.ReadFile(supportSpecPath); err == nil {
		f.Add(data)
	}
	f.Add([]byte(miniSpec))
	hostile := []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"spec_version": 1, "name": "x", "docs": -1, "fields": []}`,
		`{"spec_version": 1, "name": "x", "docs": 999999999999999, "fields": [{"name": "a", "gen": "const", "value": "v"}], "filename": "f", "text": "t"}`,
		// cyclic template reference
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "template", "template": "{b}"}, {"name": "b", "gen": "template", "template": "{a}"}], "filename": "f", "text": "{a}", "truth": {"fields": {"a": "{a}"}}}`,
		// self reference
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "template", "template": "{a}"}], "filename": "f", "text": "{a}", "truth": {"fields": {"a": "{a}"}}}`,
		// absurd pad width
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "const", "value": "v"}], "filename": "{index:%0999999999d}", "text": "t", "truth": {"fields": {"a": "{a}"}}}`,
		// scale overflow
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "int", "min": 999999999999, "max": 999999999999, "scale": 999999999999}], "filename": "f", "text": "{a}", "truth": {"numbers": {"a": "{a}"}}}`,
		// huge int range
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "int", "min": -999999999999, "max": 999999999999}], "filename": "f", "text": "{a}", "truth": {"numbers": {"a": "{a}"}}}`,
		// NaN-ish rate and infinity endpoints arrive as JSON numbers only;
		// reject huge exponents instead
		`{"spec_version": 1, "name": "x", "docs": 1, "positive": {"label": "p", "rate": 1e300}, "fields": [{"name": "a", "gen": "float", "min": -1e300, "max": 1e300}], "filename": "f", "text": "{a}", "truth": {"numbers": {"a": "{a}"}}}`,
		// duplicate / shadowing names
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "index", "gen": "const", "value": "v"}], "filename": "f", "text": "{index}", "truth": {"fields": {"index": "{index}"}}}`,
		// deep brace nesting in templates
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "const", "value": "v"}], "filename": "f", "text": "` + strings.Repeat("{", 64) + `", "truth": {"fields": {"a": "{a}"}}}`,
		// unknown keys and trailing garbage
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "const", "value": "v", "bogus": 1}], "filename": "f", "text": "{a}"}`,
		`{"spec_version": 1, "name": "x", "docs": 1, "fields": [{"name": "a", "gen": "const", "value": "v"}], "filename": "f", "text": "{a}", "truth": {"fields": {"a": "{a}"}}} trailing`,
	}
	for _, h := range hostile {
		f.Add([]byte(h))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected cleanly
		}
		c, err := Compile(s)
		if err != nil {
			return // rejected cleanly
		}
		// A compiled spec must generate: a small corpus regardless of the
		// spec's own default size, every doc passing the spec's Validate
		// hook. The generic Truth contract (values appear in text) is a
		// domain-quality property, not a safety property, so it is not
		// asserted here.
		docs, err := corpus.Collect(c.Generator(3, -1, 1))
		if err != nil {
			t.Fatalf("index generator errored: %v", err)
		}
		if len(docs) != 3 {
			t.Fatalf("asked for 3 docs, got %d", len(docs))
		}
		for _, d := range docs {
			if err := c.validateDoc(d); err != nil {
				t.Fatalf("compiled domain emits docs failing its own hook: %v", err)
			}
		}
	})
}
