// Package spec is the config-driven corpus domain SDK: a JSON document
// declares a domain's field generators (categorical draws, numeric
// ranges, seeded noise, templates) and its ground-truth annotators, and
// Compile turns it into a registered corpus.Domain whose generator is
// index-addressable (constant memory at any corpus size) and validated by
// the same Truth contract as the hand-written Go domains. New scenario
// domains become data, not code: write a spec, `pzcorpus generate -spec
// file.json`, and the corpus flows through every existing path (NDJSON
// manifests, partitioned scans, the pzbench harness).
//
// Determinism contract. A compiled domain draws randomness exactly like
// the hand-written scale domains: document i's RNG is corpus.DocRNG(seed,
// i), and the positive class (urgent tickets, profitable filings) is
// marked by corpus.PositiveScatter. Draws happen in two passes — every
// field's base draw in declaration order, then, for positive-class
// documents, every positive override in declaration order — mirroring the
// hand-written shape `x := base(); if positive { x = override() }`. A
// spec that transliterates a Go domain therefore reproduces it byte for
// byte (see testdata and the property test against the support domain).
package spec

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Version is the current spec format version; Parse rejects others.
const Version = 1

// Hard limits on spec shape. Specs are user input (files, fuzzers), so
// every count that could size an allocation is bounded before use.
const (
	// MaxSpecBytes bounds the raw spec document.
	MaxSpecBytes = 1 << 20
	// MaxFields bounds the field-generator list.
	MaxFields = 64
	// MaxChoices bounds one categorical generator's choice/row list.
	MaxChoices = 4096
	// MaxColumns bounds a row table's column list.
	MaxColumns = 16
	// MaxTopics bounds the truth topic list.
	MaxTopics = 16
	// MaxAnnotations bounds the truth fields/numbers maps.
	MaxAnnotations = 64
	// MaxTemplateLen bounds any single template string.
	MaxTemplateLen = 1 << 16
	// MaxNameLen bounds field and domain names.
	MaxNameLen = 64
	// MaxDefaultDocs bounds the spec's default corpus size (generation
	// callers may still ask for more explicitly).
	MaxDefaultDocs = 100_000_000
	// MaxIntRange bounds an integer generator's value count (the Intn
	// argument must stay a positive int on 32-bit platforms too).
	MaxIntRange = 1 << 30
	// MaxAbsValue bounds integer endpoints and scales so scaled values
	// stay comfortably inside float64's exact-integer range.
	MaxAbsValue = 1_000_000_000_000
	// MaxPadWidth bounds the zero-pad width of a {ref:%0Nd} placeholder
	// (a hostile width would otherwise allocate the padding).
	MaxPadWidth = 32
	// MaxDecimals bounds a float generator's rendered precision.
	MaxDecimals = 12
)

// DomainSpec is the root of a domain spec document.
type DomainSpec struct {
	// SpecVersion must equal Version.
	SpecVersion int `json:"spec_version"`
	// Name is the domain registry name ("support-triage").
	Name string `json:"name"`
	// Description is the one-line registry summary.
	Description string `json:"description,omitempty"`
	// Workload names the scenario the domain backs.
	Workload string `json:"workload,omitempty"`
	// Docs is the default corpus size.
	Docs int `json:"docs"`
	// Positive declares the positive document class, if the domain has
	// one: a rate, a ground-truth label, and per-field overrides.
	Positive *PositiveSpec `json:"positive,omitempty"`
	// Fields are the ordered field generators. Order is semantic: it is
	// the RNG draw order (see the package determinism contract).
	Fields []FieldSpec `json:"fields"`
	// Filename is the per-document filename template.
	Filename string `json:"filename"`
	// Text is the document body template.
	Text string `json:"text"`
	// Truth declares the ground-truth annotators.
	Truth TruthSpec `json:"truth"`
}

// PositiveSpec declares the positive document class.
type PositiveSpec struct {
	// Label is the boolean ground-truth label set true on positive
	// documents and false on the rest ("urgent").
	Label string `json:"label"`
	// Rate is the default positive fraction in [0, 1]; generation-time
	// rate overrides replace it.
	Rate float64 `json:"rate"`
}

// FieldSpec is one field generator. Gen selects the kind; exactly the
// fields relevant to that kind are set.
type FieldSpec struct {
	// Name identifies the field in templates and truth annotators:
	// lowercase letters, digits, and underscores.
	Name string `json:"name"`
	// Gen is the generator kind: "pick", "pickrow", "int", "float",
	// "template", or "const".
	Gen string `json:"gen"`

	// Choices are the categorical values of a "pick" generator.
	Choices []string `json:"choices,omitempty"`

	// Columns and Rows form the row table of a "pickrow" generator: each
	// row is one value per column, referenced from templates as
	// {field.column}; {field} alone renders the first column.
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`

	// Min/Max bound an "int" draw (inclusive) or a "float" draw
	// (half-open). Scale multiplies an "int" draw (default 1).
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// Decimals is a "float" generator's rounding precision.
	Decimals int `json:"decimals,omitempty"`
	// Format renders an "int" value (printf, %d-family; default "%d").
	Format string `json:"format,omitempty"`

	// Template is a "template" generator's body. Template fields draw no
	// randomness and may reference builtins and non-template fields only
	// (which rules out reference cycles by construction).
	Template string `json:"template,omitempty"`

	// Value is a "const" generator's fixed string.
	Value string `json:"value,omitempty"`

	// Positive overrides the draw on positive-class documents. The base
	// draw still happens first (keeping the RNG stream aligned across
	// classes); the override is drawn in the second pass and replaces the
	// value. Only valid on "pick", "int", and "float" generators.
	Positive *FieldOverride `json:"positive,omitempty"`
}

// FieldOverride is the positive-class variant of a field draw.
type FieldOverride struct {
	Choices  []string `json:"choices,omitempty"`
	Min      float64  `json:"min,omitempty"`
	Max      float64  `json:"max,omitempty"`
	Scale    float64  `json:"scale,omitempty"`
	Decimals int      `json:"decimals,omitempty"`
	Format   string   `json:"format,omitempty"`
}

// TruthSpec declares the ground-truth annotators: every entry is a
// template (usually a single field reference) evaluated per document.
type TruthSpec struct {
	// Topics become Truth.Topics, in order.
	Topics []string `json:"topics,omitempty"`
	// Fields become Truth.Fields (scalar string annotations).
	Fields map[string]string `json:"fields,omitempty"`
	// Numbers become Truth.Numbers; each value must be a single
	// reference to a numeric ("int" or "float") field.
	Numbers map[string]string `json:"numbers,omitempty"`
}

// Parse decodes and validates a spec document. Unknown JSON keys are
// rejected (a typo'd generator knob must not silently vanish), as is any
// shape that exceeds the package limits.
func Parse(data []byte) (*DomainSpec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("spec: document is %d bytes, limit %d", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s DomainSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after document")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// validate checks everything that does not need the template parser;
// Compile re-walks templates and cross-references.
func (s *DomainSpec) validate() error {
	if s.SpecVersion != Version {
		return fmt.Errorf("spec: unsupported spec_version %d (want %d)", s.SpecVersion, Version)
	}
	if err := checkName("domain", s.Name); err != nil {
		return err
	}
	if s.Docs <= 0 {
		return fmt.Errorf("spec: %s: default docs must be positive, got %d", s.Name, s.Docs)
	}
	if s.Docs > MaxDefaultDocs {
		return fmt.Errorf("spec: %s: default docs %d exceeds limit %d", s.Name, s.Docs, MaxDefaultDocs)
	}
	if p := s.Positive; p != nil {
		if err := checkName("positive label", p.Label); err != nil {
			return err
		}
		if math.IsNaN(p.Rate) || p.Rate < 0 || p.Rate > 1 {
			return fmt.Errorf("spec: %s: positive rate %v outside [0, 1]", s.Name, p.Rate)
		}
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("spec: %s: no fields declared", s.Name)
	}
	if len(s.Fields) > MaxFields {
		return fmt.Errorf("spec: %s: %d fields exceeds limit %d", s.Name, len(s.Fields), MaxFields)
	}
	seen := map[string]bool{}
	for i := range s.Fields {
		f := &s.Fields[i]
		if err := f.validate(s); err != nil {
			return fmt.Errorf("spec: %s: field %d: %w", s.Name, i, err)
		}
		if seen[f.Name] {
			return fmt.Errorf("spec: %s: duplicate field %q", s.Name, f.Name)
		}
		seen[f.Name] = true
	}
	if s.Filename == "" {
		return fmt.Errorf("spec: %s: no filename template", s.Name)
	}
	if s.Text == "" {
		return fmt.Errorf("spec: %s: no text template", s.Name)
	}
	for _, t := range []struct {
		what string
		v    string
	}{{"filename", s.Filename}, {"text", s.Text}} {
		if len(t.v) > MaxTemplateLen {
			return fmt.Errorf("spec: %s: %s template is %d bytes, limit %d", s.Name, t.what, len(t.v), MaxTemplateLen)
		}
	}
	if len(s.Truth.Topics) > MaxTopics {
		return fmt.Errorf("spec: %s: %d topics exceeds limit %d", s.Name, len(s.Truth.Topics), MaxTopics)
	}
	if len(s.Truth.Fields) > MaxAnnotations {
		return fmt.Errorf("spec: %s: %d truth fields exceeds limit %d", s.Name, len(s.Truth.Fields), MaxAnnotations)
	}
	if len(s.Truth.Numbers) > MaxAnnotations {
		return fmt.Errorf("spec: %s: %d truth numbers exceeds limit %d", s.Name, len(s.Truth.Numbers), MaxAnnotations)
	}
	if len(s.Truth.Topics)+len(s.Truth.Fields)+len(s.Truth.Numbers) == 0 && s.Positive == nil {
		return fmt.Errorf("spec: %s: truth declares no annotations (the Truth contract requires at least one)", s.Name)
	}
	return nil
}

func (f *FieldSpec) validate(s *DomainSpec) error {
	if err := checkName("field", f.Name); err != nil {
		return err
	}
	if isBuiltinRef(f.Name) {
		return fmt.Errorf("field %q shadows a builtin reference", f.Name)
	}
	switch f.Gen {
	case "pick":
		if err := checkChoices(f.Choices); err != nil {
			return err
		}
		if f.Positive != nil {
			if err := checkChoices(f.Positive.Choices); err != nil {
				return fmt.Errorf("positive override: %w", err)
			}
		}
	case "pickrow":
		if len(f.Columns) == 0 || len(f.Columns) > MaxColumns {
			return fmt.Errorf("pickrow needs 1..%d columns, got %d", MaxColumns, len(f.Columns))
		}
		colSeen := map[string]bool{}
		for _, c := range f.Columns {
			if err := checkName("column", c); err != nil {
				return err
			}
			if colSeen[c] {
				return fmt.Errorf("duplicate column %q", c)
			}
			colSeen[c] = true
		}
		if len(f.Rows) == 0 || len(f.Rows) > MaxChoices {
			return fmt.Errorf("pickrow needs 1..%d rows, got %d", MaxChoices, len(f.Rows))
		}
		for i, row := range f.Rows {
			if len(row) != len(f.Columns) {
				return fmt.Errorf("row %d has %d values for %d columns", i, len(row), len(f.Columns))
			}
		}
		if f.Positive != nil {
			return fmt.Errorf("pickrow does not support a positive override")
		}
	case "int":
		if err := checkIntRange(f.Min, f.Max, f.Scale, f.Format); err != nil {
			return err
		}
		if o := f.Positive; o != nil {
			if err := checkIntRange(o.Min, o.Max, o.Scale, o.Format); err != nil {
				return fmt.Errorf("positive override: %w", err)
			}
		}
	case "float":
		if err := checkFloatRange(f.Min, f.Max, f.Decimals); err != nil {
			return err
		}
		if o := f.Positive; o != nil {
			if err := checkFloatRange(o.Min, o.Max, o.Decimals); err != nil {
				return fmt.Errorf("positive override: %w", err)
			}
		}
	case "template":
		if f.Template == "" {
			return fmt.Errorf("template generator has no template")
		}
		if len(f.Template) > MaxTemplateLen {
			return fmt.Errorf("template is %d bytes, limit %d", len(f.Template), MaxTemplateLen)
		}
		if f.Positive != nil {
			return fmt.Errorf("template does not support a positive override")
		}
	case "const":
		if f.Value == "" {
			return fmt.Errorf("const generator has no value")
		}
		if len(f.Value) > MaxTemplateLen {
			return fmt.Errorf("const value is %d bytes, limit %d", len(f.Value), MaxTemplateLen)
		}
		if f.Positive != nil {
			return fmt.Errorf("const does not support a positive override")
		}
	default:
		return fmt.Errorf("unknown generator kind %q", f.Gen)
	}
	return nil
}

func checkChoices(choices []string) error {
	if len(choices) == 0 || len(choices) > MaxChoices {
		return fmt.Errorf("pick needs 1..%d choices, got %d", MaxChoices, len(choices))
	}
	return nil
}

func checkIntRange(min, max, scale float64, format string) error {
	for _, v := range []float64{min, max, scale} {
		if v != math.Trunc(v) || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("int endpoints and scale must be integers, got min=%v max=%v scale=%v", min, max, scale)
		}
	}
	if math.Abs(min) > MaxAbsValue || math.Abs(max) > MaxAbsValue {
		return fmt.Errorf("int endpoints exceed |%d|", int64(MaxAbsValue))
	}
	if scale == 0 {
		scale = 1
	}
	if scale < 1 || scale > MaxAbsValue {
		return fmt.Errorf("int scale %v outside [1, %d]", scale, int64(MaxAbsValue))
	}
	if math.Abs(min)*scale > MaxAbsValue || math.Abs(max)*scale > MaxAbsValue {
		return fmt.Errorf("int scaled endpoints exceed |%d|", int64(MaxAbsValue))
	}
	if min > max {
		return fmt.Errorf("int range inverted: min %v > max %v", min, max)
	}
	if max-min+1 > MaxIntRange {
		return fmt.Errorf("int range spans %v values, limit %d", max-min+1, MaxIntRange)
	}
	if format != "" {
		if _, err := parsePad(format); err != nil {
			return err
		}
	}
	return nil
}

func checkFloatRange(min, max float64, decimals int) error {
	if math.IsNaN(min) || math.IsInf(min, 0) || math.IsNaN(max) || math.IsInf(max, 0) {
		return fmt.Errorf("float endpoints must be finite")
	}
	if math.Abs(min) > MaxAbsValue || math.Abs(max) > MaxAbsValue {
		return fmt.Errorf("float endpoints exceed |%d|", int64(MaxAbsValue))
	}
	if min > max {
		return fmt.Errorf("float range inverted: min %v > max %v", min, max)
	}
	if decimals < 0 || decimals > MaxDecimals {
		return fmt.Errorf("float decimals %d outside [0, %d]", decimals, MaxDecimals)
	}
	return nil
}

// parsePad validates an integer printf format: literal text around
// exactly one %d-family verb ("%d", "%06d", "P%d"). Pad widths are
// capped so a hostile format cannot allocate megabytes of zero padding
// per document.
func parsePad(format string) (string, error) {
	pct := strings.IndexByte(format, '%')
	if pct < 0 || strings.IndexByte(format[pct+1:], '%') >= 0 {
		return "", fmt.Errorf("format %q must contain exactly one %%d verb", format)
	}
	rest := format[pct+1:]
	width, j := 0, 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		width = width*10 + int(rest[j]-'0')
		if width > MaxPadWidth {
			return "", fmt.Errorf("format %q pads wider than %d", format, MaxPadWidth)
		}
		j++
	}
	if j >= len(rest) || rest[j] != 'd' {
		return "", fmt.Errorf("format %q is not a %%d form", format)
	}
	return format, nil
}

// checkName enforces the shared naming rule for domains, fields, columns,
// and labels: non-empty, at most MaxNameLen runes, lowercase letters,
// digits, '_' and '-' only, starting with a letter.
func checkName(what, name string) error {
	if name == "" {
		return fmt.Errorf("spec: %s name is empty", what)
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("spec: %s name %q longer than %d", what, name[:MaxNameLen]+"…", MaxNameLen)
	}
	for i, r := range name {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-'
		if i == 0 {
			ok = r >= 'a' && r <= 'z'
		}
		if !ok {
			return fmt.Errorf("spec: %s name %q must match [a-z][a-z0-9_-]*", what, name)
		}
	}
	return nil
}
