package spec

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// miniSpec is a small valid spec exercising every generator kind.
const miniSpec = `{
  "spec_version": 1,
  "name": "mini",
  "description": "unit-test domain",
  "docs": 20,
  "positive": {"label": "hot", "rate": 0.25},
  "fields": [
    {"name": "word", "gen": "pick", "choices": ["alpha", "beta", "gamma"],
     "positive": {"choices": ["omega"]}},
    {"name": "pair", "gen": "pickrow", "columns": ["key", "detail"],
     "rows": [["red", "warm color"], ["blue", "cool color"]]},
    {"name": "count", "gen": "int", "min": 1, "max": 5, "scale": 10,
     "positive": {"min": 100, "max": 100}},
    {"name": "ratio", "gen": "float", "min": 0, "max": 1, "decimals": 2},
    {"name": "tag", "gen": "template", "template": "doc-{index1:%04d}-{word}"},
    {"name": "unit", "gen": "const", "value": "items"}
  ],
  "filename": "mini-{index}.txt",
  "text": "Tag {tag} pairs {pair} ({pair.detail}) with {count} {unit} at ratio {ratio}. Literal {{braces}} stay.\n",
  "truth": {
    "topics": ["mini doc", "{pair}"],
    "fields": {"word": "{word}", "tag": "{tag}"},
    "numbers": {"count": "{count}", "ratio": "{ratio}"}
  }
}`

func compileMini(t *testing.T) *Compiled {
	t.Helper()
	s, err := Parse([]byte(miniSpec))
	if err != nil {
		t.Fatalf("parse mini spec: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("compile mini spec: %v", err)
	}
	return c
}

func TestMiniSpecGenerates(t *testing.T) {
	c := compileMini(t)
	docs, err := corpus.Collect(c.Generator(0, -1, 9)) // n<=0 -> spec default 20
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(docs) != 20 {
		t.Fatalf("got %d docs, want the spec default 20", len(docs))
	}
	hot := 0
	for i, d := range docs {
		if err := corpus.ValidateDoc(d); err != nil {
			t.Fatalf("doc %d fails the truth contract: %v", i, err)
		}
		if d.Filename != fmt.Sprintf("mini-%d.txt", i) {
			t.Fatalf("doc %d filename %q", i, d.Filename)
		}
		if !strings.Contains(d.Text, "Literal {braces} stay.") {
			t.Fatalf("doc %d: brace escapes not honored: %q", i, d.Text)
		}
		if d.Truth.Labels["hot"] {
			hot++
			// The positive override replaces the whole draw, its own
			// scale included (default 1) — same semantics as the support
			// domain's urgent response-hours override.
			if d.Truth.Numbers["count"] != 100 {
				t.Fatalf("doc %d: hot count %v, want 100", i, d.Truth.Numbers["count"])
			}
			if d.Truth.Fields["word"] != "omega" {
				t.Fatalf("doc %d: hot word %q, want omega", i, d.Truth.Fields["word"])
			}
		}
	}
	if hot != 5 { // round(20 * 0.25)
		t.Fatalf("got %d hot docs, want exactly 5", hot)
	}
}

func TestMiniSpecDeterminism(t *testing.T) {
	c := compileMini(t)
	a, _ := corpus.Collect(c.Generator(50, -1, 4))
	b, _ := corpus.Collect(c.Generator(50, -1, 4))
	for i := range a {
		if docJSON(t, a[i]) != docJSON(t, b[i]) {
			t.Fatalf("doc %d not deterministic", i)
		}
	}
	other, _ := corpus.Collect(c.Generator(50, -1, 5))
	same := 0
	for i := range a {
		if docJSON(t, a[i]) == docJSON(t, other[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical corpora")
	}
}

// TestRegisterAndRoundTrip registers the compiled domain, generates a
// corpus through the registry entry point, saves it as NDJSON, and runs
// the on-disk validator — the full `pzcorpus generate -spec` path.
func TestRegisterAndRoundTrip(t *testing.T) {
	s, err := Parse([]byte(strings.Replace(miniSpec, `"name": "mini"`, `"name": "mini-roundtrip"`, 1)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := c.Register(); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := c.Register(); err == nil {
		t.Fatalf("second register should fail (duplicate name)")
	}
	g, err := corpus.NewGenerator("mini-roundtrip", 40, -1, 2)
	if err != nil {
		t.Fatalf("registry generator: %v", err)
	}
	path := filepath.Join(t.TempDir(), "mini.ndjson")
	m, err := corpus.SaveNDJSON(path, g, 2, map[string]any{"spec": "mini-roundtrip"})
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if m.NumDocs != 40 || m.Domain != "mini-roundtrip" {
		t.Fatalf("manifest: %d docs domain %q", m.NumDocs, m.Domain)
	}
	rep, err := corpus.ValidateNDJSON(path)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("on-disk corpus fails validation: %v", rep.Errors)
	}
}

func TestParseRejects(t *testing.T) {
	mut := func(old, new string) string { return strings.Replace(miniSpec, old, new, 1) }
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", ``, "EOF"},
		{"not json", `nope`, "invalid character"},
		{"oversized", `{"pad": "` + strings.Repeat("x", MaxSpecBytes) + `"}`, "limit"},
		{"unknown key", mut(`"docs": 20`, `"docs": 20, "typo": 1`), "unknown field"},
		{"trailing data", miniSpec + `{}`, "trailing data"},
		{"bad version", mut(`"spec_version": 1`, `"spec_version": 99`), "unsupported spec_version"},
		{"bad name", mut(`"name": "mini"`, `"name": "Mini!"`), "must match"},
		{"empty name", mut(`"name": "mini"`, `"name": ""`), "name is empty"},
		{"negative docs", mut(`"docs": 20`, `"docs": -5`), "must be positive"},
		{"huge docs", mut(`"docs": 20`, `"docs": 999999999999`), "exceeds limit"},
		{"bad rate", mut(`"rate": 0.25`, `"rate": 1.5`), "outside [0, 1]"},
		{"no fields", mut(`"fields": [`, `"fields_off": [`), "unknown field"},
		{"dup field", mut(`"name": "unit", "gen": "const"`, `"name": "word", "gen": "const"`), "duplicate field"},
		{"builtin shadow", mut(`"name": "unit"`, `"name": "index"`), "shadows a builtin"},
		{"no choices", mut(`"choices": ["alpha", "beta", "gamma"]`, `"choices": []`), "1..4096 choices"},
		{"unknown gen", mut(`"gen": "const"`, `"gen": "magic"`), "unknown generator"},
		{"ragged rows", mut(`["red", "warm color"]`, `["red"]`), "row 0 has 1 values"},
		{"pickrow positive", mut(`"rows": [["red", "warm color"], ["blue", "cool color"]]`,
			`"rows": [["red", "warm color"], ["blue", "cool color"]], "positive": {"choices": ["x"]}`),
			"does not support a positive override"},
		{"inverted int", mut(`"min": 1, "max": 5`, `"min": 5, "max": 1`), "range inverted"},
		{"fractional int", mut(`"min": 1, "max": 5`, `"min": 1.5, "max": 5`), "must be integers"},
		{"huge int range", mut(`"min": 1, "max": 5`, `"min": 0, "max": 99999999999`), "range spans"},
		{"overflow scale", mut(`"scale": 10`, `"scale": 999999999999`), "scaled endpoints exceed"},
		{"bad format", mut(`"gen": "int", "min": 1, "max": 5, "scale": 10`,
			`"gen": "int", "min": 1, "max": 5, "format": "%s"`), "not a %d form"},
		{"wide pad", mut(`"gen": "int", "min": 1, "max": 5, "scale": 10`,
			`"gen": "int", "min": 1, "max": 5, "format": "%0999d"`), "pads wider"},
		{"bad decimals", mut(`"decimals": 2`, `"decimals": 40`), "decimals 40 outside"},
		{"empty template", mut(`"template": "doc-{index1:%04d}-{word}"`, `"template": ""`), "no template"},
		{"empty const", mut(`"value": "items"`, `"value": ""`), "no value"},
		{"no filename", mut(`"filename": "mini-{index}.txt"`, `"filename": ""`), "no filename"},
		{"no text", mut(`"text": "Tag {tag}`, `"text_gone": "Tag {tag}`), "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted a bad spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCompileRejects(t *testing.T) {
	mut := func(old, new string) string { return strings.Replace(miniSpec, old, new, 1) }
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown ref", mut(`"filename": "mini-{index}.txt"`, `"filename": "{nosuch}.txt"`), "names no field"},
		{"template cycle", mut(`"template": "doc-{index1:%04d}-{word}"`, `"template": "see-{tag}"`),
			"may not reference other template fields"},
		{"pad on field", mut(`Tag {tag}`, `Tag {word:%06d}`), "index builtins only"},
		{"col on pick", mut(`({pair.detail})`, `({word.detail})`), "not a pickrow field"},
		{"unknown col", mut(`({pair.detail})`, `({pair.nosuch})`), "no column"},
		{"col on builtin", mut(`"filename": "mini-{index}.txt"`, `"filename": "mini-{index.x}.txt"`), "takes no column"},
		{"unclosed brace", mut(`"filename": "mini-{index}.txt"`, `"filename": "mini-{index.txt"`), "unclosed"},
		{"unmatched close", mut(`"filename": "mini-{index}.txt"`, `"filename": "mini}.txt"`), "unmatched"},
		{"number to pick", mut(`"numbers": {"count": "{count}", "ratio": "{ratio}"}`,
			`"numbers": {"count": "{word}"}`), "want int or float"},
		{"number not single ref", mut(`"numbers": {"count": "{count}", "ratio": "{ratio}"}`,
			`"numbers": {"count": "n={count}"}`), "single {field} reference"},
		{"bad truth name", mut(`"fields": {"word": "{word}"`, `"fields": {"WORD": "{word}"`), "must match"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.doc))
			if err != nil {
				// Some mutations are caught at parse time already.
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("parse error %q does not mention %q", err, tc.want)
				}
				return
			}
			_, err = Compile(s)
			if err == nil {
				t.Fatalf("Compile accepted a bad spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatalf("Load of a missing file should fail")
	}
}
