package corpus

import (
	"io"
	"strings"
	"testing"
)

// drain collects a generator, failing the test on any error.
func drain(t *testing.T, g Generator) []*Doc {
	t.Helper()
	docs, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

// sameDocs asserts two corpora are byte-identical (filenames and text)
// and carry equally-shaped truth.
func sameDocs(t *testing.T, a, b []*Doc) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Filename != b[i].Filename {
			t.Fatalf("doc %d filename %q vs %q", i, a[i].Filename, b[i].Filename)
		}
		if a[i].Text != b[i].Text {
			t.Fatalf("doc %d text differs", i)
		}
	}
}

func TestStreamEqualsSliceEveryDomain(t *testing.T) {
	cases := []struct {
		name   string
		slice  []*Doc
		stream Generator
	}{
		{DomainBiomed, GenerateBiomed(PaperDemoBiomed()), NewBiomedGenerator(PaperDemoBiomed())},
		{DomainLegal, GenerateLegal(DefaultLegal()), NewLegalGenerator(DefaultLegal())},
		{DomainRealEstate, GenerateRealEstate(DefaultRealEstate()), NewRealEstateGenerator(DefaultRealEstate())},
		{DomainSupport, GenerateSupport(DefaultSupport()), NewSupportGenerator(DefaultSupport())},
		{DomainFinance, GenerateFinance(DefaultFinance()), NewFinanceGenerator(DefaultFinance())},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.stream.Domain() != c.name {
				t.Errorf("Domain() = %q, want %q", c.stream.Domain(), c.name)
			}
			if c.stream.Len() != len(c.slice) {
				t.Errorf("Len() = %d, want %d", c.stream.Len(), len(c.slice))
			}
			sameDocs(t, c.slice, drain(t, c.stream))
		})
	}
}

func TestRegistryGeneratorsDeterministic(t *testing.T) {
	for _, d := range Domains() {
		t.Run(d.Name, func(t *testing.T) {
			a := drain(t, d.New(60, -1, 5))
			b := drain(t, d.New(60, -1, 5))
			sameDocs(t, a, b)
			diff := drain(t, d.New(60, -1, 6))
			same := true
			for i := range a {
				if a[i].Text != diff[i].Text {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds produced identical corpora")
			}
		})
	}
}

func TestGeneratorExhaustion(t *testing.T) {
	g := NewSupportGenerator(SupportConfig{NumTickets: 2, UrgentRate: 0.5, Seed: 1})
	for i := 0; i < 2; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("after exhaustion Next() err = %v, want io.EOF", err)
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatal("Next() after EOF must keep returning io.EOF")
	}
}

func TestSupportShape(t *testing.T) {
	cfg := DefaultSupport()
	docs := GenerateSupport(cfg)
	if len(docs) != 200 {
		t.Fatalf("tickets = %d, want 200", len(docs))
	}
	urgent := 0
	seen := map[string]bool{}
	for _, d := range docs {
		if seen[d.Filename] {
			t.Fatalf("duplicate filename %s", d.Filename)
		}
		seen[d.Filename] = true
		if err := ValidateDoc(d); err != nil {
			t.Fatalf("generic contract: %v", err)
		}
		if err := validateSupportDoc(d); err != nil {
			t.Fatalf("domain contract: %v", err)
		}
		if d.Truth.Labels[UrgentLabel] {
			urgent++
		}
	}
	if want := 60; urgent != want {
		t.Errorf("urgent tickets = %d, want %d (200 * 0.3)", urgent, want)
	}
}

func TestSupportPrefixIndependence(t *testing.T) {
	// Index-addressable generation: the first 10 documents of a 10-ticket
	// stream and of a 10000-ticket stream share per-document RNG state,
	// so content must agree wherever the urgency class also agrees — and
	// a short prefix of the big corpus must cost nothing more to produce.
	cfg := DefaultSupport()
	cfg.NumTickets = 10000
	g := NewSupportGenerator(cfg)
	for i := 0; i < 10; i++ {
		d, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if d.Truth.Fields["ticket_id"] == "" {
			t.Fatalf("doc %d missing ticket id", i)
		}
	}
}

func TestFinanceShape(t *testing.T) {
	cfg := DefaultFinance()
	docs := GenerateFinance(cfg)
	if len(docs) != 150 {
		t.Fatalf("filings = %d, want 150", len(docs))
	}
	profitable := 0
	for _, d := range docs {
		if err := ValidateDoc(d); err != nil {
			t.Fatalf("generic contract: %v", err)
		}
		if err := validateFinanceDoc(d); err != nil {
			t.Fatalf("domain contract: %v", err)
		}
		if d.Truth.Labels[ProfitableLabel] {
			profitable++
			if !strings.Contains(d.Text, "Net income for the year") {
				t.Errorf("%s: profitable filing lacks net-income sentence", d.Filename)
			}
		} else if !strings.Contains(d.Text, "net loss") {
			t.Errorf("%s: unprofitable filing lacks net-loss sentence", d.Filename)
		}
	}
	if want := 90; profitable != want {
		t.Errorf("profitable filings = %d, want %d (150 * 0.6)", profitable, want)
	}
}

func TestScatterExactCounts(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1000} {
		for _, k := range []int{0, 1, n / 3, n} {
			sc := newScatter(42, n)
			got := 0
			seen := map[int]bool{}
			for i := 0; i < n; i++ {
				p := sc.pos(i)
				if p < 0 || p >= n {
					t.Fatalf("n=%d: pos(%d) = %d out of range", n, i, p)
				}
				if seen[p] {
					t.Fatalf("n=%d: pos collision at %d", n, p)
				}
				seen[p] = true
				if p < k {
					got++
				}
			}
			if got != k {
				t.Fatalf("n=%d k=%d: marked %d positives", n, k, got)
			}
		}
	}
}

func TestValidateDocCatchesViolations(t *testing.T) {
	ok := GenerateSupport(SupportConfig{NumTickets: 1, UrgentRate: 0, Seed: 3})[0]
	if err := ValidateDoc(ok); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	cases := map[string]func(d *Doc){
		"empty filename":    func(d *Doc) { d.Filename = "" },
		"empty text":        func(d *Doc) { d.Text = "  " },
		"nil truth":         func(d *Doc) { d.Truth = nil },
		"field not in text": func(d *Doc) { d.Truth.Fields["product"] = "Nonexistent Product" },
		"number not in text": func(d *Doc) {
			d.Truth.Numbers["response_hours"] = 123456789
		},
		"mention not in text": func(d *Doc) {
			d.Truth.Mentions = []Mention{{Kind: "x", Fields: map[string]string{"name": "absent-entity"}}}
		},
	}
	for name, corrupt := range cases {
		d := GenerateSupport(SupportConfig{NumTickets: 1, UrgentRate: 0, Seed: 3})[0]
		corrupt(d)
		if err := ValidateDoc(d); err == nil {
			t.Errorf("%s: corruption not caught", name)
		}
	}
}

func TestNewGeneratorRegistry(t *testing.T) {
	if _, err := NewGenerator("no-such-domain", 10, -1, 1); err == nil {
		t.Fatal("unknown domain accepted")
	}
	g, err := NewGenerator(DomainFinance, 0, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 150 {
		t.Errorf("default docs = %d, want the finance default 150", g.Len())
	}
	g, err = NewGenerator(DomainSupport, 50, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	urgent := 0
	for _, d := range drain(t, g) {
		if d.Truth.Labels[UrgentLabel] {
			urgent++
		}
	}
	if urgent != 25 {
		t.Errorf("rate override: urgent = %d, want 25", urgent)
	}
}

func TestLegacyDomainsPassValidation(t *testing.T) {
	for _, d := range []Domain{domains[DomainBiomed], domains[DomainLegal], domains[DomainRealEstate]} {
		for _, doc := range drain(t, d.New(30, -1, 11)) {
			if err := ValidateDoc(doc); err != nil {
				t.Errorf("%s: %v", d.Name, err)
			}
			if err := d.Validate(doc); err != nil {
				t.Errorf("%s: %v", d.Name, err)
			}
		}
	}
}
