package corpus

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzNDJSONRead hammers the NDJSON line parser and the manifest
// validator with arbitrary bytes: whatever the corpus file and its
// manifest contain — truncated JSON, garbage lines, hostile counts and
// checkpoint offsets — reading, validating, and range-reading must fail
// with errors, never panic or loop. Run longer with
// `go test -fuzz FuzzNDJSONRead ./internal/corpus`.
func FuzzNDJSONRead(f *testing.F) {
	valid := []byte(`{"filename":"a.txt","text":"alpha beta","truth":{"labels":{"x":true}}}` + "\n")
	f.Add([]byte(nil), []byte(nil), false)
	f.Add(valid, []byte(nil), false)
	f.Add(valid, []byte(`{"format_version":1,"num_docs":1,"sha256":"","bytes":70}`), true)
	f.Add([]byte(`{"filename":"a.txt","text":"tru`), []byte(nil), false) // truncated line
	f.Add([]byte("not json at all\n\n{}\n"), []byte(`{"num_docs":-5}`), true)
	f.Add(valid, []byte(`{"num_docs":1,"bytes":70,"index":{"stride":0,"offsets":[0]}}`), true)
	f.Add(valid, []byte(`{"num_docs":1,"bytes":70,"index":{"stride":1,"offsets":[9999999]}}`), true)
	f.Add(append(valid, valid...), []byte(`{"num_docs":2,"bytes":140,"index":{"stride":1,"offsets":[0,35]}}`), true)

	f.Fuzz(func(t *testing.T, corpusBytes, manifestBytes []byte, withManifest bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.ndjson")
		if err := os.WriteFile(path, corpusBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if withManifest {
			if err := os.WriteFile(path+ManifestSuffix, manifestBytes, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		// Whole-file reader: drain to EOF or first error.
		if r, err := OpenNDJSON(path); err == nil {
			if r.Len() < 0 {
				t.Fatalf("reader Len %d < 0", r.Len())
			}
			if _, err := Collect(r); err != nil && errors.Is(err, io.EOF) {
				t.Fatalf("Collect leaked io.EOF: %v", err)
			}
			r.Close()
		}

		// Validator: content problems land in the report, I/O and
		// manifest corruption in the error — either way, no panic.
		if rep, err := ValidateNDJSON(path); err == nil && rep.Docs < 0 {
			t.Fatalf("validation counted %d docs", rep.Docs)
		}

		// Manifest-driven range readers: any layout the (possibly
		// hostile) manifest yields must read cleanly or error.
		if m, err := ReadManifest(path); err == nil {
			for _, p := range m.Partitions(4) {
				if p.Docs < 0 || p.Offset < 0 {
					t.Fatalf("partition with negative geometry: %+v", p)
				}
				if pr, err := OpenNDJSONRange(path, p.Offset, p.Docs); err == nil {
					_, _ = Collect(pr)
					pr.Close()
				}
			}
		}
	})
}
