package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The partition index: a table of byte-offset checkpoints recorded in the
// corpus manifest, mapping document ordinals to file positions. The index
// is what makes partition-parallel scans possible — a reader can seek
// straight to document k*Stride without parsing the prefix — so the
// engine's sharded source stage opens one independent range reader per
// partition. WriteNDJSON records the index as it streams; IndexNDJSON
// back-fills it into corpora written before the index existed; and
// ValidateNDJSON re-derives it and compares checkpoint by checkpoint.

// maxIndexEntries bounds the checkpoint table. The builder starts at
// stride 1 (every document indexed, so even tiny corpora partition evenly)
// and doubles the stride whenever the table fills, so a million-document
// corpus costs a few thousand manifest entries, not a million.
const maxIndexEntries = 4096

// PartitionIndex is the byte-offset checkpoint table of one NDJSON corpus.
type PartitionIndex struct {
	// Stride is the checkpoint grain in documents: Offsets[k] is the byte
	// offset at which document k*Stride begins.
	Stride int `json:"stride"`
	// Offsets are the checkpoint byte offsets, ascending from Offsets[0],
	// which is always 0.
	Offsets []int64 `json:"offsets"`
}

// check verifies the index is internally consistent with a corpus of
// numDocs documents and size bytes: positive stride, exactly one
// checkpoint per stride of documents, and strictly ascending offsets
// inside the file. Hostile or stale manifests fail here instead of
// sending range readers to garbage offsets.
func (ix *PartitionIndex) check(numDocs int, size int64) error {
	if ix.Stride < 1 {
		return fmt.Errorf("index stride %d", ix.Stride)
	}
	want := 0
	if numDocs > 0 {
		want = (numDocs + ix.Stride - 1) / ix.Stride
	}
	if len(ix.Offsets) != want {
		return fmt.Errorf("index has %d checkpoints, want %d (%d docs at stride %d)",
			len(ix.Offsets), want, numDocs, ix.Stride)
	}
	prev := int64(-1)
	for k, off := range ix.Offsets {
		if k == 0 && off != 0 {
			return fmt.Errorf("index checkpoint 0 at offset %d, want 0", off)
		}
		if off <= prev {
			return fmt.Errorf("index checkpoint %d offset %d not ascending", k, off)
		}
		if size > 0 && off >= size {
			return fmt.Errorf("index checkpoint %d offset %d beyond corpus size %d", k, off, size)
		}
		prev = off
	}
	return nil
}

// indexBuilder accumulates checkpoint offsets during one streaming pass
// over a corpus (writing or re-scanning). It is deterministic in the
// document sequence alone, so a back-filled index is identical to the one
// the writer would have produced.
type indexBuilder struct {
	stride  int
	offsets []int64
}

func newIndexBuilder() *indexBuilder { return &indexBuilder{stride: 1} }

// note records that document i starts at byte offset off. Only stride
// multiples are kept; when the table fills, every other checkpoint is
// dropped and the stride doubles.
func (b *indexBuilder) note(i int, off int64) {
	if i%b.stride != 0 {
		return
	}
	if len(b.offsets) >= maxIndexEntries {
		n := 0
		for k := 0; k < len(b.offsets); k += 2 {
			b.offsets[n] = b.offsets[k]
			n++
		}
		b.offsets = b.offsets[:n]
		b.stride *= 2
		if i%b.stride != 0 {
			return
		}
	}
	b.offsets = append(b.offsets, off)
}

// index returns the finished table (nil for an empty corpus).
func (b *indexBuilder) index(numDocs int) *PartitionIndex {
	if numDocs <= 0 || len(b.offsets) == 0 {
		return nil
	}
	return &PartitionIndex{Stride: b.stride, Offsets: b.offsets}
}

// Partition is one contiguous slice of an NDJSON corpus: an exact document
// count starting at a byte offset that falls on a document boundary.
type Partition struct {
	// Ordinal is the partition's position in corpus order.
	Ordinal int
	// Offset is the byte offset of the partition's first document line.
	Offset int64
	// Docs is the partition's exact document count.
	Docs int
}

// Partitions splits the corpus into at most max contiguous partitions at
// checkpoint boundaries, balanced to within one stride of documents. It
// returns nil when the manifest carries no (usable) index; fewer than max
// partitions when the corpus has fewer checkpoints. Concatenating the
// partitions in ordinal order reproduces the full corpus exactly.
func (m *Manifest) Partitions(max int) []Partition {
	ix := m.Index
	if ix == nil || m.NumDocs <= 0 || max < 1 {
		return nil
	}
	if ix.check(m.NumDocs, m.Bytes) != nil {
		return nil
	}
	p := max
	if p > len(ix.Offsets) {
		p = len(ix.Offsets)
	}
	out := make([]Partition, 0, p)
	for i := 0; i < p; i++ {
		lo := i * len(ix.Offsets) / p
		hi := (i + 1) * len(ix.Offsets) / p
		endDoc := hi * ix.Stride
		if i == p-1 || endDoc > m.NumDocs {
			endDoc = m.NumDocs
		}
		out = append(out, Partition{Ordinal: i, Offset: ix.Offsets[lo], Docs: endDoc - lo*ix.Stride})
	}
	return out
}

// OpenNDJSONRange opens a range reader over the corpus at path: exactly
// docs documents starting at byte offset (which must fall on a document
// boundary — use Manifest.Partitions to compute valid ranges). Range
// readers are independent of one another, so a partition-parallel scan
// opens one per partition and reads them concurrently.
func OpenNDJSONRange(path string, offset int64, docs int) (*DocReader, error) {
	if offset < 0 || docs < 0 {
		return nil, fmt.Errorf("corpus: bad range offset=%d docs=%d", offset, docs)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("corpus: seek %s to %d: %w", path, offset, err)
	}
	return &DocReader{n: docs, remaining: docs, f: f, sc: newLineScanner(f)}, nil
}

// IndexNDJSON back-fills the byte-offset partition index of the corpus at
// path: one streaming pass re-derives the checksum, document count, label
// counts, and checkpoint table, then rewrites the manifest with the index
// attached. A corpus whose manifest predates the index format (or was
// written by hand) becomes partitionable without regeneration. When no
// manifest exists one is created (domain and seed unknown); when one
// exists its checksum must match the file — a stale manifest is an error,
// not something to silently overwrite. Returns the updated manifest and
// whether it was newly created.
func IndexNDJSON(path string) (*Manifest, bool, error) {
	m, err := ReadManifest(path)
	created := false
	switch {
	case os.IsNotExist(err):
		m = &Manifest{FormatVersion: NDJSONFormatVersion}
		created = true
	case err != nil:
		return nil, false, err
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	sc := newLineScanner(io.TeeReader(f, h))
	b := newIndexBuilder()
	labels := map[string]int{}
	var off int64
	docs, line := 0, 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		lineStart := off
		off += int64(len(raw)) + 1 // the scanner strips the newline
		if len(raw) == 0 {
			continue
		}
		var d Doc
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, false, fmt.Errorf("corpus: %s line %d: %w", path, line, err)
		}
		b.note(docs, lineStart)
		docs++
		if d.Truth != nil {
			for label, v := range d.Truth.Labels {
				if v {
					labels[label]++
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("corpus: %s: %w", path, err)
	}
	sha := hex.EncodeToString(h.Sum(nil))

	if created {
		m.NumDocs = docs
		m.Bytes = off
		m.SHA256 = sha
		m.LabelCounts = labels
	} else {
		if m.SHA256 != sha {
			return nil, false, fmt.Errorf("corpus: %s changed since its manifest was written (checksum %s, manifest %s); regenerate the corpus or delete the manifest before indexing",
				path, sha, m.SHA256)
		}
		if m.NumDocs != docs {
			return nil, false, fmt.Errorf("corpus: %s has %d docs, manifest says %d", path, docs, m.NumDocs)
		}
	}
	m.Index = b.index(docs)
	if err := WriteManifest(path, m); err != nil {
		return nil, false, err
	}
	return m, created, nil
}
