package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// The embedding sidecar format: a binary file next to the corpus
// ("corpus.ndjson" → "corpus.ndjson.embeddings") holding one fixed-width
// vector per document in corpus order, keyed by the FNV-1a hash of the
// document filename. The manifest references the sidecar with a SHA-256
// checksum (Manifest.Embeddings), so `pzcorpus validate` can prove the
// vectors belong to exactly this corpus, and the optimizer's cascade
// prefilter can trust a sidecar it loads. The corpus package stays agnostic
// about what the vectors mean: callers pass the embedding function in
// (cmd/pzcorpus and the bench harness use llm.EmbedVector), and the format
// records only the dimensionality.
//
// Layout (little-endian):
//
//	offset 0:  magic   [8]byte "PZEMBED\x00"
//	offset 8:  version uint32 (currently 1)
//	offset 12: dim     uint32
//	offset 16: count   uint64
//	offset 24: count rows of { key uint64; vec [dim]float32 }

// EmbedSuffix is appended to a corpus path to name its embedding sidecar.
const EmbedSuffix = ".embeddings"

// embedMagic identifies a sidecar file.
var embedMagic = [8]byte{'P', 'Z', 'E', 'M', 'B', 'E', 'D', 0}

// EmbedFormatVersion is the current sidecar format version.
const EmbedFormatVersion = 1

// MaxEmbedDim bounds the vector dimensionality a sidecar may declare;
// anything larger is rejected before it can size an allocation.
const MaxEmbedDim = 4096

// maxEmbedVectors bounds the vector count a sidecar may declare. The cap
// matches the corpus-size ceilings elsewhere (pzbench caps tracks at 1M
// docs) with generous headroom.
const maxEmbedVectors = 1 << 28

// embedHeaderBytes is the fixed header size.
const embedHeaderBytes = 24

// EmbeddingsRef is the manifest's pointer to an embedding sidecar.
type EmbeddingsRef struct {
	// File is the sidecar's base filename, informational only: readers
	// always resolve corpusPath+EmbedSuffix, so a hostile manifest cannot
	// aim them at an arbitrary path.
	File string `json:"file"`
	// SHA256 is the hex checksum of the sidecar file's bytes.
	SHA256 string `json:"sha256"`
	// Dim is the vector dimensionality.
	Dim int `json:"dim"`
	// NumVectors is the number of rows (one per document).
	NumVectors int `json:"num_vectors"`
	// Bytes is the sidecar file's size.
	Bytes int64 `json:"bytes"`
}

// check rejects a structurally impossible sidecar reference — the same
// validate-before-allocate posture ReadManifest applies to the partition
// index.
func (e *EmbeddingsRef) check(numDocs int) error {
	if e.Dim < 1 || e.Dim > MaxEmbedDim {
		return fmt.Errorf("embeddings dim %d outside [1,%d]", e.Dim, MaxEmbedDim)
	}
	if e.NumVectors < 0 || e.NumVectors > maxEmbedVectors {
		return fmt.Errorf("embeddings vector count %d outside [0,%d]", e.NumVectors, maxEmbedVectors)
	}
	if e.NumVectors != numDocs {
		return fmt.Errorf("embeddings vector count %d does not match %d documents", e.NumVectors, numDocs)
	}
	if want := embedSize(e.Dim, e.NumVectors); e.Bytes != want {
		return fmt.Errorf("embeddings byte count %d does not match %d vectors of dim %d (want %d)",
			e.Bytes, e.NumVectors, e.Dim, want)
	}
	if len(e.SHA256) != 64 {
		return fmt.Errorf("embeddings sha256 %q is not a 64-hex digest", e.SHA256)
	}
	return nil
}

// embedSize is the exact file size of a sidecar with the given geometry.
// Inputs are pre-bounded by check/readEmbedHeader, so the arithmetic
// cannot overflow int64.
func embedSize(dim, count int) int64 {
	row := int64(8 + 4*dim)
	return embedHeaderBytes + int64(count)*row
}

// FilenameKey is the sidecar's row key for a document filename.
func FilenameKey(name string) uint64 { return fnv64(name) }

// EmbedIndex is an embedding sidecar loaded into memory: fixed-width
// vectors addressable by row (corpus order) or by document filename.
type EmbedIndex struct {
	dim   int
	keys  []uint64
	vecs  []float32 // flat, len = count*dim
	byKey map[uint64]int
}

// NewEmbedIndex returns an empty in-memory index (used by writers and
// tests; readers use OpenEmbedSidecar).
func NewEmbedIndex(dim int) *EmbedIndex {
	return &EmbedIndex{dim: dim, byKey: map[uint64]int{}}
}

// Dim returns the vector dimensionality.
func (ix *EmbedIndex) Dim() int { return ix.dim }

// Len returns the number of vectors.
func (ix *EmbedIndex) Len() int { return len(ix.keys) }

// Add appends a vector for filename. The vector is truncated or
// zero-padded to the index dimensionality.
func (ix *EmbedIndex) Add(filename string, vec []float64) {
	key := FilenameKey(filename)
	row := len(ix.keys)
	ix.keys = append(ix.keys, key)
	for i := 0; i < ix.dim; i++ {
		var v float64
		if i < len(vec) {
			v = vec[i]
		}
		ix.vecs = append(ix.vecs, float32(v))
	}
	ix.byKey[key] = row
}

// At returns row i's key and vector (float64 for the vector package).
func (ix *EmbedIndex) At(i int) (uint64, []float64) {
	return ix.keys[i], ix.row(i)
}

// Vector returns the stored vector for a document filename.
func (ix *EmbedIndex) Vector(filename string) ([]float64, bool) {
	row, ok := ix.byKey[FilenameKey(filename)]
	if !ok {
		return nil, false
	}
	return ix.row(row), true
}

func (ix *EmbedIndex) row(i int) []float64 {
	out := make([]float64, ix.dim)
	base := i * ix.dim
	for j := 0; j < ix.dim; j++ {
		out[j] = float64(ix.vecs[base+j])
	}
	return out
}

// WriteEmbedSidecar serializes the index to w and returns the byte count
// and checksum for the manifest reference.
func WriteEmbedSidecar(w io.Writer, ix *EmbedIndex) (int64, string, error) {
	h := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(w, h)}
	bw := bufio.NewWriterSize(cw, 1<<16)

	hdr := make([]byte, embedHeaderBytes)
	copy(hdr, embedMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], EmbedFormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(ix.dim))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(ix.Len()))
	if _, err := bw.Write(hdr); err != nil {
		return 0, "", fmt.Errorf("corpus: write embeddings header: %w", err)
	}

	row := make([]byte, 8+4*ix.dim)
	for i := 0; i < ix.Len(); i++ {
		binary.LittleEndian.PutUint64(row, ix.keys[i])
		base := i * ix.dim
		for j := 0; j < ix.dim; j++ {
			binary.LittleEndian.PutUint32(row[8+4*j:], math.Float32bits(ix.vecs[base+j]))
		}
		if _, err := bw.Write(row); err != nil {
			return 0, "", fmt.Errorf("corpus: write embeddings row %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, "", fmt.Errorf("corpus: %w", err)
	}
	return cw.n, hex.EncodeToString(h.Sum(nil)), nil
}

// EmbedNDJSON back-fills the embedding sidecar of the corpus at path: one
// streaming pass embeds every document's text with embed (a pure function;
// pzcorpus passes llm.EmbedVector), writes path+EmbedSuffix, and rewrites
// the manifest with the Embeddings reference attached. The corpus must
// already have a manifest whose checksum matches the file (generate first,
// or run `pzcorpus index`); a stale manifest is an error, not something to
// silently overwrite. Returns the updated manifest.
func EmbedNDJSON(path string, dim int, embed func(text string) []float64) (*Manifest, error) {
	if dim < 1 || dim > MaxEmbedDim {
		return nil, fmt.Errorf("corpus: embeddings dim %d outside [1,%d]", dim, MaxEmbedDim)
	}
	if embed == nil {
		return nil, fmt.Errorf("corpus: nil embedding function")
	}
	m, err := ReadManifest(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: embed needs a manifest (run `pzcorpus index` first): %w", err)
	}

	r, err := OpenNDJSON(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	ix := NewEmbedIndex(dim)
	for {
		d, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ix.Add(d.Filename, embed(d.Text))
	}
	if ix.Len() != m.NumDocs {
		return nil, fmt.Errorf("corpus: %s has %d documents but manifest says %d — stale manifest, re-index first",
			path, ix.Len(), m.NumDocs)
	}

	f, err := os.Create(path + EmbedSuffix)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	n, sum, werr := WriteEmbedSidecar(f, ix)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, werr
	}

	m.Embeddings = &EmbeddingsRef{
		File:       filepath.Base(path) + EmbedSuffix,
		SHA256:     sum,
		Dim:        dim,
		NumVectors: ix.Len(),
		Bytes:      n,
	}
	if err := WriteManifest(path, m); err != nil {
		return nil, err
	}
	return m, nil
}

// readEmbedHeader parses and bounds-checks a sidecar header.
func readEmbedHeader(hdr []byte) (dim, count int, err error) {
	var magic [8]byte
	copy(magic[:], hdr)
	if magic != embedMagic {
		return 0, 0, fmt.Errorf("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != EmbedFormatVersion {
		return 0, 0, fmt.Errorf("unsupported version %d", v)
	}
	d := binary.LittleEndian.Uint32(hdr[12:])
	c := binary.LittleEndian.Uint64(hdr[16:])
	if d < 1 || d > MaxEmbedDim {
		return 0, 0, fmt.Errorf("dim %d outside [1,%d]", d, MaxEmbedDim)
	}
	if c > maxEmbedVectors {
		return 0, 0, fmt.Errorf("vector count %d exceeds %d", c, maxEmbedVectors)
	}
	return int(d), int(c), nil
}

// OpenEmbedSidecar loads the embedding sidecar of the corpus at path into
// memory. The file's size must equal exactly what its header geometry
// implies — checked against the stat size before any vector storage is
// allocated, so a hostile header can never oversize an allocation. When
// ref is non-nil (the manifest's reference), the header geometry and the
// file's SHA-256 (computed during the load) must match it.
func OpenEmbedSidecar(path string, ref *EmbeddingsRef) (*EmbedIndex, error) {
	side := path + EmbedSuffix
	f, err := os.Open(side)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if st.Size() < embedHeaderBytes {
		return nil, fmt.Errorf("corpus: %s: truncated sidecar (%d bytes)", side, st.Size())
	}

	h := sha256.New()
	br := bufio.NewReaderSize(io.TeeReader(f, h), 1<<16)
	hdr := make([]byte, embedHeaderBytes)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", side, err)
	}
	dim, count, err := readEmbedHeader(hdr)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %v", side, err)
	}
	if want := embedSize(dim, count); st.Size() != want {
		return nil, fmt.Errorf("corpus: %s: size %d does not match header (dim=%d count=%d want %d)",
			side, st.Size(), dim, count, want)
	}
	if ref != nil {
		if dim != ref.Dim || count != ref.NumVectors || st.Size() != ref.Bytes {
			return nil, fmt.Errorf("corpus: %s: header (dim=%d count=%d bytes=%d) disagrees with manifest (dim=%d count=%d bytes=%d)",
				side, dim, count, st.Size(), ref.Dim, ref.NumVectors, ref.Bytes)
		}
	}

	ix := &EmbedIndex{
		dim:   dim,
		keys:  make([]uint64, 0, count),
		vecs:  make([]float32, 0, count*dim),
		byKey: make(map[uint64]int, count),
	}
	row := make([]byte, 8+4*dim)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("corpus: %s: row %d: %w", side, i, err)
		}
		key := binary.LittleEndian.Uint64(row)
		ix.keys = append(ix.keys, key)
		for j := 0; j < dim; j++ {
			bits := binary.LittleEndian.Uint32(row[8+4*j:])
			v := math.Float32frombits(bits)
			if f64 := float64(v); math.IsNaN(f64) || math.IsInf(f64, 0) {
				return nil, fmt.Errorf("corpus: %s: row %d component %d is not finite", side, i, j)
			}
			ix.vecs = append(ix.vecs, v)
		}
		ix.byKey[key] = i
	}
	if ref != nil {
		if got := hex.EncodeToString(h.Sum(nil)); got != ref.SHA256 {
			return nil, fmt.Errorf("corpus: %s: checksum mismatch: file %s, manifest %s", side, got, ref.SHA256)
		}
	}
	return ix, nil
}

// validateEmbeddings cross-checks a manifest's embedding sidecar against
// the corpus: the sidecar must load (size, header, checksum all agree with
// the reference) and carry exactly one row per document, keyed in document
// order. docKeys are the filename hashes collected during the main
// validation pass.
func validateEmbeddings(rep *ValidationReport, path string, ref *EmbeddingsRef, docKeys []uint64) {
	ix, err := OpenEmbedSidecar(path, ref)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			rep.errf("manifest references embeddings but sidecar %s is missing", path+EmbedSuffix)
			return
		}
		rep.errf("embeddings: %v", err)
		return
	}
	if ix.Len() != len(docKeys) {
		rep.errf("embeddings row count mismatch: sidecar %d, corpus %d", ix.Len(), len(docKeys))
		return
	}
	for i, want := range docKeys {
		if got := ix.keys[i]; got != want {
			rep.errf("embeddings row %d keyed %016x, document filename hashes to %016x", i, got, want)
			return
		}
	}
}
