package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// FinanceConfig controls the financial-filings generator — the
// numeric-extraction workload. Filings embed revenue, net income, and
// earnings per share both in prose and in a key-figures line, and the
// ground truth carries the exact numbers, so scalar extraction quality is
// directly measurable.
type FinanceConfig struct {
	// NumFilings is the corpus size.
	NumFilings int
	// ProfitableRate is the fraction of filings reporting positive net
	// income (the scenario's filter target).
	ProfitableRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultFinance returns the financial-analysis workload used by examples
// and benches: 150 filings, 60% profitable.
func DefaultFinance() FinanceConfig {
	return FinanceConfig{NumFilings: 150, ProfitableRate: 0.6, Seed: 23}
}

// ProfitableLabel is the ground-truth boolean label on filings with
// positive net income.
const ProfitableLabel = "profitable"

var financeSectors = []string{
	"semiconductors", "software", "retail", "energy", "logistics",
	"biotech", "banking", "telecommunications",
}

var financeNameA = []string{
	"Meridian", "Cascade", "Northwind", "Summit", "Vanguard", "Horizon",
	"Pinnacle", "Sterling", "Atlas", "Crescent", "Redwood", "Ironbridge",
}

var financeNameB = []string{
	"Semiconductor", "Systems", "Industries", "Holdings", "Technologies",
	"Energy", "Logistics", "Therapeutics", "Financial", "Networks",
}

var financeSuffix = []string{"Corp", "Inc", "Group", "Ltd"}

// NewFinanceGenerator returns the streaming financial-filings generator:
// filing i is derived from a per-index RNG (constant memory at any
// NumFilings), and exactly round(NumFilings*ProfitableRate) filings are
// profitable, scattered deterministically across the corpus.
func NewFinanceGenerator(cfg FinanceConfig) Generator {
	if cfg.NumFilings <= 0 {
		return &indexGen{domain: DomainFinance}
	}
	profitable := int(float64(cfg.NumFilings)*cfg.ProfitableRate + 0.5)
	sc := newScatter(cfg.Seed, cfg.NumFilings)
	return &indexGen{domain: DomainFinance, n: cfg.NumFilings, gen: func(i int) *Doc {
		return genFiling(docRNG(cfg.Seed, i), i, sc.pos(i) < profitable)
	}}
}

// GenerateFinance materializes the filings corpus — byte-identical to
// draining NewFinanceGenerator(cfg).
func GenerateFinance(cfg FinanceConfig) []*Doc {
	docs, _ := Collect(NewFinanceGenerator(cfg)) // index generators never error
	return docs
}

func genFiling(rng *rand.Rand, idx int, profitable bool) *Doc {
	company := fmt.Sprintf("%s %s %s",
		pick(rng, financeNameA), pick(rng, financeNameB), pick(rng, financeSuffix))
	ticker := tickerOf(company, rng)
	sector := pick(rng, financeSectors)
	year := 2019 + rng.Intn(6)

	revenue := float64(120 + rng.Intn(4880)) // USD millions
	margin := 0.04 + 0.16*rng.Float64()
	netIncome := float64(int(revenue * margin))
	if netIncome < 1 {
		netIncome = 1
	}
	if !profitable {
		netIncome = -netIncome
	}
	sharesM := float64(40 + rng.Intn(460))
	eps := float64(int(netIncome/sharesM*100)) / 100

	incomeSentence := fmt.Sprintf("Net income for the year was $%.0f million, and diluted earnings per share were %.2f", netIncome, eps)
	outlook := "Management expects continued demand and reaffirms its guidance for the coming fiscal year"
	if !profitable {
		incomeSentence = fmt.Sprintf("The company recorded a net loss for the year of $%.0f million, and diluted loss per share was %.2f", -netIncome, -eps)
		outlook = "Management has initiated a cost reduction program and expects to return to profitability as restructuring completes"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "FORM 10-K — ANNUAL REPORT\n\n")
	fmt.Fprintf(&b, "%s (ticker: %s) — Fiscal Year %d\n\n", company, ticker, year)
	fmt.Fprintf(&b, "Item 1. Business. %s\n\n", sentenceJoin(
		fmt.Sprintf("%s operates in the %s sector", company, sector),
		"The company sells its products and services through direct and channel sales worldwide",
	))
	fmt.Fprintf(&b, "Item 7. Management's Discussion and Analysis. %s\n\n", sentenceJoin(
		fmt.Sprintf("Total revenue for fiscal year %d was $%.0f million", year, revenue),
		incomeSentence,
		outlook,
	))
	fmt.Fprintf(&b, "Item 8. Financial Statements.\n")
	fmt.Fprintf(&b, "Key figures (USD millions unless noted): revenue %.0f; net income %.0f; eps %.2f; fiscal year %d.\n\n",
		revenue, netIncome, eps, year)
	fmt.Fprintf(&b, "Signatures. Filed on behalf of %s by its principal executive officer.\n", company)

	truth := &Truth{
		Topics: []string{"financial filing", "annual report", sector},
		Labels: map[string]bool{ProfitableLabel: profitable},
		Fields: map[string]string{
			"company": company,
			"ticker":  ticker,
			"sector":  sector,
		},
		Numbers: map[string]float64{
			"revenue_musd":    revenue,
			"net_income_musd": netIncome,
			"eps":             eps,
			"fiscal_year":     float64(year),
		},
	}
	return &Doc{
		Filename: fmt.Sprintf("filing-%06d.txt", idx+1),
		Text:     b.String(),
		Truth:    truth,
	}
}

// tickerOf derives a plausible 3-4 letter ticker from the company name.
func tickerOf(company string, rng *rand.Rand) string {
	var letters []byte
	for _, w := range strings.Fields(company) {
		letters = append(letters, w[0])
	}
	for len(letters) < 3+rng.Intn(2) {
		letters = append(letters, byte('A'+rng.Intn(26)))
	}
	return strings.ToUpper(string(letters))
}

// validateFinanceDoc checks the finance domain's invariants: the
// profitable label agrees with the sign of net income, eps has the same
// sign, and the key figures are extractable from the text.
func validateFinanceDoc(d *Doc) error {
	ni := d.Truth.Numbers["net_income_musd"]
	if prof := d.Truth.Labels[ProfitableLabel]; prof != (ni > 0) {
		return fmt.Errorf("profitable label %t disagrees with net income %.0f", prof, ni)
	}
	if eps := d.Truth.Numbers["eps"]; eps*ni < 0 {
		return fmt.Errorf("eps %.2f sign disagrees with net income %.0f", eps, ni)
	}
	if !strings.Contains(d.Text, "Key figures") {
		return fmt.Errorf("key-figures line missing")
	}
	return nil
}
