package corpus

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// saveDomainCorpus spills a small corpus of the named domain to disk and
// returns its path and manifest.
func saveDomainCorpus(t *testing.T, d Domain, n int, seed int64) (string, *Manifest) {
	t.Helper()
	path := filepath.Join(t.TempDir(), d.Name+".ndjson")
	m, err := SaveNDJSON(path, d.New(n, -1, seed), seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return path, m
}

// marshalDocs renders documents (text and truth included) to canonical
// JSON so slices can be compared byte for byte.
func marshalDocs(t *testing.T, docs []*Doc) string {
	t.Helper()
	data, err := json.Marshal(docs)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestPartitionReadsEquivalentToSequential is the partition property test:
// for every registered domain and randomized partition counts, the
// concatenation of the per-partition range reads must be byte-for-byte
// identical (documents and truth) to one full sequential scan. It extends
// the slice≡stream equivalence suite to the on-disk partitioned path.
func TestPartitionReadsEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for _, d := range Domains() {
		t.Run(d.Name, func(t *testing.T) {
			n := d.DefaultDocs
			path, m := saveDomainCorpus(t, d, n, 9)
			if m.Index == nil {
				t.Fatalf("SaveNDJSON wrote no partition index for %d docs", n)
			}
			r, err := OpenNDJSON(path)
			if err != nil {
				t.Fatal(err)
			}
			seqDocs, err := Collect(r)
			r.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(seqDocs) != n {
				t.Fatalf("sequential scan read %d docs, want %d", len(seqDocs), n)
			}
			want := marshalDocs(t, seqDocs)

			for trial := 0; trial < 8; trial++ {
				// Random fan-out, deliberately sometimes exceeding the
				// corpus size to exercise clamping.
				p := 1 + rng.Intn(n+3)
				parts := m.Partitions(p)
				if len(parts) == 0 || len(parts) > p {
					t.Fatalf("Partitions(%d) returned %d partitions", p, len(parts))
				}
				total := 0
				var got []*Doc
				for i, part := range parts {
					if part.Ordinal != i {
						t.Fatalf("partition %d has ordinal %d", i, part.Ordinal)
					}
					if part.Docs <= 0 {
						t.Fatalf("partition %d is empty (%d-way split of %d docs)", i, p, n)
					}
					total += part.Docs
					pr, err := OpenNDJSONRange(path, part.Offset, part.Docs)
					if err != nil {
						t.Fatal(err)
					}
					docs, err := Collect(pr)
					pr.Close()
					if err != nil {
						t.Fatal(err)
					}
					if len(docs) != part.Docs {
						t.Fatalf("partition %d read %d docs, want %d", i, len(docs), part.Docs)
					}
					got = append(got, docs...)
				}
				if total != n {
					t.Fatalf("partition doc counts sum to %d, want %d", total, n)
				}
				if concat := marshalDocs(t, got); concat != want {
					t.Fatalf("%d-way partitioned read differs from sequential scan", len(parts))
				}
			}
		})
	}
}

// TestIndexBuilderDecimation checks the adaptive stride: a document count
// beyond maxIndexEntries doubles the stride instead of growing the table,
// and every checkpoint still points at the right document offset.
func TestIndexBuilderDecimation(t *testing.T) {
	const docs = 3*maxIndexEntries + 5
	b := newIndexBuilder()
	for i := 0; i < docs; i++ {
		b.note(i, int64(i)*10) // synthetic: document i starts at byte 10i
	}
	ix := b.index(docs)
	if ix == nil {
		t.Fatal("no index built")
	}
	if ix.Stride != 4 {
		t.Fatalf("stride = %d, want 4 (two decimations past %d entries)", ix.Stride, maxIndexEntries)
	}
	if len(ix.Offsets) > maxIndexEntries {
		t.Fatalf("index has %d entries, cap is %d", len(ix.Offsets), maxIndexEntries)
	}
	for k, off := range ix.Offsets {
		if want := int64(k*ix.Stride) * 10; off != want {
			t.Fatalf("checkpoint %d at offset %d, want %d", k, off, want)
		}
	}
	if err := ix.check(docs, int64(docs)*10); err != nil {
		t.Fatalf("built index fails its own check: %v", err)
	}
}

// TestIndexNDJSONBackfill verifies `pzcorpus index`'s engine: stripping
// the index from a manifest and back-filling reproduces the exact index
// the writer produced, and corpora with no manifest at all get one.
func TestIndexNDJSONBackfill(t *testing.T) {
	d, _ := DomainByName(DomainSupport)
	path, written := saveDomainCorpus(t, d, 75, 3)

	// Simulate a pre-index manifest.
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Index = nil
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	back, created, err := IndexNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("IndexNDJSON claims it created a manifest that existed")
	}
	if !reflect.DeepEqual(back.Index, written.Index) {
		t.Fatalf("back-filled index differs from writer's:\nwriter: %+v\nbackfill: %+v", written.Index, back.Index)
	}
	if back.Domain != written.Domain || back.SHA256 != written.SHA256 {
		t.Fatal("back-fill clobbered manifest provenance")
	}

	// No manifest at all: index creates one (domain unknown).
	if err := os.Remove(path + ManifestSuffix); err != nil {
		t.Fatal(err)
	}
	fresh, created, err := IndexNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("IndexNDJSON did not report creating a manifest")
	}
	if fresh.NumDocs != written.NumDocs || fresh.SHA256 != written.SHA256 {
		t.Fatalf("created manifest docs=%d sha=%s, want docs=%d sha=%s",
			fresh.NumDocs, fresh.SHA256, written.NumDocs, written.SHA256)
	}
	if !reflect.DeepEqual(fresh.Index, written.Index) {
		t.Fatal("created manifest's index differs from writer's")
	}
	rep, err := ValidateNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	// The created manifest has no domain, so only generic checks ran —
	// but the checksum, counts, and index must all line up.
	if !rep.OK() {
		t.Fatalf("re-indexed corpus fails validation: %v", rep.Errors)
	}
}

// TestIndexNDJSONStaleManifest: a corpus edited after its manifest was
// written must be rejected, not silently re-described.
func TestIndexNDJSONStaleManifest(t *testing.T) {
	d, _ := DomainByName(DomainFinance)
	path, _ := saveDomainCorpus(t, d, 20, 4)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"filename\":\"extra.txt\",\"text\":\"x\",\"truth\":{\"labels\":{\"a\":true}}}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := IndexNDJSON(path); err == nil {
		t.Fatal("IndexNDJSON accepted a corpus that changed under its manifest")
	}
}

// TestValidateNDJSONCatchesIndexCorruption: a manifest whose index points
// at the wrong offsets must fail validation.
func TestValidateNDJSONCatchesIndexCorruption(t *testing.T) {
	d, _ := DomainByName(DomainLegal)
	path, _ := saveDomainCorpus(t, d, 30, 6)
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Index == nil || len(m.Index.Offsets) < 3 {
		t.Fatalf("unexpected index shape: %+v", m.Index)
	}
	m.Index.Offsets[2]++ // one checkpoint now points mid-document
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("validation passed a corrupted partition index")
	}
}

// TestValidateNDJSONNotesMissingIndex: pre-index manifests stay valid but
// the report points at the back-fill path.
func TestValidateNDJSONNotesMissingIndex(t *testing.T) {
	d, _ := DomainByName(DomainRealEstate)
	path, _ := saveDomainCorpus(t, d, 12, 2)
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Index = nil
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateNDJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("index-less corpus failed validation: %v", rep.Errors)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "partition index") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no note about the missing partition index in %v", rep.Notes)
	}
}
