package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/metrics"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Name labels the worker (registration, logs).
	Name string
	// Parallelism is the per-operator LLM concurrency of partition
	// sub-plans (default 4).
	Parallelism int
	// ChunkSize is how many records each streamed response chunk carries
	// (default 256).
	ChunkSize int
	// Datasets maps registered dataset names to their backing .ndjson
	// corpus files. A partition request for an unknown name is rejected;
	// coordinator and worker must agree on names, not paths.
	Datasets map[string]string
	// Counters optionally shares a metrics registry; nil allocates one.
	Counters *metrics.Counters
	// Histograms optionally shares a distribution registry; nil
	// allocates one.
	Histograms *metrics.Histograms
}

// Worker executes scattered partitions for a coordinator: each
// /v1/partition request runs one serve.Spec sub-plan over one byte range
// of a local corpus file (see ExecutePartition) and streams the results
// back as seq-tagged NDJSON chunks.
type Worker struct {
	cfg      WorkerConfig
	counters *metrics.Counters
	hists    *metrics.Histograms
}

// NewWorker builds a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 256
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	if cfg.Histograms == nil {
		cfg.Histograms = metrics.NewHistograms()
	}
	return &Worker{cfg: cfg, counters: cfg.Counters, hists: cfg.Histograms}, nil
}

// Name returns the worker's label.
func (w *Worker) Name() string { return w.cfg.Name }

// Counters exposes the worker's metrics registry.
func (w *Worker) Counters() *metrics.Counters { return w.counters }

// Handler returns the worker HTTP API:
//
//	POST /v1/partition execute one scattered partition, streaming NDJSON
//	                   chunks (terminal chunk has done=true)
//	GET  /metrics      Prometheus text exposition (the same renderer
//	                   pzserve uses); ?format=json keeps the JSON snapshot
//	GET  /healthz      liveness (the registry's health checks poll it)
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/partition", w.handlePartition)
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			writeJSON(rw, http.StatusOK, map[string]any{
				"worker":     w.cfg.Name,
				"counters":   w.counters.Snapshot(),
				"histograms": w.hists.Snapshot(),
			})
			return
		}
		rw.Header().Set("Content-Type", metrics.PromContentType)
		metrics.RenderProm(rw, "pz", w.counters, w.hists, nil)
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok", "worker": w.cfg.Name})
	})
	return mux
}

// handlePartition executes one partition request and streams the result.
// Execution failures before the first byte surface as HTTP errors; the
// request context carries the coordinator's cancellation, so an aborted
// query stops the sub-plan between records.
func (w *Worker) handlePartition(rw http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.counters.Inc("worker_partition_errors")
		writeError(rw, http.StatusBadRequest, fmt.Errorf("cluster: parse partition request: %w", err))
		return
	}
	name := req.Spec.Dataset.Name
	if name == "" {
		name = "dataset"
	}
	path, ok := w.cfg.Datasets[name]
	if !ok {
		w.counters.Inc("worker_partition_errors")
		writeError(rw, http.StatusNotFound, fmt.Errorf("cluster: worker %s has no dataset %q", w.cfg.Name, name))
		return
	}
	res, err := ExecutePartition(r.Context(), &req, path, w.cfg.Parallelism)
	if err != nil {
		w.counters.Inc("worker_partition_errors")
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	w.counters.Inc("worker_partitions_served")
	w.counters.Add("worker_records_streamed", int64(len(res.Records)))
	w.hists.Observe("worker_partition_sim_seconds", metrics.LatencyBuckets, res.Elapsed.Seconds())

	rw.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(rw)
	flusher, _ := rw.(http.Flusher)
	seq := 0
	for start := 0; start < len(res.Records); start += w.cfg.ChunkSize {
		end := start + w.cfg.ChunkSize
		if end > len(res.Records) {
			end = len(res.Records)
		}
		if err := enc.Encode(PartitionChunk{Seq: seq, Records: EncodeRecords(res.Records[start:end])}); err != nil {
			return // connection gone; the coordinator re-scatters
		}
		seq++
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(PartitionChunk{Seq: seq, Done: true,
		ElapsedSimMS: res.Elapsed.Milliseconds(), CostUSD: res.CostUSD, Trace: res.Trace})
	if flusher != nil {
		flusher.Flush()
	}
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeError(rw http.ResponseWriter, code int, err error) {
	writeJSON(rw, code, map[string]string{"error": err.Error()})
}
