package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/pz"
)

// Config configures a Coordinator.
type Config struct {
	// Registry is the worker pool (required).
	Registry *Registry
	// Counters optionally shares a metrics registry (typically the
	// Registry's, so /metrics shows one merged view); nil adopts the
	// Registry's.
	Counters *metrics.Counters
	// Parallelism is the per-operator LLM concurrency for coordinator-side
	// execution: suffix operators and local partition fallback (default 4).
	Parallelism int
	// MaxAttempts bounds remote dispatches per partition; once exhausted
	// the partition executes locally instead of failing the query
	// (default 3).
	MaxAttempts int
	// PartitionTimeout bounds one remote partition attempt (default 60s).
	PartitionTimeout time.Duration
	// StragglerAfter is how long a partition may stay in flight before the
	// coordinator speculatively re-issues it to an idle worker — first
	// result wins, the duplicate is discarded (default 30s; the hard
	// PartitionTimeout still backstops it).
	StragglerAfter time.Duration
	// Client performs partition requests; nil uses a dedicated client.
	Client *http.Client
}

// Coordinator implements serve.Distributor: it splits an indexed NDJSON
// scan by the corpus partition index, scatters the query's record-wise
// prefix (filter/convert/project) across the worker registry as
// serve.Spec sub-plans over byte ranges, gathers the seq-tagged streams,
// merges them in partition order — byte-identical to the sequential
// scan — and runs any remaining suffix operators locally over the merged
// records.
type Coordinator struct {
	cfg      Config
	reg      *Registry
	counters *metrics.Counters
	client   *http.Client
}

// NewCoordinator builds a Coordinator over a worker registry.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a registry")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.PartitionTimeout <= 0 {
		cfg.PartitionTimeout = 60 * time.Second
	}
	if cfg.StragglerAfter <= 0 {
		cfg.StragglerAfter = 30 * time.Second
	}
	if cfg.Counters == nil {
		cfg.Counters = cfg.Registry.Counters()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{cfg: cfg, reg: cfg.Registry, counters: cfg.Counters, client: client}, nil
}

// Workers implements serve.Distributor.
func (c *Coordinator) Workers() []serve.WorkerView { return c.reg.Views() }

// distributableOps are the record-wise, order-preserving operators a
// scattered prefix may contain: running them over any partition of the
// input and concatenating the outputs in partition order equals one run
// over the whole input (the same decomposability contract the in-process
// streaming engine relies on).
func distributableOp(op string) bool {
	switch strings.ToLower(op) {
	case "filter", "convert", "project":
		return true
	}
	return false
}

// splitOps divides a spec's operator chain into the longest distributable
// prefix and the remaining suffix.
func splitOps(specOps []serve.OpSpec) (prefix, suffix []serve.OpSpec) {
	cut := 0
	for cut < len(specOps) && distributableOp(specOps[cut].Op) {
		cut++
	}
	return specOps[:cut], specOps[cut:]
}

// TryExecute implements serve.Distributor. ok=false (nil error) sends
// the caller down the local path: fan-out below 2, an empty worker pool,
// a dataset that is not a range-partitionable NDJSON corpus, or a query
// with no distributable prefix.
func (c *Coordinator) TryExecute(ctx context.Context, pzctx *pz.Context, spec *serve.Spec, fanout int) (*serve.DistResult, bool, error) {
	if fanout < 2 {
		return nil, false, nil
	}
	if c.reg.Len() == 0 {
		c.counters.Inc("cluster_queries_local_fallback")
		return nil, false, nil
	}
	ds, err := spec.Build(pzctx)
	if err != nil {
		return nil, false, err
	}
	chain := ds.Chain()
	scan, ok := chain[0].(*ops.Scan)
	if !ok {
		return nil, false, nil
	}
	nsrc, ok := scan.Source.(*dataset.NDJSONSource)
	if !ok {
		return nil, false, nil
	}
	ranges := nsrc.PartitionRanges(fanout)
	if len(ranges) < 2 {
		return nil, false, nil
	}
	prefix, suffix := splitOps(spec.Ops)
	if len(prefix) == 0 {
		return nil, false, nil
	}
	name := spec.Dataset.Name
	if name == "" {
		name = "dataset"
	}
	prefixSpec := serve.Spec{Dataset: serve.DatasetSpec{Name: name}, Ops: prefix,
		Policy: spec.Policy, PolicyParam: spec.PolicyParam}
	prefixDS, err := prefixSpec.Build(pzctx)
	if err != nil {
		return nil, false, err
	}
	prefixSchema, err := prefixDS.OutputSchema()
	if err != nil {
		return nil, false, err
	}
	// Optimize the prefix ONCE, centrally, and pin the champion's physical
	// plan onto every partition request. Distribution needs two guarantees
	// re-optimization per partition cannot give: every chosen operator must
	// be record-wise (ops.IsStreamable — an adaptive embed-filter thresholds
	// on whole-batch statistics, so partitioning would change its kept set),
	// and every partition must run the *same* physical operators (model
	// noise is keyed on model + record content, so a worker picking a
	// different model over its local statistics would break byte-identity).
	policy, err := prefixSpec.ParsePolicy()
	if err != nil {
		return nil, false, err
	}
	champion, _, err := pzctx.OptimizeOnly(prefixDS, policy)
	if err != nil {
		return nil, false, err
	}
	for _, p := range champion.Ops {
		if !ops.IsStreamable(p) {
			c.counters.Inc("cluster_queries_not_streamable")
			return nil, false, nil
		}
	}
	planSig := PlanSignature(champion)

	done, execBy, err := c.scatter(ctx, &prefixSpec, planSig, ranges, prefixSchema, nsrc.Path())
	if err != nil {
		return nil, false, err
	}

	// Merge in partition order: each partition's records are already in
	// dataset order, and partitions tile the corpus contiguously, so
	// concatenation by ordinal reproduces the sequential scan exactly.
	// Each gathered partition becomes a partition span embedding the
	// executing side's own trace (re-rooted as a worker span), so the
	// coordinator trace explains the whole cluster run.
	var merged []*record.Record
	var cost float64
	var totalDocs int
	perExec := map[string]time.Duration{}
	workers := map[string]bool{}
	scatterSpan := &trace.Span{Kind: trace.KindScatter, Name: "scatter"}
	for part := range ranges {
		res := done[part]
		merged = append(merged, res.Records...)
		cost += res.CostUSD
		totalDocs += ranges[part].Docs
		perExec[execBy[part]] += res.Elapsed
		if execBy[part] != "local" {
			workers[execBy[part]] = true
		}
		pspan := &trace.Span{
			Kind:        trace.KindPartition,
			Name:        fmt.Sprintf("partition %d", part),
			Partition:   trace.Ordinal(part),
			Worker:      execBy[part],
			RecordsIn:   ranges[part].Docs,
			RecordsOut:  len(res.Records),
			Selectivity: trace.Selectivity(ranges[part].Docs, len(res.Records)),
			SimMS:       res.Elapsed.Milliseconds(),
			CostUSD:     res.CostUSD,
		}
		if res.Trace != nil {
			wt := res.Trace
			wt.Kind = trace.KindWorker
			wt.Worker = execBy[part]
			pspan.Add(wt)
		}
		scatterSpan.Add(pspan)
	}
	// Cluster clock model: each executor worked through its partitions
	// serially while executors ran in parallel, so the scatter phase
	// costs the slowest executor's total.
	var elapsed time.Duration
	for _, d := range perExec {
		if d > elapsed {
			elapsed = d
		}
	}
	scatterSpan.RecordsIn = totalDocs
	scatterSpan.RecordsOut = len(merged)
	scatterSpan.Selectivity = trace.Selectivity(totalDocs, len(merged))
	scatterSpan.SimMS = elapsed.Milliseconds()
	scatterSpan.CostUSD = cost

	root := &trace.Span{Kind: trace.KindQuery, Name: "cluster-scatter", RecordsIn: totalDocs}
	root.Add(scatterSpan)

	records := merged
	if len(suffix) > 0 {
		sres, err := c.runSuffix(ctx, name, prefixSchema, merged, suffix, spec)
		if err != nil {
			return nil, false, err
		}
		records = sres.Records
		cost += sres.CostUSD
		elapsed += sres.Elapsed
		suffixSpan := sres.Trace
		if suffixSpan == nil {
			suffixSpan = &trace.Span{}
		}
		suffixSpan.Kind = trace.KindSuffix
		suffixSpan.Name = "suffix"
		suffixSpan.RecordsIn = len(merged)
		suffixSpan.RecordsOut = len(records)
		root.Add(suffixSpan)
	}
	root.RecordsOut = len(records)
	root.Selectivity = trace.Selectivity(totalDocs, len(records))
	root.SimMS = elapsed.Milliseconds()
	root.CostUSD = cost
	root.SetAttr("partitions", fmt.Sprint(len(ranges)))
	root.SetAttr("workers", fmt.Sprint(len(workers)))
	c.counters.Inc("cluster_queries_distributed")
	return &serve.DistResult{
		Records: records,
		Plan: fmt.Sprintf("cluster-scatter(%s: %d partitions over %d workers) -> %d prefix + %d suffix ops",
			name, len(ranges), len(workers), len(prefix), len(suffix)),
		Elapsed:    elapsed,
		CostUSD:    cost,
		Workers:    len(workers),
		Partitions: len(ranges),
		Trace:      root,
	}, true, nil
}

// runSuffix executes the non-distributable operator suffix locally over
// the merged prefix output: a fresh engine context with the records
// registered as an in-memory source under the original dataset name.
func (c *Coordinator) runSuffix(ctx context.Context, name string, s *schema.Schema,
	merged []*record.Record, suffix []serve.OpSpec, spec *serve.Spec) (*PartitionResult, error) {
	pzctx, err := pz.NewContext(pz.Config{Parallelism: c.cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	if _, err := pzctx.RegisterRecords(name, s, merged); err != nil {
		return nil, err
	}
	suffixSpec := serve.Spec{Dataset: serve.DatasetSpec{Name: name}, Ops: suffix,
		Policy: spec.Policy, PolicyParam: spec.PolicyParam}
	ds, err := suffixSpec.Build(pzctx)
	if err != nil {
		return nil, err
	}
	policy, err := suffixSpec.ParsePolicy()
	if err != nil {
		return nil, err
	}
	res, err := pzctx.ExecuteContext(ctx, ds, policy)
	if err != nil {
		return nil, err
	}
	return &PartitionResult{Records: res.Records, Elapsed: res.Elapsed, CostUSD: res.CostUSD, Trace: res.Trace}, nil
}

// attemptOutcome is one finished partition attempt (remote or local).
type attemptOutcome struct {
	part int
	exec string // worker name; "" for a local attempt
	res  *PartitionResult
	err  error
}

// scatter drives the partition schedule to completion: dispatch at most
// one in-flight partition per worker (plus at most one local execution),
// retry failed attempts on other workers up to MaxAttempts before
// forcing them local, speculatively re-issue stragglers, and fall back
// to local execution whenever the healthy pool is empty. Returns the
// per-partition results and which executor produced each.
func (c *Coordinator) scatter(ctx context.Context, prefixSpec *serve.Spec, planSig []string, ranges []corpus.Partition,
	prefixSchema *schema.Schema, path string) (map[int]*PartitionResult, map[int]string, error) {
	scatterCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := make([]int, len(ranges))
	queued := map[int]bool{}
	for i := range ranges {
		queue[i] = i
		queued[i] = true
	}
	attempts := map[int]int{}
	inflight := map[int]int{}
	started := map[int]time.Time{}
	reissued := map[int]bool{}
	forceLocal := map[int]bool{}
	busy := map[string]bool{}
	localBusy := false
	done := map[int]*PartitionResult{}
	execBy := map[int]string{}
	// Buffered so late attempts (speculative losers, canceled stragglers)
	// can always deliver and exit after scatter returns.
	results := make(chan attemptOutcome, len(ranges)*(c.cfg.MaxAttempts+2))

	request := func(part int) *PartitionRequest {
		return &PartitionRequest{Spec: *prefixSpec, PlanSig: planSig, Partition: part,
			Offset: ranges[part].Offset, Docs: ranges[part].Docs}
	}
	dispatchRemote := func(part int, w WorkerRef) {
		busy[w.Name] = true
		inflight[part]++
		if _, ok := started[part]; !ok {
			started[part] = time.Now()
		}
		attempts[part]++
		if attempts[part] == 1 {
			c.counters.Inc("cluster_partitions_scattered")
		} else {
			c.counters.Inc("cluster_partitions_rescattered")
		}
		go func() {
			res, err := c.remote(scatterCtx, w, request(part), prefixSchema)
			results <- attemptOutcome{part: part, exec: w.Name, res: res, err: err}
		}()
	}
	dispatchLocal := func(part int) {
		localBusy = true
		inflight[part]++
		if _, ok := started[part]; !ok {
			started[part] = time.Now()
		}
		attempts[part]++
		c.counters.Inc("cluster_partitions_local")
		go func() {
			res, err := ExecutePartition(scatterCtx, request(part), path, c.cfg.Parallelism)
			results <- attemptOutcome{part: part, exec: "", res: res, err: err}
		}()
	}
	// dispatch drains as much of the queue as idle capacity allows.
	dispatch := func() {
		healthy := c.reg.Healthy()
		var idle []WorkerRef
		for _, w := range healthy {
			if !busy[w.Name] {
				idle = append(idle, w)
			}
		}
		var rest []int
		for _, part := range queue {
			switch {
			case done[part] != nil:
				// Completed while waiting (a speculative duplicate lost).
			case len(healthy) == 0 || forceLocal[part]:
				// No pool left, or remote attempts exhausted: run it here.
				if !localBusy {
					dispatchLocal(part)
				} else {
					rest = append(rest, part)
					continue
				}
			case len(idle) > 0:
				dispatchRemote(part, idle[0])
				idle = idle[1:]
			default:
				rest = append(rest, part)
				continue
			}
			delete(queued, part)
		}
		queue = rest
	}
	requeue := func(part int) {
		if !queued[part] && done[part] == nil {
			queue = append(queue, part)
			queued[part] = true
		}
	}

	// NewCoordinator defaults a non-positive StragglerAfter, but a tiny
	// positive value (say 1ns) halves to zero here and time.NewTicker
	// panics on non-positive durations — floor the tick interval instead.
	tickEvery := c.cfg.StragglerAfter / 2
	if tickEvery <= 0 {
		tickEvery = time.Millisecond
	}
	stragglerTick := time.NewTicker(tickEvery)
	defer stragglerTick.Stop()

	for len(done) < len(ranges) {
		dispatch()
		totalInflight := 0
		for _, n := range inflight {
			totalInflight += n
		}
		if totalInflight == 0 && len(queue) == 0 {
			return nil, nil, fmt.Errorf("cluster: scheduler stalled with %d/%d partitions done", len(done), len(ranges))
		}
		if totalInflight == 0 {
			// Queue non-empty but nothing dispatchable and nothing running
			// cannot happen (dispatch always starts a local attempt when the
			// pool is empty), but guard against a busy-wait regardless.
			time.Sleep(time.Millisecond)
			continue
		}
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-stragglerTick.C:
			for part, n := range inflight {
				if n > 0 && done[part] == nil && !reissued[part] &&
					time.Since(started[part]) >= c.cfg.StragglerAfter {
					reissued[part] = true
					c.counters.Inc("cluster_straggler_reissues")
					requeue(part)
				}
			}
		case out := <-results:
			if out.exec != "" {
				busy[out.exec] = false
			} else {
				localBusy = false
			}
			inflight[out.part]--
			if done[out.part] != nil {
				break // first result won already
			}
			if out.err != nil {
				if ctx.Err() != nil {
					return nil, nil, ctx.Err()
				}
				c.counters.Inc("cluster_partition_failures")
				if out.exec == "" {
					// Local execution is the last line of defense; its
					// failures are deterministic (bad range, corrupt file)
					// and fail the query rather than retrying forever.
					return nil, nil, fmt.Errorf("cluster: local execution of partition %d: %w", out.part, out.err)
				}
				c.reg.NoteFailure(out.exec)
				if attempts[out.part] >= c.cfg.MaxAttempts {
					forceLocal[out.part] = true
				}
				requeue(out.part)
				break
			}
			if out.exec != "" {
				c.reg.NoteSuccess(out.exec)
				execBy[out.part] = out.exec
			} else {
				execBy[out.part] = "local"
			}
			done[out.part] = out.res
		}
	}
	return done, execBy, nil
}

// remote performs one partition attempt against a worker: POST the
// request, stream the NDJSON chunk response, and rebuild records under
// the prefix schema. A stream that ends without a done chunk means the
// worker died mid-partition; the error sends the scheduler back to
// re-scatter.
func (c *Coordinator) remote(ctx context.Context, w WorkerRef, preq *PartitionRequest, s *schema.Schema) (*PartitionResult, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, err
	}
	tctx, cancel := context.WithTimeout(ctx, c.cfg.PartitionTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, w.URL+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", w.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: worker %s: status %d: %s", w.Name, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	dec := json.NewDecoder(resp.Body)
	var chunks []PartitionChunk
	for {
		var ch PartitionChunk
		if err := dec.Decode(&ch); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("cluster: worker %s died mid-partition %d (stream truncated)", w.Name, preq.Partition)
			}
			return nil, fmt.Errorf("cluster: worker %s: %w", w.Name, err)
		}
		if ch.Error != "" {
			return nil, fmt.Errorf("cluster: worker %s partition %d: %s", w.Name, preq.Partition, ch.Error)
		}
		if ch.Done {
			sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].Seq < chunks[j].Seq })
			var wire []WireRecord
			for _, c := range chunks {
				wire = append(wire, c.Records...)
			}
			recs, err := DecodeRecords(s, wire)
			if err != nil {
				return nil, err
			}
			return &PartitionResult{Records: recs,
				Elapsed: time.Duration(ch.ElapsedSimMS) * time.Millisecond, CostUSD: ch.CostUSD,
				Trace: ch.Trace}, nil
		}
		chunks = append(chunks, ch)
	}
}
