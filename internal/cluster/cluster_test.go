package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/pz"
)

// writeTicketCorpus spills an indexed support corpus to disk.
func writeTicketCorpus(t testing.TB, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 23})
	if _, err := corpus.SaveNDJSON(path, g, 23, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// ticketSpec builds a partitioned triage query: the urgency filter plus
// any extra (suffix) operators. Max-quality picks an LLM filter, which is
// record-wise and therefore distributable (min-cost's adaptive
// embed-filter is not — see TestNonStreamableChampionDeclines).
func ticketSpec(partitions int, extra ...serve.OpSpec) *serve.Spec {
	ops := append([]serve.OpSpec{{Op: "filter", Predicate: workloads.SupportPredicate}}, extra...)
	return &serve.Spec{
		Dataset:    serve.DatasetSpec{Name: "tickets"},
		Ops:        ops,
		Policy:     "max-quality",
		Partitions: partitions,
	}
}

// coordinatorContext registers the corpus on a fresh coordinator-side
// pz.Context.
func coordinatorContext(t testing.TB, path string) *pz.Context {
	t.Helper()
	ctx, err := pz.NewContext(pz.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// sequentialJSON is the ground truth: the same spec run single-process on
// a fresh context, rendered through the serving layer's record encoding.
func sequentialJSON(t testing.TB, path string, spec *serve.Spec) []byte {
	t.Helper()
	ctx := coordinatorContext(t, path)
	seq := *spec
	seq.Partitions = 0
	ds, err := seq.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seq.ParsePolicy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Execute(ds, policy)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := serve.RecordsJSON(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// distributedJSON renders a DistResult through the same encoding.
func distributedJSON(t testing.TB, dres *serve.DistResult) []byte {
	t.Helper()
	raw, err := serve.RecordsJSON(dres.Records)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// startWorker brings up one in-process worker over the shared corpus file,
// optionally wrapping its handler (fault injection), and registers it.
func startWorker(t testing.TB, reg *Registry, name, path string, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	w, err := NewWorker(WorkerConfig{Name: name, Parallelism: 2, ChunkSize: 16,
		Datasets: map[string]string{"tickets": path}})
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(w.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	if err := reg.Register(name, srv.URL); err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestCoordinator(t testing.TB, reg *Registry, cfg Config) *Coordinator {
	t.Helper()
	cfg.Registry = reg
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 2
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestScatterGatherParity: a query scattered across two workers returns
// records byte-identical, in identical order, to the single-process
// sequential scan.
func TestScatterGatherParity(t *testing.T) {
	path := writeTicketCorpus(t, 120)
	reg := NewRegistry(RegistryConfig{})
	startWorker(t, reg, "a", path, nil)
	startWorker(t, reg, "b", path, nil)
	coord := newTestCoordinator(t, reg, Config{})

	spec := ticketSpec(6)
	want := sequentialJSON(t, path, spec)

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 6)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	if got := distributedJSON(t, dres); !bytes.Equal(got, want) {
		t.Fatalf("distributed records diverge from sequential scan:\n got %s\nwant %s", got, want)
	}
	if dres.Workers != 2 || dres.Partitions != 6 {
		t.Errorf("DistResult workers=%d partitions=%d, want 2/6", dres.Workers, dres.Partitions)
	}
	if dres.Elapsed <= 0 || dres.CostUSD <= 0 {
		t.Errorf("missing accounting: elapsed=%v cost=%v", dres.Elapsed, dres.CostUSD)
	}
	c := reg.Counters()
	if c.Get("cluster_partitions_scattered") != 6 {
		t.Errorf("cluster_partitions_scattered = %d, want 6", c.Get("cluster_partitions_scattered"))
	}
	if c.Get("cluster_queries_distributed") != 1 {
		t.Errorf("cluster_queries_distributed = %d, want 1", c.Get("cluster_queries_distributed"))
	}
}

// TestScatterGatherSuffixOps: non-distributable operators (limit is
// order-sensitive) run on the coordinator over the merged prefix output,
// and the end result still matches the sequential run exactly.
func TestScatterGatherSuffixOps(t *testing.T) {
	path := writeTicketCorpus(t, 90)
	reg := NewRegistry(RegistryConfig{})
	startWorker(t, reg, "a", path, nil)
	startWorker(t, reg, "b", path, nil)
	coord := newTestCoordinator(t, reg, Config{})

	spec := ticketSpec(4, serve.OpSpec{Op: "limit", N: 7})
	want := sequentialJSON(t, path, spec)

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 4)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	if got := distributedJSON(t, dres); !bytes.Equal(got, want) {
		t.Fatalf("suffix result diverges from sequential scan:\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(dres.Plan, "1 suffix") {
		t.Errorf("plan %q does not report the suffix split", dres.Plan)
	}
}

// abortAfterPartialChunk kills the first n /v1/partition requests after
// streaming one incomplete chunk — a worker dying mid-partition.
func abortAfterPartialChunk(n int) func(http.Handler) http.Handler {
	var mu sync.Mutex
	killed := 0
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v1/partition") {
				mu.Lock()
				kill := killed < n
				if kill {
					killed++
				}
				mu.Unlock()
				if kill {
					rw.Header().Set("Content-Type", "application/x-ndjson")
					rw.WriteHeader(http.StatusOK)
					fmt.Fprintln(rw, `{"seq":0,"records":[]}`)
					if f, ok := rw.(http.Flusher); ok {
						f.Flush()
					}
					panic(http.ErrAbortHandler)
				}
			}
			next.ServeHTTP(rw, r)
		})
	}
}

// TestWorkerDeathMidPartition: a worker that dies mid-stream (truncated
// chunk stream, no terminal done chunk) triggers a re-scatter, and the
// final result is still byte-identical to the sequential scan.
func TestWorkerDeathMidPartition(t *testing.T) {
	path := writeTicketCorpus(t, 80)
	reg := NewRegistry(RegistryConfig{})
	startWorker(t, reg, "a", path, abortAfterPartialChunk(2))
	startWorker(t, reg, "b", path, nil)
	coord := newTestCoordinator(t, reg, Config{})

	spec := ticketSpec(4)
	want := sequentialJSON(t, path, spec)

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 4)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	if got := distributedJSON(t, dres); !bytes.Equal(got, want) {
		t.Fatalf("result after worker death diverges:\n got %s\nwant %s", got, want)
	}
	c := reg.Counters()
	if c.Get("cluster_partition_failures") < 2 {
		t.Errorf("cluster_partition_failures = %d, want >= 2", c.Get("cluster_partition_failures"))
	}
	if c.Get("cluster_partitions_rescattered") < 2 {
		t.Errorf("cluster_partitions_rescattered = %d, want >= 2", c.Get("cluster_partitions_rescattered"))
	}
}

// TestNonStreamableChampionDeclines: a min-cost triage query optimizes to
// the adaptive embed-filter, which thresholds on whole-batch statistics —
// partitioning it would change the kept set, so the coordinator must
// refuse to scatter and let the query run locally.
func TestNonStreamableChampionDeclines(t *testing.T) {
	path := writeTicketCorpus(t, 60)
	reg := NewRegistry(RegistryConfig{})
	startWorker(t, reg, "a", path, nil)
	coord := newTestCoordinator(t, reg, Config{})

	spec := ticketSpec(4)
	spec.Policy = "min-cost"
	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 4)
	if err != nil || ok || dres != nil {
		t.Fatalf("non-streamable champion: dres=%v ok=%v err=%v, want decline", dres, ok, err)
	}
	if got := reg.Counters().Get("cluster_queries_not_streamable"); got != 1 {
		t.Errorf("cluster_queries_not_streamable = %d, want 1", got)
	}
}

// TestEmptyPoolDeclines: with no registered workers the coordinator
// declines the query (ok=false) so the serving layer runs it locally.
func TestEmptyPoolDeclines(t *testing.T) {
	path := writeTicketCorpus(t, 40)
	reg := NewRegistry(RegistryConfig{})
	coord := newTestCoordinator(t, reg, Config{})

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), ticketSpec(4), 4)
	if err != nil || ok || dres != nil {
		t.Fatalf("empty pool: dres=%v ok=%v err=%v, want nil/false/nil", dres, ok, err)
	}
	if got := reg.Counters().Get("cluster_queries_local_fallback"); got != 1 {
		t.Errorf("cluster_queries_local_fallback = %d, want 1", got)
	}
}

// TestAllWorkersLostLocalFallback: when the only worker fails and is
// deregistered mid-query, the coordinator finishes every partition
// locally — the query completes, byte-identical, with zero workers.
func TestAllWorkersLostLocalFallback(t *testing.T) {
	path := writeTicketCorpus(t, 60)
	reg := NewRegistry(RegistryConfig{MaxFailures: 1})
	broken := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v1/partition") {
				writeError(rw, http.StatusInternalServerError, fmt.Errorf("synthetic worker crash"))
				return
			}
			next.ServeHTTP(rw, r)
		})
	}
	startWorker(t, reg, "a", path, broken)
	coord := newTestCoordinator(t, reg, Config{})

	spec := ticketSpec(4)
	want := sequentialJSON(t, path, spec)

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 4)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	if got := distributedJSON(t, dres); !bytes.Equal(got, want) {
		t.Fatalf("local-fallback result diverges:\n got %s\nwant %s", got, want)
	}
	if dres.Workers != 0 {
		t.Errorf("DistResult workers = %d, want 0 (pool drained)", dres.Workers)
	}
	c := reg.Counters()
	if c.Get("cluster_workers_lost") != 1 {
		t.Errorf("cluster_workers_lost = %d, want 1", c.Get("cluster_workers_lost"))
	}
	if c.Get("cluster_partitions_local") != 4 {
		t.Errorf("cluster_partitions_local = %d, want 4", c.Get("cluster_partitions_local"))
	}
	if reg.Len() != 0 {
		t.Errorf("registry still has %d workers", reg.Len())
	}
}

// TestCancellationPropagates: canceling the coordinator's context aborts
// the scatter promptly and cancels the in-flight worker request.
func TestCancellationPropagates(t *testing.T) {
	path := writeTicketCorpus(t, 60)
	reg := NewRegistry(RegistryConfig{})
	unblocked := make(chan struct{}, 8)
	hang := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v1/partition") {
				// Consume the request the way a real worker does (decode,
				// then execute): the server only watches for client
				// disconnects once the body has been read.
				_, _ = io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				unblocked <- struct{}{}
				return
			}
			next.ServeHTTP(rw, r)
		})
	}
	startWorker(t, reg, "a", path, hang)
	coord := newTestCoordinator(t, reg, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := coord.TryExecute(ctx, coordinatorContext(t, path), ticketSpec(4), 4)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("canceled scatter returned err=%v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to unwind", elapsed)
	}
	select {
	case <-unblocked:
		// The worker saw the request context die: cancellation crossed the
		// wire to the in-flight partition.
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight worker request never observed cancellation")
	}
}

// TestStragglerReissue: a partition stuck on a slow worker is
// speculatively re-issued, the fast duplicate wins, and the output stays
// byte-identical.
func TestStragglerReissue(t *testing.T) {
	path := writeTicketCorpus(t, 80)
	reg := NewRegistry(RegistryConfig{})
	slow := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v1/partition") {
				time.Sleep(600 * time.Millisecond)
			}
			next.ServeHTTP(rw, r)
		})
	}
	startWorker(t, reg, "a", path, slow)
	startWorker(t, reg, "b", path, nil)
	coord := newTestCoordinator(t, reg, Config{StragglerAfter: 100 * time.Millisecond})

	spec := ticketSpec(4)
	want := sequentialJSON(t, path, spec)

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 4)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	if got := distributedJSON(t, dres); !bytes.Equal(got, want) {
		t.Fatalf("straggler run diverges:\n got %s\nwant %s", got, want)
	}
	if got := reg.Counters().Get("cluster_straggler_reissues"); got < 1 {
		t.Errorf("cluster_straggler_reissues = %d, want >= 1", got)
	}
}

// TestTinyStragglerAfterDoesNotPanic: a StragglerAfter small enough that
// halving it truncates to zero used to panic time.NewTicker inside the
// scheduler; the tick interval is floored now, and the query still
// completes byte-identically.
func TestTinyStragglerAfterDoesNotPanic(t *testing.T) {
	path := writeTicketCorpus(t, 40)
	reg := NewRegistry(RegistryConfig{})
	startWorker(t, reg, "a", path, nil)
	coord := newTestCoordinator(t, reg, Config{StragglerAfter: time.Nanosecond})

	spec := ticketSpec(2)
	want := sequentialJSON(t, path, spec)

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), spec, 2)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	if got := distributedJSON(t, dres); !bytes.Equal(got, want) {
		t.Fatalf("tiny-straggler run diverges:\n got %s\nwant %s", got, want)
	}
}

// TestRegistryLifecycle: heartbeats reset failure counts, and MaxFailures
// consecutive failures deregister a worker as lost.
func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry(RegistryConfig{MaxFailures: 3})
	if err := reg.Register("", "http://x"); err == nil {
		t.Error("nameless registration accepted")
	}
	if err := reg.Register("w", "not a url"); err == nil {
		t.Error("invalid URL accepted")
	}
	if err := reg.Register("w", "http://localhost:9"); err != nil {
		t.Fatal(err)
	}
	reg.NoteFailure("w")
	reg.NoteFailure("w")
	if v := reg.Views(); len(v) != 1 || v[0].Failures != 2 {
		t.Fatalf("views = %+v, want one worker with 2 failures", v)
	}
	// Re-registration is the heartbeat: the failure count resets.
	if err := reg.Register("w", "http://localhost:9"); err != nil {
		t.Fatal(err)
	}
	if v := reg.Views(); v[0].Failures != 0 {
		t.Fatalf("heartbeat did not reset failures: %+v", v)
	}
	for i := 0; i < 3; i++ {
		reg.NoteFailure("w")
	}
	if reg.Len() != 0 {
		t.Fatalf("worker survived MaxFailures consecutive failures")
	}
	c := reg.Counters()
	if c.Get("cluster_workers_lost") != 1 || c.Get("cluster_workers_registered") != 1 {
		t.Errorf("counters = %v", c.Snapshot())
	}
	if c.Get("cluster_workers_healthy") != 0 {
		t.Errorf("healthy gauge = %d, want 0", c.Get("cluster_workers_healthy"))
	}
}

// TestRegistryHealthChecks: CheckOnce keeps responsive workers and
// deregisters dead ones through the shared failure accounting.
func TestRegistryHealthChecks(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	reg := NewRegistry(RegistryConfig{MaxFailures: 1, CheckTimeout: 500 * time.Millisecond})
	if err := reg.Register("alive", alive.URL); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("dead", deadURL); err != nil {
		t.Fatal(err)
	}
	reg.CheckOnce()
	refs := reg.Healthy()
	if len(refs) != 1 || refs[0].Name != "alive" {
		t.Fatalf("healthy pool after check = %+v, want [alive]", refs)
	}
	c := reg.Counters()
	if c.Get("cluster_health_check_failures") != 1 || c.Get("cluster_workers_lost") != 1 {
		t.Errorf("counters = %v", c.Snapshot())
	}
	if c.Get("cluster_workers_healthy") != 1 {
		t.Errorf("healthy gauge = %d, want 1", c.Get("cluster_workers_healthy"))
	}
	// The loop plumbing starts and stops cleanly.
	reg.StartHealthLoop(10 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	reg.Stop()
}

// TestRegistryHandler drives the worker-management HTTP API end to end.
func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	srv := httptest.NewServer(RegistryHandler(reg))
	defer srv.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post("/v1/workers/register", `{"name":"w1","url":"http://localhost:9"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post("/v1/workers/register", `{"name":"","url":"http://x"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid register status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(srv.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var views []serve.WorkerView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 1 || views[0].Name != "w1" {
		t.Fatalf("views = %+v", views)
	}

	resp = post("/v1/workers/deregister", `{"name":"w1"}`)
	resp.Body.Close()
	if reg.Len() != 0 {
		t.Fatalf("worker still registered after deregister")
	}
}

// TestWireRecordRoundTrip pushes every field type (including Bytes, which
// JSON flattens to base64, and StringList, which comes back as []any)
// through encode → JSON → decode and requires value identity.
func TestWireRecordRoundTrip(t *testing.T) {
	s, err := schema.New("everything", "all field types",
		schema.Field{Name: "name", Type: schema.String, Desc: "a string"},
		schema.Field{Name: "count", Type: schema.Int, Desc: "an int"},
		schema.Field{Name: "ratio", Type: schema.Float, Desc: "a float"},
		schema.Field{Name: "urgent", Type: schema.Bool, Desc: "a bool"},
		schema.Field{Name: "tags", Type: schema.StringList, Desc: "a list"},
		schema.Field{Name: "blob", Type: schema.Bytes, Desc: "raw bytes"},
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := record.New(s, map[string]any{
		"name": "r1", "count": int64(7), "ratio": 2.5, "urgent": true,
		"tags": []string{"x", "y"}, "blob": []byte{0x00, 0xff, 0x10},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetSource("tickets")
	truth := &corpus.Truth{
		Topics:  []string{"billing"},
		Labels:  map[string]bool{"urgent": true},
		Fields:  map[string]string{"customer": "acme"},
		Numbers: map[string]float64{"score": 0.75},
	}
	rec.SetTruth(corpus.TruthKey, truth)

	raw, err := json.Marshal(EncodeRecords([]*record.Record{rec}))
	if err != nil {
		t.Fatal(err)
	}
	var wire []WireRecord
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(s, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("decoded %d records", len(back))
	}
	if got, want := back[0].Values(), rec.Values(); !reflect.DeepEqual(got, want) {
		t.Errorf("values diverged over the wire:\n got %#v\nwant %#v", got, want)
	}
	if back[0].Source() != "tickets" {
		t.Errorf("source = %q", back[0].Source())
	}
	if got := corpus.TruthOf(back[0]); !reflect.DeepEqual(got, truth) {
		t.Errorf("truth diverged over the wire:\n got %#v\nwant %#v", got, truth)
	}
}

// TestServeDistributedQuery wires the full stack the way cmd/pzserve
// does — serving layer + coordinator + registry + two worker daemons —
// and checks a partitioned HTTP query returns the sequential answer and
// /metrics reports the cluster.
func TestServeDistributedQuery(t *testing.T) {
	path := writeTicketCorpus(t, 100)
	counters := metrics.NewCounters()
	reg := NewRegistry(RegistryConfig{Counters: counters})
	startWorker(t, reg, "a", path, nil)
	startWorker(t, reg, "b", path, nil)
	coord := newTestCoordinator(t, reg, Config{Counters: counters})

	pzctx := coordinatorContext(t, path)
	srv, err := serve.New(serve.Config{Context: pzctx, Cluster: coord, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mux := http.NewServeMux()
	mux.Handle("/v1/workers", RegistryHandler(reg))
	mux.Handle("/v1/workers/", RegistryHandler(reg))
	mux.Handle("/", srv.Handler())
	front := httptest.NewServer(mux)
	defer front.Close()

	spec := ticketSpec(4)
	want := sequentialJSON(t, path, spec)

	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/query?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Status != serve.StatusDone || view.Result == nil {
		t.Fatalf("job %s status %s: %s", view.ID, view.Status, view.Error)
	}
	if !bytes.Equal([]byte(view.Result.Records), want) {
		t.Fatalf("served distributed records diverge:\n got %s\nwant %s", view.Result.Records, want)
	}
	if !strings.Contains(view.Result.Plan, "cluster-scatter") {
		t.Errorf("plan %q does not show scatter execution", view.Result.Plan)
	}

	// The job's trace must be the coordinator's span tree: a query root
	// over one span per scattered partition, each embedding the executing
	// worker's own spans, reconciling with the job's reported stats.
	tresp, err := http.Get(front.URL + "/v1/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tresp.StatusCode)
	}
	var doc trace.Document
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != trace.SchemaVersion || doc.JobID != view.ID {
		t.Errorf("trace document = v%d job %q, want v%d job %q",
			doc.SchemaVersion, doc.JobID, trace.SchemaVersion, view.ID)
	}
	root := doc.Trace
	if root == nil || root.Kind != trace.KindQuery || root.Name != "cluster-scatter" {
		t.Fatalf("trace root = %+v, want a cluster-scatter query span", root)
	}
	parts := root.FindAll(trace.KindPartition)
	if len(parts) != 4 {
		t.Fatalf("trace has %d partition spans, want 4", len(parts))
	}
	workerSpans := root.FindAll(trace.KindWorker)
	if len(workerSpans) == 0 {
		t.Fatal("coordinator trace embeds no worker spans")
	}
	var partOut int
	for _, p := range parts {
		partOut += p.RecordsOut
	}
	if suffix := root.FindAll(trace.KindSuffix); len(suffix) == 1 {
		if suffix[0].RecordsIn != partOut {
			t.Errorf("suffix consumed %d records, scatter produced %d", suffix[0].RecordsIn, partOut)
		}
	}
	if root.RecordsOut != view.Result.Count {
		t.Errorf("trace root out = %d records, job reported %d", root.RecordsOut, view.Result.Count)
	}
	if root.SimMS != view.Result.ElapsedSimMS {
		t.Errorf("trace root sim = %d ms, job reported %d", root.SimMS, view.Result.ElapsedSimMS)
	}

	mresp, err := http.Get(front.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cluster == nil || len(m.Cluster.Workers) != 2 {
		t.Fatalf("metrics cluster section = %+v, want 2 workers", m.Cluster)
	}
	if m.Counters["cluster_queries_distributed"] != 1 {
		t.Errorf("cluster_queries_distributed = %d, want 1", m.Counters["cluster_queries_distributed"])
	}

	wresp, err := http.Get(front.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var views []serve.WorkerView
	if err := json.NewDecoder(wresp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Errorf("worker listing = %+v, want 2", views)
	}
}

// TestSpecValidation: fan-out validation at the serving edge.
func TestSpecValidation(t *testing.T) {
	if _, err := serve.ParseSpec([]byte(`{"dataset":{"name":"x"},"partitions":-1}`)); err == nil {
		t.Error("negative spec partitions accepted by ParseSpec")
	}
	if _, err := pz.NewContext(pz.Config{ClusterWorkers: -1}); err == nil {
		t.Error("negative ClusterWorkers accepted by NewContext")
	}
	if _, err := NewCoordinator(Config{}); err == nil {
		t.Error("coordinator without registry accepted")
	}
}

// TestWorkerMetricsExposition: after executing partitions, a worker's
// /metrics serves Prometheus text (the same renderer pzserve uses) with
// the per-partition latency histogram, and ?format=json keeps the
// structured snapshot.
func TestWorkerMetricsExposition(t *testing.T) {
	path := writeTicketCorpus(t, 60)
	reg := NewRegistry(RegistryConfig{})
	wsrv := startWorker(t, reg, "a", path, nil)
	coord := newTestCoordinator(t, reg, Config{})
	if _, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), ticketSpec(3), 3); err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}

	resp, err := http.Get(wsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("content type %q, want %q", ct, metrics.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, frag := range []string{
		"# TYPE pz_worker_partition_sim_seconds histogram",
		`pz_worker_partition_sim_seconds_bucket{le="+Inf"} 3`,
		"pz_worker_partition_sim_seconds_count 3",
		"# TYPE pz_worker_partitions_served gauge\npz_worker_partitions_served 3",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("worker /metrics missing %q:\n%s", frag, text)
		}
	}

	jresp, err := http.Get(wsrv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var m struct {
		Worker     string                           `json:"worker"`
		Counters   map[string]int64                 `json:"counters"`
		Histograms map[string]metrics.HistogramView `json:"histograms"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Worker != "a" || m.Counters["worker_partitions_served"] != 3 {
		t.Errorf("json metrics = %+v", m)
	}
	if h, ok := m.Histograms["worker_partition_sim_seconds"]; !ok || h.Count != 3 {
		t.Errorf("json histogram view = %+v", m.Histograms)
	}
}

// TestDistributedTraceReconciles: the coordinator's trace reconciles
// with its own DistResult — partition spans carry the executing worker
// and their sim times fold into the cluster clock (scatter = slowest
// executor), with worker-side stage spans embedded under each.
func TestDistributedTraceReconciles(t *testing.T) {
	path := writeTicketCorpus(t, 80)
	reg := NewRegistry(RegistryConfig{})
	startWorker(t, reg, "a", path, nil)
	startWorker(t, reg, "b", path, nil)
	coord := newTestCoordinator(t, reg, Config{})

	dres, ok, err := coord.TryExecute(context.Background(), coordinatorContext(t, path), ticketSpec(4), 4)
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	root := dres.Trace
	if root == nil || root.Kind != trace.KindQuery {
		t.Fatalf("DistResult trace root = %+v", root)
	}
	if root.SimMS != dres.Elapsed.Milliseconds() {
		t.Errorf("root sim %d ms != DistResult elapsed %d ms", root.SimMS, dres.Elapsed.Milliseconds())
	}
	if root.RecordsOut != len(dres.Records) {
		t.Errorf("root out %d != %d gathered records", root.RecordsOut, len(dres.Records))
	}
	parts := root.FindAll(trace.KindPartition)
	if len(parts) != 4 {
		t.Fatalf("%d partition spans, want 4", len(parts))
	}
	var outSum int
	for _, p := range parts {
		if p.Worker == "" {
			t.Errorf("partition %v names no executing worker", p.Partition)
		}
		if len(p.FindAll(trace.KindWorker)) == 0 {
			t.Errorf("partition %v embeds no worker-side spans", p.Partition)
		}
		outSum += p.RecordsOut
	}
	if outSum != len(dres.Records) {
		t.Errorf("partition outputs sum to %d, gathered %d", outSum, len(dres.Records))
	}
	// Worker-side spans carry their own stage detail across the wire.
	for _, ws := range root.FindAll(trace.KindWorker) {
		if len(ws.Stages()) == 0 {
			t.Errorf("embedded worker span %q has no stage spans", ws.Worker)
		}
	}
}
