// Package cluster promotes the serving layer into a coordinator/worker
// topology for partitioned NDJSON scans. The coordinator splits an
// indexed corpus by its manifest partition index (the same byte-offset
// table behind in-process partition-parallel scans), scatters one
// sub-plan per partition across a registry of pzworker daemons, and
// merges the streamed results back in partition order — so a distributed
// query's records are byte-identical, in identical order, to the
// single-process sequential scan. Robustness is first-class: periodic
// worker health checks with deregistration, per-partition timeouts with
// bounded retry and re-scatter to a healthy worker, speculative
// re-issue of straggling partitions, and graceful fallback to local
// partition execution when the worker pool drains mid-query. See
// docs/architecture.md §8.
package cluster

import (
	"context"
	"encoding/base64"
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/pz"
)

// PartitionRequest is the coordinator→worker wire form of one scattered
// partition: a sub-plan in the existing serve.Spec format plus the byte
// range of the corpus slice it runs over. The worker opens its own
// OpenNDJSONRange reader for [Offset, Offset+Docs) of the named dataset's
// backing file, so nothing but the spec and the range crosses the wire.
type PartitionRequest struct {
	// Spec is the distributable sub-plan (the record-wise prefix of the
	// query: filter/convert/project operators only). Spec.Dataset.Name
	// must resolve against the worker's own dataset registry.
	Spec serve.Spec `json:"spec"`
	// PlanSig pins the physical plan: the op-ID signature of the
	// coordinator's champion prefix plan (see PlanSignature). The worker
	// must execute exactly these physical operators — re-optimizing over
	// a partition's local statistics could pick a different model or
	// strategy, whose content-keyed noise would break byte-identity with
	// the sequential scan. Empty lets the worker use its own champion.
	PlanSig []string `json:"plan_sig,omitempty"`
	// Partition is the partition ordinal in corpus order — it tags every
	// response chunk so the coordinator can merge globally.
	Partition int `json:"partition"`
	// Offset is the byte offset of the partition's first document line.
	Offset int64 `json:"offset"`
	// Docs is the partition's exact document count.
	Docs int `json:"docs"`
}

// PlanSignature renders a physical plan as its ordered op-ID list — the
// wire form of a plan choice. Op IDs carry their full parameterization
// (model, strategy, thresholds), so equal signatures mean physically
// identical execution.
func PlanSignature(p *pz.Plan) []string {
	out := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		out[i] = op.ID()
	}
	return out
}

func sigEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WireRecord is one record crossing the worker→coordinator wire: the
// schema field values, the hidden ground-truth annotation (downstream
// LLM operators on the coordinator need it to stay deterministic), and
// the source label.
type WireRecord struct {
	Values map[string]any `json:"values"`
	Truth  *corpus.Truth  `json:"truth,omitempty"`
	Source string         `json:"source,omitempty"`
}

// PartitionChunk is one NDJSON line of a worker's streamed partition
// response. Records arrive in seq order; the terminal chunk has Done set
// and carries the partition's simulated elapsed time and LLM cost. A
// stream that ends without a Done chunk signals a worker that died
// mid-partition, and the coordinator re-scatters.
type PartitionChunk struct {
	Seq     int          `json:"seq"`
	Records []WireRecord `json:"records,omitempty"`
	Done    bool         `json:"done,omitempty"`
	// ElapsedSimMS and CostUSD summarize the partition run (Done chunk
	// only).
	ElapsedSimMS int64   `json:"elapsed_sim_ms,omitempty"`
	CostUSD      float64 `json:"cost_usd,omitempty"`
	// Trace is the partition run's span tree (Done chunk only), so the
	// coordinator can embed worker-side spans under its own partition
	// spans.
	Trace *trace.Span `json:"trace,omitempty"`
	// Error reports a worker-side execution failure (terminal).
	Error string `json:"error,omitempty"`
}

// PartitionResult is one partition's gathered output, normalized back
// into engine records.
type PartitionResult struct {
	Records []*record.Record
	Elapsed time.Duration
	CostUSD float64
	// Trace is the executing side's span tree for the partition run.
	Trace *trace.Span
}

// EncodeRecords renders records into their wire form.
func EncodeRecords(recs []*record.Record) []WireRecord {
	out := make([]WireRecord, len(recs))
	for i, r := range recs {
		out[i] = WireRecord{Values: r.Values(), Truth: corpus.TruthOf(r), Source: r.Source()}
	}
	return out
}

// DecodeRecords rebuilds engine records from their wire form under the
// sub-plan's output schema. record.New's coercion absorbs JSON's type
// flattening (float64→int64, []any→[]string); Bytes fields come back as
// base64 strings and are decoded here before coercion sees them.
func DecodeRecords(s *schema.Schema, wire []WireRecord) ([]*record.Record, error) {
	out := make([]*record.Record, len(wire))
	for i, w := range wire {
		vals := w.Values
		for _, f := range s.Fields() {
			if f.Type != schema.Bytes {
				continue
			}
			if str, ok := vals[f.Name].(string); ok {
				b, err := base64.StdEncoding.DecodeString(str)
				if err != nil {
					return nil, fmt.Errorf("cluster: record %d field %s: %w", i, f.Name, err)
				}
				vals[f.Name] = b
			}
		}
		rec, err := record.New(s, vals)
		if err != nil {
			return nil, fmt.Errorf("cluster: record %d: %w", i, err)
		}
		rec.SetSource(w.Source)
		if w.Truth != nil {
			rec.SetTruth(corpus.TruthKey, w.Truth)
		}
		out[i] = rec
	}
	return out, nil
}

// ExecutePartition runs one scattered partition in-process: a fresh
// pz.Context with an NDJSONRangeSource registered over the request's
// byte range, the sub-plan built against it, and the result gathered
// whole. Both sides of the wire share this path — the worker daemon
// serves it over HTTP, and the coordinator calls it directly as the
// local fallback when no healthy workers remain — so a partition
// executes identically wherever it lands. path locates the corpus file
// on this machine (registries may differ between coordinator and
// workers).
func ExecutePartition(ctx context.Context, req *PartitionRequest, path string, parallelism int) (*PartitionResult, error) {
	if req.Docs < 1 {
		return nil, fmt.Errorf("cluster: partition %d has %d documents", req.Partition, req.Docs)
	}
	pzctx, err := pz.NewContext(pz.Config{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	name := req.Spec.Dataset.Name
	if name == "" {
		name = "dataset"
	}
	src, err := dataset.NewNDJSONRangeSource(name, path, req.Offset, req.Docs)
	if err != nil {
		return nil, err
	}
	if err := pzctx.Register(src); err != nil {
		return nil, err
	}
	sub := req.Spec
	sub.Dataset = serve.DatasetSpec{Name: name}
	sub.Partitions = 0
	ds, err := sub.Build(pzctx)
	if err != nil {
		return nil, err
	}
	policy, err := sub.ParsePolicy()
	if err != nil {
		return nil, err
	}
	champion, candidates, err := pzctx.OptimizeOnly(ds, policy)
	if err != nil {
		return nil, err
	}
	plan := champion
	if len(req.PlanSig) > 0 {
		plan = nil
		for _, cand := range candidates {
			if sigEqual(PlanSignature(cand), req.PlanSig) {
				plan = cand
				break
			}
		}
		if plan == nil {
			return nil, fmt.Errorf("cluster: partition %d cannot realize pinned plan %v", req.Partition, req.PlanSig)
		}
	}
	res, err := pzctx.ExecutePlanContext(ctx, plan, policy.Describe())
	if err != nil {
		return nil, err
	}
	return &PartitionResult{Records: res.Records, Elapsed: res.Elapsed, CostUSD: res.CostUSD, Trace: res.Trace}, nil
}
