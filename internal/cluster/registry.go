package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// MaxFailures is how many consecutive failures (failed health checks
	// or failed partition attempts) a worker survives before it is
	// deregistered as lost (default 3).
	MaxFailures int
	// CheckTimeout bounds one health probe (default 2s).
	CheckTimeout time.Duration
	// Counters optionally shares a metrics registry; nil allocates one.
	Counters *metrics.Counters
	// Client performs health probes; nil uses a dedicated default client.
	Client *http.Client
}

// workerEntry is one registered worker's live state.
type workerEntry struct {
	name     string
	url      string
	failures int
}

// WorkerRef addresses one healthy worker.
type WorkerRef struct {
	Name string
	URL  string
}

// Registry tracks the live worker pool: registration (static -worker
// flags or dynamic /v1/workers/register heartbeats), consecutive-failure
// accounting shared by health probes and the coordinator's partition
// attempts, and deregistration of lost workers. All methods are safe for
// concurrent use.
type Registry struct {
	cfg      RegistryConfig
	counters *metrics.Counters
	client   *http.Client

	mu      sync.Mutex
	workers map[string]*workerEntry

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewRegistry builds an empty Registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 3
	}
	if cfg.CheckTimeout <= 0 {
		cfg.CheckTimeout = 2 * time.Second
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Registry{cfg: cfg, counters: cfg.Counters, client: client,
		workers: map[string]*workerEntry{}, stop: make(chan struct{})}
}

// Counters exposes the registry's metrics.
func (g *Registry) Counters() *metrics.Counters { return g.counters }

// Register adds a worker (or refreshes an existing one — re-registration
// is the worker's heartbeat, and resets its failure count).
func (g *Registry) Register(name, rawURL string) error {
	if name == "" {
		return fmt.Errorf("cluster: register needs a worker name")
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("cluster: worker %q has invalid URL %q", name, rawURL)
	}
	g.mu.Lock()
	if _, exists := g.workers[name]; !exists {
		g.counters.Inc("cluster_workers_registered")
	}
	g.workers[name] = &workerEntry{name: name, url: rawURL}
	g.setHealthyGaugeLocked()
	g.mu.Unlock()
	return nil
}

// Deregister removes a worker voluntarily (clean shutdown).
func (g *Registry) Deregister(name string) {
	g.mu.Lock()
	if _, ok := g.workers[name]; ok {
		delete(g.workers, name)
		g.counters.Inc("cluster_workers_deregistered")
		g.setHealthyGaugeLocked()
	}
	g.mu.Unlock()
}

// Healthy snapshots the current worker pool, name-sorted for
// deterministic scatter order.
func (g *Registry) Healthy() []WorkerRef {
	g.mu.Lock()
	out := make([]WorkerRef, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, WorkerRef{Name: w.name, URL: w.url})
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the current pool size.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.workers)
}

// NoteFailure records one failed interaction with a worker (health probe
// or partition attempt). At MaxFailures consecutive failures the worker
// is deregistered as lost; a recovered worker rejoins by re-registering.
func (g *Registry) NoteFailure(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[name]
	if !ok {
		return
	}
	w.failures++
	if w.failures >= g.cfg.MaxFailures {
		delete(g.workers, name)
		g.counters.Inc("cluster_workers_lost")
		g.setHealthyGaugeLocked()
	}
}

// NoteSuccess resets a worker's consecutive-failure count.
func (g *Registry) NoteSuccess(name string) {
	g.mu.Lock()
	if w, ok := g.workers[name]; ok {
		w.failures = 0
	}
	g.mu.Unlock()
}

// setHealthyGaugeLocked refreshes the pool-size gauge; callers hold mu.
func (g *Registry) setHealthyGaugeLocked() {
	g.counters.Set("cluster_workers_healthy", int64(len(g.workers)))
}

// CheckOnce probes every registered worker's /healthz once, crediting
// successes and charging failures (lost workers deregister through the
// shared NoteFailure path).
func (g *Registry) CheckOnce() {
	for _, w := range g.Healthy() {
		if g.probe(w) {
			g.NoteSuccess(w.Name)
		} else {
			g.counters.Inc("cluster_health_check_failures")
			g.NoteFailure(w.Name)
		}
	}
}

// probe performs one bounded health request.
func (g *Registry) probe(w WorkerRef) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.CheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// StartHealthLoop launches the periodic health checker; Stop ends it.
func (g *Registry) StartHealthLoop(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				g.CheckOnce()
			}
		}
	}()
}

// Stop ends the health loop and waits for it to settle.
func (g *Registry) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Views renders the pool for /metrics (serve.WorkerView is the wire
// shape the serving layer's Metrics payload embeds).
func (g *Registry) Views() []serve.WorkerView {
	g.mu.Lock()
	out := make([]serve.WorkerView, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, serve.WorkerView{Name: w.name, URL: w.url, Failures: w.failures})
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegistryHandler returns the coordinator-side registration API, mounted
// next to the serving API by cmd/pzserve:
//
//	POST /v1/workers/register   {"name": ..., "url": ...} (also heartbeat)
//	POST /v1/workers/deregister {"name": ...}
//	GET  /v1/workers            list the pool
func RegistryHandler(g *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/register", func(rw http.ResponseWriter, r *http.Request) {
		var body struct {
			Name string `json:"name"`
			URL  string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("cluster: parse registration: %w", err))
			return
		}
		if err := g.Register(body.Name, body.URL); err != nil {
			writeError(rw, http.StatusBadRequest, err)
			return
		}
		writeJSON(rw, http.StatusOK, map[string]any{"status": "registered", "workers": g.Len()})
	})
	mux.HandleFunc("POST /v1/workers/deregister", func(rw http.ResponseWriter, r *http.Request) {
		var body struct {
			Name string `json:"name"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("cluster: parse deregistration: %w", err))
			return
		}
		g.Deregister(body.Name)
		writeJSON(rw, http.StatusOK, map[string]any{"status": "deregistered", "workers": g.Len()})
	})
	mux.HandleFunc("GET /v1/workers", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, g.Views())
	})
	return mux
}
