package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/schema"
)

var clinical = schema.MustNew("ClinicalData", "A schema for extracting clinical data datasets from papers.",
	schema.Field{Name: "name", Type: schema.String, Desc: "The name of the clinical data dataset"},
	schema.Field{Name: "description", Type: schema.String, Desc: "A short description"},
	schema.Field{Name: "url", Type: schema.String, Desc: "The public URL"},
)

const demoPredicate = "The papers are about colorectal cancer"

func demoChain(t *testing.T) []ops.Logical {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	src, err := dataset.NewDocsSource("sigmod-demo", schema.PDFFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: demoPredicate},
		&ops.Convert{Target: clinical, Desc: clinical.Doc(), Card: ops.OneToMany},
	}
}

func TestExecutorConfigDefaults(t *testing.T) {
	e, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Parallelism != 1 || e.cfg.MaxAttempts != 3 || e.cfg.Backoff <= 0 {
		t.Errorf("defaults = %+v", e.cfg)
	}
	if _, err := NewExecutor(Config{Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestE1ScientificDiscoveryMaxQuality(t *testing.T) {
	e, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline numbers: 11 papers in, 6 datasets out,
	// runtime ~240s, cost ~$0.35.
	if len(res.Records) != 6 {
		t.Fatalf("extracted %d datasets, want 6", len(res.Records))
	}
	if res.Elapsed < 60*time.Second || res.Elapsed > 900*time.Second {
		t.Errorf("simulated runtime %v outside the paper's magnitude (~240s)", res.Elapsed)
	}
	if res.CostUSD < 0.01 || res.CostUSD > 2.0 {
		t.Errorf("cost $%.4f outside the paper's magnitude (~$0.35)", res.CostUSD)
	}
	if res.Plan == nil || !strings.Contains(res.Plan.String(), "atlas-large") {
		t.Errorf("plan = %v", res.Plan)
	}
	for _, r := range res.Records {
		if r.GetString("url") == "" {
			t.Errorf("record missing url: %s", r)
		}
	}
}

func TestExecuteMinCostCheaper(t *testing.T) {
	run := func(p optimizer.Policy) *Result {
		e, err := NewExecutor(Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(demoChain(t), p, optimizer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	q := run(optimizer.MaxQuality{})
	c := run(optimizer.MinCost{})
	if c.CostUSD >= q.CostUSD {
		t.Errorf("min-cost run $%.4f >= max-quality run $%.4f", c.CostUSD, q.CostUSD)
	}
}

func TestRunPhysicalDirect(t *testing.T) {
	e, _ := NewExecutor(Config{})
	chain := demoChain(t)
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPhysical(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Errorf("champion physical run produced %d", len(res.Records))
	}
	if res.Plan != nil {
		t.Error("direct run should have nil Plan")
	}
	if _, err := e.RunPhysical(nil); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestParallelismReducesElapsed(t *testing.T) {
	run := func(par int) time.Duration {
		e, _ := NewExecutor(Config{Parallelism: par})
		res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if seq, par := run(1), run(8); par >= seq {
		t.Errorf("parallel %v >= sequential %v", par, seq)
	}
}

func TestFailureInjectionRecovered(t *testing.T) {
	e, err := NewExecutor(Config{FailureRate: 0.2, MaxAttempts: 10, Backoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatalf("pipeline failed despite retries: %v", err)
	}
	if len(res.Records) != 6 {
		t.Errorf("records = %d", len(res.Records))
	}
	// Failures should be recorded in usage.
	failures := 0
	for _, u := range e.Service().Usage() {
		failures += u.Failures
	}
	if failures == 0 {
		t.Error("no injected failures recorded at 20% rate")
	}
}

func TestSentinelSamplingChargesCost(t *testing.T) {
	e1, _ := NewExecutor(Config{})
	plain, err := e1.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := NewExecutor(Config{})
	sampled, err := e2.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{SampleSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.CostUSD <= plain.CostUSD {
		t.Errorf("sampled run $%.4f should cost more than plain $%.4f (sentinel calls)",
			sampled.CostUSD, plain.CostUSD)
	}
	if len(sampled.Records) != len(plain.Records) {
		t.Errorf("sampling changed output: %d vs %d", len(sampled.Records), len(plain.Records))
	}
}

func TestReportContents(t *testing.T) {
	e, _ := NewExecutor(Config{})
	res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(res, 3)
	for _, want := range []string{
		"Execution Report", "policy:", "plan:", "output records: 6",
		"per-operator statistics", "total runtime", "total cost",
		"llm-filter", "llm-convert", "… and 3 more",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestStatsPerOperator(t *testing.T) {
	e, _ := NewExecutor(Config{})
	res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sts := res.Stats.Ops()
	if len(sts) != 3 {
		t.Fatalf("operators = %d", len(sts))
	}
	if sts[0].Kind != "scan" || sts[0].OutRecords != 11 {
		t.Errorf("scan stats = %+v", sts[0])
	}
	if sts[1].Kind != "filter" || sts[1].InRecords != 11 || sts[1].OutRecords != 5 || sts[1].LLMCalls != 11 {
		t.Errorf("filter stats = %+v", sts[1])
	}
	if sts[2].Kind != "convert" || sts[2].InRecords != 5 || sts[2].OutRecords != 6 {
		t.Errorf("convert stats = %+v", sts[2])
	}
}

func TestUsageMatchesResultCost(t *testing.T) {
	e, _ := NewExecutor(Config{})
	res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.CostUSD - e.Service().TotalCost(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("result cost %.6f != service cost %.6f", res.CostUSD, e.Service().TotalCost())
	}
	if _, err := llm.Card("atlas-large"); err != nil {
		t.Fatal(err)
	}
}

func TestRelationalTailOperators(t *testing.T) {
	docs := corpus.GenerateRealEstate(corpus.DefaultRealEstate())
	src, err := dataset.NewDocsSource("re", schema.TextFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	listing := schema.MustNew("Listing", "A real estate listing.",
		schema.Field{Name: "neighborhood", Type: schema.String, Desc: "The neighborhood"},
		schema.Field{Name: "price", Type: schema.Float, Desc: "The asking price in dollars"},
	)
	chain := []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Retrieve{Query: "modern renovated kitchen", K: 30},
		&ops.Convert{Target: listing, Desc: listing.Doc(), Card: ops.OneToOne},
		&ops.GroupBy{Keys: []string{"neighborhood"}, Func: ops.AggAvg, Field: "price"},
		&ops.Sort{Field: "value", Descending: true},
		&ops.Limit{N: 5},
	}
	e, _ := NewExecutor(Config{Parallelism: 4})
	res, err := e.Execute(chain, optimizer.MinCost{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || len(res.Records) > 5 {
		t.Fatalf("records = %d", len(res.Records))
	}
	prev := res.Records[0].GetFloat("value")
	for _, r := range res.Records[1:] {
		if v := r.GetFloat("value"); v > prev {
			t.Error("group averages not descending")
		} else {
			prev = v
		}
	}
}
