package exec

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/trace"
)

// reoptChain builds the canonical re-orderable shape over the support
// corpus: scan, a broad filter that keeps everything, then a narrow one.
func reoptChain(t *testing.T) []ops.Logical {
	t.Helper()
	src := domainSource(t, "support", 48, 9)
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: "This is a support ticket"},
		&ops.Filter{Predicate: "The ticket is urgent and needs immediate attention"},
	}
}

// misSeededReoptOpts inverts the true selectivities: the broad filter is
// claimed selective and the narrow one permissive, so the champion runs
// broad-first — the order the hot swap must recover from.
func misSeededReoptOpts() optimizer.Options {
	return optimizer.Options{
		ReoptAfterBatches: 2,
		Priors:            optimizer.Calibration{1: {Selectivity: 0.05}, 2: {Selectivity: 0.95}},
	}
}

func reoptSpanOf(t *testing.T, res *Result) *trace.Span {
	t.Helper()
	if res.Trace == nil {
		t.Fatal("run produced no trace")
	}
	for _, sp := range res.Trace.Children {
		if sp.Kind == trace.KindReopt {
			return sp
		}
	}
	t.Fatal("trace carries no reopt span")
	return nil
}

// TestReoptInflightSwap drives the whole loop through the pipelined
// engine: the mis-seeded run must decide mid-flight, swap the filter
// order, keep byte-identical output to a sequential run of the same
// chain, and report the decision on both the Result and the trace.
func TestReoptInflightSwap(t *testing.T) {
	seqExec, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := seqExec.Execute(reoptChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}

	pipeExec, err := NewExecutor(Config{Parallelism: 4, StreamBatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeExec.Execute(reoptChain(t), optimizer.MaxQuality{}, misSeededReoptOpts())
	if err != nil {
		t.Fatal(err)
	}

	ri := res.Reopt
	if ri == nil {
		t.Fatal("reopt-armed run reported no ReoptInfo")
	}
	if ri.Phase != "inflight" {
		t.Fatalf("phase = %q, want inflight", ri.Phase)
	}
	if !ri.Triggered || !ri.Swapped {
		t.Fatalf("triggered=%t swapped=%t; mis-seeded priors must trigger a swap", ri.Triggered, ri.Swapped)
	}
	if ri.OldPlan == ri.NewPlan {
		t.Fatalf("swap reported but plan displays match: %s", ri.OldPlan)
	}
	// The display quotes predicates — that is what distinguishes two
	// same-model filter stages across the swap.
	if !strings.Contains(ri.NewPlan, `"`) {
		t.Fatalf("plan display carries no predicate snippet: %s", ri.NewPlan)
	}
	if ri.CorrectedPlan == nil {
		t.Fatal("swap left no corrected plan for the plan cache")
	}
	if fmt.Sprint(recordKeys(res.Records)) != fmt.Sprint(recordKeys(seqRes.Records)) {
		t.Fatalf("swapped run output diverges from sequential: %d vs %d records",
			len(res.Records), len(seqRes.Records))
	}

	sp := reoptSpanOf(t, res)
	if sp.Attrs["swapped"] != "true" || sp.Attrs["phase"] != "inflight" {
		t.Fatalf("reopt span attrs = %v", sp.Attrs)
	}
	if sp.Attrs["old_plan"] == sp.Attrs["new_plan"] {
		t.Fatal("reopt span shows identical old/new plan displays after a swap")
	}
}

// TestReoptSequentialPostrun exercises the fallback: a sequential run
// cannot swap mid-flight but must still correct the cached estimates.
func TestReoptSequentialPostrun(t *testing.T) {
	e, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(reoptChain(t), optimizer.MaxQuality{}, misSeededReoptOpts())
	if err != nil {
		t.Fatal(err)
	}
	ri := res.Reopt
	if ri == nil || ri.Phase != "postrun" {
		t.Fatalf("reopt info = %+v, want postrun phase", ri)
	}
	if !ri.Triggered {
		t.Fatalf("divergence %.3f below threshold %.3f on mis-seeded priors", ri.Divergence, ri.Threshold)
	}
	if ri.Swapped {
		t.Fatal("sequential run claims an in-flight swap")
	}
	if ri.CorrectedPlan == nil {
		t.Fatal("postrun check produced no corrected plan")
	}
	if sp := reoptSpanOf(t, res); sp.Attrs["phase"] != "postrun" {
		t.Fatalf("reopt span phase = %q", sp.Attrs["phase"])
	}
}

// TestReoptPlanCacheHitPath covers the serving layer's entry point:
// ExecutePlanContext on a reopt-armed plan runs the same loop and stamps
// the reopt span alongside the plan_cached attribute.
func TestReoptPlanCacheHitPath(t *testing.T) {
	e, err := NewExecutor(Config{Parallelism: 4, StreamBatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	opts := misSeededReoptOpts()
	opts.Pipelined = true
	opt := optimizer.New(opts)
	plan, _, err := opt.Optimize(reoptChain(t), optimizer.MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecutePlanContext(t.Context(), plan, "max quality")
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopt == nil || !res.Reopt.Swapped {
		t.Fatalf("cached-plan run reopt = %+v, want an in-flight swap", res.Reopt)
	}
	if sp := reoptSpanOf(t, res); sp.Attrs["swapped"] != "true" {
		t.Fatalf("reopt span attrs = %v", sp.Attrs)
	}
}

func TestPredicateSnippetTruncates(t *testing.T) {
	long := strings.Repeat("x", 40)
	got := predicateSnippet(long)
	if len([]rune(got)) != 24 || !strings.HasSuffix(got, "…") {
		t.Fatalf("snippet = %q (%d runes)", got, len([]rune(got)))
	}
	if predicateSnippet("short") != "short" {
		t.Fatal("short predicate was altered")
	}
}
