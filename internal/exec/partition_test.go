package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/workloads"
)

// supportPhys resolves the support-triage workload (scan + LLM filter +
// convert) over an indexed file-backed corpus to its champion plan.
func supportPhys(t *testing.T, n int) []ops.Physical {
	t.Helper()
	chain, err := workloads.SupportTriageChain(ndjsonSource(t, n))
	if err != nil {
		t.Fatal(err)
	}
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := phys[0].(ops.PartitionStreamer); !ok {
		t.Fatal("scan over an indexed NDJSON source must implement ops.PartitionStreamer")
	}
	return phys
}

// TestPartitionedScanParity is the engine-level acceptance check: the
// partition-parallel run (per-partition source+map pipelines, merged by
// seq tags) produces byte-identical records and matching per-operator
// stats totals versus the sequential engine, and — because partitions
// model independent shards — finishes faster on the simulated clock than
// the single-reader pipelined run.
func TestPartitionedScanParity(t *testing.T) {
	phys := supportPhys(t, 96)
	newExec := func(partitions int) *Executor {
		e, err := NewExecutor(Config{Parallelism: 4, Partitions: partitions})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq, err := newExec(0).RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	single, err := newExec(1).RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	parted, err := newExec(8).RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Records) == 0 {
		t.Fatal("workload produced no records")
	}
	want, got := renderAll(seq.Records), renderAll(parted.Records)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: sequential %d, partitioned %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs:\nsequential:  %s\npartitioned: %s", i, want[i], got[i])
		}
	}
	assertSameStats(t, seq.Stats, parted.Stats)
	// Eight partition pipelines run concurrently, so the modeled
	// wall-clock must beat one pipeline over the same records.
	if parted.Elapsed >= single.Elapsed {
		t.Errorf("partitioned run not faster: single-reader %v, 8-way %v", single.Elapsed, parted.Elapsed)
	}
}

// TestPartitionedBarrierMerge: with a blocking stage (sort) downstream of
// the partitioned prefix, the barrier's seq-tag sort must reassemble
// exact dataset order from interleaved partition outputs.
func TestPartitionedBarrierMerge(t *testing.T) {
	src := ndjsonSource(t, 60)
	chain := []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{UDF: func(*record.Record) (bool, error) { return true, nil }, UDFName: "all"},
		&ops.Sort{Field: "filename", Descending: true},
		&ops.Limit{N: 10},
	}
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	partExec, _ := NewExecutor(Config{Parallelism: 2, Partitions: 5})
	part, err := partExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	want, got := renderAll(seq.Records), renderAll(part.Records)
	if len(want) != 10 || len(got) != 10 {
		t.Fatalf("limit produced %d/%d records, want 10", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs after barrier:\nsequential:  %s\npartitioned: %s", i, want[i], got[i])
		}
	}
}

// TestPartitionPlanHintWins: a plan whose scan carries a fan-out stamp
// (as the optimizer leaves it for the serving plan cache) partitions even
// when the executor config doesn't ask for it — and RunPhysical routes it
// to the pipelined engine.
func TestPartitionPlanHintWins(t *testing.T) {
	phys := supportPhys(t, 48)
	phys[0].(*ops.ScanExec).Parts = 4
	e, err := NewExecutor(Config{}) // Parallelism 1, Partitions 0
	if err != nil {
		t.Fatal(err)
	}
	if !e.usePipelined(phys) {
		t.Fatal("plan-carried partition hint did not select the pipelined engine")
	}
	res, err := e.RunPhysical(phys)
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	want, got := renderAll(seq.Records), renderAll(res.Records)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs under plan-hinted partitioning", i)
		}
	}
}

// TestPartitionedFallbackUnpartitionable: partition fan-out requested
// over a memory source (no PartitionedSource capability) silently runs
// the single-reader pipeline.
func TestPartitionedFallbackUnpartitionable(t *testing.T) {
	phys, err := workloads.StreamPlan(24)
	if err != nil {
		t.Fatal(err)
	}
	partExec, _ := NewExecutor(Config{Parallelism: 4, Partitions: 8})
	res, err := partExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{Parallelism: 4})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	want, got := renderAll(seq.Records), renderAll(res.Records)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs on the fallback path", i)
		}
	}
}

// TestPartitionedCancellation: canceling the caller context mid-run tears
// down every partition pipeline and reports cancellation.
func TestPartitionedCancellation(t *testing.T) {
	phys := supportPhys(t, 80)
	e, err := NewExecutor(Config{Parallelism: 2, Partitions: 4, StreamBatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run starts: every stage must unwind
	if _, err := e.RunPipelinedContext(ctx, phys); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPartitionedProgressTotals: per-stage progress events across
// partitions accumulate to the full record counts, monotonically.
func TestPartitionedProgressTotals(t *testing.T) {
	const n = 64
	src := ndjsonSource(t, n)
	phys, err := optimizer.ChampionPlan([]ops.Logical{&ops.Scan{Source: src}})
	if err != nil {
		t.Fatal(err)
	}
	lastRecords := -1
	monotonic := true
	e, err := NewExecutor(Config{Parallelism: 2, Partitions: 4, StreamBatchSize: 8,
		OnProgress: func(p Progress) {
			if p.OpIndex == 0 {
				if p.Records < lastRecords {
					monotonic = false
				}
				lastRecords = p.Records
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != n {
		t.Fatalf("records = %d, want %d", len(res.Records), n)
	}
	if lastRecords != n {
		t.Fatalf("final scan progress reported %d records, want %d", lastRecords, n)
	}
	if !monotonic {
		t.Fatal("scan progress went backwards across partitions")
	}
}
