package exec

import (
	"fmt"
	"time"

	"repro/internal/ops"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Trace assembly. Both engines build a query-rooted span tree from the
// run's per-operator statistics: one stage span per physical operator,
// and (on the pipelined engine's partitioned prefix) one partition span
// per (partition, stage) cell. ExecuteContext prepends the optimize
// span and stamps plan/policy attributes; the TraceSink fires once per
// top-level execution there and in ExecutePlanContext — never from the
// inner Run* entry points, so a sink observes each query exactly once.

// buildRunTrace assembles the root query span and its per-stage
// children. stageTimes, when non-nil, overrides each stage span's
// simulated duration with the engine's folded per-stage wall
// contribution (the pipelined engine); otherwise the operator's own
// accumulated time is used (the sequential engine).
func buildRunTrace(engine string, stats *ops.RunStats, elapsed time.Duration, cost float64, stageTimes []time.Duration) *trace.Span {
	root := &trace.Span{
		Kind:    trace.KindQuery,
		Name:    engine,
		SimMS:   elapsed.Milliseconds(),
		CostUSD: cost,
	}
	opStats := stats.Ops()
	for i, op := range opStats {
		simMS := op.Time.Milliseconds()
		if stageTimes != nil && op.Position < len(stageTimes) {
			simMS = stageTimes[op.Position].Milliseconds()
		}
		stage := &trace.Span{
			Kind:         trace.KindStage,
			Name:         op.OpID,
			OpID:         op.OpID,
			OpIndex:      op.Position,
			RecordsIn:    op.InRecords,
			RecordsOut:   op.OutRecords,
			Selectivity:  trace.Selectivity(op.InRecords, op.OutRecords),
			SimMS:        simMS,
			CostUSD:      op.CostUSD,
			LLMCalls:     op.LLMCalls,
			InputTokens:  op.InputTokens,
			OutputTokens: op.OutputTokens,
			CacheHits:    op.CacheHits,
		}
		// Cascade stages carry one child span per tier. RecordsOut is what
		// a tier settles into the stage output (Emitted) plus what it
		// passes deeper (Passed), so consecutive tier spans chain:
		// next.RecordsIn == prev Passed share of this tier's out.
		for _, tier := range op.Tiers {
			stage.Add(&trace.Span{
				Kind:        trace.KindTier,
				Name:        tier.Tier,
				RecordsIn:   tier.In,
				RecordsOut:  tier.Emitted + tier.Passed,
				Selectivity: trace.Selectivity(tier.In, tier.Emitted+tier.Passed),
				SimMS:       tier.Time.Milliseconds(),
				CostUSD:     tier.CostUSD,
				LLMCalls:    tier.LLMCalls,
			})
		}
		root.Add(stage)
		if i == 0 {
			root.RecordsIn = op.InRecords
		}
		if i == len(opStats)-1 {
			root.RecordsOut = op.OutRecords
		}
		root.LLMCalls += op.LLMCalls
		root.InputTokens += op.InputTokens
		root.OutputTokens += op.OutputTokens
		root.CacheHits += op.CacheHits
	}
	return root
}

// attachPartitionSpans nests one partition span per (partition, stage)
// cell under the stage spans of the partitioned prefix, carrying each
// partition's own record counts and stage clock. The count arrays are
// written by exactly one goroutine per cell and read only after the
// pipeline's WaitGroup drains, so no locking is needed here.
func attachPartitionSpans(root *trace.Span, prefixEnd int, partIn, partOut [][]int, partTallies [][]*simclock.Tally) {
	for _, stage := range root.Children {
		if stage.Kind != trace.KindStage || stage.OpIndex >= prefixEnd {
			continue
		}
		i := stage.OpIndex
		for p := range partTallies {
			stage.Add(&trace.Span{
				Kind:        trace.KindPartition,
				Name:        fmt.Sprintf("partition %d", p),
				Partition:   trace.Ordinal(p),
				RecordsIn:   partIn[p][i],
				RecordsOut:  partOut[p][i],
				Selectivity: trace.Selectivity(partIn[p][i], partOut[p][i]),
				SimMS:       partTallies[p][i].Total().Milliseconds(),
			})
		}
	}
}

// emitTrace delivers a completed top-level trace to the configured sink.
func (e *Executor) emitTrace(span *trace.Span) {
	if span != nil && e.cfg.TraceSink != nil {
		e.cfg.TraceSink(span)
	}
}
