package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/optimizer"
	"repro/internal/workloads"
)

// TestSequentialContextDeadline: an already-expired deadline aborts the
// sequential engine before any operator runs, surfacing the context error.
func TestSequentialContextDeadline(t *testing.T) {
	e, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = e.ExecuteContext(ctx, demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestPipelinedContextCancelMidRun: canceling the caller's context while
// the streaming engine is mid-flight tears down every stage and returns
// the cancellation, without deadlock or goroutine leak (the -race run
// would flag unsynchronized teardown).
func TestPipelinedContextCancelMidRun(t *testing.T) {
	phys, err := workloads.StreamPlan(60)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := make(chan struct{})
	e, err := NewExecutor(Config{Parallelism: 4, OnProgress: func(p Progress) {
		// Cancel as soon as the first batch completes anywhere.
		select {
		case <-fired:
		default:
			close(fired)
			cancel()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.RunPipelinedContext(ctx, phys)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled pipelined run did not return")
	}
}

// TestConcurrentExecuteAccounting: many concurrent Execute calls over one
// Executor each report their own cost and elapsed time — per-run totals
// must match a reference single-threaded run, not absorb neighbors' work.
func TestConcurrentExecuteAccounting(t *testing.T) {
	chain, err := workloads.StreamChain(20)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewExecutor(Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Execute(chain, optimizer.MinCost{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewExecutor(Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	results := make([]*Result, n)
	errs := make([]error, n)
	donech := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results[i], errs[i] = e.Execute(chain, optimizer.MinCost{}, optimizer.Options{})
			donech <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-donech
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		res := results[i]
		if len(res.Records) != len(want.Records) {
			t.Errorf("run %d: %d records, want %d", i, len(res.Records), len(want.Records))
		}
		if diff := res.CostUSD - want.CostUSD; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("run %d: cost $%.6f, want $%.6f (per-run accounting leaked)", i, res.CostUSD, want.CostUSD)
		}
		if res.Elapsed != want.Elapsed {
			t.Errorf("run %d: elapsed %v, want %v", i, res.Elapsed, want.Elapsed)
		}
	}
	// The shared service still sees the cumulative picture.
	if total := e.Service().TotalCost(); total < want.CostUSD*float64(n)-1e-9 {
		t.Errorf("service total $%.6f, want >= %d x $%.6f", total, n, want.CostUSD)
	}
}

// TestExecutePlanContextMatchesExecute: running a previously chosen plan
// directly (the serving layer's plan-cache hit path) yields the same
// records as the optimize-and-run path.
func TestExecutePlanContextMatchesExecute(t *testing.T) {
	chain, err := workloads.StreamChain(12)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := e.ExecutePlanContext(context.Background(), full.Plan, "replayed")
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != len(full.Records) {
		t.Fatalf("replay %d records, want %d", len(replay.Records), len(full.Records))
	}
	for i := range replay.Records {
		if replay.Records[i].Text() != full.Records[i].Text() {
			t.Fatalf("replay record %d differs", i)
		}
	}
	if replay.Policy != "replayed" || replay.Plan != full.Plan {
		t.Error("replay metadata not carried")
	}
	if _, err := e.ExecutePlanContext(context.Background(), nil, "x"); err == nil {
		t.Error("nil plan accepted")
	}
}
