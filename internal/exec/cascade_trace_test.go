package exec

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/trace"
)

// embedNdjsonSource is ndjsonSource plus an embedding sidecar — the corpus
// shape that makes the optimizer enumerate cascade plans.
func embedNdjsonSource(t *testing.T, n int) *dataset.NDJSONSource {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 17})
	if _, err := corpus.SaveNDJSON(path, g, 17, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.EmbedNDJSON(path, llm.EmbedDim, llm.EmbedVector); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewNDJSONSource("tickets", path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestCascadeTierSpansReconcile runs an end-to-end optimized cascade query
// on both engines and checks the trace's tier spans against their parent
// stage: records chain prefilter → verify → resolve, settled outputs sum
// to the stage's output, and tier costs and calls sum to the stage's.
func TestCascadeTierSpansReconcile(t *testing.T) {
	chain := []ops.Logical{
		&ops.Scan{Source: embedNdjsonSource(t, 300)},
		&ops.Filter{Predicate: "The ticket is urgent and needs immediate attention"},
	}
	for name, cfg := range map[string]Config{
		"sequential": {},
		"pipelined":  {Parallelism: 4},
	} {
		t.Run(name, func(t *testing.T) {
			e, err := NewExecutor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Execute(chain, optimizer.MinCostAtQuality{Floor: 0.95}, optimizer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			casc, ok := res.Plan.Ops[1].(*ops.CascadeFilterExec)
			if !ok {
				t.Fatalf("cost policy did not choose a cascade: %s", res.Plan)
			}
			var stage *trace.Span
			for _, s := range res.Trace.Stages() {
				if s.OpID == casc.ID() {
					stage = s
				}
			}
			if stage == nil {
				t.Fatalf("no stage span for %s in trace", casc.ID())
			}
			tiers := stage.FindAll(trace.KindTier)
			if len(tiers) != 3 {
				t.Fatalf("cascade stage has %d tier spans, want 3", len(tiers))
			}
			wantOrder := []string{ops.TierPrefilter, ops.TierVerify, ops.TierResolve}
			for i, tier := range tiers {
				if tier.Name != wantOrder[i] {
					t.Fatalf("tier %d = %q, want %q", i, tier.Name, wantOrder[i])
				}
			}
			if tiers[0].RecordsIn != stage.RecordsIn {
				t.Errorf("prefilter in = %d, stage in = %d", tiers[0].RecordsIn, stage.RecordsIn)
			}
			// Each tier's RecordsOut is what it settled into the output plus
			// what it passed deeper; the next tier's RecordsIn is exactly the
			// passed share, so settled = out - nextIn.
			settled, cost, calls := 0, 0.0, 0
			for i, tier := range tiers {
				nextIn := 0
				if i+1 < len(tiers) {
					nextIn = tiers[i+1].RecordsIn
				}
				if tier.RecordsOut < nextIn {
					t.Errorf("tier %s out %d < next tier in %d", tier.Name, tier.RecordsOut, nextIn)
				}
				settled += tier.RecordsOut - nextIn
				cost += tier.CostUSD
				calls += tier.LLMCalls
			}
			if settled != stage.RecordsOut {
				t.Errorf("tiers settle %d records, stage out = %d", settled, stage.RecordsOut)
			}
			if math.Abs(cost-stage.CostUSD) > 1e-9 {
				t.Errorf("tier costs sum to %v, stage cost = %v", cost, stage.CostUSD)
			}
			if calls != stage.LLMCalls {
				t.Errorf("tier calls sum to %d, stage calls = %d", calls, stage.LLMCalls)
			}
			// The prefilter must actually shed work before the LLM tiers.
			if tiers[0].RecordsOut >= tiers[0].RecordsIn {
				t.Errorf("prefilter dropped nothing: %d -> %d", tiers[0].RecordsIn, tiers[0].RecordsOut)
			}
			if tiers[2].RecordsIn >= tiers[1].RecordsIn {
				t.Errorf("resolve tier saw %d records, not fewer than verify's %d", tiers[2].RecordsIn, tiers[1].RecordsIn)
			}
		})
	}
}
