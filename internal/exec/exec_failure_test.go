package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/optimizer"
)

// TestPermanentFailureSurfacesError: with a 100% failure rate, retries
// exhaust and the pipeline reports which operator failed.
func TestPermanentFailureSurfacesError(t *testing.T) {
	e, err := NewExecutor(Config{FailureRate: 1.0, MaxAttempts: 3, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err == nil {
		t.Fatal("pipeline succeeded despite 100% failure rate")
	}
	if !strings.Contains(err.Error(), "llm-filter") {
		t.Errorf("error should name the failing operator: %v", err)
	}
	if !strings.Contains(err.Error(), "3/3") {
		t.Errorf("error should show retry exhaustion: %v", err)
	}
}

// TestParallelismDoesNotChangeOutputs: the same pipeline run with
// parallelism 1 and 8 yields identical record sets (order included: the
// parallel executor preserves input order).
func TestParallelismDoesNotChangeOutputs(t *testing.T) {
	collect := func(par int) []string {
		e, err := NewExecutor(Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var urls []string
		for _, r := range res.Records {
			urls = append(urls, r.GetString("url"))
		}
		return urls
	}
	a, b := collect(1), collect(8)
	if len(a) != len(b) {
		t.Fatalf("different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestBackoffChargedToRuntime: retried calls accumulate backoff in the
// simulated elapsed time.
func TestBackoffChargedToRuntime(t *testing.T) {
	clean, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := NewExecutor(Config{FailureRate: 0.3, MaxAttempts: 10, Backoff: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	flakyRes, err := flaky.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flakyRes.Elapsed <= cleanRes.Elapsed {
		t.Errorf("flaky run %v not slower than clean run %v", flakyRes.Elapsed, cleanRes.Elapsed)
	}
	if len(flakyRes.Records) != len(cleanRes.Records) {
		t.Errorf("failures changed outputs: %d vs %d", len(flakyRes.Records), len(cleanRes.Records))
	}
}

// TestUsageTracksFailures: injected failures are visible in per-model
// usage.
func TestUsageTracksFailures(t *testing.T) {
	e, err := NewExecutor(Config{FailureRate: 0.3, MaxAttempts: 10, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(demoChain(t), optimizer.MinCost{}, optimizer.Options{}); err != nil {
		t.Fatal(err)
	}
	var failures int
	for _, u := range e.Service().Usage() {
		failures += u.Failures
	}
	if failures == 0 {
		t.Error("no failures recorded at 30% rate")
	}
}
