package exec

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/schema"
)

// cascadeParityPredicates pairs every corpus domain with a predicate whose
// gold labels the domain's generator embeds — the filters the cascade is
// built to accelerate.
var cascadeParityPredicates = map[string]string{
	corpus.DomainBiomed:     "The papers are about colorectal cancer",
	corpus.DomainLegal:      "The contract contains an indemnification clause",
	corpus.DomainRealEstate: "The listing describes a modern home",
	corpus.DomainSupport:    "The ticket is urgent and needs immediate attention",
	corpus.DomainFinance:    "The filing reports a profitable fiscal year",
}

func domainSource(t *testing.T, domain string, n int, seed int64) dataset.Source {
	t.Helper()
	g, err := corpus.NewGenerator(domain, n, -1, seed)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewDocsSource(domain, schema.TextFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// recordKeys canonicalizes an output for byte-level comparison: filename
// and full text, in output order.
func recordKeys(recs []*record.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.GetString("filename") + "\x00" + r.Text()
	}
	return out
}

// TestCascadeDegenerateParityProperty is the cascade harness's anchor
// property: with Threshold 0 the cascade degenerates to resolve-only and
// must keep a byte-identical record sequence to the plain big-model
// filter — across every corpus domain, three generator seeds, and both
// engines (the pipelined one exercising the concurrent tier paths under
// -race in CI).
func TestCascadeDegenerateParityProperty(t *testing.T) {
	for domain, pred := range cascadeParityPredicates {
		for _, seed := range []int64{1, 17, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", domain, seed), func(t *testing.T) {
				src := domainSource(t, domain, 48, seed)
				filter := &ops.Filter{Predicate: pred}
				plainPlan := func() []ops.Physical {
					return []ops.Physical{
						&ops.ScanExec{Source: src},
						&ops.LLMFilterExec{Filter: filter, Model: "atlas-large"},
					}
				}
				// A fresh operator per run: the cascade carries per-run
				// init state, and sharing across engines would blur which
				// run produced which accounting.
				cascPlan := func() []ops.Physical {
					return []ops.Physical{
						&ops.ScanExec{Source: src},
						&ops.CascadeFilterExec{
							Filter:       filter,
							VerifyModel:  "atlas-small",
							ResolveModel: "atlas-large",
							Threshold:    0,
						},
					}
				}
				engines := map[string]func([]ops.Physical) (*Result, error){
					"sequential": func(p []ops.Physical) (*Result, error) {
						e, err := NewExecutor(Config{})
						if err != nil {
							t.Fatal(err)
						}
						return e.RunSequential(p)
					},
					"pipelined": func(p []ops.Physical) (*Result, error) {
						e, err := NewExecutor(Config{Parallelism: 4})
						if err != nil {
							t.Fatal(err)
						}
						return e.RunPipelined(p)
					},
				}
				var want []string
				for engine, run := range engines {
					plain, err := run(plainPlan())
					if err != nil {
						t.Fatalf("%s plain: %v", engine, err)
					}
					casc, err := run(cascPlan())
					if err != nil {
						t.Fatalf("%s cascade: %v", engine, err)
					}
					pk, ck := recordKeys(plain.Records), recordKeys(casc.Records)
					if len(pk) == 0 {
						t.Fatalf("%s plain filter kept nothing; fixture is degenerate", engine)
					}
					if fmt.Sprint(pk) != fmt.Sprint(ck) {
						t.Fatalf("%s: degenerate cascade output diverges from plain filter\nplain:   %d records\ncascade: %d records", engine, len(pk), len(ck))
					}
					// Cost parity up to float summation order: the pipelined
					// engine accumulates per-batch costs in arrival order,
					// so totals can differ from the plain run by ULPs.
					if diff := casc.CostUSD - plain.CostUSD; diff > 1e-9 || diff < -1e-9 {
						t.Errorf("%s: degenerate cascade cost %v != plain cost %v", engine, casc.CostUSD, plain.CostUSD)
					}
					// Engines agree with each other too.
					if want == nil {
						want = ck
					} else if fmt.Sprint(want) != fmt.Sprint(ck) {
						t.Errorf("%s cascade output diverges across engines", engine)
					}
				}
			})
		}
	}
}
