package exec

import (
	"testing"

	"repro/internal/optimizer"
)

// TestCachedRerunIsNearlyFree: with EnableCache, executing the same
// pipeline twice pays full price once; the second run's completion calls
// all hit the cache, so only embeddings (uncached) or nothing remain.
func TestCachedRerunIsNearlyFree(t *testing.T) {
	e, err := NewExecutor(Config{EnableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	chain := demoChain(t)
	first, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.CostUSD <= 0.1 {
		t.Fatalf("first run suspiciously cheap: $%.4f", first.CostUSD)
	}
	second, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.CostUSD > first.CostUSD/100 {
		t.Errorf("cached rerun cost $%.4f, want <1%% of $%.4f", second.CostUSD, first.CostUSD)
	}
	if len(second.Records) != len(first.Records) {
		t.Errorf("cached rerun changed outputs: %d vs %d", len(second.Records), len(first.Records))
	}
	if second.Elapsed >= first.Elapsed/10 {
		t.Errorf("cached rerun elapsed %v, want <10%% of %v", second.Elapsed, first.Elapsed)
	}
	st := e.Cache().Stats()
	if st.Hits == 0 || st.SavedUSD <= 0 {
		t.Errorf("cache stats: hits=%d saved=%v", st.Hits, st.SavedUSD)
	}
}

// TestCacheSharedAcrossPolicies: plans that reuse the same (model, task,
// record) calls hit the cache even under a different policy.
func TestCacheSharedAcrossPolicies(t *testing.T) {
	e, err := NewExecutor(Config{EnableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	chain := demoChain(t)
	if _, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{}); err != nil {
		t.Fatal(err)
	}
	// Quality-floor policy picks a different (cheaper) plan: different
	// models, so misses; then re-running it hits.
	mid, err := e.Execute(chain, optimizer.MinCostAtQuality{Floor: 0.85}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	midAgain, err := e.Execute(chain, optimizer.MinCostAtQuality{Floor: 0.85}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if midAgain.CostUSD >= mid.CostUSD/10 && mid.CostUSD > 0 {
		t.Errorf("second mid-tier run cost $%.4f vs first $%.4f", midAgain.CostUSD, mid.CostUSD)
	}
}

// TestCacheDisabledByDefault: without EnableCache, reruns pay full price.
func TestCacheDisabledByDefault(t *testing.T) {
	e, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Cache() != nil {
		t.Fatal("cache present without EnableCache")
	}
	chain := demoChain(t)
	a, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.CostUSD < a.CostUSD*0.9 {
		t.Errorf("uncached rerun got cheaper: $%.4f vs $%.4f", b.CostUSD, a.CostUSD)
	}
}
