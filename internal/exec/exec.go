// Package exec implements Palimpzest's execution engine: it runs a chosen
// physical plan over its dataset, collecting the per-operator statistics
// the paper's Figure 5 panel displays ("users can gain insights into the
// workload execution by asking the system to provide statistics such as
// how much runtime was needed to produce the output, and how much the LLM
// invocations costed").
//
// Two engines share the operator implementations. At Parallelism <= 1,
// RunPhysical runs operators strictly sequentially with full
// materialization between stages. At Parallelism > 1 it switches to the
// pipelined streaming engine (pipeline.go): operator stages connected by
// bounded channels of sequence-tagged record batches, with per-stage
// worker pools, backpressure, first-error cancellation, and deterministic
// output ordering. Both engines produce identical records and identical
// per-operator call/token/cost statistics; only the modeled wall-clock
// differs (pipelined stages overlap, so a segment of streamable stages
// costs its slowest stage, not the sum). See docs/architecture.md for the
// full dataflow.
//
// LLM latency is modeled on a virtual clock (internal/simclock), so the
// reported runtime has the paper's magnitude (hundreds of seconds for the
// demo workload) while actual execution takes milliseconds.
package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Config configures an Executor.
type Config struct {
	// Parallelism is the maximum concurrent LLM calls per operator
	// (default 1 = strictly sequential).
	Parallelism int
	// Partitions is the partition fan-out for partitionable scans (an
	// NDJSON corpus whose manifest carries a byte-offset index): when > 1,
	// the pipelined engine runs one source+map pipeline per partition —
	// each with its own range reader and Parallelism-wide worker pools,
	// modeling shard scale-out — and merges the results back into exact
	// dataset order. 0/1 keeps the single streaming reader; a plan whose
	// scan carries its own fan-out hint (ops.PartitionHinter, stamped by
	// the optimizer) overrides this default.
	Partitions int
	// MaxAttempts bounds LLM retries per call (default 3).
	MaxAttempts int
	// Backoff is the base retry backoff (default 200ms).
	Backoff time.Duration
	// FailureRate injects transient LLM failures (default 0).
	FailureRate float64
	// EnableCache memoizes LLM responses across runs: re-executing a
	// pipeline over unchanged data costs (almost) nothing.
	EnableCache bool
	// CacheCapacity bounds the LLM response cache to that many entries
	// (LRU eviction). Zero keeps the historical unbounded behavior;
	// serving deployments should set it so sustained traffic cannot grow
	// the cache without limit.
	CacheCapacity int
	// StreamBatchSize is the record batch size flowing between stages of
	// the pipelined engine (default 8; ignored at Parallelism <= 1).
	// Values below Parallelism are raised to it so a small batch cannot
	// starve the per-stage worker pools.
	StreamBatchSize int
	// OnProgress, when set, receives progress events: one per completed
	// batch per stage on the pipelined engine, one per completed operator
	// on the sequential engine. Events are serialized; the callback never
	// runs concurrently with itself.
	OnProgress func(Progress)
	// TraceSink, when set, receives the completed span tree of every
	// top-level execution (Execute / ExecutePlan paths), after the
	// optimize span and plan attributes are attached. The callback may
	// run concurrently with itself when runs overlap; the span is not
	// mutated after delivery.
	TraceSink func(*trace.Span)
}

// Executor owns the LLM service, virtual clock, and retry client for a
// sequence of pipeline runs. Usage accumulates across runs until Reset.
type Executor struct {
	svc        *llm.Service
	clock      *simclock.Sim
	client     llm.Completer
	cache      *llm.Cache
	cfg        Config
	progressMu sync.Mutex
}

// NewExecutor builds an executor.
func NewExecutor(cfg Config) (*Executor, error) {
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("exec: parallelism %d", cfg.Parallelism)
	}
	if cfg.StreamBatchSize < 0 {
		return nil, fmt.Errorf("exec: stream batch size %d", cfg.StreamBatchSize)
	}
	if cfg.Partitions < 0 {
		return nil, fmt.Errorf("exec: partitions %d", cfg.Partitions)
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	svc := llm.NewService()
	if cfg.FailureRate > 0 {
		svc.WithFailureRate(cfg.FailureRate)
	}
	clock := simclock.NewSim()
	retry, err := llm.NewRetryClient(svc, clock, cfg.MaxAttempts, cfg.Backoff)
	if err != nil {
		return nil, err
	}
	e := &Executor{svc: svc, clock: clock, client: retry, cfg: cfg}
	if cfg.CacheCapacity < 0 {
		return nil, fmt.Errorf("exec: cache capacity %d", cfg.CacheCapacity)
	}
	if cfg.EnableCache {
		e.cache = llm.NewCacheLRU(cfg.CacheCapacity)
		cached, err := llm.NewCachedClient(retry, e.cache)
		if err != nil {
			return nil, err
		}
		e.client = cached
	}
	return e, nil
}

// Cache returns the response cache (nil unless EnableCache).
func (e *Executor) Cache() *llm.Cache { return e.cache }

// Service exposes the underlying LLM service (usage reports).
func (e *Executor) Service() *llm.Service { return e.svc }

// Clock exposes the virtual clock.
func (e *Executor) Clock() *simclock.Sim { return e.clock }

// NewCtx creates a fresh operator execution context with its own stats.
func (e *Executor) NewCtx() *ops.Ctx {
	return &ops.Ctx{
		Client:      e.client,
		Svc:         e.svc,
		Clock:       e.clock,
		Parallelism: e.cfg.Parallelism,
		Stats:       ops.NewRunStats(),
	}
}

// Result is a completed pipeline run.
type Result struct {
	// Records are the pipeline outputs.
	Records []*record.Record
	// Stats hold per-operator execution statistics.
	Stats *ops.RunStats
	// Plan is the optimizer's chosen plan (nil for direct physical runs).
	Plan *optimizer.Plan
	// Candidates is how many physical plans the optimizer considered.
	Candidates int
	// Policy describes the selection policy used.
	Policy string
	// Elapsed is the simulated wall-clock time of the run.
	Elapsed time.Duration
	// CostUSD is the total LLM cost of the run (including sentinel
	// sampling when enabled).
	CostUSD float64
	// Trace is the run's span tree: per-stage (and, when partitioned,
	// per-partition) record counts, observed selectivity, simulated
	// time, cost, and LLM-call accounting. See internal/trace.
	Trace *trace.Span
	// Reopt summarizes the run's re-optimization check — nil unless the
	// plan was optimized with ReoptAfterBatches > 0. See reopt.go.
	Reopt *ReoptInfo
}

// RunPhysical executes an explicit physical operator sequence, selecting
// the engine from the configuration: strictly sequential at
// Parallelism <= 1 (full materialization between stages, elapsed time is
// the sum of operator times), pipelined streaming otherwise (see
// pipeline.go). Both engines produce identical records and per-operator
// call/token/cost statistics.
func (e *Executor) RunPhysical(phys []ops.Physical) (*Result, error) {
	return e.RunPhysicalContext(context.Background(), phys)
}

// RunPhysicalContext is RunPhysical with cancellation: canceling ctx
// aborts the run between records/batches and returns the context error.
func (e *Executor) RunPhysicalContext(ctx context.Context, phys []ops.Physical) (*Result, error) {
	if e.usePipelined(phys) {
		return e.RunPipelinedContext(ctx, phys)
	}
	return e.RunSequentialContext(ctx, phys)
}

// usePipelined selects the streaming engine: configured parallelism or
// partition fan-out beyond 1, or a plan whose scan carries its own
// partition hint (a cached plan optimized for fan-out must not silently
// run sequentially).
func (e *Executor) usePipelined(phys []ops.Physical) bool {
	if e.cfg.Parallelism > 1 || e.cfg.Partitions > 1 {
		return true
	}
	if len(phys) > 0 {
		if h, ok := phys[0].(ops.PartitionHinter); ok && h.PartitionHint() > 1 {
			return true
		}
	}
	return false
}

// RunSequential executes the plan one operator at a time with full
// materialization between stages — the engine RunPhysical uses at
// Parallelism <= 1, exported so benchmarks and tests can compare engines
// at equal parallelism.
func (e *Executor) RunSequential(phys []ops.Physical) (*Result, error) {
	return e.RunSequentialContext(context.Background(), phys)
}

// RunSequentialContext is RunSequential with cancellation.
//
// Accounting is run-local so that concurrent runs over one Executor (the
// serving layer) never bleed into each other: simulated time accrues on a
// per-run Tally (folded into the shared clock once at the end) and cost
// comes from the run's own per-operator statistics rather than a diff of
// the shared service totals.
func (e *Executor) RunSequentialContext(ctx context.Context, phys []ops.Physical) (*Result, error) {
	if len(phys) == 0 {
		return nil, fmt.Errorf("exec: empty physical plan")
	}
	tally := simclock.NewTally(e.clock.Now())
	rctx := e.NewCtx()
	rctx.Clock = tally
	rctx.Context = ctx
	var recs []*record.Record
	var err error
	for i, op := range phys {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("exec: operator %d (%s): %w", i, op.ID(), cerr)
		}
		rctx.SetCurrentOp(i)
		recs, err = op.Execute(rctx, recs)
		if err != nil {
			return nil, fmt.Errorf("exec: operator %d (%s): %w", i, op.ID(), err)
		}
		e.progress(i, op, 1, len(recs))
	}
	elapsed := tally.Total()
	e.clock.Sleep(elapsed)
	cost := rctx.Stats.TotalCost()
	return &Result{
		Records: recs,
		Stats:   rctx.Stats,
		Elapsed: elapsed,
		CostUSD: cost,
		Trace:   buildRunTrace("sequential", rctx.Stats, elapsed, cost, nil),
	}, nil
}

// Execute optimizes the logical chain under policy and runs the chosen
// plan: the engine behind pz.Execute (paper Figure 6: records,
// execution_stats = Execute(output, policy)).
func (e *Executor) Execute(chain []ops.Logical, policy optimizer.Policy, opts optimizer.Options) (*Result, error) {
	return e.ExecuteContext(context.Background(), chain, policy, opts)
}

// ExecuteContext is Execute with cancellation: ctx aborts sentinel
// calibration, plan execution, and in-flight operator batches.
func (e *Executor) ExecuteContext(ctx context.Context, chain []ops.Logical, policy optimizer.Policy, opts optimizer.Options) (*Result, error) {
	// Calibration (sentinel sampling) runs on a run-local tally so that
	// concurrent Execute calls cannot pollute each other's optimization
	// elapsed time; its LLM cost lands in optCtx's stats.
	optTally := simclock.NewTally(e.clock.Now())
	optCtx := e.NewCtx()
	optCtx.Clock = optTally
	optCtx.Context = ctx
	// Time-sensitive policies should judge plans by the engine that will
	// actually run them; an explicit caller request for the streaming
	// model is honored either way. The partition fan-out defaults to the
	// engine's configured value so the optimizer stamps the same count
	// onto the plan's scan that the engine would fan out to.
	if opts.Partitions == 0 {
		opts.Partitions = e.cfg.Partitions
	}
	opts.Pipelined = opts.Pipelined || e.cfg.Parallelism > 1 || e.cfg.Partitions > 1 || opts.Partitions > 1
	opt := optimizer.New(opts)
	plan, candidates, err := opt.Optimize(chain, policy, optCtx)
	if err != nil {
		return nil, err
	}
	optElapsed := optTally.Total()
	e.clock.Sleep(optElapsed)
	res, err := e.runPlanContext(ctx, plan)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	res.Candidates = len(candidates)
	res.Policy = policy.Describe()
	// Fold optimization-time (sentinel) cost and time into the run totals.
	// Both sides are run-local (tally fold + per-run stats), so the sum is
	// immune to concurrent runs and keeps the pipelined engine's
	// single-count backoff accounting intact (see RunPipelined).
	res.Elapsed = optElapsed + res.Elapsed
	res.CostUSD = optCtx.Stats.TotalCost() + res.CostUSD
	if res.Trace != nil {
		opt := &trace.Span{
			Kind:     trace.KindOptimize,
			Name:     "optimize",
			SimMS:    optElapsed.Milliseconds(),
			CostUSD:  optCtx.Stats.TotalCost(),
			LLMCalls: optCtx.Stats.TotalLLMCalls(),
		}
		res.Trace.Children = append([]*trace.Span{opt}, res.Trace.Children...)
		res.Trace.SimMS = res.Elapsed.Milliseconds()
		res.Trace.CostUSD = res.CostUSD
		res.Trace.SetAttr("policy", res.Policy)
		res.Trace.SetAttr("plan", plan.String())
		res.Trace.SetAttr("candidates", fmt.Sprint(res.Candidates))
		appendReoptSpan(res.Trace, res.Reopt)
		e.emitTrace(res.Trace)
	}
	return res, nil
}

// ExecutePlanContext runs an already-optimized plan, skipping enumeration
// and selection entirely — the serving layer's plan-cache hit path.
// policyDesc labels the run's Policy field in reports.
func (e *Executor) ExecutePlanContext(ctx context.Context, plan *optimizer.Plan, policyDesc string) (*Result, error) {
	if plan == nil || len(plan.Ops) == 0 {
		return nil, fmt.Errorf("exec: nil or empty plan")
	}
	res, err := e.runPlanContext(ctx, plan)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	res.Policy = policyDesc
	if res.Trace != nil {
		res.Trace.SetAttr("policy", policyDesc)
		res.Trace.SetAttr("plan", plan.String())
		res.Trace.SetAttr("plan_cached", "true")
		appendReoptSpan(res.Trace, res.Reopt)
		e.emitTrace(res.Trace)
	}
	return res, nil
}

// Report renders a Figure 5-style execution summary: output records,
// per-operator table, chosen plan, total runtime and cost.
func Report(res *Result, maxRecords int) string {
	var b strings.Builder
	b.WriteString("=== Execution Report ===\n")
	if res.Plan != nil {
		fmt.Fprintf(&b, "policy:  %s\n", res.Policy)
		fmt.Fprintf(&b, "plan:    %s\n", res.Plan)
		fmt.Fprintf(&b, "plans considered: %d\n", res.Candidates)
		fmt.Fprintf(&b, "estimates: cost=$%.4f time=%.1fs quality=%.3f\n",
			res.Plan.Cost(), res.Plan.Time(), res.Plan.Quality())
	}
	fmt.Fprintf(&b, "output records: %d\n", len(res.Records))
	if maxRecords > 0 {
		n := len(res.Records)
		if n > maxRecords {
			n = maxRecords
		}
		for _, r := range res.Records[:n] {
			fmt.Fprintf(&b, "  %s\n", r)
		}
		if len(res.Records) > n {
			fmt.Fprintf(&b, "  … and %d more\n", len(res.Records)-n)
		}
	}
	b.WriteString("\nper-operator statistics:\n")
	fmt.Fprintf(&b, "  %-38s %6s %6s %7s %10s %10s %12s\n",
		"operator", "in", "out", "calls", "tokens", "cost_usd", "time")
	for _, op := range res.Stats.Ops() {
		fmt.Fprintf(&b, "  %-38s %6d %6d %7d %10d %10.4f %12s\n",
			op.OpID, op.InRecords, op.OutRecords, op.LLMCalls,
			op.InputTokens+op.OutputTokens, op.CostUSD, op.Time.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "\ntotal runtime: %s (simulated)\n", res.Elapsed.Round(time.Second))
	fmt.Fprintf(&b, "total cost:    $%.4f\n", res.CostUSD)
	return b.String()
}
