package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/workloads"
)

// streamSource builds the shared streaming workload's source.
func streamSource(t testing.TB, n int) dataset.Source {
	t.Helper()
	src, err := workloads.StreamSource(n)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// renderAll serializes records field-by-field (record IDs are excluded:
// they reflect process-global allocation order, not content).
func renderAll(recs []*record.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		var b strings.Builder
		for _, f := range r.Schema().FieldNames() {
			fmt.Fprintf(&b, "%s=%q;", f, r.GetString(f))
		}
		out[i] = b.String()
	}
	return out
}

// assertSameStats compares the engine-invariant per-operator totals (batch
// sizes and LLM accounting; modeled time legitimately differs).
func assertSameStats(t *testing.T, seq, pipe *ops.RunStats) {
	t.Helper()
	a, b := seq.Ops(), pipe.Ops()
	if len(a) != len(b) {
		t.Fatalf("operator count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].OpID != b[i].OpID || a[i].InRecords != b[i].InRecords ||
			a[i].OutRecords != b[i].OutRecords || a[i].LLMCalls != b[i].LLMCalls ||
			a[i].InputTokens != b[i].InputTokens || a[i].OutputTokens != b[i].OutputTokens {
			t.Errorf("op %d stats differ:\nsequential: %+v\npipelined:  %+v", i, a[i], b[i])
		}
		// Per-call dollar amounts sum in worker-completion order and float
		// addition is not associative, so cost gets an epsilon.
		if d := a[i].CostUSD - b[i].CostUSD; d > 1e-9 || d < -1e-9 {
			t.Errorf("op %d cost differs: %v vs %v", i, a[i].CostUSD, b[i].CostUSD)
		}
	}
}

// TestPipelinedSpeedupAndIdenticalOutputs is the PR's acceptance check: on
// a 3-LLM-operator, 100-record workload at Parallelism=8 the pipelined
// engine is at least 2x faster on the simulated clock than the sequential
// engine, with byte-identical output records and matching per-operator
// stats totals.
func TestPipelinedSpeedupAndIdenticalOutputs(t *testing.T) {
	phys, err := workloads.StreamPlan(100)
	if err != nil {
		t.Fatal(err)
	}

	seqExec, _ := NewExecutor(Config{Parallelism: 8})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	pipeExec, _ := NewExecutor(Config{Parallelism: 8})
	pipe, err := pipeExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq.Records) == 0 {
		t.Fatal("workload filtered out every record")
	}
	a, b := renderAll(seq.Records), renderAll(pipe.Records)
	if len(a) != len(b) {
		t.Fatalf("output counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\nsequential: %s\npipelined:  %s", i, a[i], b[i])
		}
	}
	assertSameStats(t, seq.Stats, pipe.Stats)
	if speedup := float64(seq.Elapsed) / float64(pipe.Elapsed); speedup < 2 {
		t.Errorf("pipelined speedup %.2fx < 2x (sequential %v, pipelined %v)",
			speedup, seq.Elapsed, pipe.Elapsed)
	}
}

// TestPipelinedOrderingDeterministic: with Parallelism > 1 and a small
// batch size, repeated pipelined runs of the demo chain (filter + OneToMany
// convert) produce the same records in the same order as the sequential
// engine.
func TestPipelinedOrderingDeterministic(t *testing.T) {
	chain := demoChain(t)
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(seq.Records)
	// Parallelism 2 keeps the explicit batch size of 3 effective (batch
	// sizes are floored at Parallelism), so the 11-record corpus spreads
	// over several batches and cross-batch reassembly is exercised.
	for trial := 0; trial < 3; trial++ {
		e, _ := NewExecutor(Config{Parallelism: 2, StreamBatchSize: 3})
		res, err := e.RunPipelined(phys)
		if err != nil {
			t.Fatal(err)
		}
		got := renderAll(res.Records)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d differs:\n%s\nvs\n%s", trial, i, got[i], want[i])
			}
		}
		assertSameStats(t, seq.Stats, res.Stats)
	}
}

// TestPipelinedBlockingOperators: a plan mixing streamable and blocking
// stages (sort, limit are barriers) still matches the sequential engine.
func TestPipelinedBlockingOperators(t *testing.T) {
	chain := append(demoChain(t),
		&ops.Sort{Field: "name", Descending: false},
		&ops.Limit{N: 4},
	)
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	pipeExec, _ := NewExecutor(Config{Parallelism: 4, StreamBatchSize: 2})
	pipe, err := pipeExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(seq.Records), renderAll(pipe.Records)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("outputs differ:\nsequential:\n%s\npipelined:\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	assertSameStats(t, seq.Stats, pipe.Stats)
}

// TestPipelineErrorCancelsInFlightWork: an error in a downstream stage
// cancels the pipeline; with bounded channels (backpressure) the upstream
// stage has processed only a handful of records when the run aborts.
func TestPipelineErrorCancelsInFlightWork(t *testing.T) {
	var counted atomic.Int64
	chain := []ops.Logical{
		&ops.Scan{Source: streamSource(t, 100)},
		&ops.Filter{UDFName: "count", UDF: func(r *record.Record) (bool, error) {
			counted.Add(1)
			return true, nil
		}},
		&ops.Filter{UDFName: "explode", UDF: func(r *record.Record) (bool, error) {
			return false, fmt.Errorf("boom")
		}},
	}
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewExecutor(Config{Parallelism: 2, StreamBatchSize: 1})
	_, err = e.RunPipelined(phys)
	if err == nil {
		t.Fatal("pipeline succeeded despite erroring operator")
	}
	if !strings.Contains(err.Error(), "operator 2") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should name the failing operator: %v", err)
	}
	if n := counted.Load(); n >= 100 {
		t.Errorf("upstream stage processed all %d records; cancellation did not stop in-flight work", n)
	} else if n > 12 {
		t.Errorf("upstream stage processed %d records; backpressure should bound the overrun to a few batches", n)
	}
}

// TestProgressCallback: both engines report progress, and the final stage's
// cumulative record count equals the run's output size.
func TestProgressCallback(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Parallelism: 1}},
		{"pipelined", Config{Parallelism: 8, StreamBatchSize: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			maxRecords := map[int]int{}
			events := 0
			cfg := tc.cfg
			cfg.OnProgress = func(p Progress) {
				events++
				if p.Records > maxRecords[p.OpIndex] {
					maxRecords[p.OpIndex] = p.Records
				}
			}
			e, err := NewExecutor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if events == 0 {
				t.Fatal("no progress events")
			}
			if got := maxRecords[2]; got != len(res.Records) {
				t.Errorf("final stage progress reported %d records, run produced %d", got, len(res.Records))
			}
		})
	}
}

// TestPipelinedBackoffChargedOnce: under failure injection the pipelined
// run gets slower (backoff lands in call latencies and therefore in the
// stage clocks, exactly once) without changing outputs.
func TestPipelinedBackoffChargedOnce(t *testing.T) {
	phys, err := optimizer.ChampionPlan(demoChain(t))
	if err != nil {
		t.Fatal(err)
	}
	cleanExec, _ := NewExecutor(Config{Parallelism: 8})
	clean, err := cleanExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	flakyExec, err := NewExecutor(Config{Parallelism: 8, FailureRate: 0.3, MaxAttempts: 10, Backoff: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := flakyExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if flaky.Elapsed <= clean.Elapsed {
		t.Errorf("flaky pipelined run %v not slower than clean %v", flaky.Elapsed, clean.Elapsed)
	}
	if len(flaky.Records) != len(clean.Records) {
		t.Errorf("failures changed outputs: %d vs %d", len(flaky.Records), len(clean.Records))
	}
	// Elapsed is the stage-clock fold alone; the retry client's direct
	// backoff sleeps on the shared clock must not inflate it, so the
	// shared clock has advanced by at least the reported Elapsed (fold +
	// direct backoff sleeps), never less.
	if drift := flakyExec.Clock().Elapsed(); drift < flaky.Elapsed {
		t.Errorf("shared clock advanced %v, less than reported Elapsed %v", drift, flaky.Elapsed)
	}
}

// TestExecuteElapsedSingleCountsBackoff: the optimize-and-run path
// composes optimization time with the run's own elapsed instead of
// re-diffing the shared clock, so the retry client's direct backoff
// sleeps are not counted a second time.
func TestExecuteElapsedSingleCountsBackoff(t *testing.T) {
	e, err := NewExecutor(Config{Parallelism: 8, FailureRate: 0.3, MaxAttempts: 10, Backoff: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(demoChain(t), optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, u := range e.Service().Usage() {
		failures += u.Failures
	}
	if failures == 0 {
		t.Skip("no injected failures this run; nothing to assert")
	}
	if drift := e.Clock().Elapsed(); res.Elapsed >= drift {
		t.Errorf("Execute Elapsed %v should exclude the %v of direct backoff drift on the shared clock",
			res.Elapsed, drift)
	}
}

// TestPipelinedStatsRowsSurviveEmptyStages: when a stage drops every
// record, all downstream operators still execute (on empty input) and
// record their statistics rows, matching the sequential engine.
func TestPipelinedStatsRowsSurviveEmptyStages(t *testing.T) {
	chain := []ops.Logical{
		&ops.Scan{Source: streamSource(t, 20)},
		&ops.Filter{UDFName: "drop-all", UDF: func(*record.Record) (bool, error) { return false, nil }},
		&ops.Sort{Field: "filename"},
		&ops.Filter{UDFName: "keep-all", UDF: func(*record.Record) (bool, error) { return true, nil }},
	}
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	pipeExec, _ := NewExecutor(Config{Parallelism: 4})
	pipe, err := pipeExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Records) != 0 || len(pipe.Records) != 0 {
		t.Fatalf("records = %d/%d, want 0/0", len(seq.Records), len(pipe.Records))
	}
	if rows := len(pipe.Stats.Ops()); rows != len(phys) {
		t.Errorf("pipelined stats have %d rows, want %d (one per operator)", rows, len(phys))
	}
	assertSameStats(t, seq.Stats, pipe.Stats)
}

// TestRunPhysicalDispatch: RunPhysical selects the engine by configured
// parallelism and both paths reject empty plans.
func TestRunPhysicalDispatch(t *testing.T) {
	phys, err := optimizer.ChampionPlan(demoChain(t))
	if err != nil {
		t.Fatal(err)
	}
	seqExec, _ := NewExecutor(Config{Parallelism: 1})
	pipeExec, _ := NewExecutor(Config{Parallelism: 8})
	seq, err := seqExec.RunPhysical(phys)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeExec.RunPhysical(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Records) != len(pipe.Records) {
		t.Errorf("engines disagree: %d vs %d records", len(seq.Records), len(pipe.Records))
	}
	if pipe.Elapsed >= seq.Elapsed {
		t.Errorf("pipelined run %v not faster than sequential %v", pipe.Elapsed, seq.Elapsed)
	}
	if _, err := pipeExec.RunPipelined(nil); err == nil {
		t.Error("empty plan accepted by pipelined engine")
	}
}
