package exec

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestTraceSpanParity: the partitioned engine's trace must reconcile
// with the sequential engine's — same stage spans in plan order with
// identical record counts, and each partitioned stage's per-partition
// children summing to the stage totals.
func TestTraceSpanParity(t *testing.T) {
	phys := supportPhys(t, 96)
	seqExec, _ := NewExecutor(Config{})
	seq, err := seqExec.RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	partExec, _ := NewExecutor(Config{Parallelism: 4, Partitions: 8})
	part, err := partExec.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Trace == nil || part.Trace == nil {
		t.Fatal("engines returned no trace")
	}
	if seq.Trace.Kind != trace.KindQuery || part.Trace.Kind != trace.KindQuery {
		t.Fatalf("roots = %q/%q, want query spans", seq.Trace.Kind, part.Trace.Kind)
	}
	ss, ps := seq.Trace.Stages(), part.Trace.Stages()
	if len(ss) != len(phys) || len(ps) != len(phys) {
		t.Fatalf("stage spans = %d/%d, want %d (one per operator)", len(ss), len(ps), len(phys))
	}
	var sawPartitions bool
	for i := range ss {
		s, p := ss[i], ps[i]
		if s.OpID != p.OpID || s.OpIndex != i {
			t.Fatalf("stage %d identity mismatch: %q/%q", i, s.OpID, p.OpID)
		}
		if s.RecordsIn != p.RecordsIn || s.RecordsOut != p.RecordsOut {
			t.Errorf("stage %s counts diverge: sequential %d->%d, partitioned %d->%d",
				s.OpID, s.RecordsIn, s.RecordsOut, p.RecordsIn, p.RecordsOut)
		}
		if s.Selectivity != p.Selectivity {
			t.Errorf("stage %s selectivity diverges: %v vs %v", s.OpID, s.Selectivity, p.Selectivity)
		}
		parts := p.FindAll(trace.KindPartition)
		if len(parts) == 0 {
			continue
		}
		sawPartitions = true
		if len(parts) != 8 {
			t.Errorf("stage %s has %d partition spans, want 8", p.OpID, len(parts))
		}
		var in, out int
		var maxMS int64
		for _, ps := range parts {
			in += ps.RecordsIn
			out += ps.RecordsOut
			if ps.SimMS > maxMS {
				maxMS = ps.SimMS
			}
		}
		if in != p.RecordsIn || out != p.RecordsOut {
			t.Errorf("stage %s partition sums %d->%d != stage totals %d->%d",
				p.OpID, in, out, p.RecordsIn, p.RecordsOut)
		}
		// Concurrent partitions: the stage's wall contribution is its
		// slowest partition, never less.
		if p.SimMS < maxMS {
			t.Errorf("stage %s sim %d ms below slowest partition %d ms", p.OpID, p.SimMS, maxMS)
		}
	}
	if !sawPartitions {
		t.Error("partitioned trace has no partition spans")
	}
	if part.Trace.RecordsOut != len(part.Records) {
		t.Errorf("root out = %d, run produced %d records", part.Trace.RecordsOut, len(part.Records))
	}
	if part.Trace.SimMS != part.Elapsed.Milliseconds() {
		t.Errorf("root sim = %d ms, run elapsed %d ms", part.Trace.SimMS, part.Elapsed.Milliseconds())
	}
}

// TestTraceSinkFiresOncePerQuery: the sink observes exactly one root per
// ExecuteContext call, annotated with the optimize span and plan attrs —
// never a second fire from the inner engine entry points.
func TestTraceSinkFiresOncePerQuery(t *testing.T) {
	var got []*trace.Span
	e, err := NewExecutor(Config{Parallelism: 2, TraceSink: func(s *trace.Span) { got = append(got, s) }})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := workloads.SupportTriageChain(ndjsonSource(t, 24))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(chain, optimizer.MaxQuality{}, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sink fired %d times, want exactly 1", len(got))
	}
	root := got[0]
	if root != res.Trace {
		t.Error("sink span is not the result's trace")
	}
	opts := root.FindAll(trace.KindOptimize)
	if len(opts) != 1 {
		t.Fatalf("trace has %d optimize spans, want 1", len(opts))
	}
	if root.Children[0].Kind != trace.KindOptimize {
		t.Error("optimize span is not the first child")
	}
	if root.Attrs["policy"] == "" || root.Attrs["plan"] == "" {
		t.Errorf("root attrs missing policy/plan: %v", root.Attrs)
	}
	if root.SimMS != res.Elapsed.Milliseconds() {
		t.Errorf("root sim %d ms != result elapsed %d ms", root.SimMS, res.Elapsed.Milliseconds())
	}
}
