package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/trace"
)

// Mid-flight re-optimization, exec side (ROADMAP item 3). When a plan was
// optimized with ReoptAfterBatches > 0, the pipelined engine arms a
// reoptController over the plan's re-orderable filter window (a run of
// adjacent record-wise NL filters, see optimizer.ReorderableWindow). Each
// window stage reports its observed record flow and cost after completing
// its K-th batch; the entry stage then parks until every window stage has
// reported and optimizer.Replan has decided whether the remaining batches
// should flow through a cheaper filter ordering.
//
// The swap is coordinated by an epoch tag on batches: the entry stage
// stamps epoch 1 on everything it emits after the decision, and each
// downstream window stage picks its operator by the epoch of the batch in
// hand. Because the window operators are order-commuting filters, the
// output stays byte-identical to a never-swapped run; only the cost of
// producing it changes. Partitioned prefixes run the window once per
// partition with interleaved batch order, so in-flight swapping is
// restricted to non-partitioned runs — those still get the post-run
// estimate correction below.

// ReoptInfo summarizes a run's re-optimization check on the Result.
type ReoptInfo struct {
	// Divergence is the worst observed relative estimate error;
	// Threshold is the trigger the run was configured with.
	Divergence float64
	Threshold  float64
	// AfterBatches is the observation window K (plan knob).
	AfterBatches int
	// Triggered reports Divergence >= Threshold; Swapped that a cheaper
	// filter ordering was actually adopted.
	Triggered bool
	Swapped   bool
	// Phase is "inflight" when the pipelined engine decided mid-run,
	// "postrun" when only the full-run estimate correction applied.
	Phase string
	// OldPlan and NewPlan are plan displays (equal unless Swapped).
	OldPlan string
	NewPlan string
	// CorrectedPlan carries observed selectivities/fan-outs folded into
	// the plan's estimates — the re-ordered plan when Swapped, the
	// estimate-corrected original otherwise. The serving plan cache
	// stores it so repeat queries start from observed statistics.
	CorrectedPlan *optimizer.Plan
}

// reoptController coordinates one pipelined run's mid-flight check.
type reoptController struct {
	plan   *optimizer.Plan
	k      int // batches each window stage observes before reporting
	lo, hi int // re-orderable window [lo, hi)
	stats  *ops.RunStats

	mu       sync.Mutex
	obs      []optimizer.StageObservation
	posted   map[int]bool
	decision *optimizer.ReplanDecision
	swapOps  []ops.Physical // epoch-1 operators for window slots; nil unless swapped
	decided  chan struct{}
}

// newReoptController arms a controller for a plan, or returns nil when the
// plan has no re-optimization knob or no re-orderable window. The caller
// (runPipelined) fills in stats before stages start.
func newReoptController(plan *optimizer.Plan) *reoptController {
	if plan == nil || plan.Opts.ReoptAfterBatches <= 0 {
		return nil
	}
	lo, hi, ok := optimizer.ReorderableWindow(plan)
	if !ok {
		return nil
	}
	return &reoptController{
		plan:    plan,
		k:       plan.Opts.ReoptAfterBatches,
		lo:      lo,
		hi:      hi,
		posted:  map[int]bool{},
		decided: make(chan struct{}),
	}
}

// inWindow reports whether a stage participates in the swap window.
func (rc *reoptController) inWindow(pos int) bool {
	return pos >= rc.lo && pos < rc.hi
}

// post records stage pos's first-K-batches observation. The last window
// stage to report computes the decision and releases the parked entry
// stage. The stage's accumulated cost is read from the run stats — safe
// because only the posting stage's goroutine writes that position's row
// and its K-th Execute has returned.
func (rc *reoptController) post(pos, in, out int) {
	var cost float64
	for _, row := range rc.stats.Ops() {
		if row.Position == pos {
			cost = row.CostUSD
		}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.posted[pos] {
		return
	}
	rc.posted[pos] = true
	rc.obs = append(rc.obs, optimizer.StageObservation{Pos: pos, In: in, Out: out, CostUSD: cost})
	if len(rc.posted) < rc.hi-rc.lo {
		return
	}
	rc.decision = optimizer.Replan(rc.plan, rc.obs, rc.lo, rc.hi)
	if rc.decision.Swapped {
		rc.swapOps = rc.decision.NewPlan.Ops[rc.lo:rc.hi]
	}
	close(rc.decided)
}

// waitDecided parks the entry stage until the decision lands (or the run
// is cancelled; returns false to abandon the stage).
func (rc *reoptController) waitDecided(ctx context.Context) bool {
	select {
	case <-rc.decided:
		return true
	case <-ctx.Done():
		return false
	}
}

// opFor picks the operator a window slot runs for a batch epoch. Epoch-1
// batches only exist after the decision closed rc.decided, so the swap
// table is settled by the time it is consulted.
func (rc *reoptController) opFor(pos, epoch int, cur ops.Physical) ops.Physical {
	if epoch == 0 {
		return cur
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.swapOps == nil {
		return cur
	}
	return rc.swapOps[pos-rc.lo]
}

// result returns the in-flight decision, or nil when the run ended before
// every window stage completed K batches.
func (rc *reoptController) result() *optimizer.ReplanDecision {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.decision
}

// observationsFromStats converts a completed run's per-operator statistics
// into replan observations — the post-run correction input.
func observationsFromStats(stats *ops.RunStats) []optimizer.StageObservation {
	var obs []optimizer.StageObservation
	for _, row := range stats.Ops() {
		obs = append(obs, optimizer.StageObservation{
			Pos: row.Position, In: row.InRecords, Out: row.OutRecords, CostUSD: row.CostUSD,
		})
	}
	return obs
}

// runPlanContext executes an optimized plan with re-optimization armed
// when the plan carries the knob: the pipelined engine gets the in-flight
// hot-swap controller, every other path (sequential, partitioned, or a
// run too short to decide mid-flight) falls back to a post-run estimate
// correction so the plan cache still inherits observed statistics.
func (e *Executor) runPlanContext(ctx context.Context, plan *optimizer.Plan) (*Result, error) {
	reoptOn := plan.Opts.ReoptAfterBatches > 0
	var rc *reoptController
	var res *Result
	var err error
	if e.usePipelined(plan.Ops) {
		if reoptOn {
			rc = newReoptController(plan)
		}
		res, err = e.runPipelined(ctx, plan.Ops, rc)
	} else {
		res, err = e.RunSequentialContext(ctx, plan.Ops)
	}
	if err != nil {
		return nil, err
	}
	if !reoptOn {
		return res, nil
	}

	info := &ReoptInfo{AfterBatches: plan.Opts.ReoptAfterBatches}
	dec := rc.result()
	if dec != nil {
		info.Phase = "inflight"
	} else {
		info.Phase = "postrun"
		dec = optimizer.Replan(plan, observationsFromStats(res.Stats), 0, 0)
	}
	info.Divergence = dec.Divergence
	info.Threshold = dec.Threshold
	info.Triggered = dec.Triggered
	info.Swapped = dec.Swapped
	info.OldPlan = reoptPlanDisplay(plan)
	if dec.Swapped {
		info.NewPlan = reoptPlanDisplay(dec.NewPlan)
		info.CorrectedPlan = dec.NewPlan
	} else {
		info.NewPlan = info.OldPlan
		info.CorrectedPlan = dec.Corrected
	}
	res.Reopt = info
	return res, nil
}

// reoptPlanDisplay renders a plan like Plan.String but with a predicate
// snippet on each NL filter stage: a swap permutes same-model filters, so
// the bare operator IDs would make the old and new plan displays
// indistinguishable exactly when they matter.
func reoptPlanDisplay(p *optimizer.Plan) string {
	ids := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		ids[i] = op.ID()
		if f, ok := op.(*ops.LLMFilterExec); ok && f.Filter != nil {
			ids[i] = fmt.Sprintf("llm-filter(%s, %q)", f.Model, predicateSnippet(f.Filter.Predicate))
		}
	}
	return strings.Join(ids, " -> ")
}

// predicateSnippet truncates a predicate for plan displays.
func predicateSnippet(pred string) string {
	const max = 24
	if len(pred) <= max {
		return pred
	}
	return pred[:max-1] + "…"
}

// appendReoptSpan attaches the run's re-optimization check to its trace.
func appendReoptSpan(tr *trace.Span, ri *ReoptInfo) {
	if tr == nil || ri == nil {
		return
	}
	sp := &trace.Span{Kind: trace.KindReopt, Name: "reopt"}
	sp.SetAttr("phase", ri.Phase)
	sp.SetAttr("divergence", fmt.Sprintf("%.4f", ri.Divergence))
	sp.SetAttr("threshold", fmt.Sprintf("%.4f", ri.Threshold))
	sp.SetAttr("after_batches", fmt.Sprint(ri.AfterBatches))
	sp.SetAttr("triggered", fmt.Sprint(ri.Triggered))
	sp.SetAttr("swapped", fmt.Sprint(ri.Swapped))
	sp.SetAttr("old_plan", ri.OldPlan)
	sp.SetAttr("new_plan", ri.NewPlan)
	tr.Add(sp)
}
