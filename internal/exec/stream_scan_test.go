package exec

import (
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/workloads"
)

// ndjsonSource spills a support corpus to disk and opens it file-backed.
func ndjsonSource(t testing.TB, n int) *dataset.NDJSONSource {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 17})
	if _, err := corpus.SaveNDJSON(path, g, 17, nil); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewNDJSONSource("tickets", path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestStreamingScanParity runs the support-triage workload over a
// file-backed NDJSON corpus on both engines. The pipelined engine's
// source stage streams the file incrementally (ops.BatchStreamer); its
// outputs and per-operator statistics must match the sequential engine's
// materializing scan exactly.
func TestStreamingScanParity(t *testing.T) {
	src := ndjsonSource(t, 90)
	chain, err := workloads.SupportTriageChain(src)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := phys[0].(ops.BatchStreamer); !ok {
		t.Fatal("scan over an NDJSON source must implement ops.BatchStreamer")
	}

	newExec := func() *Executor {
		e, err := NewExecutor(Config{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq, err := newExec().RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := newExec().RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Records) == 0 {
		t.Fatal("workload produced no records")
	}
	a, b := renderAll(seq.Records), renderAll(pipe.Records)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\nsequential: %s\npipelined:  %s", i, a[i], b[i])
		}
	}
	// Engine-invariant totals; CostUSD gets an epsilon because per-call
	// dollar amounts sum in worker-completion order, and float addition
	// is not associative.
	sa, sb := seq.Stats.Ops(), pipe.Stats.Ops()
	if len(sa) != len(sb) {
		t.Fatalf("operator count differs: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].OpID != sb[i].OpID || sa[i].InRecords != sb[i].InRecords ||
			sa[i].OutRecords != sb[i].OutRecords || sa[i].LLMCalls != sb[i].LLMCalls ||
			sa[i].InputTokens != sb[i].InputTokens || sa[i].OutputTokens != sb[i].OutputTokens {
			t.Errorf("op %d stats differ:\nsequential: %+v\npipelined:  %+v", i, sa[i], sb[i])
		}
		if d := sa[i].CostUSD - sb[i].CostUSD; d > 1e-9 || d < -1e-9 {
			t.Errorf("op %d cost differs: %v vs %v", i, sa[i].CostUSD, sb[i].CostUSD)
		}
	}
}

// TestStreamingScanEmitsIncrementally asserts the file-backed scan
// actually streams: with 64 records and batch size 8, the source stage
// must report several batches, not one materialized slice.
func TestStreamingScanEmitsIncrementally(t *testing.T) {
	src := ndjsonSource(t, 64)
	phys, err := optimizer.ChampionPlan([]ops.Logical{&ops.Scan{Source: src}})
	if err != nil {
		t.Fatal(err)
	}
	scanBatches := 0
	e, err := NewExecutor(Config{Parallelism: 8, StreamBatchSize: 8, OnProgress: func(p Progress) {
		if p.OpIndex == 0 {
			scanBatches = p.Batches
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 64 {
		t.Fatalf("records = %d, want 64", len(res.Records))
	}
	if scanBatches != 8 {
		t.Fatalf("scan reported %d batches, want 8 (64 records / batch size 8)", scanBatches)
	}
}

// TestStreamingScanDropAllStats checks stats parity on the streaming
// path when a downstream stage drops every record: each stage must still
// record a row matching the sequential engine's.
func TestStreamingScanDropAllStats(t *testing.T) {
	src := ndjsonSource(t, 8)
	chain := []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{UDF: func(*record.Record) (bool, error) { return false, nil }, UDFName: "none"},
		&ops.Project{Fields: []string{"filename"}},
	}
	phys, err := optimizer.ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	newExec := func() *Executor {
		e, err := NewExecutor(Config{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq, err := newExec().RunSequential(phys)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := newExec().RunPipelined(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Records) != 0 || len(pipe.Records) != 0 {
		t.Fatalf("drop-all kept %d/%d records", len(seq.Records), len(pipe.Records))
	}
	assertSameStats(t, seq.Stats, pipe.Stats)
}
