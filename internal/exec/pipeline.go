package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/simclock"
)

// The pipelined streaming executor. Operators are connected by bounded
// channels of sequence-tagged record batches; every stage runs in its own
// goroutine, processing batches with the worker-pool width resolved by
// ops.StageParallelism. Bounded channels give backpressure (a fast scan
// cannot run arbitrarily far ahead of a slow convert), a context cancels
// all stages on the first error, and the sink reassembles batches by
// sequence number so output order is identical to the sequential engine's.
//
// Simulated time: each stage accrues latency on its own simclock.Tally.
// Stages that stream overlap, so a run of consecutive streamable stages
// costs the maximum of their stage times; a blocking stage (sort,
// aggregate, retrieve, ...) is a barrier that must wait for all upstream
// work and then contributes its full time. The shared clock advances by
// that combined wall-clock once at the end of the run.

// pipelineDepth bounds each inter-stage channel: at most this many batches
// buffer between adjacent stages before the producer blocks (backpressure).
const pipelineDepth = 2

// defaultStreamBatch is the batch size used when Config.StreamBatchSize is
// zero and Parallelism does not demand a larger one.
const defaultStreamBatch = 8

// Progress is one pipeline progress event, reported per completed batch
// (pipelined engine) or per completed operator (sequential engine).
type Progress struct {
	// OpIndex is the operator's position in the physical plan.
	OpIndex int
	// OpID and Kind identify the physical operator.
	OpID string
	Kind string
	// Batches is how many batches the stage has completed so far.
	Batches int
	// Records is the cumulative record count the stage has emitted.
	Records int
}

// batch is a sequence-tagged slice of records flowing between stages.
// epoch distinguishes batches emitted before (0) and after (1) a
// mid-flight re-optimization decision: window stages pick their operator
// by the epoch of the batch in hand, so a hot swap never mixes orderings
// within one batch (see reopt.go).
type batch struct {
	seq   int
	recs  []*record.Record
	epoch int
}

// batchSize resolves the configured stream batch size. The result is never
// below Parallelism: a smaller batch would cap the per-stage worker pool at
// the batch size (runParallel clamps to the batch length), serializing LLM
// calls inside every stage and making the pipelined engine slower than the
// sequential one it replaces.
func (e *Executor) batchSize() int {
	size := e.cfg.StreamBatchSize
	if size <= 0 {
		size = defaultStreamBatch
	}
	if size < e.cfg.Parallelism {
		size = e.cfg.Parallelism
	}
	return size
}

// progress emits one progress event (serialized, so callbacks never run
// concurrently even though stages do).
func (e *Executor) progress(pos int, op ops.Physical, batches, records int) {
	if e.cfg.OnProgress == nil {
		return
	}
	e.progressMu.Lock()
	e.cfg.OnProgress(Progress{
		OpIndex: pos, OpID: op.ID(), Kind: op.Kind(),
		Batches: batches, Records: records,
	})
	e.progressMu.Unlock()
}

// RunPipelined executes a physical plan on the streaming engine regardless
// of the configured parallelism. Most callers should use RunPhysical, which
// picks the engine from Config.Parallelism.
func (e *Executor) RunPipelined(phys []ops.Physical) (*Result, error) {
	return e.RunPipelinedContext(context.Background(), phys)
}

// RunPipelinedContext is RunPipelined with cancellation: the engine's
// internal first-error cancellation context derives from parent, so a
// canceled caller tears down every stage the same way an operator error
// does, and the run reports the parent's context error.
func (e *Executor) RunPipelinedContext(parent context.Context, phys []ops.Physical) (*Result, error) {
	return e.runPipelined(parent, phys, nil)
}

// runPipelined is the engine body. rc, when non-nil, arms mid-flight
// re-optimization over the plan's filter window (see reopt.go); it is
// disarmed below on partitioned runs, whose interleaved per-partition
// batch order has no single swap point.
func (e *Executor) runPipelined(parent context.Context, phys []ops.Physical, rc *reoptController) (*Result, error) {
	if len(phys) == 0 {
		return nil, fmt.Errorf("exec: empty physical plan")
	}
	root := e.NewCtx()
	if rc != nil {
		rc.stats = root.Stats
	}
	start := e.clock.Now()

	cctx, cancel := context.WithCancel(parent)
	defer cancel()
	root.Context = cctx
	var failOnce sync.Once
	var failErr error
	fail := func(pos int, op ops.Physical, err error) {
		failOnce.Do(func() {
			failErr = fmt.Errorf("exec: operator %d (%s): %w", pos, op.ID(), err)
			cancel()
		})
	}

	// One stage context per operator: pinned plan position, stage-local
	// clock, and the stage's resolved worker-pool width.
	tallies := make([]*simclock.Tally, len(phys))
	stageCtxs := make([]*ops.Ctx, len(phys))
	for i, op := range phys {
		tallies[i] = simclock.NewTally(start)
		stageCtxs[i] = root.ForOp(i, tallies[i], ops.StageParallelism(op, e.cfg.Parallelism))
	}

	// Partition fan-out: a plan-carried hint (the optimizer stamps the
	// scan) wins over the engine default; the source then decides how many
	// partitions it can actually provide. pplans non-nil selects the
	// partition-parallel source path below.
	parts := e.cfg.Partitions
	if h, ok := phys[0].(ops.PartitionHinter); ok && h.PartitionHint() > 0 {
		parts = h.PartitionHint()
	}
	var pstream ops.PartitionStreamer
	var pplans []ops.PartitionPlan
	if parts > 1 {
		if ps, ok := phys[0].(ops.PartitionStreamer); ok {
			if plans := ps.PartitionPlans(parts); len(plans) > 1 {
				pstream, pplans = ps, plans
			}
		}
	}
	if pstream != nil {
		// Partitioned prefixes run the window once per partition with
		// interleaved batch order — no coherent swap point. The caller
		// falls back to the post-run estimate correction.
		rc = nil
	}
	// The partitioned prefix is the scan plus every consecutive streamable
	// stage: those run once per partition; the first blocking stage (or
	// the sink) is where the partitions merge. Without fan-out the prefix
	// is just the source stage.
	prefixEnd := 1
	if pstream != nil {
		for prefixEnd < len(phys) && ops.IsStreamable(phys[prefixEnd]) {
			prefixEnd++
		}
	}

	// chans[i] carries stage i's output batches.
	chans := make([]chan batch, len(phys))
	for i := range chans {
		chans[i] = make(chan batch, pipelineDepth)
	}
	send := func(ch chan<- batch, b batch) bool {
		select {
		case ch <- b:
			return true
		case <-cctx.Done():
			return false
		}
	}
	size := e.batchSize()
	// emitBatches chunks recs into size-record, sequence-tagged batches,
	// sending each downstream (abandoning on cancellation) and reporting
	// progress — the shared protocol of the source and barrier stages.
	emitBatches := func(pos int, op ops.Physical, out chan<- batch, recs []*record.Record) {
		if len(recs) == 0 {
			// Propagate one empty batch so every downstream stage still
			// executes (on empty input) and records its stats row — the
			// sequential engine always calls each operator, and the
			// per-operator statistics must match across engines.
			if send(out, batch{}) {
				e.progress(pos, op, 1, 0)
			}
			return
		}
		seq := 0
		for off := 0; off < len(recs); off += size {
			end := off + size
			if end > len(recs) {
				end = len(recs)
			}
			if !send(out, batch{seq: seq, recs: recs[off:end]}) {
				return
			}
			seq++
			e.progress(pos, op, seq, end)
		}
	}
	var wg sync.WaitGroup

	// partTallies[p][i] is partition p's stage-i clock in the partitioned
	// prefix; the run's wall-clock takes the maximum across partitions,
	// because partitions execute concurrently. partIn/partOut mirror the
	// layout with per-cell record counts for the trace's partition spans:
	// exactly one goroutine writes each (p, i) cell, and they are read
	// only after wg.Wait, so no locking is needed.
	var partTallies [][]*simclock.Tally
	var partIn, partOut [][]int

	switch {
	case pstream != nil:
		// Partition-parallel source path: one source+map sub-pipeline per
		// partition over stages [0, prefixEnd), all feeding the shared
		// merge channel chans[prefixEnd-1]. Batches carry globally unique
		// sequence tags precomputed from the partition layout — partition
		// p's batches start at seqBase[p] — so the seq-tag merge (the
		// barrier's sort, or the sink's) reassembles exact dataset order
		// no matter how partition outputs interleave.
		seqBase := make([]int, len(pplans))
		next := 0
		for p, plan := range pplans {
			seqBase[p] = next
			next += (plan.Docs + size - 1) / size
		}
		// Cumulative per-stage progress across partitions, emitted under
		// one lock so counts never appear to regress.
		var progMu sync.Mutex
		progBatches := make([]int, prefixEnd)
		progRecords := make([]int, prefixEnd)
		note := func(stage, recs int) {
			progMu.Lock()
			defer progMu.Unlock()
			progBatches[stage]++
			progRecords[stage] += recs
			e.progress(stage, phys[stage], progBatches[stage], progRecords[stage])
		}
		// mergeWG counts the goroutines feeding the merge channel; the
		// closer goroutine shuts it once every partition has drained.
		var mergeWG sync.WaitGroup
		partTallies = make([][]*simclock.Tally, len(pplans))
		partIn = make([][]int, len(pplans))
		partOut = make([][]int, len(pplans))
		for p := range pplans {
			partIn[p] = make([]int, prefixEnd)
			partOut[p] = make([]int, prefixEnd)
			// Exactly one goroutine per partition feeds the merge channel:
			// the source itself when the prefix is just the scan, the last
			// map stage otherwise.
			mergeWG.Add(1)
			partTallies[p] = make([]*simclock.Tally, prefixEnd)
			pctxs := make([]*ops.Ctx, prefixEnd)
			for i := 0; i < prefixEnd; i++ {
				partTallies[p][i] = simclock.NewTally(start)
				pctxs[i] = root.ForOp(i, partTallies[p][i], ops.StageParallelism(phys[i], e.cfg.Parallelism))
			}
			// local[i] carries stage i's output within this partition; the
			// last prefix stage writes the shared merge channel, which
			// only the closer below may close.
			local := make([]chan batch, prefixEnd)
			for i := 0; i < prefixEnd-1; i++ {
				local[i] = make(chan batch, pipelineDepth)
			}
			local[prefixEnd-1] = chans[prefixEnd-1]

			// Partition source: an independent range reader.
			wg.Add(1)
			go func(p int, out chan<- batch, sctx *ops.Ctx) {
				defer wg.Done()
				if prefixEnd == 1 {
					defer mergeWG.Done()
				} else {
					defer close(out)
				}
				op := phys[0]
				seq := seqBase[p]
				err := pstream.StreamPartition(sctx, len(pplans), p, size, func(recs []*record.Record) error {
					if !send(out, batch{seq: seq, recs: recs}) {
						return cctx.Err() // sends only fail on cancellation
					}
					seq++
					partOut[p][0] += len(recs)
					note(0, len(recs))
					return nil
				})
				if err != nil && cctx.Err() == nil {
					fail(0, op, err)
				}
			}(p, local[0], pctxs[0])

			// Per-partition map stages: streamable operators applied batch
			// by batch, preserving the global sequence tags.
			for i := 1; i < prefixEnd; i++ {
				wg.Add(1)
				go func(pos int, in <-chan batch, out chan<- batch, sctx *ops.Ctx) {
					defer wg.Done()
					if pos == prefixEnd-1 {
						defer mergeWG.Done()
					} else {
						defer close(out)
					}
					op := phys[pos]
					for b := range in {
						outRecs, err := op.Execute(sctx, b.recs)
						if err != nil {
							fail(pos, op, err)
							return
						}
						if !send(out, batch{seq: b.seq, recs: outRecs}) {
							return
						}
						partIn[p][pos] += len(b.recs)
						partOut[p][pos] += len(outRecs)
						note(pos, len(outRecs))
					}
				}(i, local[i-1], local[i], pctxs[i])
			}
		}
		go func() {
			mergeWG.Wait()
			close(chans[prefixEnd-1])
		}()

	default:
		// Source stage: prefer incremental emission (ops.BatchStreamer — a
		// scan over a file-backed corpus reads and sends one batch at a time,
		// bounding memory by batch size); otherwise run the scan once and
		// chunk its materialized output into tagged batches.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(chans[0])
			op := phys[0]
			if bs, ok := op.(ops.BatchStreamer); ok {
				seq, emitted := 0, 0
				streamed, err := bs.StreamExecute(stageCtxs[0], size, func(recs []*record.Record) error {
					if !send(chans[0], batch{seq: seq, recs: recs}) {
						return cctx.Err() // sends only fail on cancellation
					}
					seq++
					emitted += len(recs)
					e.progress(0, op, seq, emitted)
					return nil
				})
				if streamed {
					if err != nil && cctx.Err() == nil {
						fail(0, op, err)
						return
					}
					if err == nil && seq == 0 {
						// Empty dataset: emitBatches' len==0 branch propagates
						// one empty batch so every downstream stage still
						// executes and records stats.
						emitBatches(0, op, chans[0], nil)
					}
					return
				}
			}
			recs, err := op.Execute(stageCtxs[0], nil)
			if err != nil {
				fail(0, op, err)
				return
			}
			emitBatches(0, op, chans[0], recs)
		}()
	}

	// Interior stages downstream of the (possibly partitioned) prefix.
	for i := prefixEnd; i < len(phys); i++ {
		wg.Add(1)
		go func(pos int) {
			defer wg.Done()
			defer close(chans[pos])
			op := phys[pos]
			sctx := stageCtxs[pos]
			in := chans[pos-1]

			if ops.IsStreamable(op) {
				batches, emitted := 0, 0
				// Re-optimization window bookkeeping: record flow over the
				// first K batches, reported once via rc.post.
				inWindow := rc != nil && rc.inWindow(pos)
				winIn, winOut := 0, 0
				for b := range in {
					// The window's entry stage stamps the swap epoch: its
					// first K outputs are epoch 0, everything after the
					// decision is epoch 1. Interior window stages propagate
					// the incoming epoch and pick their operator by it.
					epoch := b.epoch
					if inWindow && pos == rc.lo && batches >= rc.k {
						epoch = 1
					}
					runOp := op
					if inWindow {
						runOp = rc.opFor(pos, epoch, op)
					}
					out, err := runOp.Execute(sctx, b.recs)
					if err != nil {
						fail(pos, runOp, err)
						return
					}
					if !send(chans[pos], batch{seq: b.seq, recs: out, epoch: epoch}) {
						return
					}
					batches++
					emitted += len(out)
					e.progress(pos, runOp, batches, emitted)
					if inWindow && batches <= rc.k {
						winIn += len(b.recs)
						winOut += len(out)
						if batches == rc.k {
							rc.post(pos, winIn, winOut)
							// Only the entry stage parks for the decision;
							// downstream window stages keep draining so every
							// stage can reach its K-th batch (deadlock-free).
							if pos == rc.lo && !rc.waitDecided(cctx) {
								return
							}
						}
					}
				}
				return
			}

			// Blocking operator: a barrier. Materialize the full input in
			// sequence order, execute once, re-chunk with fresh tags.
			var gathered []batch
			for b := range in {
				gathered = append(gathered, b)
			}
			if cctx.Err() != nil {
				return
			}
			// The seq-tag protocol (not arrival order) is the ordering
			// contract. With a single upstream producer this sort is a
			// no-op; when the partitioned prefix merges here, partition
			// outputs interleave freely and the sort restores exact
			// dataset order via the precomputed global tags.
			sort.Slice(gathered, func(a, b int) bool { return gathered[a].seq < gathered[b].seq })
			var all []*record.Record
			for _, b := range gathered {
				all = append(all, b.recs...)
			}
			out, err := op.Execute(sctx, all)
			if err != nil {
				fail(pos, op, err)
				return
			}
			emitBatches(pos, op, chans[pos], out)
		}(i)
	}

	// Sink: reassemble the last stage's batches in sequence order.
	var outBatches []batch
	for b := range chans[len(phys)-1] {
		outBatches = append(outBatches, b)
	}
	wg.Wait()
	// Caller cancellation wins over any secondary stage error it induced:
	// stages observing the canceled context may surface it as an operator
	// failure, but the run's story is "canceled", not "failed".
	if err := parent.Err(); err != nil {
		return nil, fmt.Errorf("exec: run canceled: %w", err)
	}
	if failErr != nil {
		return nil, failErr
	}
	// As above: with one producer FIFO delivery already orders the
	// batches; when the partitioned prefix reaches the sink directly the
	// sort is what merges interleaved partition outputs back into exact
	// dataset order.
	sort.Slice(outBatches, func(a, b int) bool { return outBatches[a].seq < outBatches[b].seq })
	var recs []*record.Record
	for _, b := range outBatches {
		recs = append(recs, b.recs...)
	}

	// Fold the stage clocks into the run's wall-clock (overlapping
	// streamable segments cost their maximum; barriers add in full) and
	// advance the shared clock once. Elapsed is the fold itself, not a
	// shared-clock diff: retry backoff is already inside each response's
	// Latency (and therefore inside the tallies), while the retry client
	// additionally sleeps backoff on the shared clock — a diff would
	// count it twice whenever FailureRate > 0.
	// Stages of a partitioned prefix ran once per partition, concurrently:
	// the stage's contribution to the fold is the slowest partition's
	// clock, which is how fan-out shortens the modeled wall-clock.
	stageTimes := make([]time.Duration, len(tallies))
	for i, tl := range tallies {
		if partTallies != nil && i < prefixEnd {
			var slowest time.Duration
			for p := range partTallies {
				if t := partTallies[p][i].Total(); t > slowest {
					slowest = t
				}
			}
			stageTimes[i] = slowest
			continue
		}
		stageTimes[i] = tl.Total()
	}
	wall := ops.PipelinedWallTime(phys, stageTimes)
	e.clock.Sleep(wall)
	cost := root.Stats.TotalCost()
	tr := buildRunTrace("pipelined", root.Stats, wall, cost, stageTimes)
	if partTallies != nil {
		attachPartitionSpans(tr, prefixEnd, partIn, partOut, partTallies)
	}
	return &Result{
		Records: recs,
		Stats:   root.Stats,
		Elapsed: wall,
		// Cost comes from the run's own stats, not a shared-service diff,
		// so concurrent runs over one Executor account independently.
		CostUSD: cost,
		Trace:   tr,
	}, nil
}
