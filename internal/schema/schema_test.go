package schema

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func clinical(t *testing.T) *Schema {
	t.Helper()
	s, err := New("ClinicalData", "A schema for extracting clinical data datasets from papers.",
		Field{Name: "name", Type: String, Desc: "The name of the clinical data dataset"},
		Field{Name: "description", Type: String, Desc: "A short description of the content of the dataset"},
		Field{Name: "url", Type: String, Desc: "The public URL where the dataset can be accessed"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewBasic(t *testing.T) {
	s := clinical(t)
	if s.Name() != "ClinicalData" || s.Len() != 3 {
		t.Fatalf("got %s len=%d", s.Name(), s.Len())
	}
	f, ok := s.Field("url")
	if !ok || f.Type != String || !strings.Contains(f.Desc, "URL") {
		t.Fatalf("Field(url) = %+v, %v", f, ok)
	}
}

func TestNewRejectsBadNames(t *testing.T) {
	if _, err := New("", ""); err == nil {
		t.Error("empty schema name accepted")
	}
	if _, err := New("S", "", Field{Name: "has space"}); err == nil {
		t.Error("field name with space accepted")
	}
	if _, err := New("S", "", Field{Name: "a"}, Field{Name: "a"}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := New("S", "", Field{Name: "1bad"}); err == nil {
		t.Error("leading-digit field accepted")
	}
}

func TestFieldNamesOrder(t *testing.T) {
	s := clinical(t)
	want := []string{"name", "description", "url"}
	if got := s.FieldNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FieldNames = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	s := clinical(t)
	if got := s.String(); got != "ClinicalData(name:string, description:string, url:string)" {
		t.Fatalf("String = %q", got)
	}
}

func TestProject(t *testing.T) {
	s := clinical(t)
	p, err := s.Project("url", "name")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FieldNames(); !reflect.DeepEqual(got, []string{"url", "name"}) {
		t.Fatalf("projected fields = %v", got)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting missing field should error")
	}
}

func TestWithField(t *testing.T) {
	s := clinical(t)
	s2, err := s.WithField(Field{Name: "year", Type: Int, Desc: "Publication year"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 || s.Len() != 3 {
		t.Fatalf("WithField mutated original: %d/%d", s.Len(), s2.Len())
	}
	if _, err := s.WithField(Field{Name: "url"}); err == nil {
		t.Error("duplicate WithField should error")
	}
}

func TestUnion(t *testing.T) {
	a := MustNew("A", "", Field{Name: "x", Type: String}, Field{Name: "y", Type: Int})
	b := MustNew("B", "", Field{Name: "y", Type: Int}, Field{Name: "z", Type: Bool})
	u, err := a.Union(b, "AB")
	if err != nil {
		t.Fatal(err)
	}
	if got := u.FieldNames(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Fatalf("union fields = %v", got)
	}
	conflict := MustNew("C", "", Field{Name: "y", Type: String})
	if _, err := a.Union(conflict, "AC"); err == nil {
		t.Error("type-conflicting union should error")
	}
}

func TestNewFields(t *testing.T) {
	src := MustNew("PDFFile", "", Field{Name: "filename", Type: String}, Field{Name: "contents", Type: String})
	dst := clinical(t)
	nf := NewFields(src, dst)
	if len(nf) != 3 {
		t.Fatalf("NewFields = %v", nf)
	}
	same := NewFields(dst, dst)
	if len(same) != 0 {
		t.Fatalf("NewFields(self) = %v", same)
	}
}

func TestEqual(t *testing.T) {
	a, b := clinical(t), clinical(t)
	if !Equal(a, b) {
		t.Error("identical schemas not Equal")
	}
	c, _ := b.WithField(Field{Name: "extra"})
	if Equal(a, c) {
		t.Error("different schemas Equal")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
}

func TestDeriveFigure2(t *testing.T) {
	// Exactly the paper's Figure 2 example.
	s, err := Derive("Author", "Author information from a paper.",
		[]string{"name", "email", "affiliation"},
		[]string{"The author's name", "The author's email", "The author's affiliation"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Author" || s.Len() != 3 {
		t.Fatalf("derived %s len=%d", s.Name(), s.Len())
	}
	f, _ := s.Field("email")
	if f.Desc != "The author's email" {
		t.Fatalf("email desc = %q", f.Desc)
	}
}

func TestDeriveSanitizesNames(t *testing.T) {
	s, err := Derive("Clinical Data", "", []string{"Dataset Name", "public URL"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ClinicalData" {
		t.Errorf("schema name = %q", s.Name())
	}
	if got := s.FieldNames(); !reflect.DeepEqual(got, []string{"dataset_name", "public_url"}) {
		t.Errorf("fields = %v", got)
	}
}

func TestDeriveTypedFields(t *testing.T) {
	s, err := Derive("Listing", "", []string{"price:float", "bedrooms:int", "address"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Field("price")
	b, _ := s.Field("bedrooms")
	a, _ := s.Field("address")
	if p.Type != Float || b.Type != Int || a.Type != String {
		t.Fatalf("types = %v %v %v", p.Type, b.Type, a.Type)
	}
}

func TestDeriveErrors(t *testing.T) {
	if _, err := Derive("S", "", nil, nil); err == nil {
		t.Error("no fields accepted")
	}
	if _, err := Derive("S", "", []string{"a", "b"}, []string{"only one"}); err == nil {
		t.Error("mismatched descriptions accepted")
	}
	if _, err := Derive("S", "", []string{"x:notatype"}, nil); err == nil {
		t.Error("bad type annotation accepted")
	}
}

func TestSanitizeFieldName(t *testing.T) {
	cases := map[string]string{
		"Dataset Name":  "dataset_name",
		"public-URL":    "public_url",
		"  a.b  ":       "a_b",
		"x__y":          "x_y",
		"42nd_street":   "f_42nd_street",
		"CamelCaseName": "camelcasename",
	}
	for in, want := range cases {
		got, err := SanitizeFieldName(in)
		if err != nil || got != want {
			t.Errorf("SanitizeFieldName(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := SanitizeFieldName("!!!"); err == nil {
		t.Error("unusable name accepted")
	}
}

func TestSanitizedNamesAlwaysValid(t *testing.T) {
	f := func(s string) bool {
		clean, err := SanitizeFieldName(s)
		return err != nil || ValidFieldName(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFieldType(t *testing.T) {
	cases := map[string]FieldType{
		"string": String, "STR": String, "text": String, "": String,
		"int": Int, "integer": Int, "number": Int,
		"float": Float, "double": Float,
		"bool": Bool, "boolean": Bool,
		"list[string]": StringList, "list": StringList,
		"bytes": Bytes, "blob": Bytes,
	}
	for in, want := range cases {
		got, err := ParseFieldType(in)
		if err != nil || got != want {
			t.Errorf("ParseFieldType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFieldType("quux"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestFieldTypeStringAndZero(t *testing.T) {
	types := []FieldType{String, Int, Float, Bool, StringList, Bytes}
	for _, ft := range types {
		if ft.String() == "" {
			t.Errorf("empty String() for %d", ft)
		}
		if !ft.CheckValue(ft.Zero()) && ft != StringList && ft != Bytes {
			t.Errorf("Zero() of %v fails CheckValue", ft)
		}
	}
}

func TestCheckValue(t *testing.T) {
	if !String.CheckValue("x") || String.CheckValue(1) {
		t.Error("String.CheckValue wrong")
	}
	if !Int.CheckValue(int64(3)) || !Int.CheckValue(3) || Int.CheckValue("3") {
		t.Error("Int.CheckValue wrong")
	}
	if !Float.CheckValue(2.5) || Float.CheckValue(2) {
		t.Error("Float.CheckValue wrong")
	}
	if !StringList.CheckValue([]string{"a"}) || StringList.CheckValue([]int{1}) {
		t.Error("StringList.CheckValue wrong")
	}
}

func TestBuiltinsAndForExtension(t *testing.T) {
	if !PDFFile.Has("filename") || !PDFFile.Has("contents") {
		t.Error("PDFFile fields missing")
	}
	s, ok := ForExtension(".pdf")
	if !ok || s.Name() != "PDFFile" {
		t.Errorf("ForExtension(.pdf) = %v, %v", s.Name(), ok)
	}
	s, ok = ForExtension(".xyz")
	if ok || s.Name() != "TextFile" {
		t.Errorf("ForExtension(.xyz) = %v, %v", s.Name(), ok)
	}
	if s, ok := ForExtension(".csv"); !ok || s.Name() != "CSVRow" {
		t.Errorf("ForExtension(.csv) = %v", s.Name())
	}
}

func TestSortedFieldNames(t *testing.T) {
	s := clinical(t)
	got := s.SortedFieldNames()
	if !reflect.DeepEqual(got, []string{"description", "name", "url"}) {
		t.Fatalf("SortedFieldNames = %v", got)
	}
}
