// Package schema implements Palimpzest's dynamic schema system. A schema is
// a named, documented, ordered collection of typed fields with natural-
// language descriptions; the descriptions are what LLM-backed operators use
// to extract values from unstructured records (paper §2.1: "A schema
// consists of the attribute names, types, and descriptions used to process
// the dataset").
//
// Schemas are immutable after construction: derivation operations (Project,
// Union, WithField) return new schemas. This mirrors the paper's dynamic
// schema generation — `type(class_name, (pz.Schema,), fields)` in the demo's
// Figure 2 — while staying idiomatic Go.
package schema

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// FieldType enumerates the value types a schema field may hold.
type FieldType int

// Supported field types.
const (
	String FieldType = iota
	Int
	Float
	Bool
	StringList
	Bytes
)

// String implements fmt.Stringer.
func (t FieldType) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case StringList:
		return "list[string]"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
}

// ParseFieldType converts a type name (as written in pipeline specs or by
// the chat agent) into a FieldType.
func ParseFieldType(s string) (FieldType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "text", "":
		return String, nil
	case "int", "integer", "number":
		return Int, nil
	case "float", "double", "real":
		return Float, nil
	case "bool", "boolean":
		return Bool, nil
	case "list[string]", "list", "strings", "[]string":
		return StringList, nil
	case "bytes", "binary", "blob":
		return Bytes, nil
	default:
		return String, fmt.Errorf("schema: unknown field type %q", s)
	}
}

// Field describes one attribute of a schema.
type Field struct {
	// Name is the attribute name. Per the paper ("Field names cannot have
	// spaces or special characters"), names must match identRE.
	Name string
	// Type is the value type of the attribute.
	Type FieldType
	// Desc is the natural-language description used by LLM-backed
	// extraction to compute this field's value.
	Desc string
}

var identRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// ValidFieldName reports whether name is a legal field name.
func ValidFieldName(name string) bool { return identRE.MatchString(name) }

// SanitizeFieldName converts an arbitrary phrase to a legal field name
// ("dataset name" -> "dataset_name"). It returns an error when nothing
// usable remains.
func SanitizeFieldName(name string) (string, error) {
	var b strings.Builder
	for _, r := range strings.TrimSpace(strings.ToLower(name)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '.':
			b.WriteRune('_')
		}
	}
	s := strings.Trim(b.String(), "_")
	for strings.Contains(s, "__") {
		s = strings.ReplaceAll(s, "__", "_")
	}
	if s == "" {
		return "", fmt.Errorf("schema: cannot derive field name from %q", name)
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "f_" + s
	}
	return s, nil
}

// Schema is an immutable named collection of fields.
type Schema struct {
	name   string
	doc    string
	fields []Field
	index  map[string]int
}

// New constructs a schema. It returns an error for an empty name, duplicate
// field names, or illegal field names.
func New(name, doc string, fields ...Field) (*Schema, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("schema: empty schema name")
	}
	s := &Schema{name: name, doc: doc, index: make(map[string]int, len(fields))}
	for _, f := range fields {
		if !ValidFieldName(f.Name) {
			return nil, fmt.Errorf("schema %s: illegal field name %q", name, f.Name)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("schema %s: duplicate field %q", name, f.Name)
		}
		s.index[f.Name] = len(s.fields)
		s.fields = append(s.fields, f)
	}
	return s, nil
}

// MustNew is New that panics on error; for built-in schema definitions.
func MustNew(name, doc string, fields ...Field) *Schema {
	s, err := New(name, doc, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema name.
func (s *Schema) Name() string { return s.name }

// Doc returns the schema's documentation string.
func (s *Schema) Doc() string { return s.doc }

// Fields returns a copy of the schema's fields in declaration order.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// FieldNames returns the field names in declaration order.
func (s *Schema) FieldNames() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the named field.
func (s *Schema) Field(name string) (Field, bool) {
	i, ok := s.index[name]
	if !ok {
		return Field{}, false
	}
	return s.fields[i], true
}

// Has reports whether the schema declares the named field.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// String renders the schema as "Name(field:type, ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.Name + ":" + f.Type.String()
	}
	return s.name + "(" + strings.Join(parts, ", ") + ")"
}

// Project returns a new schema containing only the named fields, in the
// given order. It errors when a requested field does not exist.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		f, ok := s.Field(n)
		if !ok {
			return nil, fmt.Errorf("schema %s: project: no field %q", s.name, n)
		}
		fields = append(fields, f)
	}
	return New(s.name+"_proj", s.doc, fields...)
}

// WithField returns a new schema with an additional field appended.
func (s *Schema) WithField(f Field) (*Schema, error) {
	return New(s.name, s.doc, append(s.Fields(), f)...)
}

// Union merges two schemas: the result contains s's fields followed by
// fields of o that s does not declare. Conflicting declarations (same name,
// different type) are an error.
func (s *Schema) Union(o *Schema, name string) (*Schema, error) {
	fields := s.Fields()
	for _, f := range o.fields {
		if have, ok := s.Field(f.Name); ok {
			if have.Type != f.Type {
				return nil, fmt.Errorf("schema union: field %q declared %s and %s", f.Name, have.Type, f.Type)
			}
			continue
		}
		fields = append(fields, f)
	}
	return New(name, strings.TrimSpace(s.doc+" "+o.doc), fields...)
}

// NewFields returns the fields of target that are not declared by s. These
// are the fields a Convert operator must compute (paper §2.1: Convert
// "transforms an object of schema A into an object of schema B by computing
// the fields in B that do not explicitly exist in A").
func NewFields(s, target *Schema) []Field {
	var out []Field
	for _, f := range target.fields {
		if !s.Has(f.Name) {
			out = append(out, f)
		}
	}
	return out
}

// Equal reports whether two schemas have the same name and identical field
// declarations in the same order.
func Equal(a, b *Schema) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.name != b.name || a.doc != b.doc || len(a.fields) != len(b.fields) {
		return false
	}
	for i := range a.fields {
		if a.fields[i] != b.fields[i] {
			return false
		}
	}
	return true
}

// Derive builds a schema from parallel name/description slices, the way the
// chat agent's create_schema tool does (paper Figure 2). Field names are
// sanitized; all fields are strings unless a "name:type" annotation is used.
func Derive(schemaName, schemaDoc string, fieldNames, fieldDescs []string) (*Schema, error) {
	if len(fieldNames) == 0 {
		return nil, fmt.Errorf("schema: derive %s: no fields", schemaName)
	}
	if len(fieldDescs) != 0 && len(fieldDescs) != len(fieldNames) {
		return nil, fmt.Errorf("schema: derive %s: %d names but %d descriptions",
			schemaName, len(fieldNames), len(fieldDescs))
	}
	fields := make([]Field, 0, len(fieldNames))
	for i, raw := range fieldNames {
		name, typ := raw, String
		if j := strings.Index(raw, ":"); j >= 0 {
			t, err := ParseFieldType(raw[j+1:])
			if err != nil {
				return nil, err
			}
			name, typ = raw[:j], t
		}
		clean, err := SanitizeFieldName(name)
		if err != nil {
			return nil, err
		}
		desc := ""
		if i < len(fieldDescs) {
			desc = fieldDescs[i]
		}
		fields = append(fields, Field{Name: clean, Type: typ, Desc: desc})
	}
	cleanName := sanitizeSchemaName(schemaName)
	return New(cleanName, schemaDoc, fields...)
}

func sanitizeSchemaName(name string) string {
	var b strings.Builder
	for _, r := range strings.TrimSpace(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			// CamelCase at word boundaries is handled below; just drop.
		}
	}
	if b.Len() == 0 {
		return "Schema"
	}
	return b.String()
}

// Zero returns the zero value for a field type.
func (t FieldType) Zero() any {
	switch t {
	case String:
		return ""
	case Int:
		return int64(0)
	case Float:
		return float64(0)
	case Bool:
		return false
	case StringList:
		return []string(nil)
	case Bytes:
		return []byte(nil)
	default:
		return nil
	}
}

// CheckValue reports whether v is an acceptable Go value for field type t.
func (t FieldType) CheckValue(v any) bool {
	switch t {
	case String:
		_, ok := v.(string)
		return ok
	case Int:
		switch v.(type) {
		case int, int64:
			return true
		}
		return false
	case Float:
		switch v.(type) {
		case float64, float32:
			return true
		}
		return false
	case Bool:
		_, ok := v.(bool)
		return ok
	case StringList:
		_, ok := v.([]string)
		return ok
	case Bytes:
		_, ok := v.([]byte)
		return ok
	default:
		return false
	}
}

// SortedFieldNames returns the field names sorted lexicographically; useful
// for deterministic iteration in tests and reports.
func (s *Schema) SortedFieldNames() []string {
	out := s.FieldNames()
	sort.Strings(out)
	return out
}
