package schema

// Built-in schemas mirroring Palimpzest's native file schemas. The demo
// paper: "The core PalimpChat system includes a native PDFFile schema, which
// is automatically chosen to parse the files in this dataset given their
// extension. However, this schema only represents the filename and the raw
// textual content extracted for a given paper."
var (
	// File is the base schema for any file record.
	File = MustNew("File", "A file on disk.",
		Field{Name: "filename", Type: String, Desc: "The name of the file."},
		Field{Name: "contents", Type: Bytes, Desc: "The raw bytes of the file."},
	)

	// TextFile represents a plain-text file.
	TextFile = MustNew("TextFile", "A plain text file.",
		Field{Name: "filename", Type: String, Desc: "The name of the file."},
		Field{Name: "contents", Type: String, Desc: "The full textual contents of the file."},
	)

	// PDFFile represents a PDF document with its extracted text.
	PDFFile = MustNew("PDFFile", "A PDF file with extracted text.",
		Field{Name: "filename", Type: String, Desc: "The name of the PDF file."},
		Field{Name: "contents", Type: String, Desc: "The raw textual content extracted from the PDF."},
	)

	// CSVRow represents one row of a CSV file as raw cells.
	CSVRow = MustNew("CSVRow", "One row of a CSV file.",
		Field{Name: "filename", Type: String, Desc: "The source CSV file."},
		Field{Name: "row", Type: Int, Desc: "The 0-based row number."},
		Field{Name: "cells", Type: StringList, Desc: "The raw cell values of the row."},
	)

	// JSONObject represents one JSON object record.
	JSONObject = MustNew("JSONObject", "A JSON object record.",
		Field{Name: "filename", Type: String, Desc: "The source JSON file."},
		Field{Name: "contents", Type: String, Desc: "The JSON text of the object."},
	)

	// WebPage represents a fetched or stored web page.
	WebPage = MustNew("WebPage", "A web page with extracted text.",
		Field{Name: "url", Type: String, Desc: "The URL of the page."},
		Field{Name: "title", Type: String, Desc: "The page title."},
		Field{Name: "contents", Type: String, Desc: "The visible text of the page."},
	)
)

// ForExtension returns the built-in schema Palimpzest would auto-select for
// a file extension (with the leading dot, e.g. ".pdf"). The bool result
// reports whether a specific schema was found; callers fall back to TextFile.
func ForExtension(ext string) (*Schema, bool) {
	switch ext {
	case ".pdf":
		return PDFFile, true
	case ".txt", ".md", ".text":
		return TextFile, true
	case ".csv":
		return CSVRow, true
	case ".json":
		return JSONObject, true
	case ".html", ".htm":
		return WebPage, true
	default:
		return TextFile, false
	}
}
