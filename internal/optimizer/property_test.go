package optimizer

import (
	"testing"
)

// Frontier invariants over the real demo plan space: idempotence,
// non-emptiness, and membership.
func TestFrontierIdempotent(t *testing.T) {
	chain := demoChain(t)
	_, plans, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	once := Frontier(plans)
	twice := Frontier(once)
	if len(once) != len(twice) {
		t.Fatalf("frontier not idempotent: %d then %d", len(once), len(twice))
	}
	inPlans := map[*Plan]bool{}
	for _, p := range plans {
		inPlans[p] = true
	}
	for _, p := range once {
		if !inPlans[p] {
			t.Error("frontier invented a plan")
		}
	}
}

// dominates is irreflexive and antisymmetric on the candidate set.
func TestDominatesPartialOrder(t *testing.T) {
	chain := demoChain(t)
	_, plans, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range plans {
		if dominates(a, a) {
			t.Fatalf("plan %d dominates itself", i)
		}
		for _, b := range plans {
			if dominates(a, b) && dominates(b, a) {
				t.Fatalf("mutual domination between %s and %s", a, b)
			}
		}
	}
}

// Every policy's choice is a member of the candidate set and optimal under
// a linear scan of its objective.
func TestPolicyChoicesAreOptimal(t *testing.T) {
	chain := demoChain(t)
	_, plans, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := MaxQuality{}.Choose(plans)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := MinCost{}.Choose(plans)
	tt, _ := MinTime{}.Choose(plans)
	for _, p := range plans {
		if p.Quality() > q.Quality() {
			t.Errorf("found higher quality than MaxQuality's choice")
		}
		if p.Cost() < c.Cost() {
			t.Errorf("found cheaper than MinCost's choice")
		}
		if p.Time() < tt.Time() {
			t.Errorf("found faster than MinTime's choice")
		}
	}
	member := func(x *Plan) bool {
		for _, p := range plans {
			if p == x {
				return true
			}
		}
		return false
	}
	for _, x := range []*Plan{q, c, tt} {
		if !member(x) {
			t.Error("policy chose a non-candidate plan")
		}
	}
}

// Filters only shrink estimated cardinality; converts with OneToOne keep
// it; scan passes it through.
func TestEstimateCardinalityMonotonicity(t *testing.T) {
	chain := demoChain(t)
	initial, err := InitialEstimate(chain)
	if err != nil {
		t.Fatal(err)
	}
	_, plans, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		// Position 1 is the filter: cardinality must not grow.
		if p.PerOp[1].Cardinality > initial.Cardinality {
			t.Errorf("filter grew cardinality: %v -> %v in %s",
				initial.Cardinality, p.PerOp[1].Cardinality, p)
		}
		// Costs and times are non-decreasing along the plan.
		for i := 1; i < len(p.PerOp); i++ {
			if p.PerOp[i].CostUSD < p.PerOp[i-1].CostUSD {
				t.Errorf("cost decreased along plan %s", p)
			}
			if p.PerOp[i].TimeSec < p.PerOp[i-1].TimeSec {
				t.Errorf("time decreased along plan %s", p)
			}
			if p.PerOp[i].Quality > p.PerOp[i-1].Quality {
				t.Errorf("quality increased along plan %s", p)
			}
		}
	}
}
