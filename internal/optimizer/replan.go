package optimizer

import (
	"math"

	"repro/internal/ops"
)

// Mid-flight re-optimization (ROADMAP item 3). The optimizer commits to a
// plan from priors; the engines measure per-stage observed selectivity and
// cost while running. Replan closes the loop: it scores how far the
// observations diverge from the plan's estimates, folds the observations
// back into corrected estimates, and — past the divergence threshold —
// re-ranks the orderings of the plan's re-orderable filter window so the
// engine can hot-swap the remaining work onto the cheaper order.
//
// Only runs of adjacent record-wise natural-language filters
// (*ops.LLMFilterExec) are re-ordered: they judge each record independently
// and preserve input order, so any permutation keeps the output
// byte-identical while the total cost depends on which filter prunes
// first. Model choices are never changed mid-flight — a different model
// makes different decisions, which would break the byte-identity contract.

// DefaultReoptDivergence is the relative estimate error that triggers a
// re-plan when Options.ReoptDivergence is unset.
const DefaultReoptDivergence = 0.25

const (
	// maxReorderRun caps the length of a filter run considered for
	// re-ordering (L! permutations).
	maxReorderRun = 5
	// maxOrderings caps the total slot orderings enumerate expands.
	maxOrderings = 24
)

// reorderableFilter reports whether a logical operator may be re-ordered
// against its neighbours: a pure natural-language filter. UDF filters are
// excluded — their purity is unknown to the optimizer.
func reorderableFilter(lop ops.Logical) bool {
	f, ok := lop.(*ops.Filter)
	return ok && f.UDF == nil
}

// reorderableRuns returns the maximal runs [start, end) of length >= 2 of
// consecutive re-orderable filters at positions >= 1.
func reorderableRuns(chain []ops.Logical) [][2]int {
	var runs [][2]int
	for start := 1; start < len(chain); {
		if !reorderableFilter(chain[start]) {
			start++
			continue
		}
		end := start
		for end < len(chain) && reorderableFilter(chain[end]) {
			end++
		}
		if end-start >= 2 && end-start <= maxReorderRun {
			runs = append(runs, [2]int{start, end})
		}
		start = end
	}
	return runs
}

// effSelectivity is the calibrated-or-default selectivity estimate the
// cost model will use for a filter position.
func effSelectivity(calib Calibration, pos int) float64 {
	if oc, ok := calib[pos]; ok && oc.Selectivity > 0 {
		return oc.Selectivity
	}
	return 0.5
}

// selectivitiesDiffer reports whether a run's calibrated selectivities are
// not all equal — with uniform estimates every ordering prices
// identically and re-ordering would only bloat the candidate set.
func selectivitiesDiffer(calib Calibration, start, end int) bool {
	first := effSelectivity(calib, start)
	for pos := start + 1; pos < end; pos++ {
		if math.Abs(effSelectivity(calib, pos)-first) > 1e-9 {
			return true
		}
	}
	return false
}

// permutations returns every permutation of ints, in lexicographic order
// starting from the input (so the identity comes first).
func permutations(ints []int) [][]int {
	var out [][]int
	var recur func(prefix, rest []int)
	recur = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			recur(append(prefix, rest[i]), nr)
		}
	}
	recur(nil, ints)
	return out
}

// filterOrderings returns the slot orderings enumerate expands: the
// identity first, then every permutation of each re-orderable filter run
// whose calibrated selectivities actually differ (composed across runs,
// capped at maxOrderings).
func filterOrderings(chain []ops.Logical, calib Calibration) [][]int {
	identity := make([]int, len(chain))
	for i := range identity {
		identity[i] = i
	}
	combined := [][]int{identity}
	for _, run := range reorderableRuns(chain) {
		lo, hi := run[0], run[1]
		if !selectivitiesDiffer(calib, lo, hi) {
			continue
		}
		positions := make([]int, hi-lo)
		for i := range positions {
			positions[i] = lo + i
		}
		runPerms := permutations(positions)
		var next [][]int
		for _, base := range combined {
			for _, rp := range runPerms {
				cand := append([]int(nil), base...)
				copy(cand[lo:hi], rp)
				next = append(next, cand)
				if len(next) >= maxOrderings {
					return next
				}
			}
		}
		combined = next
	}
	return combined
}

// ReorderableWindow finds the first run of length >= 2 of consecutive
// re-orderable natural-language filter stages in a physical plan — the
// engine's hot-swap window. Returns lo, hi (half-open) and ok=false when
// no such window exists. Only *ops.LLMFilterExec qualifies: the embed
// filter thresholds on whole-batch statistics and the cascade filter
// carries shared index state, so neither commutes batch-wise.
func ReorderableWindow(plan *Plan) (lo, hi int, ok bool) {
	for start := 1; start < len(plan.Ops); {
		if _, isNL := plan.Ops[start].(*ops.LLMFilterExec); !isNL || !reorderableFilter(plan.Logical[start]) {
			start++
			continue
		}
		end := start
		for end < len(plan.Ops) {
			if _, isNL := plan.Ops[end].(*ops.LLMFilterExec); !isNL || !reorderableFilter(plan.Logical[end]) {
				break
			}
			end++
		}
		if end-start >= 2 {
			return start, end, true
		}
		start = end
	}
	return 0, 0, false
}

// StageObservation is one executed stage's measured record flow and cost,
// gathered by the engines from ops.RunStats.
type StageObservation struct {
	// Pos is the stage's plan position.
	Pos int
	// In and Out are the records that entered and left the stage.
	In, Out int
	// CostUSD is the stage's accumulated dollar cost.
	CostUSD float64
}

// ReplanDecision is the outcome of comparing a running plan against its
// observations.
type ReplanDecision struct {
	// Divergence is the worst per-stage relative error between observed
	// and estimated selectivity or per-record cost.
	Divergence float64
	// Threshold is the divergence that triggers a re-plan.
	Threshold float64
	// Triggered reports Divergence >= Threshold.
	Triggered bool
	// Swapped reports that a cheaper filter ordering was found; NewPlan
	// holds it.
	Swapped bool
	// Corrected is the original plan with observed selectivities and
	// fan-outs folded into its estimates (always set). The serving plan
	// cache stores it so repeat queries start from observed statistics.
	Corrected *Plan
	// NewPlan is Corrected with the window re-ordered to the cheapest
	// ordering; nil unless Swapped.
	NewPlan *Plan
	// WindowLo and WindowHi bound the re-ordering window [lo, hi) the
	// decision considered (0,0 when none).
	WindowLo, WindowHi int
	// Perm maps window slots to the original plan positions executing
	// there after the swap (Perm[i] is the old position now at lo+i).
	// nil unless Swapped.
	Perm []int
}

// EffectiveThreshold resolves a plan's divergence trigger.
func EffectiveThreshold(o Options) float64 {
	if o.ReoptDivergence > 0 {
		return o.ReoptDivergence
	}
	return DefaultReoptDivergence
}

// Replan compares a plan's estimates against observed stage statistics,
// folds the observations into a corrected plan, and — when divergence
// crosses the plan's threshold and [lo, hi) is a valid re-orderable
// window — re-ranks the window's orderings by (cost, time) and proposes
// the best. Pass lo = hi = 0 to skip re-ordering (estimate correction
// only, the sequential engine's post-run path).
func Replan(plan *Plan, observations []StageObservation, lo, hi int) *ReplanDecision {
	dec := &ReplanDecision{
		Threshold: EffectiveThreshold(plan.Opts),
		WindowLo:  lo,
		WindowHi:  hi,
	}
	obs := make(map[int]StageObservation, len(observations))
	for _, o := range observations {
		if o.Pos >= 1 && o.Pos < len(plan.Ops) && o.In > 0 {
			obs[o.Pos] = o
		}
	}

	// Divergence: worst relative error across observed stages, on
	// selectivity (records out per record in) and per-record cost.
	for pos, o := range obs {
		inCard := plan.PerOp[pos-1].Cardinality
		if inCard <= 0 {
			continue
		}
		estSel := plan.PerOp[pos].Cardinality / inCard
		obsSel := float64(o.Out) / float64(o.In)
		if d := math.Abs(obsSel-estSel) / math.Max(estSel, 0.05); d > dec.Divergence {
			dec.Divergence = d
		}
		estCostPer := (plan.PerOp[pos].CostUSD - plan.PerOp[pos-1].CostUSD) / inCard
		obsCostPer := o.CostUSD / float64(o.In)
		if estCostPer > 0 || obsCostPer > 0 {
			if d := math.Abs(obsCostPer-estCostPer) / math.Max(estCostPer, 1e-6); d > dec.Divergence {
				dec.Divergence = d
			}
		}
	}
	dec.Triggered = len(obs) > 0 && dec.Divergence >= dec.Threshold

	// Corrected plan: observed ratios replace the estimates they diverged
	// from, and the cost model is re-folded over the unchanged operators.
	corrected := *plan
	corrected.Ops = append([]ops.Physical(nil), plan.Ops...)
	for pos, o := range obs {
		ratio := float64(o.Out) / float64(o.In)
		switch plan.Ops[pos].Kind() {
		case "filter":
			if ratio == 0 {
				// A zero observed selectivity on a finite prefix must not
				// wipe downstream estimates (mirrors Calibrate).
				ratio = 0.5 / float64(o.In+1)
			}
			corrected.Ops[pos] = withObservedSelectivity(plan.Ops[pos], ratio)
		case "convert":
			corrected.Ops[pos] = withObservedFanout(plan.Ops[pos], ratio)
		}
	}
	refold(&corrected)
	dec.Corrected = &corrected

	if !dec.Triggered || hi-lo < 2 || lo < 1 || hi > len(plan.Ops) {
		return dec
	}
	for pos := lo; pos < hi; pos++ {
		if _, isNL := corrected.Ops[pos].(*ops.LLMFilterExec); !isNL {
			return dec
		}
	}

	// Re-rank the window's orderings on the corrected estimates. Quality
	// is invariant under permutation (per-operator accuracies multiply),
	// so (cost, time) lexicographic ranking is policy-free.
	positions := make([]int, hi-lo)
	for i := range positions {
		positions[i] = lo + i
	}
	best := &corrected
	bestPerm := positions
	for _, perm := range permutations(positions)[1:] {
		cand := corrected
		cand.Ops = append([]ops.Physical(nil), corrected.Ops...)
		cand.Logical = append([]ops.Logical(nil), corrected.Logical...)
		for i, from := range perm {
			cand.Ops[lo+i] = corrected.Ops[from]
			cand.Logical[lo+i] = corrected.Logical[from]
		}
		refold(&cand)
		if cand.Cost() < best.Cost() ||
			(cand.Cost() == best.Cost() && cand.Time() < best.Time()) {
			c := cand
			best, bestPerm = &c, perm
		}
	}
	if best != &corrected {
		dec.Swapped = true
		dec.NewPlan = best
		dec.Perm = bestPerm
	}
	return dec
}

// refold recomputes a plan's cost-model trajectory from its (possibly
// updated) operators: PerOp[0] (the scan) is kept, every later estimate
// is re-derived, and the derived fields follow.
func refold(p *Plan) {
	perOp := append([]ops.Estimate(nil), p.PerOp[:1]...)
	prev := perOp[0]
	for i := 1; i < len(p.Ops); i++ {
		prev = p.Ops[i].Estimate(prev)
		perOp = append(perOp, prev)
	}
	p.PerOp = perOp
	p.Final = prev
	p.TimePipelined = pipelinedTimeSec(p)
}

// withObservedSelectivity returns a copy of a filter operator carrying an
// observed selectivity estimate; non-filter (or self-calibrating)
// operators pass through unchanged.
func withObservedSelectivity(p ops.Physical, sel float64) ops.Physical {
	switch t := p.(type) {
	case *ops.LLMFilterExec:
		cp := *t
		cp.SelEstimate = sel
		return &cp
	case *ops.EmbedFilterExec:
		cp := *t
		cp.SelEstimate = sel
		return &cp
	}
	return p
}

// withObservedFanout is withObservedSelectivity for converts.
func withObservedFanout(p ops.Physical, fan float64) ops.Physical {
	if t, ok := p.(*ops.LLMConvertExec); ok {
		cp := *t
		cp.FanoutEstimate = fan
		return &cp
	}
	return p
}
