package optimizer

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/schema"
)

func fpChain(t *testing.T, predicate string, target *schema.Schema) []ops.Logical {
	t.Helper()
	recs := []*record.Record{record.MustNew(schema.TextFile,
		map[string]any{"filename": "a.txt", "contents": "alpha beta"})}
	src, err := dataset.NewMemSource("fp-src", schema.TextFile, recs)
	if err != nil {
		t.Fatal(err)
	}
	chain := []ops.Logical{&ops.Scan{Source: src}, &ops.Filter{Predicate: predicate}}
	if target != nil {
		chain = append(chain, &ops.Convert{Target: target, Desc: target.Doc(), Card: ops.OneToMany})
	}
	return chain
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	sc, err := schema.Derive("Thing", "Things.", []string{"name", "size:int"}, []string{"The name", "The size"})
	if err != nil {
		t.Fatal(err)
	}
	base := Fingerprint(fpChain(t, "about cats", sc), MaxQuality{}, Options{Pruning: true})

	// Same inputs, independently constructed -> same fingerprint.
	sc2, _ := schema.Derive("Thing", "Things.", []string{"name", "size:int"}, []string{"The name", "The size"})
	if again := Fingerprint(fpChain(t, "about cats", sc2), MaxQuality{}, Options{Pruning: true}); again != base {
		t.Error("identical queries fingerprint differently")
	}

	distinct := map[string]string{
		"predicate": Fingerprint(fpChain(t, "about dogs", sc), MaxQuality{}, Options{Pruning: true}),
		"policy":    Fingerprint(fpChain(t, "about cats", sc), MinCost{}, Options{Pruning: true}),
		"policy-param": Fingerprint(fpChain(t, "about cats", sc),
			MaxQualityAtCost{BudgetUSD: 2}, Options{Pruning: true}),
		"options": Fingerprint(fpChain(t, "about cats", sc), MaxQuality{}, Options{}),
		"pipelined": Fingerprint(fpChain(t, "about cats", sc), MaxQuality{},
			Options{Pruning: true, Pipelined: true}),
		// Cascade knobs change the enumerated plan space, so plans cached
		// under one setting must not serve queries under another.
		"no-cascade": Fingerprint(fpChain(t, "about cats", sc), MaxQuality{},
			Options{Pruning: true, NoCascade: true}),
		"cascade-sample": Fingerprint(fpChain(t, "about cats", sc), MaxQuality{},
			Options{Pruning: true, CascadeSample: 512}),
		"cascade-recall": Fingerprint(fpChain(t, "about cats", sc), MaxQuality{},
			Options{Pruning: true, CascadeMinRecall: 0.9}),
	}
	for what, fp := range distinct {
		if fp == base {
			t.Errorf("changing %s did not change the fingerprint", what)
		}
	}
}

// TestFingerprintSeesSchemaFields: two converts whose target schemas share
// a name but differ in fields must not collide (the display string alone
// would).
func TestFingerprintSeesSchemaFields(t *testing.T) {
	a, _ := schema.Derive("Thing", "Things.", []string{"name"}, []string{"The name"})
	b, _ := schema.Derive("Thing", "Things.", []string{"name", "url"}, []string{"The name", "The URL"})
	fa := Fingerprint(fpChain(t, "p", a), MaxQuality{}, Options{})
	fb := Fingerprint(fpChain(t, "p", b), MaxQuality{}, Options{})
	if fa == fb {
		t.Error("schemas with identical names but different fields collided")
	}
}

// TestFingerprintCachedPlanReusable: equal fingerprints imply the optimizer
// chooses the same plan, so replaying the cached plan is sound.
func TestFingerprintCachedPlanReusable(t *testing.T) {
	chain := fpChain(t, "alpha beta", nil)
	p1, _, err := New(Options{Pruning: true}).Optimize(chain, MinCost{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := New(Options{Pruning: true}).Optimize(chain, MinCost{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("same fingerprint, different plans: %s vs %s", p1, p2)
	}
}
