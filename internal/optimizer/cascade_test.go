package optimizer

import (
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/record"
)

const urgentPredicate = "The ticket is urgent and needs immediate attention"

// sidecarChain builds a scan+filter chain over an on-disk support corpus
// with an embedding sidecar — the shape that qualifies for cascade
// enumeration.
func sidecarChain(t *testing.T, n int) []ops.Logical {
	t.Helper()
	path := filepath.Join(t.TempDir(), "support.ndjson")
	g, err := corpus.NewGenerator(corpus.DomainSupport, n, -1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.SaveNDJSON(path, g, 11, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.EmbedNDJSON(path, llm.EmbedDim, llm.EmbedVector); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewNDJSONSource("support", path)
	if err != nil {
		t.Fatal(err)
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: urgentPredicate},
	}
}

// cascadeAt returns the cascade operator at the plan's filter position, or
// nil when the plan uses another strategy.
func cascadeAt(p *Plan) *ops.CascadeFilterExec {
	c, _ := p.Ops[1].(*ops.CascadeFilterExec)
	return c
}

func countCascades(plans []*Plan) int {
	n := 0
	for _, p := range plans {
		if cascadeAt(p) != nil {
			n++
		}
	}
	return n
}

func TestCascadeChosenByCostPolicyAndExecutes(t *testing.T) {
	chain := sidecarChain(t, 400)
	ctx, _ := newCtx(t)
	chosen, plans, err := New(Options{}).Optimize(chain, MinCostAtQuality{Floor: 0.95}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Both prefilter modes × every verify model were enumerated.
	if got := countCascades(plans); got != 6 {
		t.Fatalf("enumerated %d cascade plans, want 6", got)
	}
	casc := cascadeAt(chosen)
	if casc == nil {
		t.Fatalf("cost policy did not choose a cascade: %s", chosen)
	}
	if chosen.ConstraintViolated {
		t.Fatalf("chosen cascade violates the 0.95 quality floor: est quality %v", chosen.Quality())
	}
	if casc.Cal == nil || casc.Cal.F1 < 0.95 {
		t.Fatalf("chosen cascade has calibration %+v, want measured F1 >= 0.95", casc.Cal)
	}

	// The cascade must beat the plain champion filter on estimated cost by
	// a wide margin — that is the whole point of the strategy.
	var plain *Plan
	for _, p := range plans {
		if f, ok := p.Ops[1].(*ops.LLMFilterExec); ok && f.Model == "atlas-large" {
			plain = p
			break
		}
	}
	if plain == nil {
		t.Fatal("no plain atlas-large plan among candidates")
	}
	if chosen.Cost()*2 > plain.Cost() {
		t.Fatalf("cascade est cost %v is not well under plain cost %v", chosen.Cost(), plain.Cost())
	}

	// Executing the chosen plan must deliver quality the floor promised,
	// measured against ground truth, at a real cost below the plain plan's.
	var recs []*record.Record
	for i, op := range chosen.Ops {
		ctx.SetCurrentOp(i)
		recs, err = op.Execute(ctx, recs)
		if err != nil {
			t.Fatal(err)
		}
	}
	inputs, err := chain[0].(*ops.Scan).Source.Records()
	if err != nil {
		t.Fatal(err)
	}
	prf := metrics.FilterQualityByTruth(inputs, recs, urgentPredicate)
	if prf.F1 < 0.95 {
		t.Fatalf("executed cascade F1 = %v, below the 0.95 floor", prf.F1)
	}
	var cost float64
	for _, st := range ctx.Stats.Ops() {
		cost += st.CostUSD
	}
	if cost <= 0 {
		t.Fatal("cascade execution reported zero cost")
	}
}

func TestCascadeRejectedByHighQualityFloor(t *testing.T) {
	chain := sidecarChain(t, 300)
	ctx, _ := newCtx(t)
	// Laplace smoothing caps what a ~256-record sample can claim, so a
	// 0.995 floor must send the policy to the plain champion filter —
	// honestly, without a constraint violation (atlas-large qualifies).
	chosen, _, err := New(Options{}).Optimize(chain, MinCostAtQuality{Floor: 0.995}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cascadeAt(chosen) != nil {
		t.Fatalf("0.995 floor accepted a cascade with est quality %v", chosen.Quality())
	}
	if chosen.ConstraintViolated {
		t.Fatal("floor should be satisfiable by the plain champion filter")
	}
	f, ok := chosen.Ops[1].(*ops.LLMFilterExec)
	if !ok || f.Model != "atlas-large" {
		t.Fatalf("expected plain atlas-large filter, got %s", chosen)
	}
}

func TestCascadeGates(t *testing.T) {
	ctx, _ := newCtx(t)

	t.Run("no context", func(t *testing.T) {
		_, plans, err := New(Options{}).Optimize(sidecarChain(t, 120), MinCost{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if countCascades(plans) != 0 {
			t.Error("cascade enumerated without an execution context")
		}
	})
	t.Run("NoCascade option", func(t *testing.T) {
		_, plans, err := New(Options{NoCascade: true}).Optimize(sidecarChain(t, 120), MinCost{}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if countCascades(plans) != 0 {
			t.Error("cascade enumerated despite NoCascade")
		}
	})
	t.Run("cluster topology", func(t *testing.T) {
		_, plans, err := New(Options{ClusterWorkers: 2}).Optimize(sidecarChain(t, 120), MinCost{}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if countCascades(plans) != 0 {
			t.Error("cascade enumerated for a cluster plan; the sidecar index cannot ship to workers")
		}
	})
	t.Run("no sidecar", func(t *testing.T) {
		_, plans, err := New(Options{}).Optimize(demoChain(t), MinCost{}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if countCascades(plans) != 0 {
			t.Error("cascade enumerated over a source with no embedding sidecar")
		}
	})
}
