package optimizer

import (
	"testing"

	"repro/internal/ops"
)

// TestClusterAwareTimeEstimates: a worker-pool size smaller than the
// partition fan-out caps the pipelined concurrency — each worker runs its
// partitions serially, so 8 partitions on 2 workers overlap only 2 at a
// time — and the enumerator stamps the topology onto the scan for the
// plan cache.
func TestClusterAwareTimeEstimates(t *testing.T) {
	chain := indexedChain(t, 64)
	parted, _, err := New(Options{Pipelined: true, Partitions: 8}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clustered, _, err := New(Options{Pipelined: true, Partitions: 8, ClusterWorkers: 2}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := clustered.Ops[0].(*ops.ScanExec)
	if !ok || sc.Workers != 2 {
		t.Fatalf("optimizer did not stamp the worker pool onto the scan: %+v", clustered.Ops[0])
	}
	if got := ops.EffectivePartitions(clustered.Ops[0]); got != 8 {
		t.Fatalf("effective partitions = %d, want 8 (the pool caps concurrency, not the split)", got)
	}
	if got := ops.EffectiveConcurrency(clustered.Ops[0]); got != 2 {
		t.Fatalf("effective concurrency = %d, want clamp to 2 workers", got)
	}
	if clustered.Time() <= parted.Time() {
		t.Errorf("2-worker estimate %.3fs not above 8-way in-process %.3fs",
			clustered.Time(), parted.Time())
	}
	if clustered.Cost() != parted.Cost() || clustered.Quality() != parted.Quality() {
		t.Errorf("cluster topology changed cost/quality: %v/%v vs %v/%v",
			clustered.Cost(), clustered.Quality(), parted.Cost(), parted.Quality())
	}
}

// TestClusterPoolLargerThanFanout: a pool wider than the fan-out changes
// nothing — concurrency is still bounded by the number of partitions.
func TestClusterPoolLargerThanFanout(t *testing.T) {
	chain := indexedChain(t, 64)
	plan, _, err := New(Options{Pipelined: true, Partitions: 4, ClusterWorkers: 16}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ops.EffectiveConcurrency(plan.Ops[0]); got != 4 {
		t.Errorf("effective concurrency = %d, want 4 (partitions bound a wide pool)", got)
	}
}

// TestFingerprintSeparatesClusterWorkers: the plan-cache key must change
// with the cluster topology, or a plan optimized for one pool size would
// serve queries targeting another.
func TestFingerprintSeparatesClusterWorkers(t *testing.T) {
	chain := indexedChain(t, 16)
	a := Fingerprint(chain, MaxQuality{}, Options{Pipelined: true, Partitions: 8})
	b := Fingerprint(chain, MaxQuality{}, Options{Pipelined: true, Partitions: 8, ClusterWorkers: 2})
	c := Fingerprint(chain, MaxQuality{}, Options{Pipelined: true, Partitions: 8, ClusterWorkers: 4})
	if a == b || b == c || a == c {
		t.Fatalf("fingerprints collide across cluster topologies: %s %s %s", a, b, c)
	}
}
