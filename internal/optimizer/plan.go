// Package optimizer implements Palimpzest's logical→physical optimization
// (paper §2.1): it enumerates "a search space of all possible physical
// plans" for a logical plan, estimates each plan's cost, runtime, and
// quality, and "automatically ranks physical plans and selects the most
// optimal one that meets user-defined preferences" — either a pure
// objective (quality, cost, runtime) or a constrained combination ("maximize
// the output quality while being under a certain latency").
//
// Estimation can be calibrated by sentinel sampling: the champion plan runs
// over a small record sample to measure per-operator selectivity and
// fan-out before full enumeration (the sample's LLM calls are charged to
// usage, as in the real system).
//
// Runtime estimates come in two flavors matching internal/exec's two
// engines: the default sequential sum of per-operator times, and — with
// Options.Pipelined — the streaming model, where consecutive streamable
// stages overlap and cost only their slowest member (see
// docs/architecture.md for the pipeline dataflow).
package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/record"
)

// sampleRecords takes the first n records of a source, preferring
// incremental iteration (dataset.RecordIterator) so sampling a file-backed
// corpus never loads it whole. n <= 0 yields an empty sample regardless
// of source type.
func sampleRecords(src dataset.Source, n int) ([]*record.Record, error) {
	if n <= 0 {
		return nil, nil
	}
	if it, ok := src.(dataset.RecordIterator); ok {
		var sample []*record.Record
		err := it.IterateRecords(func(r *record.Record) error {
			sample = append(sample, r)
			if len(sample) >= n {
				return dataset.ErrStop
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return sample, nil
	}
	all, err := src.Records()
	if err != nil {
		return nil, err
	}
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

// Plan is one fully-physical pipeline with its cost-model trajectory.
type Plan struct {
	// Logical is the source logical chain.
	Logical []ops.Logical
	// Ops are the chosen physical implementations, parallel to Logical.
	Ops []ops.Physical
	// PerOp[i] is the cost-model state after executing Ops[i].
	PerOp []ops.Estimate
	// Final is PerOp's last entry.
	Final ops.Estimate
	// TimePipelined is the estimated runtime under the pipelined streaming
	// executor: consecutive streamable stages overlap, so a segment costs
	// its slowest stage; blocking stages are barriers contributing their
	// full time (mirroring exec's wall-clock model). Computed for every
	// plan; Time reports it when the optimizer ran with Options.Pipelined.
	TimePipelined float64
	// ConstraintViolated reports that the selecting policy could not meet
	// its constraint and fell back to the nearest plan.
	ConstraintViolated bool
	// Opts records the options the plan was optimized under. The executor
	// reads the re-optimization knobs from here, so a plan replayed from
	// the serving plan cache behaves exactly like its first execution.
	Opts Options

	// pipelined selects which runtime estimate Time reports.
	pipelined bool
}

// String renders the plan as "op -> op -> op".
func (p *Plan) String() string {
	ids := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		ids[i] = op.ID()
	}
	return strings.Join(ids, " -> ")
}

// Cost returns the plan's estimated total dollar cost.
func (p *Plan) Cost() float64 { return p.Final.CostUSD }

// Time returns the plan's estimated runtime in seconds: the sequential
// sum of operator times by default, or the pipelined estimate
// (TimePipelined) when the optimizer targeted the streaming engine.
func (p *Plan) Time() float64 {
	if p.pipelined {
		return p.TimePipelined
	}
	return p.Final.TimeSec
}

// Quality returns the plan's estimated output quality in (0,1].
func (p *Plan) Quality() float64 { return p.Final.Quality }

// Options configures the optimizer.
type Options struct {
	// Pruning enables Pareto pruning of dominated plan prefixes during
	// enumeration. Without it the full cartesian plan space is ranked.
	Pruning bool
	// SampleSize, when > 0, runs sentinel calibration over that many
	// records before enumeration (requires a Ctx in Optimize).
	SampleSize int
	// MaxPlans caps the number of complete plans retained (0 = unlimited).
	MaxPlans int
	// Pipelined makes plan runtime estimates (Plan.Time, and therefore
	// time-sensitive policies) use the pipelined streaming model — stage
	// segments cost their maximum, not their sum. The executor sets it
	// when Parallelism > 1 selects the streaming engine.
	Pipelined bool
	// Partitions is the partition fan-out to optimize for: when > 1 the
	// enumerator stamps it onto every scan (ops.ScanExec.Parts), and
	// pipelined time estimates divide the plan's streamable prefix by the
	// fan-out the scan's source can actually provide — mirroring the
	// engine, which runs one source+map pipeline per partition. The
	// executor defaults it from its own Partitions config.
	Partitions int
	// ClusterWorkers is the coordinator's worker-pool size when the plan
	// targets cluster scatter (0 = no cluster). Each worker executes its
	// assigned partitions serially, so pipelined time estimates clamp the
	// partition concurrency to min(partitions, workers) — 8 partitions on
	// 2 workers overlap only 2 at a time. The enumerator stamps it onto
	// scans (ops.ScanExec.Workers) so cached plans keep their topology.
	ClusterWorkers int
	// NoCascade disables the semantic-index cascade calibration pass, so
	// no cascade-filter strategy is ever enumerated.
	NoCascade bool
	// CascadeSample is the calibration sample size for cascade pricing
	// (0 = DefaultCascadeSample). Only consulted when a chain qualifies
	// for cascade enumeration (see CalibrateCascade).
	CascadeSample int
	// CascadeMinRecall is the sample-positive recall the prefilter
	// threshold must retain (0 = DefaultCascadeMinRecall).
	CascadeMinRecall float64
	// ReoptAfterBatches, when > 0, arms mid-flight re-optimization on the
	// pipelined engine: after this many batches have crossed each
	// re-orderable filter stage, observed selectivity and cost are
	// compared against the plan's estimates, and past ReoptDivergence the
	// remaining work is re-planned and hot-swapped at a stage boundary
	// (see internal/exec). Sequential runs apply the same check after the
	// run to correct the cached plan's estimates.
	ReoptAfterBatches int
	// ReoptDivergence is the relative estimate divergence that triggers a
	// re-plan (0 = DefaultReoptDivergence). Divergence is the worst
	// per-stage relative error between observed and estimated selectivity
	// or per-record cost.
	ReoptDivergence float64
	// Priors seeds per-position selectivity/fan-out estimates without
	// running sentinel calibration — the way corrected estimates from an
	// earlier run (or a benchmark's deliberate mis-seeding) re-enter the
	// optimizer. Sentinel sampling (SampleSize > 0) takes precedence.
	Priors Calibration
}

// Optimizer enumerates and ranks physical plans.
type Optimizer struct {
	opts Options
}

// New returns an optimizer with the given options.
func New(opts Options) *Optimizer { return &Optimizer{opts: opts} }

// InitialEstimate builds the cost-model seed for a logical chain: the scan
// source's cardinality and average record size. Sources that know their
// own statistics (dataset.Stater — e.g. a file-backed corpus with a
// manifest) are costed without materializing a single record.
func InitialEstimate(chain []ops.Logical) (ops.Estimate, error) {
	if len(chain) == 0 {
		return ops.Estimate{}, fmt.Errorf("optimizer: empty plan")
	}
	scan, ok := chain[0].(*ops.Scan)
	if !ok {
		return ops.Estimate{}, fmt.Errorf("optimizer: plan must start with scan")
	}
	if st, ok := scan.Source.(dataset.Stater); ok {
		if s, trusted := st.Stats(); trusted {
			return ops.Estimate{
				Cardinality: float64(s.NumRecords),
				AvgTokens:   s.AvgTokens,
				Quality:     1,
			}, nil
		}
	}
	recs, err := scan.Source.Records()
	if err != nil {
		return ops.Estimate{}, fmt.Errorf("optimizer: %w", err)
	}
	est := ops.Estimate{Cardinality: float64(len(recs)), Quality: 1}
	if len(recs) > 0 {
		// Average token size over (up to) the first 16 records.
		n := len(recs)
		if n > 16 {
			n = 16
		}
		total := 0
		for _, r := range recs[:n] {
			total += llm.CountTokens(r.Text())
		}
		est.AvgTokens = float64(total) / float64(n)
	}
	return est, nil
}

// Optimize validates the chain, optionally calibrates, enumerates the
// physical plan space, and selects with policy. It returns the chosen plan
// and every candidate considered (for reporting). ctx is only needed when
// SampleSize > 0.
func (o *Optimizer) Optimize(chain []ops.Logical, policy Policy, ctx *ops.Ctx) (*Plan, []*Plan, error) {
	if _, err := ops.ValidatePlan(chain); err != nil {
		return nil, nil, err
	}
	if policy == nil {
		return nil, nil, fmt.Errorf("optimizer: nil policy")
	}
	initial, err := InitialEstimate(chain)
	if err != nil {
		return nil, nil, err
	}
	calib := o.opts.Priors
	if o.opts.SampleSize > 0 {
		if ctx == nil {
			return nil, nil, fmt.Errorf("optimizer: sampling requires an execution context")
		}
		// Measured statistics beat seeded priors.
		calib, err = Calibrate(chain, o.opts.SampleSize, ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("optimizer: calibration: %w", err)
		}
	}
	// The cascade pass needs an execution context for its sentinel verify
	// calls; without one (estimate-only optimization) the strategy is
	// simply not enumerated.
	var casc *CascadeCalibration
	if ctx != nil && !o.opts.NoCascade {
		casc, err = CalibrateCascade(chain, o.opts, ctx)
		if err != nil {
			return nil, nil, cascadeErr(err)
		}
	}
	plans := o.enumerate(chain, initial, calib, casc)
	if len(plans) == 0 {
		return nil, nil, fmt.Errorf("optimizer: no physical plans for %d-op chain", len(chain))
	}
	chosen, err := policy.Choose(plans)
	if err != nil {
		return nil, plans, err
	}
	chosen.Opts = o.opts
	return chosen, plans, nil
}

// enumerate expands the physical plan space: every calibrated filter
// ordering (filterOrderings) times every physical choice per slot, with
// (optional) Pareto pruning after each step and globally across orderings.
func (o *Optimizer) enumerate(chain []ops.Logical, initial ops.Estimate, calib Calibration, casc *CascadeCalibration) []*Plan {
	var all []*Plan
	orderings := filterOrderings(chain, calib)
	for _, perm := range orderings {
		all = append(all, o.enumerateOrdered(chain, perm, initial, calib, casc)...)
	}
	if len(orderings) > 1 && o.opts.Pruning {
		// Orderings were pruned independently; prune once more across the
		// merged set so a dominated ordering's survivors drop out.
		all = paretoPrune(all)
	}
	if o.opts.MaxPlans > 0 && len(all) > o.opts.MaxPlans {
		all = all[:o.opts.MaxPlans]
	}
	return all
}

// enumerateOrdered expands physical choices left to right along one slot
// ordering: slot i executes logical position perm[i]. Calibration and the
// cascade join follow the logical position; pruning and MaxPlans apply
// per step as before.
func (o *Optimizer) enumerateOrdered(chain []ops.Logical, perm []int, initial ops.Estimate, calib Calibration, casc *CascadeCalibration) []*Plan {
	logical := make([]ops.Logical, len(chain))
	for slot, lp := range perm {
		logical[slot] = chain[lp]
	}
	prefixes := []*Plan{{Logical: logical}}
	for _, lp := range perm {
		lop := chain[lp]
		options := lop.Physical()
		if casc != nil && lp == casc.Pos {
			// Calibrated cascade strategies join the position's generic
			// options; they carry their own measurements, so the generic
			// calibration overrides below don't apply to them.
			options = append(append([]ops.Physical{}, options...), casc.Candidates...)
		}
		for _, phys := range options {
			calib.apply(lp, phys)
			// Stamp the requested fan-out and cluster topology onto scans
			// so the plan carries them to the engine (and through the
			// serving plan cache).
			if sc, ok := phys.(*ops.ScanExec); ok {
				if o.opts.Partitions > 0 {
					sc.Parts = o.opts.Partitions
				}
				if o.opts.ClusterWorkers > 0 {
					sc.Workers = o.opts.ClusterWorkers
				}
			}
		}
		var next []*Plan
		for _, prefix := range prefixes {
			for _, phys := range options {
				prev := initial
				if len(prefix.PerOp) > 0 {
					prev = prefix.PerOp[len(prefix.PerOp)-1]
				}
				est := phys.Estimate(prev)
				np := &Plan{
					Logical:   logical,
					Ops:       append(append([]ops.Physical{}, prefix.Ops...), phys),
					PerOp:     append(append([]ops.Estimate{}, prefix.PerOp...), est),
					Final:     est,
					pipelined: o.opts.Pipelined,
				}
				// Keep the prefix's pipelined estimate current so Pareto
				// pruning compares plans by the same time metric the
				// selecting policy will use (Plan.Time).
				np.TimePipelined = pipelinedTimeSec(np)
				next = append(next, np)
			}
		}
		if o.opts.Pruning {
			next = paretoPrune(next)
		}
		if o.opts.MaxPlans > 0 && len(next) > o.opts.MaxPlans {
			next = next[:o.opts.MaxPlans]
		}
		prefixes = next
	}
	// Final, TimePipelined, and the pipelined flag were maintained on
	// every prefix during expansion (pruning needs them), so complete
	// plans are already fully populated.
	return prefixes
}

// pipelinedTimeSec models a plan's runtime on the streaming engine: the
// per-operator time deltas folded by the engine's shared wall-clock model
// (ops.PipelinedWallTime). A partitioned scan fans the plan's streamable
// prefix out into per-partition pipelines, so those stages' deltas divide
// by the effective concurrency — the fan-out the source can provide,
// clamped to the cluster worker-pool size when the plan targets scatter
// execution (workers run their partitions serially) — the same
// max-across-executors model the engine and coordinator apply to their
// measured clocks.
func pipelinedTimeSec(p *Plan) float64 {
	deltas := make([]float64, len(p.Ops))
	var prev float64
	for i := range p.Ops {
		deltas[i] = p.PerOp[i].TimeSec - prev
		prev = p.PerOp[i].TimeSec
	}
	if parts := ops.EffectiveConcurrency(p.Ops[0]); parts > 1 {
		f := float64(parts)
		for i := range p.Ops {
			if i > 0 && !ops.IsStreamable(p.Ops[i]) {
				break
			}
			deltas[i] /= f
		}
	}
	return ops.PipelinedWallTime(p.Ops, deltas)
}

// PlanSpaceSize returns the size of the unpruned physical plan space.
func PlanSpaceSize(chain []ops.Logical) int {
	size := 1
	for _, lop := range chain {
		size *= len(lop.Physical())
	}
	return size
}

// dominates reports whether a is at least as good as b on every dimension
// and strictly better on one. Time uses Plan.Time, so pruning and policy
// selection always judge plans by the same runtime model (sequential sum
// or pipelined fold).
func dominates(a, b *Plan) bool {
	ea, eb := a.PerOp[len(a.PerOp)-1], b.PerOp[len(b.PerOp)-1]
	if ea.CostUSD > eb.CostUSD || a.Time() > b.Time() || ea.Quality < eb.Quality {
		return false
	}
	return ea.CostUSD < eb.CostUSD || a.Time() < b.Time() || ea.Quality > eb.Quality
}

// paretoPrune keeps only non-dominated plans, preserving input order.
func paretoPrune(plans []*Plan) []*Plan {
	var out []*Plan
	for i, p := range plans {
		dominated := false
		for j, q := range plans {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
			// Exact ties: keep the earlier plan only.
			if j < i && !dominates(p, q) && equalEst(p, q) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

func equalEst(a, b *Plan) bool {
	ea, eb := a.PerOp[len(a.PerOp)-1], b.PerOp[len(b.PerOp)-1]
	return ea.CostUSD == eb.CostUSD && a.Time() == b.Time() && ea.Quality == eb.Quality
}

// Calibration holds per-logical-position measurements from sentinel
// sampling.
type Calibration map[int]OpCalibration

// OpCalibration is one operator's measured behaviour on the sample.
type OpCalibration struct {
	// Selectivity is out/in for filters.
	Selectivity float64
	// Fanout is out/in for converts.
	Fanout float64
}

// apply pushes calibrated parameters into a physical operator instance.
func (c Calibration) apply(pos int, phys ops.Physical) {
	if c == nil {
		return
	}
	oc, ok := c[pos]
	if !ok {
		return
	}
	switch p := phys.(type) {
	case *ops.LLMFilterExec:
		p.SelEstimate = oc.Selectivity
	case *ops.EmbedFilterExec:
		p.SelEstimate = oc.Selectivity
	case *ops.LLMConvertExec:
		p.FanoutEstimate = oc.Fanout
	}
}

// Calibrate runs the champion physical plan over the first sampleSize
// records and measures per-operator selectivity/fan-out. The sample's LLM
// usage is charged to the context's service, mirroring the real system's
// sentinel execution cost.
func Calibrate(chain []ops.Logical, sampleSize int, ctx *ops.Ctx) (Calibration, error) {
	scan, ok := chain[0].(*ops.Scan)
	if !ok {
		return nil, fmt.Errorf("optimizer: plan must start with scan")
	}
	sample, err := sampleRecords(scan.Source, sampleSize)
	if err != nil {
		return nil, err
	}
	calib := Calibration{}
	recs := sample
	for pos := 1; pos < len(chain); pos++ {
		phys := champion(chain[pos])
		if phys == nil {
			continue
		}
		ctx.SetCurrentOp(pos)
		out, err := phys.Execute(ctx, recs)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			ratio := float64(len(out)) / float64(len(recs))
			switch chain[pos].(type) {
			case *ops.Filter:
				// Avoid a zero selectivity from a tiny sample wiping out
				// downstream estimates entirely.
				if ratio == 0 {
					ratio = 0.5 / float64(len(recs)+1)
				}
				calib[pos] = OpCalibration{Selectivity: ratio}
			case *ops.Convert:
				calib[pos] = OpCalibration{Fanout: ratio}
			}
		}
		recs = out
	}
	return calib, nil
}

// champion picks the highest-quality physical option of a logical operator
// (the sentinel plan Palimpzest executes to ground its estimates).
func champion(lop ops.Logical) ops.Physical {
	options := lop.Physical()
	if len(options) == 0 {
		return nil
	}
	neutral := ops.Estimate{Cardinality: 1, AvgTokens: 100, Quality: 1}
	best := options[0]
	bestQ := best.Estimate(neutral).Quality
	for _, opt := range options[1:] {
		if q := opt.Estimate(neutral).Quality; q > bestQ {
			best, bestQ = opt, q
		}
	}
	return best
}

// ChampionPlan returns the all-champion physical plan (used by experiments
// to execute the quality-reference pipeline directly).
func ChampionPlan(chain []ops.Logical) ([]ops.Physical, error) {
	if _, err := ops.ValidatePlan(chain); err != nil {
		return nil, err
	}
	out := make([]ops.Physical, len(chain))
	for i, lop := range chain {
		p := champion(lop)
		if p == nil {
			return nil, fmt.Errorf("optimizer: no physical options for %s", lop.Kind())
		}
		out[i] = p
	}
	return out, nil
}
