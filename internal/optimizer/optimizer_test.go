package optimizer

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/schema"
	"repro/internal/simclock"
)

var clinical = schema.MustNew("ClinicalData", "A schema for extracting clinical data datasets from papers.",
	schema.Field{Name: "name", Type: schema.String, Desc: "The name of the clinical data dataset"},
	schema.Field{Name: "description", Type: schema.String, Desc: "A short description"},
	schema.Field{Name: "url", Type: schema.String, Desc: "The public URL"},
)

const demoPredicate = "The papers are about colorectal cancer"

func demoChain(t *testing.T) []ops.Logical {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	src, err := dataset.NewDocsSource("sigmod-demo", schema.PDFFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: demoPredicate},
		&ops.Convert{Target: clinical, Desc: clinical.Doc(), Card: ops.OneToMany},
	}
}

func newCtx(t *testing.T) (*ops.Ctx, *llm.Service) {
	t.Helper()
	svc := llm.NewService()
	clock := simclock.NewSim()
	client, err := llm.NewRetryClient(svc, clock, 3, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return &ops.Ctx{Client: client, Svc: svc, Clock: clock, Parallelism: 1, Stats: ops.NewRunStats()}, svc
}

func TestInitialEstimate(t *testing.T) {
	chain := demoChain(t)
	est, err := InitialEstimate(chain)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality != 11 {
		t.Errorf("cardinality = %v, want 11", est.Cardinality)
	}
	if est.AvgTokens <= 50 {
		t.Errorf("avg tokens = %v, implausibly small", est.AvgTokens)
	}
	if est.Quality != 1 {
		t.Errorf("quality = %v", est.Quality)
	}
}

func TestPlanSpaceSize(t *testing.T) {
	chain := demoChain(t)
	nModels := len(llm.CompletionModels())
	want := 1 * (nModels + 1) * (2 * nModels)
	if got := PlanSpaceSize(chain); got != want {
		t.Errorf("plan space = %d, want %d", got, want)
	}
}

func TestEnumerateWithoutPruningCoversSpace(t *testing.T) {
	chain := demoChain(t)
	opt := New(Options{})
	_, plans, err := opt.Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != PlanSpaceSize(chain) {
		t.Errorf("enumerated %d plans, want %d", len(plans), PlanSpaceSize(chain))
	}
}

func TestPruningShrinksButKeepsExtremes(t *testing.T) {
	chain := demoChain(t)
	full, fullPlans, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, prunedPlans, err := New(Options{Pruning: true}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prunedPlans) >= len(fullPlans) {
		t.Errorf("pruning kept %d of %d plans", len(prunedPlans), len(fullPlans))
	}
	if pruned.Quality() != full.Quality() {
		t.Errorf("pruning lost the max-quality plan: %v vs %v", pruned.Quality(), full.Quality())
	}
	// The cheapest plan also survives pruning.
	fullCheap, _ := MinCost{}.Choose(fullPlans)
	prunedCheap, _ := MinCost{}.Choose(prunedPlans)
	if prunedCheap.Cost() != fullCheap.Cost() {
		t.Errorf("pruning lost the min-cost plan: %v vs %v", prunedCheap.Cost(), fullCheap.Cost())
	}
}

func TestPoliciesPickDifferentPlans(t *testing.T) {
	chain := demoChain(t)
	opt := New(Options{})
	q, _, err := opt.Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := opt.Optimize(chain, MinCost{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tt, _, err := opt.Optimize(chain, MinTime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "atlas-large") {
		t.Errorf("max-quality plan = %s", q)
	}
	if strings.Contains(c.String(), "atlas-large") {
		t.Errorf("min-cost plan uses the priciest model: %s", c)
	}
	if q.Cost() <= c.Cost() {
		t.Errorf("quality plan cost %v <= cost plan cost %v", q.Cost(), c.Cost())
	}
	if q.Quality() <= c.Quality() {
		t.Errorf("quality plan quality %v <= cost plan quality %v", q.Quality(), c.Quality())
	}
	if tt.Time() > c.Time() {
		t.Errorf("min-time plan slower than min-cost plan")
	}
}

func TestConstrainedPolicies(t *testing.T) {
	chain := demoChain(t)
	opt := New(Options{})
	_, plans, err := opt.Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(plans)

	// A budget between min and max cost must be met and beat pure min-cost
	// quality.
	budget := (s.MinCost + s.MaxCost) / 2
	bp, err := MaxQualityAtCost{BudgetUSD: budget}.Choose(plans)
	if err != nil {
		t.Fatal(err)
	}
	if bp.ConstraintViolated {
		t.Error("feasible budget flagged as violated")
	}
	if bp.Cost() > budget {
		t.Errorf("plan cost %v exceeds budget %v", bp.Cost(), budget)
	}
	cheapest, _ := MinCost{}.Choose(plans)
	if bp.Quality() < cheapest.Quality() {
		t.Errorf("budgeted plan quality %v below cheapest %v", bp.Quality(), cheapest.Quality())
	}

	// An impossible budget falls back and flags.
	ip, err := MaxQualityAtCost{BudgetUSD: s.MinCost / 2}.Choose(plans)
	if err != nil {
		t.Fatal(err)
	}
	if !ip.ConstraintViolated {
		t.Error("infeasible budget not flagged")
	}

	// Time cap.
	cap := (s.MinTime + s.MaxTime) / 2
	tp, err := MaxQualityAtTime{CapSec: cap}.Choose(plans)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Time() > cap || tp.ConstraintViolated {
		t.Errorf("time-capped plan = %vs cap %vs violated=%v", tp.Time(), cap, tp.ConstraintViolated)
	}

	// Quality floor.
	qf, err := MinCostAtQuality{Floor: 0.9}.Choose(plans)
	if err != nil {
		t.Fatal(err)
	}
	if qf.Quality() < 0.9 || qf.ConstraintViolated {
		t.Errorf("quality-floor plan = %v violated=%v", qf.Quality(), qf.ConstraintViolated)
	}
	best, _ := MaxQuality{}.Choose(plans)
	if qf.Cost() > best.Cost() {
		t.Errorf("floor plan should not cost more than the champion")
	}
}

func TestCalibrationImprovesCardinality(t *testing.T) {
	chain := demoChain(t)
	ctx, svc := newCtx(t)
	opt := New(Options{SampleSize: 11})
	chosen, _, err := opt.Optimize(chain, MaxQuality{}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// With full-corpus calibration the filter selectivity is the true 5/11
	// and convert fanout 6/5, so the final cardinality estimate is 6.
	if got := chosen.Final.Cardinality; got < 5.9 || got > 6.1 {
		t.Errorf("calibrated final cardinality = %v, want ~6", got)
	}
	if svc.TotalCalls() == 0 {
		t.Error("calibration made no LLM calls")
	}

	// Without calibration the default estimates are generic.
	plain, _, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Final.Cardinality == chosen.Final.Cardinality {
		t.Error("calibration had no effect on estimates")
	}
}

func TestCalibrateSampleSmallerThanCorpus(t *testing.T) {
	chain := demoChain(t)
	ctx, _ := newCtx(t)
	calib, err := Calibrate(chain, 4, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := calib[1]; !ok {
		t.Error("no filter calibration")
	}
	if c := calib[1].Selectivity; c <= 0 || c > 1 {
		t.Errorf("selectivity = %v", c)
	}
}

func TestOptimizeValidation(t *testing.T) {
	chain := demoChain(t)
	if _, _, err := New(Options{}).Optimize(nil, MaxQuality{}, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, _, err := New(Options{}).Optimize(chain, nil, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, _, err := New(Options{SampleSize: 2}).Optimize(chain, MaxQuality{}, nil); err == nil {
		t.Error("sampling without ctx accepted")
	}
}

func TestChampionPlan(t *testing.T) {
	chain := demoChain(t)
	phys, err := ChampionPlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(phys) != 3 {
		t.Fatalf("champion plan len = %d", len(phys))
	}
	if !strings.Contains(phys[1].ID(), "atlas-large") {
		t.Errorf("champion filter = %s", phys[1].ID())
	}
}

func TestFrontierProperties(t *testing.T) {
	chain := demoChain(t)
	_, plans, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := Frontier(plans)
	if len(front) == 0 || len(front) > len(plans) {
		t.Fatalf("frontier = %d of %d", len(front), len(plans))
	}
	// No frontier plan dominates another.
	for i, a := range front {
		for j, b := range front {
			if i != j && dominates(a, b) {
				t.Errorf("frontier plan %d dominates %d", i, j)
			}
		}
	}
	// Every non-frontier plan is dominated by some frontier plan or ties.
	inFront := map[*Plan]bool{}
	for _, p := range front {
		inFront[p] = true
	}
	for _, p := range plans {
		if inFront[p] {
			continue
		}
		dominated := false
		for _, f := range front {
			if dominates(f, p) || equalEst(f, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-frontier plan %s not dominated", p)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		name  string
		param float64
		want  string
	}{
		{"max quality", 0, "max-quality"},
		{"MIN_COST", 0, "min-cost"},
		{"fastest", 0, "min-time"},
		{"quality-at-cost", 0.25, "quality-at-cost"},
		{"quality at time", 60, "quality-at-time"},
		{"cost at quality", 0.8, "cost-at-quality"},
		{"time at quality", 0.8, "time-at-quality"},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.name, c.param)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.name, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("ParsePolicy(%q) = %s, want %s", c.name, p.Name(), c.want)
		}
		if p.Describe() == "" {
			t.Errorf("%s: empty Describe", p.Name())
		}
	}
	bad := []struct {
		name  string
		param float64
	}{
		{"bogus", 0}, {"quality-at-cost", 0}, {"cost-at-quality", 2},
	}
	for _, c := range bad {
		if _, err := ParsePolicy(c.name, c.param); err == nil {
			t.Errorf("ParsePolicy(%q, %v) accepted", c.name, c.param)
		}
	}
}

func TestMaxPlansCap(t *testing.T) {
	chain := demoChain(t)
	_, plans, err := New(Options{MaxPlans: 3}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) > 3 {
		t.Errorf("MaxPlans not enforced: %d", len(plans))
	}
}

func TestPlanString(t *testing.T) {
	chain := demoChain(t)
	p, _, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "scan(sigmod-demo)") || !strings.Contains(s, " -> ") {
		t.Errorf("plan string = %q", s)
	}
}

func TestChooseEmpty(t *testing.T) {
	for _, p := range []Policy{MaxQuality{}, MinCost{}, MinTime{}, MaxQualityAtCost{1}} {
		if _, err := p.Choose(nil); err == nil {
			t.Errorf("%s: empty choose accepted", p.Name())
		}
	}
}
