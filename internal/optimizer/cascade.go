package optimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/vector"
)

// Cascade calibration defaults (see Options.CascadeSample and
// Options.CascadeMinRecall).
const (
	DefaultCascadeSample    = 256
	DefaultCascadeMinRecall = 0.995
)

// CascadeResolveModel is the escalation target every enumerated cascade
// uses: the catalog's highest-accuracy filter model, so a cascade's
// quality ceiling matches the champion plan it competes against.
const CascadeResolveModel = "atlas-large"

// cascadeVerifyModels are the cheap models enumerated as verify tiers.
var cascadeVerifyModels = []string{"atlas-medium", "atlas-small", "pigeon-7b"}

// CascadeCalibration is the result of the semantic-index calibration pass:
// fully-parameterized cascade candidates for one logical filter position,
// ready to join that position's physical options during enumeration.
type CascadeCalibration struct {
	// Pos is the logical chain position the candidates implement.
	Pos int
	// Candidates are the priced cascade strategies ({exact, lsh} prefilter
	// × verify model), each carrying its measured CascadeEstimates.
	Candidates []ops.Physical
}

// cascadeSampleItem is one gold-labeled calibration record with its
// sidecar embedding.
type cascadeSampleItem struct {
	rec  *record.Record
	name string
	vec  []float64
	gold bool
}

// CalibrateCascade measures whether a vector-prefilter cascade is viable
// for the chain's first filter and, if so, returns priced candidates.
//
// The pass is deliberately conservative about when it runs at all: the
// chain must open with a scan over an embedding-sidecar corpus
// (dataset.EmbeddingSource) whose records carry ground truth, the first
// downstream operator must be a natural-language filter (deeper positions
// see derived records that may no longer resolve in the sidecar), and the
// plan must not target cluster scatter (the sidecar index cannot ship to
// remote workers). Anything else returns (nil, nil) — cascade is an
// optimization, never a requirement.
//
// Calibration itself follows the paper's sentinel-sampling discipline, with
// one sanctioned extension: the sample's gold labels are used directly.
// They supply the Rocchio probe (positive minus negative embedding
// centroid), the keep threshold (the score quantile retaining
// CascadeMinRecall of sample positives), and the honest quality estimate —
// each candidate's end-to-end decisions on the sample are scored against
// gold with Laplace smoothing, so a ~256-record sample can never claim the
// near-perfect F1 a quality-floor policy would need to see to accept a
// cascade the evidence does not support. Verify- and resolve-tier sentinel
// calls are charged to the context's service like any other calibration.
func CalibrateCascade(chain []ops.Logical, opts Options, ctx *ops.Ctx) (*CascadeCalibration, error) {
	if ctx == nil || opts.NoCascade || opts.ClusterWorkers > 0 || len(chain) < 2 {
		return nil, nil
	}
	scan, ok := chain[0].(*ops.Scan)
	if !ok {
		return nil, nil
	}
	const pos = 1
	filter, ok := chain[pos].(*ops.Filter)
	if !ok || filter.UDF != nil || filter.Predicate == "" {
		return nil, nil
	}
	es, ok := scan.Source.(dataset.EmbeddingSource)
	if !ok {
		return nil, nil
	}
	ix, err := es.Embeddings()
	if err != nil {
		// A present-but-corrupt sidecar is a corpus integrity problem;
		// surface it rather than silently planning around it.
		return nil, err
	}
	if ix == nil || ix.Len() == 0 {
		return nil, nil
	}

	sampleSize := opts.CascadeSample
	if sampleSize <= 0 {
		sampleSize = DefaultCascadeSample
	}
	minRecall := opts.CascadeMinRecall
	if minRecall <= 0 {
		minRecall = DefaultCascadeMinRecall
	}
	sample, err := sampleRecords(scan.Source, sampleSize)
	if err != nil {
		return nil, err
	}

	var items []cascadeSampleItem
	var posVecs, negVecs [][]float64
	for _, r := range sample {
		truth := corpus.TruthOf(r)
		if truth == nil {
			// No gold labels, no honest calibration.
			return nil, nil
		}
		name := r.GetString("filename")
		vec, ok := ix.Vector(name)
		if !ok {
			continue
		}
		gold := llm.GoldFilterDecision(truth, filter.Predicate)
		items = append(items, cascadeSampleItem{rec: r, name: name, vec: vec, gold: gold})
		if gold {
			posVecs = append(posVecs, vec)
		} else {
			negVecs = append(negVecs, vec)
		}
	}
	// Below ~16 labeled records (or with a single-class sample) every
	// statistic here is noise; decline rather than mis-price.
	if len(items) < 16 {
		return nil, nil
	}
	probe := ops.BuildCascadeProbe(posVecs, negVecs)
	if probe == nil {
		return nil, nil
	}

	// Keep threshold: the positive-score quantile admitting minRecall of
	// sample positives, nudged below the boundary score so the boundary
	// positive itself survives.
	posScores := make([]float64, 0, len(posVecs))
	for _, v := range posVecs {
		posScores = append(posScores, ops.CascadeScore(vector.Cosine(probe, v)))
	}
	sort.Float64s(posScores)
	allowMiss := int(float64(len(posScores)) * (1 - minRecall))
	threshold := posScores[allowMiss] - 1e-9
	if threshold <= 0 {
		threshold = math.SmallestNonzeroFloat64
	}

	// Prefilter keep decisions per sample record, and keep rates measured
	// over the whole sidecar — the vectors are already paid for, so the
	// full-corpus pass costs only compute and prices the prefilter on its
	// real input distribution rather than the sample's.
	keepExact := make([]bool, len(items))
	var exactSurvivors []int
	for i, it := range items {
		if ops.CascadeScore(vector.Cosine(probe, it.vec)) >= threshold {
			keepExact[i] = true
			exactSurvivors = append(exactSurvivors, i)
		}
	}
	if len(exactSurvivors) == 0 {
		return nil, nil
	}
	exactKept := 0
	for i := 0; i < ix.Len(); i++ {
		_, vec := ix.At(i)
		if ops.CascadeScore(vector.Cosine(probe, vec)) >= threshold {
			exactKept++
		}
	}
	exactKeepRate := float64(exactKept) / float64(ix.Len())

	lshKeep, err := ops.CascadeLSHKeepSet(ix, probe, threshold)
	if err != nil {
		return nil, err
	}
	lshKeepRate := float64(len(lshKeep)) / float64(ix.Len())
	keepLSH := make([]bool, len(items))
	for i, it := range items {
		// LSH candidates are exact-rescored against the same threshold, so
		// the LSH keep-set is a subset of the exact one — verify verdicts
		// measured on exact survivors cover every LSH survivor too.
		keepLSH[i] = lshKeep[corpus.FilenameKey(it.name)]
	}

	// Sentinel verify/resolve verdicts on the exact survivors, per verify
	// model. Resolve verdicts are deterministic in (record, predicate), so
	// one escalation call per record serves every verify model.
	resolveDec := map[int]bool{}
	resolve := func(i int) (bool, error) {
		if dec, ok := resolveDec[i]; ok {
			return dec, nil
		}
		resp, err := ctx.Client.Complete(ops.FilterRequest(CascadeResolveModel, filter.Predicate, items[i].rec))
		if err != nil {
			return false, err
		}
		resolveDec[i] = resp.Decision
		return resp.Decision, nil
	}

	casc := &CascadeCalibration{Pos: pos}
	for _, vm := range cascadeVerifyModels {
		decisions := make(map[int]bool, len(exactSurvivors))
		escalated := 0
		for _, i := range exactSurvivors {
			resp, err := ctx.Client.Complete(ops.FilterRequest(vm, filter.Predicate, items[i].rec))
			if err != nil {
				return nil, err
			}
			dec := resp.Decision
			if resp.Confidence < ops.DefaultResolveConfidence {
				escalated++
				if dec, err = resolve(i); err != nil {
					return nil, err
				}
			}
			decisions[i] = dec
		}
		escRate := float64(escalated) / float64(len(exactSurvivors))

		for _, approx := range []bool{false, true} {
			keep, keepRate := keepExact, exactKeepRate
			if approx {
				keep, keepRate = keepLSH, lshKeepRate
			}
			tp, fp, fn, predicted := 0, 0, 0, 0
			for i, it := range items {
				pred := keep[i] && decisions[i]
				if pred {
					predicted++
				}
				switch {
				case pred && it.gold:
					tp++
				case pred && !it.gold:
					fp++
				case !pred && it.gold:
					fn++
				}
			}
			// Laplace-smoothed precision/recall: the +1/+2 pseudo-counts cap
			// the estimate a finite sample can support, which is what keeps
			// a 0.995 quality floor honest against a 256-record sample.
			p := float64(tp+1) / float64(tp+fp+2)
			r := float64(tp+1) / float64(tp+fn+2)
			f1 := 2 * p * r / (p + r)

			casc.Candidates = append(casc.Candidates, &ops.CascadeFilterExec{
				Filter:          filter,
				VerifyModel:     vm,
				ResolveModel:    CascadeResolveModel,
				Threshold:       threshold,
				QueryVec:        probe,
				Lookup:          ix,
				ApproxPrefilter: approx,
				Cal: &ops.CascadeEstimates{
					KeepRate:       keepRate,
					EscalationRate: escRate,
					Selectivity:    float64(predicted) / float64(len(items)),
					F1:             f1,
				},
			})
		}
	}
	if len(casc.Candidates) == 0 {
		return nil, nil
	}
	return casc, nil
}

// cascadeErr is a helper for Optimize's error wrapping.
func cascadeErr(err error) error {
	return fmt.Errorf("optimizer: cascade calibration: %w", err)
}
