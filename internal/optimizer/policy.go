package optimizer

import (
	"fmt"
	"math"
)

// Policy selects a plan from candidates (paper §2.1: "Users can specify
// whether they are interested in quality, runtime, or cost ... or specify a
// meaningful combination of them").
type Policy interface {
	// Name is the short policy identifier ("max-quality").
	Name() string
	// Describe renders the policy with its parameters.
	Describe() string
	// Choose selects from a non-empty candidate set.
	Choose(plans []*Plan) (*Plan, error)
}

// MaxQuality maximizes output quality, breaking ties by lower cost then
// lower time.
type MaxQuality struct{}

// Name implements Policy.
func (MaxQuality) Name() string { return "max-quality" }

// Describe implements Policy.
func (MaxQuality) Describe() string { return "maximize output quality" }

// Choose implements Policy.
func (MaxQuality) Choose(plans []*Plan) (*Plan, error) {
	return argBest(plans, func(a, b *Plan) bool {
		if a.Quality() != b.Quality() {
			return a.Quality() > b.Quality()
		}
		if a.Cost() != b.Cost() {
			return a.Cost() < b.Cost()
		}
		return a.Time() < b.Time()
	})
}

// MinCost minimizes dollar cost, breaking ties by higher quality then lower
// time.
type MinCost struct{}

// Name implements Policy.
func (MinCost) Name() string { return "min-cost" }

// Describe implements Policy.
func (MinCost) Describe() string { return "minimize execution cost" }

// Choose implements Policy.
func (MinCost) Choose(plans []*Plan) (*Plan, error) {
	return argBest(plans, func(a, b *Plan) bool {
		if a.Cost() != b.Cost() {
			return a.Cost() < b.Cost()
		}
		if a.Quality() != b.Quality() {
			return a.Quality() > b.Quality()
		}
		return a.Time() < b.Time()
	})
}

// MinTime minimizes runtime, breaking ties by higher quality then lower
// cost.
type MinTime struct{}

// Name implements Policy.
func (MinTime) Name() string { return "min-time" }

// Describe implements Policy.
func (MinTime) Describe() string { return "minimize execution time" }

// Choose implements Policy.
func (MinTime) Choose(plans []*Plan) (*Plan, error) {
	return argBest(plans, func(a, b *Plan) bool {
		if a.Time() != b.Time() {
			return a.Time() < b.Time()
		}
		if a.Quality() != b.Quality() {
			return a.Quality() > b.Quality()
		}
		return a.Cost() < b.Cost()
	})
}

// MaxQualityAtCost maximizes quality among plans within a dollar budget
// (falling back to the cheapest plan, flagged, when none qualifies).
type MaxQualityAtCost struct {
	// BudgetUSD is the inclusive cost cap.
	BudgetUSD float64
}

// Name implements Policy.
func (p MaxQualityAtCost) Name() string { return "quality-at-cost" }

// Describe implements Policy.
func (p MaxQualityAtCost) Describe() string {
	return fmt.Sprintf("maximize quality subject to cost <= $%.2f", p.BudgetUSD)
}

// Choose implements Policy.
func (p MaxQualityAtCost) Choose(plans []*Plan) (*Plan, error) {
	return constrained(plans,
		func(pl *Plan) bool { return pl.Cost() <= p.BudgetUSD },
		MaxQuality{}, MinCost{})
}

// MaxQualityAtTime maximizes quality among plans within a runtime cap (the
// paper's "maximize the output quality while being under a certain
// latency").
type MaxQualityAtTime struct {
	// CapSec is the inclusive runtime cap in seconds.
	CapSec float64
}

// Name implements Policy.
func (p MaxQualityAtTime) Name() string { return "quality-at-time" }

// Describe implements Policy.
func (p MaxQualityAtTime) Describe() string {
	return fmt.Sprintf("maximize quality subject to runtime <= %.0fs", p.CapSec)
}

// Choose implements Policy.
func (p MaxQualityAtTime) Choose(plans []*Plan) (*Plan, error) {
	return constrained(plans,
		func(pl *Plan) bool { return pl.Time() <= p.CapSec },
		MaxQuality{}, MinTime{})
}

// MinCostAtQuality minimizes cost among plans meeting a quality floor.
type MinCostAtQuality struct {
	// Floor is the inclusive minimum quality.
	Floor float64
}

// Name implements Policy.
func (p MinCostAtQuality) Name() string { return "cost-at-quality" }

// Describe implements Policy.
func (p MinCostAtQuality) Describe() string {
	return fmt.Sprintf("minimize cost subject to quality >= %.2f", p.Floor)
}

// Choose implements Policy.
func (p MinCostAtQuality) Choose(plans []*Plan) (*Plan, error) {
	return constrained(plans,
		func(pl *Plan) bool { return pl.Quality() >= p.Floor },
		MinCost{}, MaxQuality{})
}

// MinTimeAtQuality minimizes runtime among plans meeting a quality floor.
type MinTimeAtQuality struct {
	// Floor is the inclusive minimum quality.
	Floor float64
}

// Name implements Policy.
func (p MinTimeAtQuality) Name() string { return "time-at-quality" }

// Describe implements Policy.
func (p MinTimeAtQuality) Describe() string {
	return fmt.Sprintf("minimize runtime subject to quality >= %.2f", p.Floor)
}

// Choose implements Policy.
func (p MinTimeAtQuality) Choose(plans []*Plan) (*Plan, error) {
	return constrained(plans,
		func(pl *Plan) bool { return pl.Quality() >= p.Floor },
		MinTime{}, MaxQuality{})
}

// argBest returns the best plan under a strict less ordering.
func argBest(plans []*Plan, better func(a, b *Plan) bool) (*Plan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("optimizer: no plans to choose from")
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if better(p, best) {
			best = p
		}
	}
	return best, nil
}

// constrained selects with objective among plans passing ok; when none
// passes it falls back to fallback over all plans and flags the result.
func constrained(plans []*Plan, ok func(*Plan) bool, objective, fallback Policy) (*Plan, error) {
	var feasible []*Plan
	for _, p := range plans {
		if ok(p) {
			feasible = append(feasible, p)
		}
	}
	if len(feasible) > 0 {
		return objective.Choose(feasible)
	}
	chosen, err := fallback.Choose(plans)
	if err != nil {
		return nil, err
	}
	// Copy before flagging: the same *Plan may be chosen by other policies.
	flagged := *chosen
	flagged.ConstraintViolated = true
	return &flagged, nil
}

// ParsePolicy builds a policy from a name and optional parameter, the form
// the chat agent produces ("max quality", "min cost", "quality under 60
// seconds").
func ParsePolicy(name string, param float64) (Policy, error) {
	switch normalize(name) {
	case "max-quality", "maxquality", "quality", "best":
		return MaxQuality{}, nil
	case "min-cost", "mincost", "cost", "cheapest":
		return MinCost{}, nil
	case "min-time", "mintime", "time", "runtime", "fastest":
		return MinTime{}, nil
	case "quality-at-cost", "qualityatcost":
		if param <= 0 {
			return nil, fmt.Errorf("optimizer: quality-at-cost needs a positive budget")
		}
		return MaxQualityAtCost{BudgetUSD: param}, nil
	case "quality-at-time", "qualityattime":
		if param <= 0 {
			return nil, fmt.Errorf("optimizer: quality-at-time needs a positive cap")
		}
		return MaxQualityAtTime{CapSec: param}, nil
	case "cost-at-quality", "costatquality":
		if param <= 0 || param > 1 {
			return nil, fmt.Errorf("optimizer: cost-at-quality needs a floor in (0,1]")
		}
		return MinCostAtQuality{Floor: param}, nil
	case "time-at-quality", "timeatquality":
		if param <= 0 || param > 1 {
			return nil, fmt.Errorf("optimizer: time-at-quality needs a floor in (0,1]")
		}
		return MinTimeAtQuality{Floor: param}, nil
	default:
		return nil, fmt.Errorf("optimizer: unknown policy %q", name)
	}
}

func normalize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '_':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Frontier returns the Pareto-optimal subset of plans (non-dominated on
// cost, time, quality); experiments report it as the optimizer's trade-off
// curve.
func Frontier(plans []*Plan) []*Plan {
	return paretoPrune(plans)
}

// Spread summarizes a candidate set: min/max of each dimension. Useful in
// experiment output.
type Spread struct {
	MinCost, MaxCost       float64
	MinTime, MaxTime       float64
	MinQuality, MaxQuality float64
	NumPlans               int
}

// Summarize computes the Spread of a candidate set.
func Summarize(plans []*Plan) Spread {
	s := Spread{
		MinCost: math.Inf(1), MinTime: math.Inf(1), MinQuality: math.Inf(1),
		MaxCost: math.Inf(-1), MaxTime: math.Inf(-1), MaxQuality: math.Inf(-1),
		NumPlans: len(plans),
	}
	for _, p := range plans {
		s.MinCost = math.Min(s.MinCost, p.Cost())
		s.MaxCost = math.Max(s.MaxCost, p.Cost())
		s.MinTime = math.Min(s.MinTime, p.Time())
		s.MaxTime = math.Max(s.MaxTime, p.Time())
		s.MinQuality = math.Min(s.MinQuality, p.Quality())
		s.MaxQuality = math.Max(s.MaxQuality, p.Quality())
	}
	return s
}
