package optimizer

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ops"
)

// Fingerprint derives a canonical identity for an optimization problem:
// the logical chain, the selecting policy (with its parameters), and the
// optimizer options that shape the plan space. Two queries with equal
// fingerprints are guaranteed to optimize to the same physical plan over
// the same registered dataset, which is what lets the serving layer's
// cross-query plan cache skip re-optimization on repeat queries.
//
// The encoding is deliberately richer than the Describe() plan display:
// a Convert folds in its full target field list (name, type, and
// description), so two schemas that merely share a name cannot collide.
// Scans are identified by dataset registration name — the cache assumes a
// registered name keeps denoting the same data, which holds within one
// serving process.
func Fingerprint(chain []ops.Logical, policy Policy, opts Options) string {
	h := sha256.New()
	for _, op := range chain {
		io.WriteString(h, canonicalOp(op))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "policy|%s", policy.Describe())
	h.Write([]byte{0})
	fmt.Fprintf(h, "opts|pruning=%t|sample=%d|maxplans=%d|pipelined=%t|partitions=%d|cluster=%d",
		opts.Pruning, opts.SampleSize, opts.MaxPlans, opts.Pipelined, opts.Partitions, opts.ClusterWorkers)
	// Cascade knobs shape the enumerated plan space (and the calibrated
	// thresholds inside it), so plans optimized with different cascade
	// settings must occupy distinct plan-cache slots.
	fmt.Fprintf(h, "|nocascade=%t|cascadesample=%d|cascaderecall=%g",
		opts.NoCascade, opts.CascadeSample, opts.CascadeMinRecall)
	// Re-optimization knobs and seeded priors shape both the enumerated
	// orderings and the executor's mid-flight behaviour, so they must
	// separate plan-cache slots too. Priors are encoded sorted by
	// position for map-order independence.
	fmt.Fprintf(h, "|reoptafter=%d|reoptdiv=%g", opts.ReoptAfterBatches, opts.ReoptDivergence)
	positions := make([]int, 0, len(opts.Priors))
	for pos := range opts.Priors {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		oc := opts.Priors[pos]
		fmt.Fprintf(h, "|prior%d=%g:%g", pos, oc.Selectivity, oc.Fanout)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalOp renders one logical operator for fingerprinting. Operators
// whose Describe already captures their full semantics use it directly;
// the others get explicit encodings.
func canonicalOp(op ops.Logical) string {
	switch o := op.(type) {
	case *ops.Scan:
		return fmt.Sprintf("scan|%s|%s", o.Source.Name(), o.Source.Schema().Name())
	case *ops.Filter:
		if o.UDF != nil {
			// UDFs have no stable identity beyond their label; include it
			// so differently-named UDFs at least separate.
			return "filter-udf|" + o.UDFName
		}
		return "filter|" + o.Predicate
	case *ops.Convert:
		var b strings.Builder
		fmt.Fprintf(&b, "convert|%s|%s|%s", o.Target.Name(), o.Desc, o.Card)
		for _, f := range o.Target.Fields() {
			fmt.Fprintf(&b, "|%s:%s:%s", f.Name, f.Type, f.Desc)
		}
		return b.String()
	default:
		return op.Describe()
	}
}
