package optimizer

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/schema"
)

const (
	broadPredicate  = "This is a support ticket"
	narrowPredicate = "The ticket is urgent and needs immediate attention"
)

// twoFilterChain is the canonical re-orderable shape: scan, then two pure
// NL filters.
func twoFilterChain(t *testing.T) []ops.Logical {
	t.Helper()
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: 48, UrgentRate: 0.3, Seed: 9})
	docs, err := corpus.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewDocsSource("tickets", schema.TextFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: broadPredicate},
		&ops.Filter{Predicate: narrowPredicate},
	}
}

// misSeededPlan optimizes the two-filter chain under priors claiming the
// broad filter prunes hard and the narrow one keeps everything, so the
// champion runs broad-first — the order Replan must recover from.
func misSeededPlan(t *testing.T) *Plan {
	t.Helper()
	opt := New(Options{
		ReoptAfterBatches: 2,
		Priors:            Calibration{1: {Selectivity: 0.05}, 2: {Selectivity: 0.95}},
	})
	plan, _, err := opt.Optimize(twoFilterChain(t), MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := planPredicate(plan, 1); got != broadPredicate {
		t.Fatalf("mis-seeded champion runs %q first, want the broad filter", got)
	}
	return plan
}

func planPredicate(p *Plan, pos int) string {
	return p.Logical[pos].(*ops.Filter).Predicate
}

func TestReorderableWindow(t *testing.T) {
	plan := misSeededPlan(t)
	lo, hi, ok := ReorderableWindow(plan)
	if !ok || lo != 1 || hi != 3 {
		t.Fatalf("window = [%d, %d) ok=%t, want [1, 3) over the filter pair", lo, hi, ok)
	}

	// A single filter is not a window.
	opt := New(Options{})
	chain := twoFilterChain(t)[:2]
	single, _, err := opt.Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ReorderableWindow(single); ok {
		t.Fatal("one filter reported as a re-orderable window")
	}

	// A UDF filter breaks the run: its purity is unknown.
	udfChain := twoFilterChain(t)
	udfChain[2] = &ops.Filter{Predicate: "u", UDFName: "u", UDF: func(r *record.Record) (bool, error) { return true, nil }}
	udfPlan, _, err := opt.Optimize(udfChain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ReorderableWindow(udfPlan); ok {
		t.Fatal("UDF filter included in a re-orderable window")
	}
}

func TestFilterOrderingsGatedOnDifferingSelectivities(t *testing.T) {
	chain := twoFilterChain(t)
	if got := len(filterOrderings(chain, nil)); got != 1 {
		t.Fatalf("uncalibrated chain expanded %d orderings, want identity only", got)
	}
	same := Calibration{1: {Selectivity: 0.4}, 2: {Selectivity: 0.4}}
	if got := len(filterOrderings(chain, same)); got != 1 {
		t.Fatalf("equal selectivities expanded %d orderings, want identity only", got)
	}
	diff := Calibration{1: {Selectivity: 0.9}, 2: {Selectivity: 0.2}}
	if got := len(filterOrderings(chain, diff)); got != 2 {
		t.Fatalf("differing selectivities expanded %d orderings, want both orders", got)
	}
}

func TestReplanTriggersAndSwaps(t *testing.T) {
	plan := misSeededPlan(t)
	obs := []StageObservation{
		{Pos: 1, In: 16, Out: 16, CostUSD: 0.1}, // "selective" filter kept everything
		{Pos: 2, In: 16, Out: 5, CostUSD: 0.1},  // "permissive" filter pruned 11/16
	}
	dec := Replan(plan, obs, 1, 3)
	if !dec.Triggered {
		t.Fatalf("divergence %.3f did not trigger at threshold %.3f", dec.Divergence, dec.Threshold)
	}
	if !dec.Swapped || dec.NewPlan == nil {
		t.Fatal("inverted selectivities did not produce a swap")
	}
	if got := planPredicate(dec.NewPlan, 1); got != narrowPredicate {
		t.Fatalf("swapped plan runs %q first, want the narrow filter", got)
	}
	// Cheaper than the estimate-corrected original order (the original
	// plan's own cost still reflects the bogus optimistic priors).
	if dec.NewPlan.Cost() >= dec.Corrected.Cost() {
		t.Fatalf("swapped plan costs $%.4f, corrected original $%.4f — swap must be cheaper",
			dec.NewPlan.Cost(), dec.Corrected.Cost())
	}
	if len(dec.Perm) != 2 || dec.Perm[0] != 2 || dec.Perm[1] != 1 {
		t.Fatalf("perm = %v, want [2 1]", dec.Perm)
	}
	// The swap permutes operators, never models (byte-identity contract).
	for pos := 1; pos < 3; pos++ {
		oldF := plan.Ops[pos].(*ops.LLMFilterExec)
		newF := dec.NewPlan.Ops[pos].(*ops.LLMFilterExec)
		if oldF.Model != newF.Model {
			t.Fatalf("position %d changed model %s -> %s", pos, oldF.Model, newF.Model)
		}
	}
}

func TestReplanBelowThresholdCorrectsOnly(t *testing.T) {
	plan := misSeededPlan(t)
	// Observations matching the estimates: 5% through the broad stage,
	// 95% of the remainder through the narrow one.
	obs := []StageObservation{
		{Pos: 1, In: 100, Out: 5},
		{Pos: 2, In: 100, Out: 95},
	}
	dec := Replan(plan, obs, 1, 3)
	if dec.Swapped {
		t.Fatal("on-estimate observations still swapped")
	}
	if dec.Corrected == nil {
		t.Fatal("corrected plan missing — the plan cache depends on it")
	}

	// Divergent observations below the window fall back to correction:
	// passing lo = hi = 0 (the post-run path) must never swap, but the
	// corrected plan must absorb the observed selectivity.
	obs = []StageObservation{{Pos: 1, In: 48, Out: 48}}
	dec = Replan(plan, obs, 0, 0)
	if !dec.Triggered {
		t.Fatalf("divergence %.3f not detected", dec.Divergence)
	}
	if dec.Swapped {
		t.Fatal("correction-only call swapped")
	}
	got := dec.Corrected.PerOp[1].Cardinality / dec.Corrected.PerOp[0].Cardinality
	if got < 0.99 || got > 1.01 {
		t.Fatalf("corrected selectivity %.3f, want ~1.0 from the observation", got)
	}
}

func TestReplanZeroSelectivityGuard(t *testing.T) {
	plan := misSeededPlan(t)
	dec := Replan(plan, []StageObservation{{Pos: 1, In: 16, Out: 0}}, 0, 0)
	for pos, est := range dec.Corrected.PerOp {
		if est.Cardinality <= 0 {
			t.Fatalf("zero observed selectivity wiped the estimate at position %d", pos)
		}
	}
}

func TestEffectiveThreshold(t *testing.T) {
	if got := EffectiveThreshold(Options{}); got != DefaultReoptDivergence {
		t.Fatalf("default threshold = %v, want %v", got, DefaultReoptDivergence)
	}
	if got := EffectiveThreshold(Options{ReoptDivergence: 0.7}); got != 0.7 {
		t.Fatalf("explicit threshold = %v, want 0.7", got)
	}
}

func TestFingerprintSeparatesReoptKnobs(t *testing.T) {
	chain := twoFilterChain(t)
	base := Fingerprint(chain, MaxQuality{}, Options{})
	reopt := Fingerprint(chain, MaxQuality{}, Options{ReoptAfterBatches: 2})
	prior := Fingerprint(chain, MaxQuality{}, Options{Priors: Calibration{1: {Selectivity: 0.05}}})
	if base == reopt || base == prior || reopt == prior {
		t.Fatalf("fingerprints do not separate reopt knobs: base=%s reopt=%s prior=%s",
			shorten(base), shorten(reopt), shorten(prior))
	}
}

func shorten(s string) string {
	if i := strings.IndexByte(s, ':'); i > 0 && len(s) > i+13 {
		return s[:i+13]
	}
	return s
}
