package optimizer

import (
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ops"
)

// indexedChain builds scan(file-backed indexed corpus) -> filter.
func indexedChain(t *testing.T, n int) []ops.Logical {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 13})
	if _, err := corpus.SaveNDJSON(path, g, 13, nil); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewNDJSONSource("tickets", path)
	if err != nil {
		t.Fatal(err)
	}
	return []ops.Logical{
		&ops.Scan{Source: src},
		&ops.Filter{Predicate: "The ticket is urgent"},
	}
}

// TestPartitionAwareTimeEstimates: optimizing for a partition fan-out
// stamps the scan, shortens the pipelined runtime estimate by roughly the
// fan-out, and leaves cost and quality untouched — partitioning moves
// work, it does not change it.
func TestPartitionAwareTimeEstimates(t *testing.T) {
	chain := indexedChain(t, 64)
	base, _, err := New(Options{Pipelined: true}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parted, _, err := New(Options{Pipelined: true, Partitions: 8}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := parted.Ops[0].(*ops.ScanExec)
	if !ok || sc.Parts != 8 {
		t.Fatalf("optimizer did not stamp the fan-out onto the scan: %+v", parted.Ops[0])
	}
	if ops.EffectivePartitions(parted.Ops[0]) != 8 {
		t.Fatalf("effective partitions = %d, want 8", ops.EffectivePartitions(parted.Ops[0]))
	}
	if parted.Time() >= base.Time() {
		t.Errorf("partitioned estimate %.3fs not below single-reader %.3fs", parted.Time(), base.Time())
	}
	// The whole chain is one streamable prefix, so the estimate should
	// shrink by about the fan-out.
	if ratio := base.Time() / parted.Time(); ratio < 4 {
		t.Errorf("8-way fan-out shortened the estimate only %.1fx", ratio)
	}
	if parted.Cost() != base.Cost() || parted.Quality() != base.Quality() {
		t.Errorf("partitioning changed cost/quality: %v/%v vs %v/%v",
			parted.Cost(), parted.Quality(), base.Cost(), base.Quality())
	}
}

// TestPartitionEstimateClampsToSource: asking for more partitions than
// the corpus has checkpoints clamps to what the source can provide, and
// an unpartitionable source keeps the single-reader estimate.
func TestPartitionEstimateClampsToSource(t *testing.T) {
	chain := indexedChain(t, 10)
	plan, _, err := New(Options{Pipelined: true, Partitions: 64}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ops.EffectivePartitions(plan.Ops[0]); got != 10 {
		t.Errorf("effective partitions = %d, want clamp to 10 checkpoints", got)
	}
}

// TestFingerprintSeparatesPartitions: the plan-cache key must change with
// the partition fan-out, or a cached single-reader plan would serve a
// query that asked for shards (and vice versa).
func TestFingerprintSeparatesPartitions(t *testing.T) {
	chain := indexedChain(t, 16)
	a := Fingerprint(chain, MaxQuality{}, Options{Pipelined: true})
	b := Fingerprint(chain, MaxQuality{}, Options{Pipelined: true, Partitions: 8})
	c := Fingerprint(chain, MaxQuality{}, Options{Pipelined: true, Partitions: 4})
	if a == b || b == c || a == c {
		t.Fatalf("fingerprints collide across fan-outs: %s %s %s", a, b, c)
	}
}
