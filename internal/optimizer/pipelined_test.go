package optimizer

import (
	"math"
	"testing"

	"repro/internal/ops"
)

// TestPipelinedTimeIsMaxStageNotSum: for an all-streamable chain the
// pipelined runtime estimate equals the slowest stage's time delta, and
// Plan.Time reports it only when the optimizer targeted the streaming
// engine.
func TestPipelinedTimeIsMaxStageNotSum(t *testing.T) {
	chain := demoChain(t)
	plan, _, err := New(Options{Pipelined: true}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var maxDelta, prev float64
	for _, est := range plan.PerOp {
		if dt := est.TimeSec - prev; dt > maxDelta {
			maxDelta = dt
		}
		prev = est.TimeSec
	}
	if math.Abs(plan.TimePipelined-maxDelta) > 1e-9 {
		t.Errorf("TimePipelined = %.3f, want max stage delta %.3f", plan.TimePipelined, maxDelta)
	}
	if plan.Time() != plan.TimePipelined {
		t.Errorf("Time() = %.3f, want pipelined %.3f", plan.Time(), plan.TimePipelined)
	}
	if plan.TimePipelined >= plan.Final.TimeSec {
		t.Errorf("pipelined estimate %.3f not below sequential sum %.3f",
			plan.TimePipelined, plan.Final.TimeSec)
	}

	seqPlan, _, err := New(Options{}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seqPlan.Time() != seqPlan.Final.TimeSec {
		t.Errorf("sequential Time() = %.3f, want sum %.3f", seqPlan.Time(), seqPlan.Final.TimeSec)
	}
}

// TestPruningConsistentWithPipelinedSelection: with the streaming model
// enabled, Pareto pruning judges plans by the same pipelined time metric
// the policy uses, so the pipelined-fastest plan is never pruned away.
func TestPruningConsistentWithPipelinedSelection(t *testing.T) {
	chain := demoChain(t)
	full, _, err := New(Options{Pipelined: true}).Optimize(chain, MinTime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := New(Options{Pipelined: true, Pruning: true}).Optimize(chain, MinTime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Time() != full.Time() {
		t.Errorf("pruned min-time plan %.3fs != unpruned optimum %.3fs (pruning used a different time metric)",
			pruned.Time(), full.Time())
	}
}

// TestPipelinedTimeBlockingBarrier: a blocking operator (sort) contributes
// its full time on top of the preceding streamable segment instead of
// overlapping with it.
func TestPipelinedTimeBlockingBarrier(t *testing.T) {
	chain := append(demoChain(t), &ops.Sort{Field: "name"})
	plan, _, err := New(Options{Pipelined: true}).Optimize(chain, MaxQuality{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ops) != 4 {
		t.Fatalf("plan has %d ops", len(plan.Ops))
	}
	if ops.IsStreamable(plan.Ops[3]) {
		t.Fatal("sort should be a blocking stage")
	}
	var maxDelta, prev float64
	deltas := make([]float64, len(plan.PerOp))
	for i, est := range plan.PerOp {
		deltas[i] = est.TimeSec - prev
		prev = est.TimeSec
	}
	for _, dt := range deltas[:3] {
		if dt > maxDelta {
			maxDelta = dt
		}
	}
	want := maxDelta + deltas[3]
	if math.Abs(plan.TimePipelined-want) > 1e-9 {
		t.Errorf("TimePipelined = %.6f, want segment max + sort = %.6f", plan.TimePipelined, want)
	}
}
