// Package pdfsim implements a tiny "PDF-like" container format standing in
// for real PDFs (see DESIGN.md substitutions). The corpus generators write
// documents in this format and the dataset layer's PDF reader extracts text
// from it, exercising the same format-sniffing and text-extraction code
// path that real Palimpzest exercises with a PDF parser.
//
// Layout:
//
//	%PDF-SIM 1.0\n
//	Title: <title line>\n
//	Pages: <n>\n
//	\n
//	<page text>\n
//	\f                      (form feed between pages)
//	<page text>\n
//	%%EOF\n
package pdfsim

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Magic is the header line identifying the container.
const Magic = "%PDF-SIM 1.0"

// trailer terminates the container.
const trailer = "%%EOF"

// pageSize is the number of text bytes per simulated page.
const pageSize = 1600

// Document is a parsed simulated PDF.
type Document struct {
	Title string
	Pages []string
}

// Text returns the full extracted text of the document.
func (d *Document) Text() string { return strings.Join(d.Pages, "\n") }

// Encode wraps text into the container format, splitting it into pages.
func Encode(title, text string) []byte {
	pages := paginate(text)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", Magic)
	fmt.Fprintf(&b, "Title: %s\n", sanitizeLine(title))
	fmt.Fprintf(&b, "Pages: %d\n\n", len(pages))
	for i, p := range pages {
		if i > 0 {
			b.WriteString("\f")
		}
		b.WriteString(p)
		if !strings.HasSuffix(p, "\n") {
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "%s\n", trailer)
	return b.Bytes()
}

func sanitizeLine(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "\n", " "), "\r", " ")
}

func paginate(text string) []string {
	if text == "" {
		return []string{""}
	}
	var pages []string
	for len(text) > pageSize {
		// Break at the last newline before the page boundary when possible.
		cut := pageSize
		if i := strings.LastIndexByte(text[:pageSize], '\n'); i > pageSize/2 {
			cut = i + 1
		}
		pages = append(pages, text[:cut])
		text = text[cut:]
	}
	pages = append(pages, text)
	return pages
}

// IsPDF reports whether data begins with the container magic.
func IsPDF(data []byte) bool {
	return bytes.HasPrefix(data, []byte(Magic))
}

// Decode parses a container and returns the document. It validates the
// header, page count, and trailer.
func Decode(data []byte) (*Document, error) {
	s := string(data)
	lines := strings.SplitN(s, "\n", 4)
	if len(lines) < 4 || lines[0] != Magic {
		return nil, fmt.Errorf("pdfsim: bad or missing magic header")
	}
	title, ok := strings.CutPrefix(lines[1], "Title: ")
	if !ok {
		return nil, fmt.Errorf("pdfsim: missing Title header")
	}
	pagesDecl, ok := strings.CutPrefix(lines[2], "Pages: ")
	if !ok {
		return nil, fmt.Errorf("pdfsim: missing Pages header")
	}
	n, err := strconv.Atoi(strings.TrimSpace(pagesDecl))
	if err != nil || n < 1 {
		return nil, fmt.Errorf("pdfsim: bad page count %q", pagesDecl)
	}
	body := lines[3]
	if !strings.HasPrefix(body, "\n") {
		return nil, fmt.Errorf("pdfsim: missing blank line after header")
	}
	body = body[1:]
	end := strings.LastIndex(body, trailer)
	if end < 0 {
		return nil, fmt.Errorf("pdfsim: missing %s trailer", trailer)
	}
	body = strings.TrimSuffix(body[:end], "\n")
	pages := strings.Split(body, "\f")
	if len(pages) != n {
		return nil, fmt.Errorf("pdfsim: header declares %d pages, found %d", n, len(pages))
	}
	for i, p := range pages {
		pages[i] = strings.TrimSuffix(p, "\n")
	}
	return &Document{Title: title, Pages: pages}, nil
}

// ExtractText is the one-call Decode(...).Text() convenience used by the
// dataset layer.
func ExtractText(data []byte) (string, error) {
	d, err := Decode(data)
	if err != nil {
		return "", err
	}
	return d.Text(), nil
}
