package pdfsim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	text := "Line one.\nLine two.\nLine three."
	data := Encode("A Study", text)
	if !IsPDF(data) {
		t.Fatal("encoded document not recognized as PDF")
	}
	doc, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "A Study" {
		t.Errorf("title = %q", doc.Title)
	}
	if got := doc.Text(); got != text {
		t.Errorf("text = %q, want %q", got, text)
	}
}

func TestEncodeMultiPage(t *testing.T) {
	// Build text comfortably bigger than one page.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString("This is sentence number with some padding text to fill pages.\n")
	}
	data := Encode("Long Doc", b.String())
	doc, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Pages) < 2 {
		t.Fatalf("pages = %d, want >= 2", len(doc.Pages))
	}
	joined := doc.Text()
	if !strings.Contains(joined, "sentence number") {
		t.Error("page text lost")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"no magic":      "hello world\nTitle: x\nPages: 1\n\nbody\n%%EOF\n",
		"no title":      Magic + "\nNope: x\nPages: 1\n\nbody\n%%EOF\n",
		"no pages":      Magic + "\nTitle: x\nNope: 1\n\nbody\n%%EOF\n",
		"bad count":     Magic + "\nTitle: x\nPages: zero\n\nbody\n%%EOF\n",
		"zero count":    Magic + "\nTitle: x\nPages: 0\n\nbody\n%%EOF\n",
		"no trailer":    Magic + "\nTitle: x\nPages: 1\n\nbody\n",
		"count too big": Magic + "\nTitle: x\nPages: 3\n\nbody\n%%EOF\n",
	}
	for name, in := range cases {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

func TestIsPDFNegative(t *testing.T) {
	if IsPDF([]byte("plain text")) {
		t.Error("plain text recognized as PDF")
	}
	if IsPDF(nil) {
		t.Error("nil recognized as PDF")
	}
}

func TestExtractText(t *testing.T) {
	data := Encode("T", "payload text")
	got, err := ExtractText(data)
	if err != nil || got != "payload text" {
		t.Fatalf("ExtractText = %q, %v", got, err)
	}
	if _, err := ExtractText([]byte("junk")); err == nil {
		t.Error("ExtractText accepted junk")
	}
}

func TestTitleSanitized(t *testing.T) {
	data := Encode("multi\nline\rtitle", "x")
	doc, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(doc.Title, "\n\r") {
		t.Errorf("title not sanitized: %q", doc.Title)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(title, text string) bool {
		// Form feeds inside the text would collide with the page
		// separator; the corpus generators never emit them.
		if strings.ContainsAny(text, "\f") || strings.Contains(text, "%%EOF") {
			return true
		}
		doc, err := Decode(Encode(title, text))
		if err != nil {
			return false
		}
		// Pagination may inject newlines at page joins; compare modulo
		// newline placement.
		norm := func(s string) string { return strings.ReplaceAll(s, "\n", "") }
		return norm(doc.Text()) == norm(text)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
