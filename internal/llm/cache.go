package llm

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Completer is the completion surface operators call. Service, RetryClient,
// and CachedClient all implement it, so executors can stack retry and
// caching layers freely.
type Completer interface {
	Complete(req Request) (*Response, error)
}

// Cache memoizes completion responses by semantic request identity, the way
// Palimpzest caches LLM results so that re-running a pipeline over unchanged
// data costs nothing. Optionally bounded: with a capacity, the least
// recently used entry is evicted when a new one would exceed it, so
// sustained serving traffic cannot grow the cache without limit. Safe for
// concurrent use.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      int
	misses    int
	evictions int
	saved     float64
}

// cacheEntry is one LRU node: the key (so eviction can delete from the
// map) and the stored response.
type cacheEntry struct {
	key  string
	resp Response
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache { return NewCacheLRU(0) }

// NewCacheLRU returns an empty cache bounded to capacity entries with
// least-recently-used eviction. capacity <= 0 means unbounded (the
// NewCache behavior).
func NewCacheLRU(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// key derives the cache identity of a request: model, task, the semantic
// task inputs, and the record's content digest. The raw prompt text is
// deliberately excluded — equivalent requests with cosmetically different
// prompts still hit.
func (c *Cache) key(req Request) string {
	fields := make([]string, len(req.Fields))
	for i, f := range req.Fields {
		fields[i] = f.Name + ":" + f.Type.String()
	}
	sort.Strings(fields)
	return strings.Join([]string{
		req.Model,
		req.Task.String(),
		req.Predicate,
		strings.Join(fields, ","),
		fmt.Sprint(req.OneToMany),
		fmt.Sprintf("%.3f", req.QualityBoost),
		recordDigest(req.Record),
	}, "|")
}

// CacheStats is a snapshot of cache effectiveness.
type CacheStats struct {
	// Hits and Misses count lookups.
	Hits, Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
	// SavedUSD is the dollar cost hits avoided paying.
	SavedUSD float64
	// Len and Capacity describe occupancy (Capacity 0 = unbounded).
	Len, Capacity int
}

// Stats reports cache effectiveness: hits, misses, evictions, and dollars
// saved.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		SavedUSD: c.saved, Len: len(c.entries), Capacity: c.capacity,
	}
}

// Len returns the number of cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops all entries (statistics are retained).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order = list.New()
}

// lookup returns the cached response for key, updating hit/miss counters
// and recency order.
func (c *Cache) lookup(key string) (Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return Response{}, false
	}
	c.hits++
	entry := el.Value.(*cacheEntry)
	c.saved += entry.resp.CostUSD
	c.order.MoveToFront(el)
	return entry.resp, true
}

// store inserts a response, evicting the least recently used entry when
// the capacity bound would be exceeded.
func (c *Cache) store(key string, resp Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss on the same key already stored it; refresh.
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
}

// CachedClient layers a Cache over any Completer. Hits return a copy of the
// stored response with zero cost and negligible latency; misses pass
// through and populate the cache.
type CachedClient struct {
	inner Completer
	cache *Cache
}

// NewCachedClient wraps inner with cache.
func NewCachedClient(inner Completer, cache *Cache) (*CachedClient, error) {
	if inner == nil || cache == nil {
		return nil, fmt.Errorf("llm: cached client needs inner completer and cache")
	}
	return &CachedClient{inner: inner, cache: cache}, nil
}

// Cache exposes the underlying cache (for statistics).
func (c *CachedClient) Cache() *Cache { return c.cache }

// Complete implements Completer.
func (c *CachedClient) Complete(req Request) (*Response, error) {
	if req.Record == nil {
		// Let the inner client produce its usual validation error.
		return c.inner.Complete(req)
	}
	key := c.cache.key(req)
	if cached, ok := c.cache.lookup(key); ok {
		hit := cached
		hit.CostUSD = 0
		hit.Latency = 0
		hit.Cached = true
		hit.Extractions = copyExtractions(cached.Extractions)
		return &hit, nil
	}

	resp, err := c.inner.Complete(req)
	if err != nil {
		return nil, err
	}
	stored := *resp
	stored.Extractions = copyExtractions(resp.Extractions)
	c.cache.store(key, stored)
	return resp, nil
}

func copyExtractions(exs []map[string]string) []map[string]string {
	if exs == nil {
		return nil
	}
	out := make([]map[string]string, len(exs))
	for i, ex := range exs {
		m := make(map[string]string, len(ex))
		for k, v := range ex {
			m[k] = v
		}
		out[i] = m
	}
	return out
}
