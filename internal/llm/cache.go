package llm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Completer is the completion surface operators call. Service, RetryClient,
// and CachedClient all implement it, so executors can stack retry and
// caching layers freely.
type Completer interface {
	Complete(req Request) (*Response, error)
}

// Cache memoizes completion responses by semantic request identity, the way
// Palimpzest caches LLM results so that re-running a pipeline over unchanged
// data costs nothing. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]Response
	hits    int
	misses  int
	saved   float64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{entries: map[string]Response{}} }

// key derives the cache identity of a request: model, task, the semantic
// task inputs, and the record's content digest. The raw prompt text is
// deliberately excluded — equivalent requests with cosmetically different
// prompts still hit.
func (c *Cache) key(req Request) string {
	fields := make([]string, len(req.Fields))
	for i, f := range req.Fields {
		fields[i] = f.Name + ":" + f.Type.String()
	}
	sort.Strings(fields)
	return strings.Join([]string{
		req.Model,
		req.Task.String(),
		req.Predicate,
		strings.Join(fields, ","),
		fmt.Sprint(req.OneToMany),
		fmt.Sprintf("%.3f", req.QualityBoost),
		recordDigest(req.Record),
	}, "|")
}

// Stats reports cache effectiveness: hits, misses, and dollars saved.
func (c *Cache) Stats() (hits, misses int, savedUSD float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.saved
}

// Len returns the number of cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops all entries (statistics are retained).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]Response{}
}

// CachedClient layers a Cache over any Completer. Hits return a copy of the
// stored response with zero cost and negligible latency; misses pass
// through and populate the cache.
type CachedClient struct {
	inner Completer
	cache *Cache
}

// NewCachedClient wraps inner with cache.
func NewCachedClient(inner Completer, cache *Cache) (*CachedClient, error) {
	if inner == nil || cache == nil {
		return nil, fmt.Errorf("llm: cached client needs inner completer and cache")
	}
	return &CachedClient{inner: inner, cache: cache}, nil
}

// Cache exposes the underlying cache (for statistics).
func (c *CachedClient) Cache() *Cache { return c.cache }

// Complete implements Completer.
func (c *CachedClient) Complete(req Request) (*Response, error) {
	if req.Record == nil {
		// Let the inner client produce its usual validation error.
		return c.inner.Complete(req)
	}
	key := c.cache.key(req)
	c.cache.mu.Lock()
	if cached, ok := c.cache.entries[key]; ok {
		c.cache.hits++
		c.cache.saved += cached.CostUSD
		c.cache.mu.Unlock()
		hit := cached
		hit.CostUSD = 0
		hit.Latency = 0
		hit.Extractions = copyExtractions(cached.Extractions)
		return &hit, nil
	}
	c.cache.misses++
	c.cache.mu.Unlock()

	resp, err := c.inner.Complete(req)
	if err != nil {
		return nil, err
	}
	stored := *resp
	stored.Extractions = copyExtractions(resp.Extractions)
	c.cache.mu.Lock()
	c.cache.entries[key] = stored
	c.cache.mu.Unlock()
	return resp, nil
}

func copyExtractions(exs []map[string]string) []map[string]string {
	if exs == nil {
		return nil
	}
	out := make([]map[string]string, len(exs))
	for i, ex := range exs {
		m := make(map[string]string, len(ex))
		for k, v := range ex {
			m[k] = v
		}
		out[i] = m
	}
	return out
}
