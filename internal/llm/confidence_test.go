package llm

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
)

// TestFilterConfidenceCalibration checks the contract the cascade's verify
// tier depends on: filter responses carry a confidence in [0,1); correct
// answers always score at least 0.5; wrong answers score below 0.55 (so a
// 0.5 threshold escalates the vast majority of mistakes); and the gold
// model (atlas-large) is always fully in the confident band.
func TestFilterConfidenceCalibration(t *testing.T) {
	svc := NewService()
	sch := schema.TextFile
	pred := "The ticket is urgent and needs immediate attention"

	for _, model := range []string{"atlas-large", "atlas-medium", "atlas-small", "pigeon-7b"} {
		var wrongHigh, n int
		for i := 0; i < 400; i++ {
			urgent := i%3 == 0
			truth := &corpus.Truth{Labels: map[string]bool{"urgent": urgent}}
			r, err := record.New(sch, map[string]any{
				"filename": fmt.Sprintf("t%d.txt", i),
				"contents": fmt.Sprintf("ticket %d about database outages and billing", i),
			})
			if err != nil {
				t.Fatal(err)
			}
			r.SetTruth(corpus.TruthKey, truth)
			resp, err := svc.Complete(Request{
				Model: model, Task: TaskFilter,
				Prompt:    "p " + fmt.Sprint(i),
				Record:    r,
				Predicate: pred,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Confidence < 0 || resp.Confidence >= 1 {
				t.Fatalf("%s: confidence %v outside [0,1)", model, resp.Confidence)
			}
			correct := resp.Decision == GoldFilterDecision(truth, pred)
			if correct && resp.Confidence < 0.5 {
				t.Fatalf("%s: correct answer with confidence %v < 0.5", model, resp.Confidence)
			}
			if !correct {
				if resp.Confidence >= 0.55 {
					t.Fatalf("%s: wrong answer with confidence %v >= 0.55", model, resp.Confidence)
				}
				if resp.Confidence >= 0.5 {
					wrongHigh++
				}
				n++
			}
		}
		if model == "atlas-large" && n != 0 {
			t.Fatalf("atlas-large made %d filter mistakes; its quality tier should be gold", n)
		}
		// The overconfident-wrong tail must be a small minority of
		// mistakes, or the verify tier couldn't work at all.
		if n > 0 && wrongHigh*4 > n {
			t.Fatalf("%s: %d/%d mistakes were confident — tail too fat", model, wrongHigh, n)
		}
	}
}
