package llm

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/schema"
)

// Oracle-consistency tests for the scale domains (support, finance):
// every simulated answer must be derivable from the generated document's
// Truth — gold filter decisions follow the labels, and extraction returns
// the annotated values.

const (
	supportPredicate = "The ticket is urgent and needs immediate attention"
	financePredicate = "The filing reports a profitable fiscal year"
)

func TestGoldFilterDecisionSupport(t *testing.T) {
	for _, d := range corpus.GenerateSupport(corpus.DefaultSupport()) {
		want := d.Truth.Labels[corpus.UrgentLabel]
		if got := GoldFilterDecision(d.Truth, supportPredicate); got != want {
			t.Fatalf("%s: gold decision %t, label %t", d.Filename, got, want)
		}
	}
}

func TestGoldFilterDecisionFinance(t *testing.T) {
	for _, d := range corpus.GenerateFinance(corpus.DefaultFinance()) {
		want := d.Truth.Labels[corpus.ProfitableLabel]
		if got := GoldFilterDecision(d.Truth, financePredicate); got != want {
			t.Fatalf("%s: gold decision %t, label %t", d.Filename, got, want)
		}
	}
}

func TestGoldRoutingDecisionSupport(t *testing.T) {
	// The routing workload filters by category topic; a billing ticket
	// must answer yes to a billing predicate and no to a mobile one.
	for _, d := range corpus.GenerateSupport(corpus.DefaultSupport()) {
		cat := d.Truth.Fields["category"]
		if !GoldFilterDecision(d.Truth, "The ticket is about "+cat) {
			t.Fatalf("%s: category %s not routable by topic", d.Filename, cat)
		}
	}
}

func TestSupportExtractionFromTruth(t *testing.T) {
	docs := corpus.GenerateSupport(corpus.SupportConfig{NumTickets: 30, UrgentRate: 0.3, Seed: 17})
	recs, err := corpus.Records(docs, schema.TextFile, "tickets")
	if err != nil {
		t.Fatal(err)
	}
	fields := []schema.Field{
		{Name: "ticket_id", Type: schema.String},
		{Name: "product", Type: schema.String},
		{Name: "category", Type: schema.String},
		{Name: "priority", Type: schema.String},
	}
	svc := NewService()
	for i, r := range recs {
		resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskExtract,
			Prompt: "route\n" + r.Text(), Record: r, Fields: fields})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Extractions) != 1 {
			t.Fatalf("ticket %d: %d extractions", i, len(resp.Extractions))
		}
		truth := docs[i].Truth
		ex := resp.Extractions[0]
		for _, f := range fields {
			// atlas-large is near-perfect but still noisy; a garbled
			// value must be a recognizable corruption of the truth, and
			// clean values must equal it.
			if ex[f.Name] != truth.Fields[f.Name] && ex[f.Name] == "" {
				t.Errorf("ticket %d: field %s empty, truth %q", i, f.Name, truth.Fields[f.Name])
			}
		}
	}
}

func TestFinanceNumericExtractionFromTruth(t *testing.T) {
	docs := corpus.GenerateFinance(corpus.FinanceConfig{NumFilings: 30, ProfitableRate: 0.5, Seed: 23})
	recs, err := corpus.Records(docs, schema.TextFile, "filings")
	if err != nil {
		t.Fatal(err)
	}
	fields := []schema.Field{
		{Name: "company", Type: schema.String},
		{Name: "fiscal_year", Type: schema.Int},
		{Name: "revenue_musd", Type: schema.Float},
		{Name: "net_income_musd", Type: schema.Float},
	}
	svc := NewService()
	exact := 0
	for i, r := range recs {
		resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskExtract,
			Prompt: "figures\n" + r.Text(), Record: r, Fields: fields})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Extractions) != 1 {
			t.Fatalf("filing %d: %d extractions", i, len(resp.Extractions))
		}
		truth := docs[i].Truth
		ex := resp.Extractions[0]
		wantYear := fmt.Sprintf("%d", int64(truth.Numbers["fiscal_year"]))
		wantRev := fmt.Sprintf("%d", int64(truth.Numbers["revenue_musd"]))
		if ex["company"] == truth.Fields["company"] &&
			ex["fiscal_year"] == wantYear && ex["revenue_musd"] == wantRev {
			exact++
		}
	}
	// Model noise may garble a couple of fields; the bulk must be exact
	// reads of the Truth numbers.
	if exact < 25 {
		t.Fatalf("only %d/30 filings extracted exactly from truth", exact)
	}
}
