package llm

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/textutil"
)

// EmbedDim is the dimensionality of simulated embeddings. 256 buckets
// keeps hash collisions rare enough that a short discriminative phrase
// (a few terms of a long document) survives into the vector — the
// property semantic prefilters depend on.
const EmbedDim = 256

// Embed produces a deterministic embedding of text with the named embedding
// model, charging its tokens to usage. The embedding is a term-feature hash:
// texts sharing vocabulary land near each other, which is the property the
// Retrieve operator and the embedding pre-filter need.
func (s *Service) Embed(model, text string) ([]float64, *Response, error) {
	card, err := Card(model)
	if err != nil {
		return nil, nil, err
	}
	if !card.Embedding {
		return nil, nil, fmt.Errorf("llm: %s is not an embedding model", card.Name)
	}
	inTok := CountTokens(text)
	if inTok == 0 {
		return nil, nil, fmt.Errorf("llm: cannot embed empty text")
	}
	if inTok > card.ContextWindow {
		// Real embedding endpoints truncate; we charge only the window.
		inTok = card.ContextWindow
	}
	vec := EmbedVector(text)
	resp := &Response{
		Model:       card.Name,
		InputTokens: inTok,
		CostUSD:     card.Cost(inTok, 0),
		Latency:     card.Latency(inTok, 0),
	}
	s.account(card.Name, func(u *Usage) {
		u.Calls++
		u.InputTokens += inTok
		u.CostUSD += resp.CostUSD
		u.Latency += resp.Latency
	})
	return vec, resp, nil
}

// EmbedVector is the pure embedding function (no accounting): terms are
// hashed into EmbedDim buckets with signed sqrt-damped frequency weights
// and the result is L2-normalized. The sublinear damping keeps repeated
// boilerplate vocabulary from drowning the rare discriminative terms.
// The zero vector is returned for term-less text.
func EmbedVector(text string) []float64 {
	vec := make([]float64, EmbedDim)
	for term, w := range textutil.TermFreq(text) {
		w = math.Sqrt(w)
		h := fnv.New64a()
		_, _ = h.Write([]byte(term))
		sum := h.Sum64()
		idx := int(sum % EmbedDim)
		sign := 1.0
		if (sum>>32)%2 == 1 {
			sign = -1.0
		}
		vec[idx] += sign * w
	}
	var n float64
	for _, x := range vec {
		n += x * x
	}
	if n == 0 {
		return vec
	}
	n = math.Sqrt(n)
	for i := range vec {
		vec[i] /= n
	}
	return vec
}

// CosineVec is the cosine similarity of two equal-length vectors.
func CosineVec(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
