package llm

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
)

func cacheTestRecord(t *testing.T) *record.Record {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	recs, err := corpus.Records(docs[:1], schema.PDFFile, "demo")
	if err != nil {
		t.Fatal(err)
	}
	return recs[0]
}

func TestCachedClientHitSemantics(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, err := NewCachedClient(svc, cache)
	if err != nil {
		t.Fatal(err)
	}
	r := cacheTestRecord(t)
	req := Request{Model: "atlas-large", Task: TaskFilter,
		Prompt: "p: " + r.Text(), Record: r, Predicate: "about colorectal cancer"}

	first, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CostUSD <= 0 {
		t.Fatal("miss should cost")
	}
	second, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.CostUSD != 0 || second.Latency != 0 {
		t.Errorf("hit charged cost=%v latency=%v", second.CostUSD, second.Latency)
	}
	if second.Decision != first.Decision {
		t.Error("hit decision differs")
	}
	hits, misses, saved := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if saved != first.CostUSD {
		t.Errorf("saved = %v, want %v", saved, first.CostUSD)
	}
	if svc.TotalCalls() != 1 {
		t.Errorf("service called %d times, want 1", svc.TotalCalls())
	}
}

func TestCacheKeyIgnoresPromptCosmetics(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	a := Request{Model: "atlas-large", Task: TaskFilter, Prompt: "wording A " + r.Text(),
		Record: r, Predicate: "about colorectal cancer"}
	b := a
	b.Prompt = "totally different wording " + r.Text()
	if _, err := client.Complete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete(b); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := cache.Stats(); hits != 1 {
		t.Errorf("cosmetically different prompt missed the cache: hits=%d", hits)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	base := Request{Model: "atlas-large", Task: TaskFilter, Prompt: "p" + r.Text(),
		Record: r, Predicate: "about colorectal cancer"}
	variants := []Request{base}
	v2 := base
	v2.Model = "atlas-small"
	v3 := base
	v3.Predicate = "about influenza"
	v4 := base
	v4.Task = TaskExtract
	v4.Fields = []schema.Field{{Name: "name", Type: schema.String}}
	variants = append(variants, v2, v3, v4)
	for _, req := range variants {
		if _, err := client.Complete(req); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses, _ := cache.Stats(); hits != 0 || misses != len(variants) {
		t.Errorf("distinct requests collided: hits=%d misses=%d", hits, misses)
	}
	if cache.Len() != len(variants) {
		t.Errorf("cache len = %d", cache.Len())
	}
}

func TestCachedExtractionIsolation(t *testing.T) {
	// Mutating a cached extraction must not corrupt later hits.
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	req := Request{Model: "atlas-large", Task: TaskExtract, Prompt: "p" + r.Text(),
		Record: r, OneToMany: true,
		Fields: []schema.Field{{Name: "name", Type: schema.String}, {Name: "url", Type: schema.String}}}
	first, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Extractions) == 0 {
		t.Skip("record has no extractions")
	}
	orig := first.Extractions[0]["name"]
	first.Extractions[0]["name"] = "MUTATED"
	second, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Extractions[0]["name"] != orig {
		t.Error("cache entry corrupted by caller mutation")
	}
}

func TestCacheClear(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	req := Request{Model: "atlas-small", Task: TaskFilter, Prompt: "p" + r.Text(), Record: r, Predicate: "x"}
	_, _ = client.Complete(req)
	cache.Clear()
	if cache.Len() != 0 {
		t.Error("Clear left entries")
	}
	_, _ = client.Complete(req)
	if _, misses, _ := cache.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2 after clear", misses)
	}
}

func TestCachedClientValidation(t *testing.T) {
	if _, err := NewCachedClient(nil, NewCache()); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewCachedClient(NewService(), nil); err == nil {
		t.Error("nil cache accepted")
	}
	client, _ := NewCachedClient(NewService(), NewCache())
	if _, err := client.Complete(Request{Model: "atlas-large", Task: TaskFilter, Prompt: "p"}); err == nil {
		t.Error("nil record passed through without error")
	}
}
