package llm

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
)

func cacheTestRecord(t *testing.T) *record.Record {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	recs, err := corpus.Records(docs[:1], schema.PDFFile, "demo")
	if err != nil {
		t.Fatal(err)
	}
	return recs[0]
}

func TestCachedClientHitSemantics(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, err := NewCachedClient(svc, cache)
	if err != nil {
		t.Fatal(err)
	}
	r := cacheTestRecord(t)
	req := Request{Model: "atlas-large", Task: TaskFilter,
		Prompt: "p: " + r.Text(), Record: r, Predicate: "about colorectal cancer"}

	first, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CostUSD <= 0 {
		t.Fatal("miss should cost")
	}
	second, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.CostUSD != 0 || second.Latency != 0 {
		t.Errorf("hit charged cost=%v latency=%v", second.CostUSD, second.Latency)
	}
	if second.Decision != first.Decision {
		t.Error("hit decision differs")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %d/%d", st.Hits, st.Misses)
	}
	if st.SavedUSD != first.CostUSD {
		t.Errorf("saved = %v, want %v", st.SavedUSD, first.CostUSD)
	}
	if svc.TotalCalls() != 1 {
		t.Errorf("service called %d times, want 1", svc.TotalCalls())
	}
}

func TestCacheKeyIgnoresPromptCosmetics(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	a := Request{Model: "atlas-large", Task: TaskFilter, Prompt: "wording A " + r.Text(),
		Record: r, Predicate: "about colorectal cancer"}
	b := a
	b.Prompt = "totally different wording " + r.Text()
	if _, err := client.Complete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete(b); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("cosmetically different prompt missed the cache: hits=%d", st.Hits)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	base := Request{Model: "atlas-large", Task: TaskFilter, Prompt: "p" + r.Text(),
		Record: r, Predicate: "about colorectal cancer"}
	variants := []Request{base}
	v2 := base
	v2.Model = "atlas-small"
	v3 := base
	v3.Predicate = "about influenza"
	v4 := base
	v4.Task = TaskExtract
	v4.Fields = []schema.Field{{Name: "name", Type: schema.String}}
	variants = append(variants, v2, v3, v4)
	for _, req := range variants {
		if _, err := client.Complete(req); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != len(variants) {
		t.Errorf("distinct requests collided: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if cache.Len() != len(variants) {
		t.Errorf("cache len = %d", cache.Len())
	}
}

func TestCachedExtractionIsolation(t *testing.T) {
	// Mutating a cached extraction must not corrupt later hits.
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	req := Request{Model: "atlas-large", Task: TaskExtract, Prompt: "p" + r.Text(),
		Record: r, OneToMany: true,
		Fields: []schema.Field{{Name: "name", Type: schema.String}, {Name: "url", Type: schema.String}}}
	first, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Extractions) == 0 {
		t.Skip("record has no extractions")
	}
	orig := first.Extractions[0]["name"]
	first.Extractions[0]["name"] = "MUTATED"
	second, err := client.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Extractions[0]["name"] != orig {
		t.Error("cache entry corrupted by caller mutation")
	}
}

func TestCacheClear(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	r := cacheTestRecord(t)
	req := Request{Model: "atlas-small", Task: TaskFilter, Prompt: "p" + r.Text(), Record: r, Predicate: "x"}
	_, _ = client.Complete(req)
	cache.Clear()
	if cache.Len() != 0 {
		t.Error("Clear left entries")
	}
	_, _ = client.Complete(req)
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 after clear", st.Misses)
	}
}

func TestCachedClientValidation(t *testing.T) {
	if _, err := NewCachedClient(nil, NewCache()); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewCachedClient(NewService(), nil); err == nil {
		t.Error("nil cache accepted")
	}
	client, _ := NewCachedClient(NewService(), NewCache())
	if _, err := client.Complete(Request{Model: "atlas-large", Task: TaskFilter, Prompt: "p"}); err == nil {
		t.Error("nil record passed through without error")
	}
}

// TestCacheLRUEviction: a bounded cache evicts in least-recently-used
// order, counts evictions, and keeps saved-USD accounting honest — an
// evicted entry's next lookup is a fresh miss that pays full price, and
// only genuine hits accumulate savings.
func TestCacheLRUEviction(t *testing.T) {
	svc := NewService()
	cache := NewCacheLRU(2)
	client, err := NewCachedClient(svc, cache)
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	recs, err := corpus.Records(docs[:3], schema.PDFFile, "demo")
	if err != nil {
		t.Fatal(err)
	}
	req := func(i int) Request {
		return Request{Model: "atlas-large", Task: TaskFilter,
			Prompt: "p: " + recs[i].Text(), Record: recs[i], Predicate: "about cancer"}
	}

	costs := make([]float64, 3)
	for i := 0; i < 2; i++ { // fill: [1, 0] (front = most recent)
		resp, err := client.Complete(req(i))
		if err != nil {
			t.Fatal(err)
		}
		costs[i] = resp.CostUSD
	}
	if _, err := client.Complete(req(0)); err != nil { // touch 0: [0, 1]
		t.Fatal(err)
	}
	if _, err := client.Complete(req(2)); err != nil { // insert 2: evicts 1
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Evictions != 1 || st.Len != 2 || st.Capacity != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	// Record 0 was kept (recently used), record 1 was evicted.
	if _, err := client.Complete(req(0)); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Hits != st.Hits+1 {
		t.Errorf("kept entry missed: hits %d -> %d", st.Hits, got.Hits)
	}
	before := cache.Stats()
	resp1, err := client.Complete(req(1))
	if err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if resp1.CostUSD != costs[1] {
		t.Errorf("evicted entry re-fetch cost $%v, want full price $%v", resp1.CostUSD, costs[1])
	}
	if after.Misses != before.Misses+1 {
		t.Errorf("evicted entry should miss: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Evictions != 2 {
		t.Errorf("re-inserting over a full cache should evict again: evictions=%d", after.Evictions)
	}
	// Savings = sum of hit costs: one hit on 0's entry, then another.
	wantSaved := costs[0] * 2
	if diff := after.SavedUSD - wantSaved; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("saved = %v, want %v", after.SavedUSD, wantSaved)
	}
}

// TestCacheUnboundedNeverEvicts: the default cache keeps every entry.
func TestCacheUnboundedNeverEvicts(t *testing.T) {
	svc := NewService()
	cache := NewCache()
	client, _ := NewCachedClient(svc, cache)
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	recs, err := corpus.Records(docs, schema.PDFFile, "demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		req := Request{Model: "atlas-small", Task: TaskFilter,
			Prompt: "p: " + r.Text(), Record: r, Predicate: "x"}
		if _, err := client.Complete(req); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Evictions != 0 || st.Len != len(recs) || st.Capacity != 0 {
		t.Errorf("unbounded cache stats: %+v", st)
	}
}
