// Package llm implements the simulated LLM substrate that replaces the
// hosted models Palimpzest calls (see DESIGN.md substitutions). It exposes
// a model catalog with per-model price sheets, latency models, and quality
// tiers; a completion service whose task-level behaviour is driven by the
// synthetic corpus ground truth plus deterministic per-(record,model) noise;
// an embedding model; and failure injection with a retrying client.
//
// The simulation boundary is honest: operators build real prompts and pay
// for their tokens, but the *decision* a simulated model returns comes from
// structured task metadata (predicate, target fields, record), so pipeline
// quality is measurable against ground truth. Expensive models are slower,
// costlier, and more accurate — the same trade-off surface the Palimpzest
// optimizer navigates with real providers.
package llm

import (
	"fmt"
	"sort"
	"time"
)

// ModelCard describes one simulated model's pricing, speed, and quality.
type ModelCard struct {
	// Name identifies the model ("atlas-large").
	Name string
	// InputUSDPerMTok and OutputUSDPerMTok are prices per million tokens.
	InputUSDPerMTok  float64
	OutputUSDPerMTok float64
	// LatencyBase is the fixed per-call overhead.
	LatencyBase time.Duration
	// TokensPerSec is the output generation speed.
	TokensPerSec float64
	// PrefillTokensPerSec is the prompt-processing speed; long documents
	// dominate call latency through this term, which is what pushes the
	// demo pipeline into the paper's ~240 s regime.
	PrefillTokensPerSec float64
	// Quality in (0,1] is the model's headline quality tier; task-level
	// accuracies are derived from it (FilterAccuracy, ExtractAccuracy).
	Quality float64
	// ContextWindow is the maximum tokens per request.
	ContextWindow int
	// Embedding marks embedding-only models.
	Embedding bool
}

// Cost returns the dollar cost of a call with the given token counts.
func (c ModelCard) Cost(inTok, outTok int) float64 {
	return float64(inTok)*c.InputUSDPerMTok/1e6 + float64(outTok)*c.OutputUSDPerMTok/1e6
}

// Latency returns the simulated wall-clock latency of a call reading inTok
// prompt tokens and producing outTok tokens.
func (c ModelCard) Latency(inTok, outTok int) time.Duration {
	d := c.LatencyBase
	if c.PrefillTokensPerSec > 0 {
		d += time.Duration(float64(inTok) / c.PrefillTokensPerSec * float64(time.Second))
	}
	if c.TokensPerSec > 0 {
		d += time.Duration(float64(outTok) / c.TokensPerSec * float64(time.Second))
	}
	return d
}

// FilterAccuracy is the probability the model classifies a natural-language
// filter correctly. The top tier is treated as gold (accuracy 1.0), the way
// Palimpzest's optimizer treats its champion model's output as the quality
// reference.
func (c ModelCard) FilterAccuracy() float64 {
	if c.Quality >= 0.95 {
		return 1.0
	}
	return 0.55 + 0.45*c.Quality
}

// ExtractAccuracy is the per-entity probability that an extraction is
// produced and correct.
func (c ModelCard) ExtractAccuracy() float64 {
	if c.Quality >= 0.95 {
		return 1.0
	}
	return 0.50 + 0.50*c.Quality
}

// Standard catalog. Prices and speeds are modeled on the public price
// sheets of frontier/mid/small hosted models circa the paper's demo, so the
// optimizer's cost-quality trade-offs have realistic magnitudes.
var catalog = map[string]ModelCard{
	"atlas-large": {
		Name: "atlas-large", InputUSDPerMTok: 10.0, OutputUSDPerMTok: 30.0,
		LatencyBase: 900 * time.Millisecond, TokensPerSec: 22,
		PrefillTokensPerSec: 150, Quality: 0.95,
		ContextWindow: 128000,
	},
	"atlas-medium": {
		Name: "atlas-medium", InputUSDPerMTok: 2.5, OutputUSDPerMTok: 10.0,
		LatencyBase: 500 * time.Millisecond, TokensPerSec: 45,
		PrefillTokensPerSec: 900, Quality: 0.88,
		ContextWindow: 128000,
	},
	"atlas-small": {
		Name: "atlas-small", InputUSDPerMTok: 0.15, OutputUSDPerMTok: 0.60,
		LatencyBase: 300 * time.Millisecond, TokensPerSec: 90,
		PrefillTokensPerSec: 2200, Quality: 0.78,
		ContextWindow: 128000,
	},
	"pigeon-7b": {
		Name: "pigeon-7b", InputUSDPerMTok: 0.05, OutputUSDPerMTok: 0.25,
		LatencyBase: 150 * time.Millisecond, TokensPerSec: 140,
		PrefillTokensPerSec: 4500, Quality: 0.68,
		ContextWindow: 32000,
	},
	"atlas-embed": {
		Name: "atlas-embed", InputUSDPerMTok: 0.02, OutputUSDPerMTok: 0,
		LatencyBase: 40 * time.Millisecond, TokensPerSec: 0, Quality: 0.85,
		ContextWindow: 8192, Embedding: true,
	},
}

// Catalog returns the model cards sorted by descending quality then name.
func Catalog() []ModelCard {
	out := make([]ModelCard, 0, len(catalog))
	for _, c := range catalog {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Quality != out[j].Quality {
			return out[i].Quality > out[j].Quality
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CompletionModels returns the non-embedding model cards, best-first.
func CompletionModels() []ModelCard {
	var out []ModelCard
	for _, c := range Catalog() {
		if !c.Embedding {
			out = append(out, c)
		}
	}
	return out
}

// Card looks up a model by name.
func Card(name string) (ModelCard, error) {
	c, ok := catalog[name]
	if !ok {
		return ModelCard{}, fmt.Errorf("llm: unknown model %q", name)
	}
	return c, nil
}

// MustCard is Card that panics on unknown names; for static references.
func MustCard(name string) ModelCard {
	c, err := Card(name)
	if err != nil {
		panic(err)
	}
	return c
}

// BestModel returns the highest-quality completion model.
func BestModel() ModelCard { return CompletionModels()[0] }

// CheapestModel returns the completion model with the lowest blended price.
func CheapestModel() ModelCard {
	models := CompletionModels()
	best := models[0]
	for _, c := range models[1:] {
		if c.Cost(1000, 1000) < best.Cost(1000, 1000) {
			best = c
		}
	}
	return best
}

// FastestModel returns the completion model with the lowest latency for a
// nominal 100-token response.
func FastestModel() ModelCard {
	models := CompletionModels()
	best := models[0]
	for _, c := range models[1:] {
		if c.Latency(500, 100) < best.Latency(500, 100) {
			best = c
		}
	}
	return best
}

// CountTokens estimates the token count of text using the standard ~4
// characters-per-token heuristic (minimum 1 for non-empty text).
func CountTokens(text string) int {
	if text == "" {
		return 0
	}
	n := (len(text) + 3) / 4
	if n < 1 {
		n = 1
	}
	return n
}
