package llm

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/record"
	"repro/internal/schema"
)

// Task discriminates what a completion request is asking the model to do.
type Task int

// Supported tasks.
const (
	// TaskFilter asks for a boolean judgement of a natural-language
	// predicate over a record.
	TaskFilter Task = iota
	// TaskExtract asks the model to populate target schema fields from a
	// record's text (the Convert operator).
	TaskExtract
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskFilter:
		return "filter"
	case TaskExtract:
		return "extract"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Request is one completion call.
type Request struct {
	// Model names the catalog model to use.
	Model string
	// Task selects the simulated behaviour.
	Task Task
	// Prompt is the full prompt the caller built. The simulator charges for
	// its tokens; the decision itself comes from the structured fields
	// below (see the package comment on the simulation boundary).
	Prompt string
	// Record is the data record the task concerns.
	Record *record.Record
	// Predicate is the natural-language filter condition (TaskFilter).
	Predicate string
	// Fields are the extraction targets (TaskExtract).
	Fields []schema.Field
	// OneToMany permits multiple extractions per record (TaskExtract).
	OneToMany bool
	// QualityBoost raises the effective task accuracy (capped at 1). The
	// field-at-a-time Convert strategy passes a small boost, modeling the
	// empirical advantage of asking for one field per call.
	QualityBoost float64
}

// Response is the result of a completion call.
type Response struct {
	// Model echoes the model used.
	Model string
	// Text is the raw text a real model would have produced.
	Text string
	// Decision is the boolean answer for TaskFilter.
	Decision bool
	// Confidence is the model's self-assessed probability that Decision is
	// correct, in [0,1), for TaskFilter (0 for other tasks). The simulated
	// confidence is calibrated but not perfect: answers the model got
	// wrong mostly land below 0.5, with a small overconfident tail
	// reaching just past it — which is exactly the signal a cascade's
	// verify tier thresholds on to decide what escalates to the resolve
	// model (see ops.CascadeFilterExec).
	Confidence float64
	// Extractions holds the field maps produced for TaskExtract (one map
	// per extracted entity; at most one unless OneToMany).
	Extractions []map[string]string
	// InputTokens and OutputTokens are the charged token counts.
	InputTokens  int
	OutputTokens int
	// CostUSD is the dollar cost of the call.
	CostUSD float64
	// Latency is the simulated wall-clock duration of the call. The
	// service does not advance any clock itself; callers account for
	// latency so parallel executors can overlap calls correctly.
	Latency time.Duration
	// Cached marks a response answered from a CachedClient's cache
	// rather than the (simulated) model, so per-op stats and traces can
	// account cache effectiveness.
	Cached bool
}

// Usage accumulates per-model accounting.
type Usage struct {
	Calls        int
	InputTokens  int
	OutputTokens int
	CostUSD      float64
	Latency      time.Duration
	Failures     int
}

// Service is the simulated LLM provider. It is safe for concurrent use.
type Service struct {
	mu       sync.Mutex
	usage    map[string]*Usage
	calls    uint64
	failRate float64
}

// NewService returns a fresh provider with no usage.
func NewService() *Service {
	return &Service{usage: map[string]*Usage{}}
}

// WithFailureRate configures deterministic transient-failure injection:
// approximately rate of calls fail with a *TransientError before any work
// is charged. Returns the service for chaining.
func (s *Service) WithFailureRate(rate float64) *Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRate = rate
	return s
}

// TransientError models a retryable provider failure (rate limit, 529).
type TransientError struct{ Msg string }

// Error implements error.
func (e *TransientError) Error() string { return "llm: transient: " + e.Msg }

// IsTransient reports whether err is a retryable provider failure.
func IsTransient(err error) bool {
	_, ok := err.(*TransientError)
	return ok
}

// Complete executes one completion request.
func (s *Service) Complete(req Request) (*Response, error) {
	card, err := Card(req.Model)
	if err != nil {
		return nil, err
	}
	if card.Embedding {
		return nil, fmt.Errorf("llm: %s is an embedding model", card.Name)
	}
	if req.Record == nil {
		return nil, fmt.Errorf("llm: request without record")
	}
	inTok := CountTokens(req.Prompt)
	if inTok == 0 {
		return nil, fmt.Errorf("llm: empty prompt")
	}
	if inTok > card.ContextWindow {
		return nil, fmt.Errorf("llm: prompt of %d tokens exceeds %s context window (%d)",
			inTok, card.Name, card.ContextWindow)
	}

	// Deterministic failure injection, charged as a failed call.
	s.mu.Lock()
	s.calls++
	call := s.calls
	rate := s.failRate
	s.mu.Unlock()
	if rate > 0 && unit(fmt.Sprintf("fail|%d", call)) < rate {
		s.account(card.Name, func(u *Usage) { u.Failures++ })
		return nil, &TransientError{Msg: fmt.Sprintf("simulated rate limit on call %d", call)}
	}

	resp := &Response{Model: card.Name, InputTokens: inTok}
	switch req.Task {
	case TaskFilter:
		decide(card, req, resp)
	case TaskExtract:
		extract(card, req, resp)
	default:
		return nil, fmt.Errorf("llm: unknown task %v", req.Task)
	}
	resp.OutputTokens = CountTokens(resp.Text)
	if resp.OutputTokens == 0 {
		resp.OutputTokens = 1
	}
	resp.CostUSD = card.Cost(resp.InputTokens, resp.OutputTokens)
	resp.Latency = card.Latency(resp.InputTokens, resp.OutputTokens)

	s.account(card.Name, func(u *Usage) {
		u.Calls++
		u.InputTokens += resp.InputTokens
		u.OutputTokens += resp.OutputTokens
		u.CostUSD += resp.CostUSD
		u.Latency += resp.Latency
	})
	return resp, nil
}

func (s *Service) account(model string, f func(*Usage)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := s.usage[model]
	if u == nil {
		u = &Usage{}
		s.usage[model] = u
	}
	f(u)
}

// Usage returns a snapshot of per-model usage.
func (s *Service) Usage() map[string]Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Usage, len(s.usage))
	for k, v := range s.usage {
		out[k] = *v
	}
	return out
}

// TotalCost returns the cumulative dollar cost across models.
func (s *Service) TotalCost() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var c float64
	for _, u := range s.usage {
		c += u.CostUSD
	}
	return c
}

// TotalCalls returns the cumulative successful call count.
func (s *Service) TotalCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, u := range s.usage {
		n += u.Calls
	}
	return n
}

// Reset clears usage accounting (not the failure configuration).
func (s *Service) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.usage = map[string]*Usage{}
	s.calls = 0
}

// UsageReport renders per-model usage as aligned text lines, best for chat
// output and the experiment harness.
func (s *Service) UsageReport() string {
	usage := s.Usage()
	models := make([]string, 0, len(usage))
	for m := range usage {
		models = append(models, m)
	}
	sort.Strings(models)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %10s %10s %12s\n",
		"model", "calls", "in_tok", "out_tok", "cost_usd", "latency")
	for _, m := range models {
		u := usage[m]
		fmt.Fprintf(&b, "%-14s %8d %10d %10d %10.4f %12s\n",
			m, u.Calls, u.InputTokens, u.OutputTokens, u.CostUSD, u.Latency.Round(time.Millisecond))
	}
	return b.String()
}

// unit maps a string deterministically to [0,1).
func unit(key string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// recordDigest derives a stable identity for noise decisions from record
// content (not record IDs, which depend on allocation order).
func recordDigest(r *record.Record) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(r.Text()))
	return fmt.Sprintf("%x", h.Sum64())
}
