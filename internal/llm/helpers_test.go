package llm

import "repro/internal/simclock"

func newTestClock() *simclock.Sim { return simclock.NewSim() }
