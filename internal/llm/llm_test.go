package llm

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
)

// demoRecords returns the paper-demo biomedical records.
func demoRecords(t *testing.T) []*record.Record {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	recs, err := corpus.Records(docs, schema.PDFFile, "sigmod-demo")
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

const demoPredicate = "The papers are about colorectal cancer"

var clinicalFields = []schema.Field{
	{Name: "name", Type: schema.String, Desc: "The name of the clinical data dataset"},
	{Name: "description", Type: schema.String, Desc: "A short description of the content of the dataset"},
	{Name: "url", Type: schema.String, Desc: "The public URL where the dataset can be accessed"},
}

func TestCatalogShape(t *testing.T) {
	models := Catalog()
	if len(models) < 4 {
		t.Fatalf("catalog has %d models", len(models))
	}
	for i := 1; i < len(models); i++ {
		if models[i].Quality > models[i-1].Quality {
			t.Error("catalog not sorted by quality desc")
		}
	}
	comp := CompletionModels()
	for _, c := range comp {
		if c.Embedding {
			t.Errorf("%s: embedding model in completion list", c.Name)
		}
	}
}

func TestCardLookup(t *testing.T) {
	c, err := Card("atlas-large")
	if err != nil || c.Quality != 0.95 {
		t.Fatalf("Card = %+v, %v", c, err)
	}
	if _, err := Card("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBestCheapestFastest(t *testing.T) {
	if BestModel().Name != "atlas-large" {
		t.Errorf("BestModel = %s", BestModel().Name)
	}
	if CheapestModel().Name != "pigeon-7b" {
		t.Errorf("CheapestModel = %s", CheapestModel().Name)
	}
	if FastestModel().Name != "pigeon-7b" {
		t.Errorf("FastestModel = %s", FastestModel().Name)
	}
}

func TestCostAndLatencyMonotone(t *testing.T) {
	large, small := MustCard("atlas-large"), MustCard("atlas-small")
	if large.Cost(1000, 500) <= small.Cost(1000, 500) {
		t.Error("large model should cost more")
	}
	if large.Latency(1000, 200) <= small.Latency(1000, 200) {
		t.Error("large model should be slower")
	}
	if small.Latency(0, 1000) <= small.Latency(0, 10) {
		t.Error("latency should grow with output tokens")
	}
}

func TestAccuracyTiers(t *testing.T) {
	if acc := MustCard("atlas-large").FilterAccuracy(); acc != 1.0 {
		t.Errorf("top model filter accuracy = %v, want 1.0", acc)
	}
	prev := 2.0
	for _, c := range CompletionModels() {
		fa := c.FilterAccuracy()
		if fa > prev {
			t.Errorf("filter accuracy not monotone in quality: %s", c.Name)
		}
		prev = fa
		if ea := c.ExtractAccuracy(); ea <= 0 || ea > 1 {
			t.Errorf("%s extract accuracy = %v", c.Name, ea)
		}
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Error("empty text has tokens")
	}
	if CountTokens("abcd") != 1 {
		t.Errorf("CountTokens(abcd) = %d", CountTokens("abcd"))
	}
	if CountTokens(strings.Repeat("x", 400)) != 100 {
		t.Errorf("CountTokens(400 chars) = %d", CountTokens(strings.Repeat("x", 400)))
	}
}

func TestGoldModelFilterIsExact(t *testing.T) {
	svc := NewService()
	recs := demoRecords(t)
	kept := 0
	for _, r := range recs {
		resp, err := svc.Complete(Request{
			Model: "atlas-large", Task: TaskFilter,
			Prompt:    "Answer true/false: " + demoPredicate + "\n" + r.Text(),
			Record:    r,
			Predicate: demoPredicate,
		})
		if err != nil {
			t.Fatal(err)
		}
		truth := corpus.TruthOf(r)
		want := truth.HasTopic(corpus.ColorectalTopic)
		if resp.Decision != want {
			t.Errorf("%s: decision %v, truth %v", r.GetString("filename"), resp.Decision, want)
		}
		if resp.Decision {
			kept++
		}
	}
	if kept != 5 {
		t.Errorf("kept %d papers, want 5 (ground truth)", kept)
	}
}

func TestWeakModelMakesErrors(t *testing.T) {
	// Across many predicates+records, pigeon-7b must disagree with truth at
	// least once (its accuracy is ~0.86).
	svc := NewService()
	recs := demoRecords(t)
	preds := []string{
		demoPredicate,
		"The paper is about breast cancer",
		"The paper discusses influenza vaccines",
		"The document is about diabetes monitoring",
		"The study concerns gene mutation",
	}
	errs := 0
	for _, p := range preds {
		for _, r := range recs {
			resp, err := svc.Complete(Request{Model: "pigeon-7b", Task: TaskFilter,
				Prompt: p + r.Text(), Record: r, Predicate: p})
			if err != nil {
				t.Fatal(err)
			}
			truth := corpus.TruthOf(r)
			if resp.Decision != GoldFilterDecision(truth, p) {
				errs++
			}
		}
	}
	if errs == 0 {
		t.Error("weak model made no errors across 55 judgements")
	}
	if errs > 20 {
		t.Errorf("weak model made %d/55 errors; accuracy model too weak", errs)
	}
}

func TestFilterDeterministic(t *testing.T) {
	svc := NewService()
	r := demoRecords(t)[0]
	req := Request{Model: "atlas-small", Task: TaskFilter, Prompt: "p" + r.Text(), Record: r, Predicate: demoPredicate}
	a, err := svc.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Decision != b.Decision {
		t.Error("same request, different decisions")
	}
}

func TestGoldExtractionRecoversAllDatasets(t *testing.T) {
	svc := NewService()
	recs := demoRecords(t)
	urls := map[string]bool{}
	total := 0
	for _, r := range recs {
		truth := corpus.TruthOf(r)
		if !truth.HasTopic(corpus.ColorectalTopic) {
			continue
		}
		resp, err := svc.Complete(Request{
			Model: "atlas-large", Task: TaskExtract,
			Prompt: "Extract datasets.\n" + r.Text(), Record: r,
			Fields: clinicalFields, OneToMany: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range resp.Extractions {
			total++
			urls[ex["url"]] = true
			if ex["name"] == "" || ex["url"] == "" {
				t.Errorf("empty extraction fields: %v", ex)
			}
		}
	}
	if total != 6 || len(urls) != 6 {
		t.Errorf("extracted %d datasets (%d unique urls), want 6 — the paper's number", total, len(urls))
	}
}

func TestExtractOneToOneTruncates(t *testing.T) {
	svc := NewService()
	for _, r := range demoRecords(t) {
		truth := corpus.TruthOf(r)
		if len(truth.MentionsOfKind(corpus.DatasetMentionKind)) < 2 {
			continue
		}
		resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskExtract,
			Prompt: "x" + r.Text(), Record: r, Fields: clinicalFields, OneToMany: false})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Extractions) > 1 {
			t.Errorf("one-to-one returned %d extractions", len(resp.Extractions))
		}
		return
	}
	t.Skip("no multi-mention record in corpus")
}

func TestScalarExtractionFromLegal(t *testing.T) {
	docs := corpus.GenerateLegal(corpus.DefaultLegal())
	recs, err := corpus.Records(docs, schema.TextFile, "legal")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	fields := []schema.Field{
		{Name: "party_a", Type: schema.String},
		{Name: "effective_date", Type: schema.String},
	}
	r := recs[0]
	resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskExtract,
		Prompt: "x" + r.Text(), Record: r, Fields: fields, OneToMany: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Extractions) != 1 {
		t.Fatalf("extractions = %d", len(resp.Extractions))
	}
	truth := corpus.TruthOf(r)
	if got := resp.Extractions[0]["party_a"]; got != truth.Fields["party_a"] {
		t.Errorf("party_a = %q, want %q", got, truth.Fields["party_a"])
	}
	if got := resp.Extractions[0]["effective_date"]; got != truth.Fields["effective_date"] {
		t.Errorf("effective_date = %q, want %q", got, truth.Fields["effective_date"])
	}
}

func TestNumericFieldExtraction(t *testing.T) {
	docs := corpus.GenerateRealEstate(corpus.RealEstateConfig{NumListings: 3, ModernRate: 1, Seed: 2})
	recs, _ := corpus.Records(docs, schema.TextFile, "re")
	svc := NewService()
	fields := []schema.Field{{Name: "bedrooms", Type: schema.Int}, {Name: "price", Type: schema.Float}}
	resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskExtract,
		Prompt: "x" + recs[0].Text(), Record: recs[0], Fields: fields})
	if err != nil {
		t.Fatal(err)
	}
	truth := corpus.TruthOf(recs[0])
	ex := resp.Extractions[0]
	if want := int64(truth.Numbers["bedrooms"]); ex["bedrooms"] != fmtInt(want) {
		t.Errorf("bedrooms = %q, want %d", ex["bedrooms"], want)
	}
	if ex["price"] == "" {
		t.Error("price empty")
	}
}

func fmtInt(n int64) string {
	return strings.TrimSpace(strings.Fields(strings.Repeat(" ", 0) + itoa(n))[0])
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestHeuristicExtractWithoutTruth(t *testing.T) {
	text := "Interesting Study Title\nWe used data available at https://data.example.org/set1 in this work."
	r := record.MustNew(schema.TextFile, map[string]any{"filename": "u.txt", "contents": text})
	svc := NewService()
	resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskExtract,
		Prompt: "x" + text, Record: r, Fields: clinicalFields, OneToMany: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Extractions) != 1 {
		t.Fatalf("extractions = %d", len(resp.Extractions))
	}
	if got := resp.Extractions[0]["url"]; got != "https://data.example.org/set1" {
		t.Errorf("url = %q", got)
	}
}

func TestHeuristicFilterWithoutTruth(t *testing.T) {
	yes := record.MustNew(schema.TextFile, map[string]any{"contents": "a paper about colorectal cancer tumors"})
	no := record.MustNew(schema.TextFile, map[string]any{"contents": "annual mortgage refinancing report"})
	svc := NewService()
	for _, tc := range []struct {
		r    *record.Record
		want bool
	}{{yes, true}, {no, false}} {
		resp, err := svc.Complete(Request{Model: "atlas-large", Task: TaskFilter,
			Prompt: "x" + tc.r.Text(), Record: tc.r, Predicate: "colorectal cancer"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Decision != tc.want {
			t.Errorf("decision = %v, want %v", resp.Decision, tc.want)
		}
	}
}

func TestAccountingAccumulates(t *testing.T) {
	svc := NewService()
	r := demoRecords(t)[0]
	for i := 0; i < 3; i++ {
		if _, err := svc.Complete(Request{Model: "atlas-medium", Task: TaskFilter,
			Prompt: "p" + r.Text(), Record: r, Predicate: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	u := svc.Usage()["atlas-medium"]
	if u.Calls != 3 || u.InputTokens == 0 || u.CostUSD <= 0 || u.Latency <= 0 {
		t.Fatalf("usage = %+v", u)
	}
	if svc.TotalCalls() != 3 {
		t.Errorf("TotalCalls = %d", svc.TotalCalls())
	}
	if svc.TotalCost() != u.CostUSD {
		t.Errorf("TotalCost = %v, want %v", svc.TotalCost(), u.CostUSD)
	}
	svc.Reset()
	if svc.TotalCalls() != 0 || svc.TotalCost() != 0 {
		t.Error("Reset did not clear usage")
	}
}

func TestUsageReportFormat(t *testing.T) {
	svc := NewService()
	r := demoRecords(t)[0]
	_, _ = svc.Complete(Request{Model: "atlas-small", Task: TaskFilter, Prompt: "p" + r.Text(), Record: r, Predicate: "x"})
	rep := svc.UsageReport()
	if !strings.Contains(rep, "atlas-small") || !strings.Contains(rep, "cost_usd") {
		t.Errorf("report = %q", rep)
	}
}

func TestRequestValidation(t *testing.T) {
	svc := NewService()
	r := record.MustNew(schema.TextFile, map[string]any{"contents": "x"})
	cases := []Request{
		{Model: "nope", Task: TaskFilter, Prompt: "p", Record: r},
		{Model: "atlas-embed", Task: TaskFilter, Prompt: "p", Record: r},
		{Model: "atlas-large", Task: TaskFilter, Prompt: "p"},
		{Model: "atlas-large", Task: TaskFilter, Prompt: "", Record: r},
		{Model: "atlas-large", Task: Task(99), Prompt: "p", Record: r},
	}
	for i, req := range cases {
		if _, err := svc.Complete(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestContextWindowEnforced(t *testing.T) {
	svc := NewService()
	r := record.MustNew(schema.TextFile, map[string]any{"contents": "x"})
	huge := strings.Repeat("a", 33000*4+10)
	if _, err := svc.Complete(Request{Model: "pigeon-7b", Task: TaskFilter,
		Prompt: huge, Record: r, Predicate: "x"}); err == nil || !strings.Contains(err.Error(), "context window") {
		t.Fatalf("err = %v", err)
	}
}

func TestFailureInjectionAndRetry(t *testing.T) {
	svc := NewService().WithFailureRate(0.5)
	r := record.MustNew(schema.TextFile, map[string]any{"contents": "colorectal cancer"})
	req := Request{Model: "atlas-small", Task: TaskFilter, Prompt: "p" + r.Text(), Record: r, Predicate: "cancer"}
	sawFailure := false
	for i := 0; i < 20; i++ {
		if _, err := svc.Complete(req); err != nil {
			if !IsTransient(err) {
				t.Fatalf("non-transient error: %v", err)
			}
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("failure rate 0.5 produced no failures in 20 calls")
	}

	// Retry client recovers.
	clock := newTestClock()
	rc, err := NewRetryClient(svc, clock, 8, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rc.Complete(req)
	if err != nil {
		t.Fatalf("retry client failed: %v", err)
	}
	if resp.Decision != true {
		t.Error("decision wrong after retry")
	}
}

func TestRetryClientExhaustsAttempts(t *testing.T) {
	svc := NewService().WithFailureRate(1.0)
	r := record.MustNew(schema.TextFile, map[string]any{"contents": "x"})
	clock := newTestClock()
	rc, _ := NewRetryClient(svc, clock, 3, 10*time.Millisecond)
	_, err := rc.Complete(Request{Model: "atlas-small", Task: TaskFilter, Prompt: "p", Record: r, Predicate: "x"})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if !strings.Contains(err.Error(), "3/3") {
		t.Errorf("err = %v", err)
	}
	// Two backoffs (after attempts 1 and 2): 10ms + 20ms.
	if got := clock.Elapsed(); got != 30*time.Millisecond {
		t.Errorf("backoff elapsed = %v, want 30ms", got)
	}
}

func TestRetryClientValidation(t *testing.T) {
	if _, err := NewRetryClient(nil, newTestClock(), 1, 0); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := NewRetryClient(NewService(), newTestClock(), 0, 0); err == nil {
		t.Error("zero attempts accepted")
	}
}

func TestEmbedBasics(t *testing.T) {
	svc := NewService()
	vec, resp, err := svc.Embed("atlas-embed", "colorectal cancer study")
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != EmbedDim {
		t.Fatalf("dim = %d", len(vec))
	}
	if resp.CostUSD <= 0 {
		t.Error("embedding not charged")
	}
	var n float64
	for _, x := range vec {
		n += x * x
	}
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("norm = %v, want 1", n)
	}
	if _, _, err := svc.Embed("atlas-large", "x"); err == nil {
		t.Error("completion model accepted for embedding")
	}
	if _, _, err := svc.Embed("atlas-embed", ""); err == nil {
		t.Error("empty text accepted")
	}
}

func TestEmbedSimilarityStructure(t *testing.T) {
	a := EmbedVector("colorectal cancer gene mutation study")
	b := EmbedVector("a study of gene mutation in colorectal cancer")
	c := EmbedVector("modern renovated kitchen with quartz countertops")
	if CosineVec(a, b) <= CosineVec(a, c) {
		t.Errorf("similar texts score %.3f, dissimilar %.3f", CosineVec(a, b), CosineVec(a, c))
	}
	if sim := CosineVec(a, a); math.Abs(sim-1) > 1e-9 {
		t.Errorf("self-similarity = %v", sim)
	}
}

func TestKeysMatch(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"url", "url", true},
		{"dataset_name", "name", true},
		{"public_url", "url", true},
		{"effective_date", "effective_date", true},
		{"price", "bedrooms", false},
		{"name", "description", false},
	}
	for _, c := range cases {
		if got := keysMatch(c.a, c.b); got != c.want {
			t.Errorf("keysMatch(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGarbleDetectable(t *testing.T) {
	if garble("") != "" {
		t.Error("garble of empty changed")
	}
	if garble("TCGA-COAD") == "TCGA-COAD" {
		t.Error("garble did not change single token")
	}
	if garble("a longer description") == "a longer description" {
		t.Error("garble did not change phrase")
	}
}
