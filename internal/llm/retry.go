package llm

import (
	"fmt"
	"time"

	"repro/internal/simclock"
)

// RetryClient wraps a Service with bounded exponential-backoff retries for
// transient failures. Backoff sleeps run on the supplied clock, so tests
// and the simulated executor pay the wait in virtual time only.
type RetryClient struct {
	svc         *Service
	clock       simclock.Clock
	maxAttempts int
	baseBackoff time.Duration
}

// NewRetryClient constructs a retrying client. maxAttempts must be >= 1;
// baseBackoff is doubled after each failed attempt.
func NewRetryClient(svc *Service, clock simclock.Clock, maxAttempts int, baseBackoff time.Duration) (*RetryClient, error) {
	if svc == nil || clock == nil {
		return nil, fmt.Errorf("llm: retry client needs service and clock")
	}
	if maxAttempts < 1 {
		return nil, fmt.Errorf("llm: maxAttempts %d < 1", maxAttempts)
	}
	if baseBackoff <= 0 {
		baseBackoff = 200 * time.Millisecond
	}
	return &RetryClient{svc: svc, clock: clock, maxAttempts: maxAttempts, baseBackoff: baseBackoff}, nil
}

// Service exposes the wrapped service (for usage reports).
func (c *RetryClient) Service() *Service { return c.svc }

// Complete executes the request, retrying transient failures. The returned
// response's Latency includes backoff time spent waiting, so pipeline
// runtime accounting reflects the retries.
func (c *RetryClient) Complete(req Request) (*Response, error) {
	var waited time.Duration
	backoff := c.baseBackoff
	for attempt := 1; ; attempt++ {
		resp, err := c.svc.Complete(req)
		if err == nil {
			resp.Latency += waited
			return resp, nil
		}
		if !IsTransient(err) || attempt == c.maxAttempts {
			return nil, fmt.Errorf("llm: attempt %d/%d: %w", attempt, c.maxAttempts, err)
		}
		c.clock.Sleep(backoff)
		waited += backoff
		backoff *= 2
	}
}
