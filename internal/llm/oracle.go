package llm

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/corpus"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/textutil"
)

// decide implements TaskFilter: consult the corpus ground truth when the
// record carries it, otherwise fall back to lexical semantics over the
// record text; then apply deterministic model-quality noise.
func decide(card ModelCard, req Request, resp *Response) {
	truth := corpus.TruthOf(req.Record)
	var want bool
	switch {
	case truth != nil:
		want = GoldFilterDecision(truth, req.Predicate)
	default:
		want = textutil.Overlap(req.Predicate, req.Record.Text()) >= 0.6
	}
	// Model noise: flip the gold answer with probability 1-accuracy,
	// deterministically per (model, predicate, record content).
	acc := card.FilterAccuracy()
	u := unit(strings.Join([]string{"filter", card.Name, req.Predicate, recordDigest(req.Record)}, "|"))
	got := want
	if u < 1-acc {
		got = !want
	}
	resp.Decision = got
	// Self-assessed confidence, derived from the same noise draw:
	// correct answers score in [0.5, 1), wrong answers in [0, 0.55) —
	// mostly-calibrated self-knowledge with a small overconfident-wrong
	// tail in [0.5, 0.55), so a cascade thresholding at 0.5 escalates
	// almost every mistake but settles a tiny residue of them, the way a
	// real confidence signal behaves.
	if got == want {
		resp.Confidence = 0.5 + 0.5*(u-(1-acc))/acc
	} else {
		resp.Confidence = 0.55 * u / (1 - acc)
	}
	resp.Text = fmt.Sprintf("%t", got)
}

// GoldFilterDecision evaluates a natural-language predicate against ground
// truth: first by named boolean labels whose name appears among the
// predicate's terms, then by topic matching. It defines the gold answer the
// simulated models approximate and the metrics package scores against.
func GoldFilterDecision(truth *corpus.Truth, predicate string) bool {
	predTerms := map[string]bool{}
	for _, t := range textutil.Terms(predicate) {
		predTerms[t] = true
	}
	for label, val := range truth.Labels {
		all := true
		terms := textutil.Terms(label)
		if len(terms) == 0 {
			continue
		}
		for _, t := range terms {
			if !predTerms[t] {
				all = false
				break
			}
		}
		if all {
			return val
		}
	}
	return truth.HasTopic(predicate)
}

// extract implements TaskExtract. With ground truth, it pulls entity
// mentions or scalar fields matching the requested schema fields and
// applies per-entity/per-field model noise; without truth it falls back to
// heuristic extraction from the record text.
func extract(card ModelCard, req Request, resp *Response) {
	truth := corpus.TruthOf(req.Record)
	var exs []map[string]string
	if truth != nil {
		exs = truthExtract(card, req, truth)
	} else {
		exs = heuristicExtract(req)
	}
	if !req.OneToMany && len(exs) > 1 {
		exs = exs[:1]
	}
	resp.Extractions = exs
	resp.Text = renderExtractions(req.Fields, exs)
}

// truthExtract matches the requested fields against ground-truth mentions
// first, then scalar fields.
func truthExtract(card ModelCard, req Request, truth *corpus.Truth) []map[string]string {
	acc := card.ExtractAccuracy() + req.QualityBoost
	if acc > 1 {
		acc = 1
	}
	digest := recordDigest(req.Record)

	// Choose the mention kind with the best coverage of requested fields.
	kind, coverage := bestMentionKind(req.Fields, truth)
	if coverage >= 0.5 {
		var out []map[string]string
		for i, m := range truth.MentionsOfKind(kind) {
			// Per-entity recall: a weaker model misses some entities
			// entirely.
			uEnt := unit(strings.Join([]string{"ent", card.Name, digest, fmt.Sprint(i), m.Fields["name"]}, "|"))
			if uEnt < 1-acc {
				continue
			}
			ex := map[string]string{}
			for _, f := range req.Fields {
				v, ok := matchField(f, m.Fields, truth)
				if !ok {
					v = heuristicField(f, req.Record)
				}
				// Per-field precision: a weaker model garbles some values.
				uFld := unit(strings.Join([]string{"fld", card.Name, digest, fmt.Sprint(i), f.Name}, "|"))
				if uFld < (1-acc)/2 {
					v = garble(v)
				}
				ex[f.Name] = v
			}
			out = append(out, ex)
		}
		return out
	}

	// Scalar extraction: one entity per record. When the ground truth
	// declares none of the requested attributes, a careful model reports
	// nothing rather than hallucinating from surrounding text — so
	// truth-bearing records with no extractable content yield no entity.
	ex := map[string]string{}
	found := false
	for _, f := range req.Fields {
		v, ok := matchField(f, nil, truth)
		if !ok {
			v = heuristicField(f, req.Record)
		} else {
			found = true
		}
		uFld := unit(strings.Join([]string{"sfld", card.Name, digest, f.Name}, "|"))
		if uFld < (1-acc)/2 {
			v = garble(v)
		}
		ex[f.Name] = v
	}
	if !found {
		return nil
	}
	return []map[string]string{ex}
}

func allEmpty(m map[string]string) bool {
	for _, v := range m {
		if v != "" {
			return false
		}
	}
	return true
}

// bestMentionKind returns the mention kind whose field names cover the
// largest fraction of the requested fields.
func bestMentionKind(fields []schema.Field, truth *corpus.Truth) (string, float64) {
	if len(fields) == 0 {
		return "", 0
	}
	cov := map[string]int{}
	for _, m := range truth.Mentions {
		if _, seen := cov[m.Kind]; seen {
			continue
		}
		n := 0
		for _, f := range fields {
			if _, ok := matchKey(f.Name, m.Fields); ok {
				n++
			}
		}
		cov[m.Kind] = n
	}
	bestKind, bestN := "", -1
	for k, n := range cov {
		if n > bestN || (n == bestN && k < bestKind) {
			bestKind, bestN = k, n
		}
	}
	if bestN <= 0 {
		return "", 0
	}
	return bestKind, float64(bestN) / float64(len(fields))
}

// matchField resolves a requested schema field against mention fields
// and/or the truth's scalar fields and numbers, using stemmed-name fuzzy
// matching ("dataset_name" matches "name", "public_url" matches "url").
func matchField(f schema.Field, mention map[string]string, truth *corpus.Truth) (string, bool) {
	if mention != nil {
		if v, ok := matchKey(f.Name, mention); ok {
			return v, true
		}
	}
	if truth != nil {
		if v, ok := matchKey(f.Name, truth.Fields); ok {
			return v, true
		}
		for k, n := range truth.Numbers {
			if keysMatch(f.Name, k) {
				if f.Type == schema.Int {
					return fmt.Sprintf("%d", int64(n)), true
				}
				return strings.TrimSuffix(strings.TrimSuffix(fmt.Sprintf("%.2f", n), "0"), ".0"), true
			}
		}
	}
	return "", false
}

func matchKey(want string, m map[string]string) (string, bool) {
	// Exact first, then fuzzy; iterate deterministically.
	if v, ok := m[want]; ok {
		return v, true
	}
	bestKey := ""
	for k := range m {
		if keysMatch(want, k) && (bestKey == "" || k < bestKey) {
			bestKey = k
		}
	}
	if bestKey == "" {
		return "", false
	}
	return m[bestKey], true
}

// keysMatch reports whether two field names refer to the same attribute:
// equal after sanitization, or one's stemmed term set contains the other's.
func keysMatch(a, b string) bool {
	if a == b {
		return true
	}
	ta, tb := textutil.Terms(strings.ReplaceAll(a, "_", " ")), textutil.Terms(strings.ReplaceAll(b, "_", " "))
	if len(ta) == 0 || len(tb) == 0 {
		return false
	}
	contains := func(xs, ys []string) bool {
		set := map[string]bool{}
		for _, x := range xs {
			set[x] = true
		}
		for _, y := range ys {
			if !set[y] {
				return false
			}
		}
		return true
	}
	return contains(ta, tb) || contains(tb, ta)
}

// garble corrupts a value the way a weak model does: it keeps the shape but
// damages the content, so quality metrics can detect the error.
func garble(v string) string {
	if v == "" {
		return ""
	}
	fields := strings.Fields(v)
	if len(fields) == 1 {
		// Mangle single tokens (names, URLs) detectably.
		return v + "-x"
	}
	return fields[0] + " (unclear)"
}

var urlRE = regexp.MustCompile(`https?://[^\s)>\]"']+`)
var dateRE = regexp.MustCompile(`\b\d{4}-\d{2}-\d{2}\b`)
var moneyRE = regexp.MustCompile(`\$[\d,]+`)

// cleanURL strips sentence punctuation that the URL regex swallows when a
// link ends a sentence.
func cleanURL(u string) string { return strings.TrimRight(u, ".,;:!?") }

// findURLs extracts cleaned URLs from text.
func findURLs(text string) []string {
	raw := urlRE.FindAllString(text, -1)
	out := make([]string, 0, len(raw))
	for _, u := range raw {
		if c := cleanURL(u); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// heuristicExtract extracts entities from raw text without ground truth —
// the path user-uploaded data takes. It keys off URL occurrences: each URL
// seeds one entity, with name/description guessed from surrounding text.
func heuristicExtract(req Request) []map[string]string {
	text := req.Record.Text()
	urls := findURLs(text)
	wantsURL := false
	for _, f := range req.Fields {
		if strings.Contains(f.Name, "url") || strings.Contains(f.Name, "link") {
			wantsURL = true
		}
	}
	if wantsURL && len(urls) > 0 {
		var out []map[string]string
		for _, u := range urls {
			ex := map[string]string{}
			for _, f := range req.Fields {
				switch {
				case strings.Contains(f.Name, "url") || strings.Contains(f.Name, "link"):
					ex[f.Name] = u
				default:
					ex[f.Name] = contextAround(text, u)
				}
			}
			out = append(out, ex)
		}
		return out
	}
	ex := map[string]string{}
	hit := false
	for _, f := range req.Fields {
		v := heuristicField(f, req.Record)
		if v != "" {
			hit = true
		}
		ex[f.Name] = v
	}
	if !hit {
		return nil
	}
	return []map[string]string{ex}
}

// heuristicField guesses a single field value from text by field-name
// conventions.
func heuristicField(f schema.Field, r *record.Record) string {
	text := r.Text()
	name := strings.ToLower(f.Name)
	switch {
	case strings.Contains(name, "url") || strings.Contains(name, "link"):
		if m := urlRE.FindString(text); m != "" {
			return cleanURL(m)
		}
	case strings.Contains(name, "date"):
		if m := dateRE.FindString(text); m != "" {
			return m
		}
	case strings.Contains(name, "price") || strings.Contains(name, "cost") || strings.Contains(name, "fee"):
		if m := moneyRE.FindString(text); m != "" {
			return strings.ReplaceAll(strings.TrimPrefix(m, "$"), ",", "")
		}
	case strings.Contains(name, "title") || strings.Contains(name, "name"):
		if line := firstLine(text); line != "" {
			return textutil.TruncateWords(line, 12)
		}
	case strings.Contains(name, "desc") || strings.Contains(name, "summary"):
		if ss := textutil.Sentences(text); len(ss) > 1 {
			return textutil.TruncateWords(ss[1], 24)
		}
	}
	return ""
}

func firstLine(text string) string {
	for _, line := range strings.Split(text, "\n") {
		if s := strings.TrimSpace(line); s != "" {
			return s
		}
	}
	return ""
}

// contextAround returns a short window of words preceding needle in text —
// the heuristic "description" of a URL mention.
func contextAround(text, needle string) string {
	i := strings.Index(text, needle)
	if i < 0 {
		return ""
	}
	start := i - 120
	if start < 0 {
		start = 0
	}
	window := strings.TrimSpace(text[start:i])
	return textutil.TruncateWords(window, 16)
}

// renderExtractions produces the JSON-ish text a real model would emit, so
// output-token accounting reflects extraction size.
func renderExtractions(fields []schema.Field, exs []map[string]string) string {
	if len(exs) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteString("[")
	for i, ex := range exs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("{")
		for j, f := range fields {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: %q", f.Name, ex[f.Name])
		}
		b.WriteString("}")
	}
	b.WriteString("]")
	return b.String()
}
