// Package metrics scores pipeline outputs against the synthetic corpus
// ground truth: filter classification quality (precision/recall/F1 against
// gold labels) and extraction quality (entity-level matching against
// ground-truth mentions). Experiments use it to show that the optimizer's
// quality estimates order plans the same way measured F1 does.
package metrics

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/llm"
	"repro/internal/record"
)

// PRF is a precision/recall/F1 triple.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	// TP, FP, FN are the raw counts behind the rates.
	TP, FP, FN int
}

// String renders the triple compactly.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

func prf(tp, fp, fn int) PRF {
	m := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// FilterQuality scores a filter's kept set against gold labels: inputs are
// all records that entered the filter, kept the subset it retained, and
// predicate the natural-language condition. Records without ground truth
// are skipped.
func FilterQuality(inputs, kept []*record.Record, predicate string) PRF {
	keptSet := make(map[int64]bool, len(kept))
	for _, r := range kept {
		keptSet[r.ID()] = true
	}
	var tp, fp, fn int
	for _, r := range inputs {
		truth := corpus.TruthOf(r)
		if truth == nil {
			continue
		}
		gold := llm.GoldFilterDecision(truth, predicate)
		got := keptSet[r.ID()]
		switch {
		case gold && got:
			tp++
		case !gold && got:
			fp++
		case gold && !got:
			fn++
		}
	}
	return prf(tp, fp, fn)
}

// FilterQualityByTruth scores a filter stage through any downstream
// stage's outputs: outputs are matched back to inputs by the content of
// their carried ground-truth annotation (which Derive preserves across
// Convert and friends), so callers can score a mid-pipeline filter off
// the pipeline's final records without re-running the filter alone.
// Content matching — unlike ExtractionQuality's pointer matching — also
// survives file-backed sources, whose repeated reads deserialize fresh
// Truth values. Inputs without ground truth are skipped.
//
// Precondition: each document's Truth content must be unique within the
// corpus (true for every generated domain, whose truths carry per-doc
// identifiers). Documents sharing identical truth collapse to one
// tp/fp/fn observation, so hand-made corpora with degenerate truths
// (e.g. bare labels) score meaninglessly here — use FilterQuality over
// the filter's own kept set instead.
func FilterQualityByTruth(inputs, outputs []*record.Record, predicate string) PRF {
	kept := make(map[string]bool, len(outputs))
	for _, r := range outputs {
		if truth := corpus.TruthOf(r); truth != nil {
			kept[truthKey(truth)] = true
		}
	}
	var tp, fp, fn int
	seen := make(map[string]bool, len(inputs))
	for _, r := range inputs {
		truth := corpus.TruthOf(r)
		if truth == nil {
			continue
		}
		key := truthKey(truth)
		if seen[key] {
			continue
		}
		seen[key] = true
		gold := llm.GoldFilterDecision(truth, predicate)
		got := kept[key]
		switch {
		case gold && got:
			tp++
		case !gold && got:
			fp++
		case gold && !got:
			fn++
		}
	}
	return prf(tp, fp, fn)
}

// truthKey canonically serializes a ground-truth annotation so equal
// truths compare equal across deserializations (JSON renders maps in
// sorted key order).
func truthKey(t *corpus.Truth) string {
	data, err := json.Marshal(t)
	if err != nil {
		return fmt.Sprintf("%v", t)
	}
	return string(data)
}

// ExtractionQuality scores extracted records against ground-truth mentions
// of the given kind. An extraction matches a mention when, for every field
// both sides populate, the values agree (after trimming); matching is
// greedy per source record via lineage-free filename pairing: each output
// record's parent truth is read directly from the record's carried
// annotations.
func ExtractionQuality(sources, outputs []*record.Record, kind string) PRF {
	// Gold entities per source (by truth pointer identity).
	type ent struct {
		fields  map[string]string
		matched bool
	}
	goldByTruth := map[*corpus.Truth][]*ent{}
	var totalGold int
	for _, s := range sources {
		truth := corpus.TruthOf(s)
		if truth == nil {
			continue
		}
		if _, done := goldByTruth[truth]; done {
			continue
		}
		for _, m := range truth.MentionsOfKind(kind) {
			goldByTruth[truth] = append(goldByTruth[truth], &ent{fields: m.Fields})
			totalGold++
		}
	}
	var tp, fp int
	for _, out := range outputs {
		truth := corpus.TruthOf(out)
		matched := false
		if truth != nil {
			for _, g := range goldByTruth[truth] {
				if !g.matched && extractionMatches(out, g.fields) {
					g.matched = true
					matched = true
					break
				}
			}
		}
		if matched {
			tp++
		} else {
			fp++
		}
	}
	fn := totalGold - tp
	return prf(tp, fp, fn)
}

// extractionMatches reports whether the record's populated fields agree
// with the gold entity's fields on every attribute both sides know.
func extractionMatches(r *record.Record, gold map[string]string) bool {
	compared := 0
	for _, f := range r.Schema().Fields() {
		got := strings.TrimSpace(r.GetString(f.Name))
		if got == "" {
			continue
		}
		want, ok := matchGoldKey(f.Name, gold)
		if !ok {
			continue
		}
		compared++
		if got != strings.TrimSpace(want) {
			return false
		}
	}
	return compared > 0
}

// matchGoldKey resolves a record field name against gold entity fields
// (exact, then substring containment either way).
func matchGoldKey(name string, gold map[string]string) (string, bool) {
	if v, ok := gold[name]; ok {
		return v, true
	}
	bestKey := ""
	for k := range gold {
		if (strings.Contains(name, k) || strings.Contains(k, name)) && (bestKey == "" || k < bestKey) {
			bestKey = k
		}
	}
	if bestKey == "" {
		return "", false
	}
	return gold[bestKey], true
}

// FieldAccuracy measures per-field scalar extraction accuracy: for each
// output record whose truth declares the gold field, it checks the record's
// value. Returns fraction correct and the number of comparable records.
func FieldAccuracy(outputs []*record.Record, recordField, goldField string) (float64, int) {
	correct, total := 0, 0
	for _, r := range outputs {
		truth := corpus.TruthOf(r)
		if truth == nil {
			continue
		}
		want, ok := truth.Fields[goldField]
		if !ok {
			if n, nok := truth.Numbers[goldField]; nok {
				want, ok = fmt.Sprintf("%g", n), true
				// Integer-rendered numbers also count.
				if r.GetString(recordField) == fmt.Sprintf("%d", int64(n)) {
					correct++
					total++
					continue
				}
			}
		}
		if !ok {
			continue
		}
		total++
		if strings.TrimSpace(r.GetString(recordField)) == strings.TrimSpace(want) {
			correct++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}
