package metrics

import (
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("nope"); got != 0 {
		t.Errorf("untouched counter = %d", got)
	}
	c.Inc("a")
	c.Add("a", 2)
	c.Add("b", 5)
	if got := c.Get("a"); got != 3 {
		t.Errorf("a = %d, want 3", got)
	}
	snap := c.Snapshot()
	if snap["a"] != 3 || snap["b"] != 5 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot is a copy.
	snap["a"] = 99
	if got := c.Get("a"); got != 3 {
		t.Errorf("snapshot mutation leaked: a = %d", got)
	}
}

func TestCountersSet(t *testing.T) {
	c := NewCounters()
	c.Add("pool", 7)
	c.Set("pool", 2)
	if got := c.Get("pool"); got != 2 {
		t.Errorf("pool after Set = %d, want 2 (gauge overwrite, not add)", got)
	}
	c.Set("pool", 0)
	if got := c.Get("pool"); got != 0 {
		t.Errorf("pool after Set(0) = %d, want 0", got)
	}
	if snap := c.Snapshot(); snap["pool"] != 0 {
		t.Errorf("snapshot = %v, want pool present at 0", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}
