package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type for the text exposition format
// both pzserve and pzworker serve on /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// RenderProm writes counters, gauges, and histograms in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// metric families are emitted in sorted name order. Counter entries are
// typed `gauge` because Counters.Set gives them gauge semantics (a
// scraper must not assume monotonicity). Any of the three sources may
// be nil.
func RenderProm(w io.Writer, namespace string, counters *Counters, hists *Histograms, gauges map[string]float64) {
	type family struct {
		name string
		emit func()
	}
	var fams []family

	if counters != nil {
		snap := counters.Snapshot()
		for _, name := range counters.Names() {
			n := metricName(namespace, name)
			v := snap[name]
			fams = append(fams, family{n, func() {
				fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, v)
			}})
		}
	}
	for name, v := range gauges {
		n := metricName(namespace, name)
		v := v
		fams = append(fams, family{n, func() {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(v))
		}})
	}
	if hists != nil {
		views := hists.Snapshot()
		for _, name := range hists.Names() {
			n := metricName(namespace, name)
			view := views[name]
			fams = append(fams, family{n, func() {
				fmt.Fprintf(w, "# TYPE %s histogram\n", n)
				for i, bound := range view.Bounds {
					fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, formatFloat(bound), view.Cumulative[i])
				}
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, view.Count)
				fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(view.Sum))
				fmt.Fprintf(w, "%s_count %d\n", n, view.Count)
			}})
		}
	}

	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit()
	}
}

// metricName joins the namespace and raw name and replaces every
// character outside [a-zA-Z0-9_:] with an underscore, per the
// exposition format's metric-name grammar.
func metricName(namespace, name string) string {
	full := name
	if namespace != "" {
		full = namespace + "_" + name
	}
	var b strings.Builder
	for i, r := range full {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
