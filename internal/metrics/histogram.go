package metrics

import (
	"sort"
	"sync"
)

// LatencyBuckets are the default fixed upper bounds (seconds, simulated
// clock) for query-latency histograms. They span the sub-second cached
// path through multi-minute clustered scans.
var LatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// CostBuckets are the default fixed upper bounds (USD, simulated) for
// per-query cost histograms.
var CostBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// mold: counts[i] tallies observations <= bounds[i], with a final
// overflow cell for the +Inf bucket. Safe for concurrent use; the zero
// value is not usable — construct via Histograms.Observe or
// NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram over the given upper bounds, which
// must be sorted ascending. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// HistogramView is an immutable snapshot of a histogram: the bucket
// upper bounds, cumulative counts per bucket (Prometheus `le`
// semantics, final entry = +Inf = Count), the running sum, and derived
// p50/p95/p99 quantile estimates.
type HistogramView struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
	P50        float64   `json:"p50"`
	P95        float64   `json:"p95"`
	P99        float64   `json:"p99"`
}

// Snapshot returns a consistent view with cumulative bucket counts and
// interpolated p50/p95/p99.
func (h *Histogram) Snapshot() HistogramView {
	h.mu.Lock()
	defer h.mu.Unlock()
	view := HistogramView{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        h.sum,
		Count:      h.total,
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		view.Cumulative[i] = cum
	}
	view.P50 = h.quantileLocked(0.50)
	view.P95 = h.quantileLocked(0.95)
	view.P99 = h.quantileLocked(0.99)
	return view
}

// quantileLocked estimates the q-quantile by linear interpolation within
// the bucket holding the target rank (Prometheus histogram_quantile
// semantics). Values in the overflow bucket clamp to the largest bound.
// Caller holds h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper edge to interpolate
			// toward; report the largest finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	// Unreachable when counts are consistent (the +Inf bucket always
	// catches the rank), but a bounds-less histogram would panic here.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Histograms is a named registry of histograms, the distribution-valued
// counterpart of Counters. The zero value is ready to use.
type Histograms struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// NewHistograms returns an empty registry.
func NewHistograms() *Histograms { return &Histograms{m: map[string]*Histogram{}} }

// Observe records v into the named histogram, creating it with the
// given bounds on first use (later calls ignore bounds).
func (h *Histograms) Observe(name string, bounds []float64, v float64) {
	h.mu.Lock()
	if h.m == nil {
		h.m = map[string]*Histogram{}
	}
	hist, ok := h.m[name]
	if !ok {
		hist = NewHistogram(bounds)
		h.m[name] = hist
	}
	h.mu.Unlock()
	hist.Observe(v)
}

// Get returns the named histogram, or nil if never observed.
func (h *Histograms) Get(name string) *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[name]
}

// Names returns every histogram name in sorted order.
func (h *Histograms) Names() []string {
	h.mu.Lock()
	names := make([]string, 0, len(h.m))
	for k := range h.m {
		names = append(names, k)
	}
	h.mu.Unlock()
	sort.Strings(names)
	return names
}

// Snapshot returns a view of every histogram keyed by name.
func (h *Histograms) Snapshot() map[string]HistogramView {
	h.mu.Lock()
	hists := make(map[string]*Histogram, len(h.m))
	for k, v := range h.m {
		hists[k] = v
	}
	h.mu.Unlock()
	out := make(map[string]HistogramView, len(hists))
	for k, v := range hists {
		out[k] = v.Snapshot()
	}
	return out
}
