package metrics

import (
	"sort"
	"sync"
)

// Counters is a named set of counters, the minimal registry the serving
// layer's /metrics endpoint exposes (admissions, rejections, plan-cache
// hits, completions, cluster scatter/retry totals). Most entries are
// monotonic via Add/Inc; Set supports the few gauge-style readings.
// Safe for concurrent use; the zero value is ready to use (the map is
// allocated lazily under the mutex), and NewCounters remains for
// explicit construction.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: map[string]int64{}} }

// Add increases the named counter by delta (creating it at zero first).
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]int64{}
	}
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increases the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Set overwrites the named counter with an absolute value — gauge
// semantics for quantities that move both ways (e.g. the cluster
// registry's currently-healthy worker count).
func (c *Counters) Set(name string, v int64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]int64{}
	}
	c.m[name] = v
	c.mu.Unlock()
}

// Get returns the named counter's value (zero when never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of every counter, suitable for JSON rendering.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns every counter name in sorted order, the deterministic
// iteration order the text exposition renderer requires.
func (c *Counters) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}
