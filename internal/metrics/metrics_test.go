package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/llm"
	"repro/internal/ops"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/simclock"
)

var clinical = schema.MustNew("ClinicalData", "Datasets from papers.",
	schema.Field{Name: "name", Type: schema.String, Desc: "dataset name"},
	schema.Field{Name: "description", Type: schema.String, Desc: "description"},
	schema.Field{Name: "url", Type: schema.String, Desc: "public URL"},
)

const demoPredicate = "The papers are about colorectal cancer"

func biomedRecords(t *testing.T) []*record.Record {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	recs, err := corpus.Records(docs, schema.PDFFile, "demo")
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func newCtx(t *testing.T) *ops.Ctx {
	t.Helper()
	svc := llm.NewService()
	clock := simclock.NewSim()
	client, err := llm.NewRetryClient(svc, clock, 3, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return &ops.Ctx{Client: client, Svc: svc, Clock: clock, Parallelism: 1, Stats: ops.NewRunStats()}
}

func TestPRFComputation(t *testing.T) {
	m := prf(6, 2, 3)
	if math.Abs(m.Precision-0.75) > 1e-9 {
		t.Errorf("P = %v", m.Precision)
	}
	if math.Abs(m.Recall-6.0/9.0) > 1e-9 {
		t.Errorf("R = %v", m.Recall)
	}
	wantF1 := 2 * 0.75 * (6.0 / 9.0) / (0.75 + 6.0/9.0)
	if math.Abs(m.F1-wantF1) > 1e-9 {
		t.Errorf("F1 = %v, want %v", m.F1, wantF1)
	}
	zero := prf(0, 0, 0)
	if zero.Precision != 0 || zero.Recall != 0 || zero.F1 != 0 {
		t.Errorf("zero prf = %+v", zero)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestFilterQualityPerfect(t *testing.T) {
	recs := biomedRecords(t)
	var kept []*record.Record
	for _, r := range recs {
		if llm.GoldFilterDecision(corpus.TruthOf(r), demoPredicate) {
			kept = append(kept, r)
		}
	}
	m := FilterQuality(recs, kept, demoPredicate)
	if m.F1 != 1 || m.TP != 5 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("perfect filter = %v", m)
	}
}

func TestFilterQualityWithErrors(t *testing.T) {
	recs := biomedRecords(t)
	var gold []*record.Record
	for _, r := range recs {
		if llm.GoldFilterDecision(corpus.TruthOf(r), demoPredicate) {
			gold = append(gold, r)
		}
	}
	// Miss one relevant, add one irrelevant.
	var kept []*record.Record
	kept = append(kept, gold[1:]...)
	for _, r := range recs {
		if !llm.GoldFilterDecision(corpus.TruthOf(r), demoPredicate) {
			kept = append(kept, r)
			break
		}
	}
	m := FilterQuality(recs, kept, demoPredicate)
	if m.TP != 4 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("metrics = %v", m)
	}
	if m.F1 >= 1 {
		t.Error("imperfect filter scored 1.0")
	}
}

func TestFilterQualitySkipsNoTruth(t *testing.T) {
	r := record.MustNew(schema.TextFile, map[string]any{"contents": "x"})
	m := FilterQuality([]*record.Record{r}, nil, "anything")
	if m.TP+m.FP+m.FN != 0 {
		t.Errorf("no-truth records counted: %v", m)
	}
}

func TestExtractionQualityGoldPipeline(t *testing.T) {
	recs := biomedRecords(t)
	ctx := newCtx(t)
	filter := &ops.LLMFilterExec{Filter: &ops.Filter{Predicate: demoPredicate}, Model: "atlas-large"}
	kept, err := filter.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	conv := &ops.LLMConvertExec{
		Convert: &ops.Convert{Target: clinical, Desc: clinical.Doc(), Card: ops.OneToMany},
		Model:   "atlas-large", Bonded: true,
	}
	out, err := conv.Execute(ctx, kept)
	if err != nil {
		t.Fatal(err)
	}
	m := ExtractionQuality(recs, out, corpus.DatasetMentionKind)
	if m.F1 != 1 || m.TP != 6 {
		t.Fatalf("gold pipeline extraction = %v, want perfect 6/6", m)
	}
}

func TestExtractionQualityWeakModelLower(t *testing.T) {
	recs := biomedRecords(t)
	score := func(model string) float64 {
		ctx := newCtx(t)
		var kept []*record.Record
		for _, r := range recs {
			if llm.GoldFilterDecision(corpus.TruthOf(r), demoPredicate) {
				kept = append(kept, r)
			}
		}
		conv := &ops.LLMConvertExec{
			Convert: &ops.Convert{Target: clinical, Desc: clinical.Doc(), Card: ops.OneToMany},
			Model:   model, Bonded: true,
		}
		out, err := conv.Execute(ctx, kept)
		if err != nil {
			t.Fatal(err)
		}
		return ExtractionQuality(recs, out, corpus.DatasetMentionKind).F1
	}
	gold, weak := score("atlas-large"), score("pigeon-7b")
	if weak >= gold {
		t.Errorf("weak model F1 %.3f >= gold F1 %.3f", weak, gold)
	}
}

func TestExtractionQualityCountsGarbledAsWrong(t *testing.T) {
	recs := biomedRecords(t)
	var src *record.Record
	for _, r := range recs {
		if len(corpus.TruthOf(r).MentionsOfKind(corpus.DatasetMentionKind)) > 0 {
			src = r
			break
		}
	}
	m := corpus.TruthOf(src).MentionsOfKind(corpus.DatasetMentionKind)[0]
	bad, err := src.Derive(clinical, map[string]any{
		"name": m.Fields["name"] + "-x", // garbled
		"url":  m.Fields["url"],
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractionQuality([]*record.Record{src}, []*record.Record{bad}, corpus.DatasetMentionKind)
	if q.TP != 0 || q.FP != 1 {
		t.Errorf("garbled extraction scored as correct: %v", q)
	}
}

func TestFieldAccuracy(t *testing.T) {
	docs := corpus.GenerateLegal(corpus.LegalConfig{NumContracts: 6, IndemnificationRate: 0.5, Seed: 4})
	recs, _ := corpus.Records(docs, schema.TextFile, "legal")
	parties := schema.MustNew("Parties", "",
		schema.Field{Name: "party_a", Type: schema.String},
	)
	var outs []*record.Record
	for i, r := range recs {
		v := corpus.TruthOf(r).Fields["party_a"]
		if i == 0 {
			v = "Wrong Corp"
		}
		d, err := r.Derive(parties, map[string]any{"party_a": v})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, d)
	}
	acc, n := FieldAccuracy(outs, "party_a", "party_a")
	if n != 6 {
		t.Fatalf("compared %d", n)
	}
	if math.Abs(acc-5.0/6.0) > 1e-9 {
		t.Errorf("accuracy = %v", acc)
	}
	if _, n := FieldAccuracy(outs, "party_a", "no_such_field"); n != 0 {
		t.Errorf("bogus gold field compared %d", n)
	}
}

func TestFieldAccuracyNumeric(t *testing.T) {
	docs := corpus.GenerateRealEstate(corpus.RealEstateConfig{NumListings: 3, ModernRate: 0.5, Seed: 5})
	recs, _ := corpus.Records(docs, schema.TextFile, "re")
	beds := schema.MustNew("Beds", "", schema.Field{Name: "bedrooms", Type: schema.Int})
	var outs []*record.Record
	for _, r := range recs {
		d, err := r.Derive(beds, map[string]any{"bedrooms": int64(corpus.TruthOf(r).Numbers["bedrooms"])})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, d)
	}
	acc, n := FieldAccuracy(outs, "bedrooms", "bedrooms")
	if n != 3 || acc != 1 {
		t.Errorf("numeric accuracy = %v over %d", acc, n)
	}
}

func TestExtractionQualityEmptyOutputs(t *testing.T) {
	recs := biomedRecords(t)
	m := ExtractionQuality(recs, nil, corpus.DatasetMentionKind)
	if m.TP != 0 || m.FN != 6 || m.Recall != 0 {
		t.Errorf("empty outputs = %v", m)
	}
}
