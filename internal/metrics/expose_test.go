package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCountersZeroValueAndNames(t *testing.T) {
	// The zero value must be usable without NewCounters — package-embedded
	// counters rely on the lazy map allocation.
	var c Counters
	c.Inc("b_second")
	c.Add("a_first", 2)
	c.Set("c_third", 7)
	if got := c.Get("a_first"); got != 2 {
		t.Errorf("a_first = %d, want 2", got)
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "a_first" || names[1] != "b_second" || names[2] != "c_third" {
		t.Errorf("Names() = %v, want sorted", names)
	}
	var empty Counters
	if got := empty.Get("x"); got != 0 {
		t.Errorf("zero-value Get = %d", got)
	}
	if snap := empty.Snapshot(); len(snap) != 0 {
		t.Errorf("zero-value Snapshot = %v", snap)
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 0.7, 1.5, 3, 10} {
		h.Observe(v)
	}
	v := h.Snapshot()
	if v.Count != 5 {
		t.Fatalf("count = %d, want 5", v.Count)
	}
	if v.Sum != 15.7 {
		t.Errorf("sum = %v, want 15.7", v.Sum)
	}
	// Cumulative le semantics: le=1 holds 2, le=2 holds 3, le=5 holds 4,
	// and the final +Inf cell holds everything.
	want := []uint64{2, 3, 4, 5}
	for i, c := range v.Cumulative {
		if c != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, want[i])
		}
	}
	if v.P50 <= 0 || v.P50 > 2 {
		t.Errorf("p50 = %v, want within (0, 2]", v.P50)
	}
	// The overflow observation clamps the upper quantiles to the largest
	// bound rather than inventing a value past it.
	if v.P99 != 5 {
		t.Errorf("p99 = %v, want clamped to 5", v.P99)
	}
	if empty := NewHistogram([]float64{1}).Snapshot(); empty.Count != 0 || empty.P50 != 0 {
		t.Errorf("empty histogram snapshot = %+v", empty)
	}
}

func TestHistogramNoBoundsDoesNotPanic(t *testing.T) {
	// A histogram with no finite bounds puts every observation in the
	// +Inf bucket; quantiles have no finite bound to clamp to and must
	// report 0 instead of indexing an empty bounds slice.
	h := NewHistogram(nil)
	h.Observe(3)
	h.Observe(7)
	v := h.Snapshot()
	if v.Count != 2 || v.Sum != 10 {
		t.Fatalf("snapshot = %+v, want count 2 sum 10", v)
	}
	if v.P50 != 0 || v.P99 != 0 {
		t.Errorf("quantiles = p50 %v p99 %v, want 0 with no finite bounds", v.P50, v.P99)
	}
}

func TestHistogramsRegistry(t *testing.T) {
	var hs Histograms // zero value usable
	hs.Observe("b_lat", LatencyBuckets, 0.2)
	hs.Observe("a_cost", CostBuckets, 0.02)
	hs.Observe("b_lat", LatencyBuckets, 3)
	names := hs.Names()
	if len(names) != 2 || names[0] != "a_cost" || names[1] != "b_lat" {
		t.Errorf("Names() = %v, want sorted", names)
	}
	if h := hs.Get("b_lat"); h == nil || h.Snapshot().Count != 2 {
		t.Errorf("b_lat = %+v, want 2 observations", h)
	}
	if hs.Get("nope") != nil {
		t.Error("Get of an unknown histogram should be nil")
	}
	snap := hs.Snapshot()
	if len(snap) != 2 || snap["a_cost"].Count != 1 {
		t.Errorf("Snapshot() = %+v", snap)
	}
}

// TestRenderPromGolden locks the exposition output byte-for-byte against
// a golden file: type lines, sorted family order, histogram _bucket
// cumulative counts, _sum, and _count. Run with -update to regenerate.
func TestRenderPromGolden(t *testing.T) {
	c := NewCounters()
	c.Add("queries_total", 42)
	c.Add("queries_rejected", 3)
	// The cascade counter family the serving layer accumulates from
	// cascade-filter tier spans (see serve.accumulateCascadeCounters).
	c.Add("cascade_queries", 2)
	c.Add("cascade_prefilter_in", 200)
	c.Add("cascade_prefilter_dropped", 120)
	c.Add("cascade_verify_calls", 80)
	c.Add("cascade_resolve_calls", 5)
	c.Add("cascade_big_model_calls_saved", 195)
	// The re-optimization counter family the serving layer accumulates
	// from reopt trace spans (see serve.accumulateReoptCounters).
	c.Add("reopt_checks", 4)
	c.Add("reopt_triggered", 2)
	c.Add("reopt_swaps", 1)
	hs := &Histograms{}
	// The 400 s observation lands past the largest finite latency bucket
	// (300 s), exercising the +Inf overflow cell in the exposition.
	for _, v := range []float64{0.05, 0.3, 0.3, 2, 45, 400} {
		hs.Observe("query_sim_seconds", LatencyBuckets, v)
	}
	gauges := map[string]float64{"total_cost.usd": 1.25, "admission_running": 2}

	var buf bytes.Buffer
	RenderProm(&buf, "pz", c, hs, gauges)

	golden := filepath.Join("testdata", "metrics.prom.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// Belt and braces beyond the golden bytes: the histogram family must
	// carry bucket lines and the dotted gauge name must be sanitized.
	out := buf.String()
	for _, frag := range []string{
		"# TYPE pz_query_sim_seconds histogram",
		`pz_query_sim_seconds_bucket{le="0.5"} 3`,
		`pz_query_sim_seconds_bucket{le="300"} 5`,
		`pz_query_sim_seconds_bucket{le="+Inf"} 6`,
		"pz_query_sim_seconds_count 6",
		"pz_reopt_triggered 2",
		"pz_total_cost_usd 1.25",
		"# TYPE pz_queries_total gauge",
	} {
		if !bytes.Contains([]byte(out), []byte(frag)) {
			t.Errorf("exposition missing %q:\n%s", frag, out)
		}
	}
}

func TestMetricName(t *testing.T) {
	for _, tc := range []struct{ ns, in, want string }{
		{"pz", "queries_total", "pz_queries_total"},
		{"", "9lives", "_lives"},
		{"pz", "cache.hit-rate", "pz_cache_hit_rate"},
	} {
		if got := metricName(tc.ns, tc.in); got != tc.want {
			t.Errorf("metricName(%q, %q) = %q, want %q", tc.ns, tc.in, got, tc.want)
		}
	}
}
