package vector

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestExactBasics(t *testing.T) {
	idx, err := NewExact(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = idx.Add(Item{ID: 1, Vec: []float64{1, 0, 0, 0}})
	_ = idx.Add(Item{ID: 2, Vec: []float64{0, 1, 0, 0}})
	_ = idx.Add(Item{ID: 3, Vec: []float64{0.9, 0.1, 0, 0}})
	hits := idx.Search([]float64{1, 0, 0, 0}, 2)
	if len(hits) != 2 || hits[0].ID != 1 || hits[1].ID != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if idx.Len() != 3 {
		t.Errorf("Len = %d", idx.Len())
	}
}

func TestExactDimMismatch(t *testing.T) {
	idx, _ := NewExact(3)
	if err := idx.Add(Item{ID: 1, Vec: []float64{1, 2}}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := NewExact(0); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestExactKEdgeCases(t *testing.T) {
	idx, _ := NewExact(2)
	_ = idx.Add(Item{ID: 1, Vec: []float64{1, 0}})
	if got := idx.Search([]float64{1, 0}, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := idx.Search([]float64{1, 0}, 10); len(got) != 1 {
		t.Errorf("k>n returned %d hits", len(got))
	}
}

func TestExactTieBreaksByID(t *testing.T) {
	idx, _ := NewExact(2)
	for id := int64(5); id >= 1; id-- {
		_ = idx.Add(Item{ID: id, Vec: []float64{1, 0}})
	}
	hits := idx.Search([]float64{1, 0}, 3)
	if hits[0].ID != 1 || hits[1].ID != 2 || hits[2].ID != 3 {
		t.Fatalf("tie-break order wrong: %v", hits)
	}
}

func TestExactOrderingSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx, _ := NewExact(8)
	for i := int64(0); i < 100; i++ {
		_ = idx.Add(Item{ID: i, Vec: randVec(rng, 8)})
	}
	q := randVec(rng, 8)
	hits := idx.Search(q, 10)
	if !sort.SliceIsSorted(hits, func(i, j int) bool { return hits[i].Score >= hits[j].Score }) {
		t.Fatalf("hits not sorted: %v", hits)
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(ai, bi []int16) bool {
		n := len(ai)
		if len(bi) < n {
			n = len(bi)
		}
		a, b := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = float64(ai[i]), float64(bi[i])
		}
		c := Cosine(a, b)
		return !math.IsNaN(c) && c <= 1+1e-9 && c >= -1-1e-9 && math.Abs(c-Cosine(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %v", got)
	}
}

func TestLSHConfigValidation(t *testing.T) {
	bad := [][4]int{{0, 1, 1, 1}, {2, 0, 1, 1}, {2, 1, 0, 1}, {2, 1, 40, 1}}
	for _, c := range bad {
		if _, err := NewLSH(c[0], c[1], c[2], int64(c[3])); err == nil {
			t.Errorf("config %v accepted", c)
		}
	}
}

func TestLSHFindsExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idx, err := NewLSH(16, 8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float64, 50)
	for i := range vecs {
		vecs[i] = randVec(rng, 16)
		_ = idx.Add(Item{ID: int64(i), Vec: vecs[i]})
	}
	// Querying with an indexed vector must return it first: identical
	// vectors share every bucket signature.
	for i := 0; i < 10; i++ {
		hits := idx.Search(vecs[i], 1)
		if len(hits) != 1 || hits[0].ID != int64(i) {
			t.Fatalf("query %d: hits = %v", i, hits)
		}
	}
	if idx.Len() != 50 {
		t.Errorf("Len = %d", idx.Len())
	}
}

func TestLSHRecallAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 32
	exact, _ := NewExact(dim)
	lsh, _ := NewLSH(dim, 12, 6, 7)
	for i := int64(0); i < 400; i++ {
		v := randVec(rng, dim)
		_ = exact.Add(Item{ID: i, Vec: v})
		_ = lsh.Add(Item{ID: i, Vec: v})
	}
	var total float64
	const queries = 20
	for q := 0; q < queries; q++ {
		query := randVec(rng, dim)
		truth := exact.Search(query, 10)
		got := lsh.Search(query, 10)
		total += Recall(got, truth)
	}
	avg := total / queries
	if avg < 0.3 {
		t.Errorf("LSH mean recall@10 = %.2f, too low", avg)
	}
	t.Logf("LSH mean recall@10 = %.2f", avg)
}

func TestLSHDeterministic(t *testing.T) {
	build := func() []Hit {
		idx, _ := NewLSH(8, 4, 4, 99)
		r := rand.New(rand.NewSource(5))
		for i := int64(0); i < 50; i++ {
			_ = idx.Add(Item{ID: i, Vec: randVec(r, 8)})
		}
		return idx.Search(randVec(rand.New(rand.NewSource(6)), 8), 5)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("LSH search not deterministic: %v vs %v", a, b)
		}
	}
}

func TestLSHQueryDimMismatch(t *testing.T) {
	idx, _ := NewLSH(4, 2, 2, 1)
	if got := idx.Search([]float64{1, 2}, 3); got != nil {
		t.Errorf("bad-dim query returned %v", got)
	}
	if err := idx.Add(Item{ID: 1, Vec: []float64{1}}); err == nil {
		t.Error("bad-dim add accepted")
	}
}

func TestRecall(t *testing.T) {
	truth := []Hit{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	got := []Hit{{ID: 2}, {ID: 4}, {ID: 9}}
	if r := Recall(got, truth); r != 0.5 {
		t.Errorf("Recall = %v, want 0.5", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("empty Recall = %v, want 1", r)
	}
}
