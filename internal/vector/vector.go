// Package vector implements the in-memory vector index substrate behind the
// Retrieve operator (the paper's intro cites vector databases as one of the
// software stacks AI pipelines must coordinate). Two indexes are provided:
// Exact, a linear-scan top-k index, and LSH, a random-hyperplane locality-
// sensitive index that trades a little recall for sublinear candidate sets.
package vector

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Item is one indexed element: an opaque ID and its embedding.
type Item struct {
	ID  int64
	Vec []float64
}

// Hit is one search result.
type Hit struct {
	ID    int64
	Score float64
}

// Index is the common search surface.
type Index interface {
	// Add inserts an item. Vectors must share the index dimension.
	Add(item Item) error
	// Search returns the top-k items by cosine similarity to query,
	// best-first. Ties break by ascending ID for determinism.
	Search(query []float64, k int) []Hit
	// Len returns the number of indexed items.
	Len() int
}

// Cosine is the cosine similarity of two equal-length vectors (0 when either
// is zero).
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Exact is a linear-scan index. Safe for concurrent use.
type Exact struct {
	mu    sync.RWMutex
	dim   int
	items []Item
}

// NewExact creates an exact index for dim-dimensional vectors.
func NewExact(dim int) (*Exact, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vector: dimension %d", dim)
	}
	return &Exact{dim: dim}, nil
}

// Add implements Index.
func (e *Exact) Add(item Item) error {
	if len(item.Vec) != e.dim {
		return fmt.Errorf("vector: item dim %d, index dim %d", len(item.Vec), e.dim)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.items = append(e.items, item)
	return nil
}

// Len implements Index.
func (e *Exact) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.items)
}

// Search implements Index.
func (e *Exact) Search(query []float64, k int) []Hit {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return topK(e.items, query, k)
}

// hitHeap is a min-heap on (score, -id): the root is the worst retained hit.
type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }
func (h hitHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)   { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func topK(items []Item, query []float64, k int) []Hit {
	if k <= 0 || len(items) == 0 {
		return nil
	}
	h := &hitHeap{}
	heap.Init(h)
	for _, it := range items {
		if len(it.Vec) != len(query) {
			continue
		}
		hit := Hit{ID: it.ID, Score: Cosine(query, it.Vec)}
		if h.Len() < k {
			heap.Push(h, hit)
		} else if better(hit, (*h)[0]) {
			(*h)[0] = hit
			heap.Fix(h, 0)
		}
	}
	out := make([]Hit, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Hit)
	}
	return out
}

func better(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// LSH is a random-hyperplane locality-sensitive index: items are bucketed
// by the sign pattern of projections onto nbits random hyperplanes, across
// ntables independent tables. Search unions the query's buckets and ranks
// the candidates exactly.
type LSH struct {
	mu      sync.RWMutex
	dim     int
	nbits   int
	planes  [][][]float64 // [table][bit][dim]
	tables  []map[uint64][]Item
	numItem int
}

// NewLSH creates an LSH index with the given tables and bits per table. The
// seed makes hyperplanes deterministic.
func NewLSH(dim, ntables, nbits int, seed int64) (*LSH, error) {
	if dim <= 0 || ntables <= 0 || nbits <= 0 || nbits > 30 {
		return nil, fmt.Errorf("vector: bad LSH config dim=%d tables=%d bits=%d", dim, ntables, nbits)
	}
	rng := rand.New(rand.NewSource(seed))
	l := &LSH{dim: dim, nbits: nbits}
	for t := 0; t < ntables; t++ {
		bits := make([][]float64, nbits)
		for b := 0; b < nbits; b++ {
			plane := make([]float64, dim)
			for d := 0; d < dim; d++ {
				plane[d] = rng.NormFloat64()
			}
			bits[b] = plane
		}
		l.planes = append(l.planes, bits)
		l.tables = append(l.tables, map[uint64][]Item{})
	}
	return l, nil
}

func (l *LSH) signature(table int, vec []float64) uint64 {
	var sig uint64
	for b, plane := range l.planes[table] {
		var dot float64
		for d := range plane {
			dot += plane[d] * vec[d]
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Add implements Index.
func (l *LSH) Add(item Item) error {
	if len(item.Vec) != l.dim {
		return fmt.Errorf("vector: item dim %d, index dim %d", len(item.Vec), l.dim)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for t := range l.tables {
		sig := l.signature(t, item.Vec)
		l.tables[t][sig] = append(l.tables[t][sig], item)
	}
	l.numItem++
	return nil
}

// Len implements Index.
func (l *LSH) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.numItem
}

// Search implements Index.
func (l *LSH) Search(query []float64, k int) []Hit {
	if len(query) != l.dim || k <= 0 {
		return nil
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := map[int64]bool{}
	var cands []Item
	for t := range l.tables {
		sig := l.signature(t, query)
		for _, it := range l.tables[t][sig] {
			if !seen[it.ID] {
				seen[it.ID] = true
				cands = append(cands, it)
			}
		}
	}
	// Deterministic candidate order before ranking.
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	return topK(cands, query, k)
}

// Recall computes the fraction of truth hits present in got — the standard
// approximate-index quality metric used by the ablation bench.
func Recall(got, truth []Hit) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := map[int64]bool{}
	for _, h := range got {
		set[h.ID] = true
	}
	n := 0
	for _, h := range truth {
		if set[h.ID] {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}
