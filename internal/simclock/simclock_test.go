package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimSleepAdvances(t *testing.T) {
	c := NewSim()
	start := c.Now()
	c.Sleep(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", got)
	}
}

func TestSimSleepNonPositive(t *testing.T) {
	c := NewSim()
	start := c.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("clock moved on non-positive sleep: %v -> %v", start, got)
	}
}

func TestSimElapsed(t *testing.T) {
	c := NewSim()
	c.Sleep(90 * time.Second)
	c.Advance(30 * time.Second)
	if got := c.Elapsed(); got != 120*time.Second {
		t.Fatalf("Elapsed = %v, want 2m", got)
	}
}

func TestSimConcurrentSleeps(t *testing.T) {
	c := NewSim()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := c.Elapsed(); got != 100*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 100ms", got)
	}
}

func TestGroupMaxSumCount(t *testing.T) {
	g := NewGroup()
	var wg sync.WaitGroup
	for i := 1; i <= 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Record(time.Duration(i) * time.Second)
		}(i)
	}
	wg.Wait()
	if g.Max() != 10*time.Second {
		t.Errorf("Max = %v, want 10s", g.Max())
	}
	if g.Sum() != 55*time.Second {
		t.Errorf("Sum = %v, want 55s", g.Sum())
	}
	if g.Count() != 10 {
		t.Errorf("Count = %d, want 10", g.Count())
	}
}

func TestRealClockMonotone(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestSimEpochIsStable(t *testing.T) {
	a, b := NewSim(), NewSim()
	if !a.Now().Equal(b.Now()) {
		t.Fatalf("two fresh sim clocks disagree: %v vs %v", a.Now(), b.Now())
	}
}

func TestTallyAccumulatesWithoutSharedClock(t *testing.T) {
	base := NewSim().Now()
	tally := NewTally(base)
	if !tally.Now().Equal(base) {
		t.Fatalf("fresh tally Now = %v, want base %v", tally.Now(), base)
	}
	tally.Sleep(3 * time.Second)
	tally.Sleep(-time.Second) // non-positive sleeps are ignored
	tally.Sleep(2 * time.Second)
	if tally.Total() != 5*time.Second {
		t.Errorf("Total = %v, want 5s", tally.Total())
	}
	if want := base.Add(5 * time.Second); !tally.Now().Equal(want) {
		t.Errorf("Now = %v, want %v", tally.Now(), want)
	}
}

func TestTallyConcurrentSleeps(t *testing.T) {
	tally := NewTally(NewSim().Now())
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tally.Sleep(time.Second)
		}()
	}
	wg.Wait()
	if tally.Total() != 10*time.Second {
		t.Errorf("Total = %v, want 10s", tally.Total())
	}
}
