// Package simclock provides a virtual clock abstraction so that the
// simulated LLM substrate can model wall-clock latency (the paper reports a
// 240 s pipeline runtime) without tests and benchmarks actually sleeping.
//
// Two implementations are provided: Real, which delegates to the time
// package, and Sim, which advances instantly and records total simulated
// elapsed time. Execution statistics in internal/exec report the simulated
// duration, reproducing the shape of the paper's runtime numbers.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal clock surface used by the execution engine and the
// simulated LLM service.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep advances the clock by d. A simulated clock returns immediately.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Sim is a virtual clock. Sleep advances the virtual time without blocking.
// It is safe for concurrent use: parallel executors from internal/exec may
// advance it from many goroutines. In that case the total advances by the
// sum of sleeps, which models sequential LLM latency; parallel sections
// should use AdvanceMax blocks instead (see Group).
type Sim struct {
	mu  sync.Mutex
	now time.Time
}

// NewSim returns a virtual clock starting at a fixed epoch so that runs are
// reproducible.
func NewSim() *Sim {
	return &Sim{now: time.Date(2025, 6, 22, 9, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock by advancing virtual time.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Advance is an alias for Sleep, provided for call sites where "advance"
// reads better than "sleep" (e.g. the executor accounting for parallelism).
func (s *Sim) Advance(d time.Duration) { s.Sleep(d) }

// Elapsed returns the virtual time elapsed since the epoch.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now.Sub(time.Date(2025, 6, 22, 9, 0, 0, 0, time.UTC))
}

// Tally is a Clock private to one pipeline stage: Sleep accumulates into a
// stage-local total instead of advancing any shared clock. The pipelined
// executor (internal/exec) gives every operator stage its own Tally, then
// models the run's wall-clock from the stage totals (overlapping stages
// contribute their maximum, not their sum). It is safe for concurrent use.
type Tally struct {
	mu    sync.Mutex
	base  time.Time
	total time.Duration
}

// NewTally returns a Tally starting at base (typically the shared clock's
// current time when the pipeline starts).
func NewTally(base time.Time) *Tally { return &Tally{base: base} }

// Now implements Clock: base time plus the accumulated total.
func (t *Tally) Now() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base.Add(t.total)
}

// Sleep implements Clock by accumulating d into the stage total.
func (t *Tally) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	t.total += d
	t.mu.Unlock()
}

// Total returns the accumulated stage time.
func (t *Tally) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Group tracks the maximum of a set of concurrent durations. A parallel
// executor runs k operator invocations at once; the virtual clock should
// advance by the maximum branch latency, not the sum. Typical use:
//
//	g := simclock.NewGroup()
//	... each branch calls g.Record(latency) ...
//	clock.Sleep(g.Max())
type Group struct {
	mu  sync.Mutex
	max time.Duration
	sum time.Duration
	n   int
}

// NewGroup returns an empty Group.
func NewGroup() *Group { return &Group{} }

// Record notes one branch's duration.
func (g *Group) Record(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d > g.max {
		g.max = d
	}
	g.sum += d
	g.n++
}

// Max returns the maximum recorded duration.
func (g *Group) Max() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Sum returns the sum of recorded durations.
func (g *Group) Sum() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sum
}

// Count returns how many durations were recorded.
func (g *Group) Count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
