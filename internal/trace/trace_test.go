package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildTree assembles a small query trace the way exec does: a query
// root over stage spans, with partition children under the scan stage.
func buildTree() *Span {
	scan := &Span{Kind: KindStage, Name: "scan", OpID: "scan", OpIndex: 0, RecordsIn: 100, RecordsOut: 100, SimMS: 40}
	scan.Add(
		&Span{Kind: KindPartition, Name: "partition 0", Partition: Ordinal(0), RecordsIn: 50, RecordsOut: 50, SimMS: 40},
		&Span{Kind: KindPartition, Name: "partition 1", Partition: Ordinal(1), RecordsIn: 50, RecordsOut: 50, SimMS: 38},
	)
	filter := &Span{Kind: KindStage, Name: "filter", OpID: "filter", OpIndex: 1,
		RecordsIn: 100, RecordsOut: 30, Selectivity: Selectivity(100, 30), SimMS: 900, LLMCalls: 100}
	root := &Span{Kind: KindQuery, Name: "pipelined", RecordsIn: 100, RecordsOut: 30, SimMS: 940}
	return root.Add(scan, filter)
}

func TestSpanHelpers(t *testing.T) {
	root := buildTree()
	stages := root.Stages()
	if len(stages) != 2 || stages[0].OpID != "scan" || stages[1].OpID != "filter" {
		t.Fatalf("Stages() = %+v, want scan then filter", stages)
	}
	if parts := root.FindAll(KindPartition); len(parts) != 2 {
		t.Fatalf("FindAll(partition) found %d spans, want 2", len(parts))
	}
	if got := Selectivity(100, 30); got != 0.3 {
		t.Errorf("Selectivity(100, 30) = %v, want 0.3", got)
	}
	if got := Selectivity(0, 5); got != 0 {
		t.Errorf("Selectivity(0, 5) = %v, want 0 (nothing entered)", got)
	}
	if p := Ordinal(3); p == nil || *p != 3 {
		t.Errorf("Ordinal(3) = %v", p)
	}
	var nilSpan *Span
	if nilSpan.FindAll(KindStage) != nil {
		t.Error("FindAll on a nil span should return nil")
	}
	root.SetAttr("policy", "max-quality")
	if root.Attrs["policy"] != "max-quality" {
		t.Errorf("SetAttr did not store the annotation: %v", root.Attrs)
	}
	if s := root.String(); !strings.Contains(s, "query pipelined") || !strings.Contains(s, "100->30") {
		t.Errorf("String() = %q", s)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	doc := NewDocument(buildTree())
	doc.JobID, doc.Tenant = "job-1", "alice"
	data, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("artifact does not end in a newline")
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.JobID != "job-1" || back.Tenant != "alice" {
		t.Errorf("round trip lost header fields: %+v", back)
	}
	if len(back.Trace.Stages()) != 2 {
		t.Errorf("round trip lost stage spans: %+v", back.Trace)
	}
	// Partition ordinal 0 must survive the trip (it is a pointer exactly
	// so that zero is distinguishable from absent).
	p0 := back.Trace.FindAll(KindPartition)[0]
	if p0.Partition == nil || *p0.Partition != 0 {
		t.Errorf("partition ordinal 0 lost in JSON: %+v", p0)
	}
}

func TestRingEvictionAndOrder(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Items(); got == nil || len(got) != 0 {
		t.Fatalf("empty ring Items() = %v, want a non-nil empty slice", got)
	}
	r.Push(1)
	r.Push(2)
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
	if got := r.Items(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Items() = %v, want [1 2]", got)
	}
	r.Push(3)
	r.Push(4) // evicts 1
	r.Push(5) // evicts 2
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3 at capacity", r.Len())
	}
	if got := r.Items(); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("Items() = %v, want [3 4 5] oldest-first", got)
	}
}

func TestRingCapacityFloor(t *testing.T) {
	r := NewRing[string](0)
	r.Push("a")
	r.Push("b")
	if got := r.Items(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("capacity-0 ring Items() = %v, want just the newest item", got)
	}
}
