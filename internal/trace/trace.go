// Package trace is the engine's structured query-trace model: a tree of
// spans recording where a query's simulated time, dollar cost, LLM calls,
// and records went — per plan stage, per scan partition, and (for
// clustered queries) per worker. The exec engines assemble a trace for
// every run from the same per-operator statistics the paper's Figure 5
// panel reports; the cluster coordinator embeds worker-side traces under
// its partition spans; the serving layer attaches traces to jobs and
// retains a bounded ring of recent ones. Spans carry the observed
// per-stage selectivity/cost/time estimates that adaptive re-optimization
// (ROADMAP item 3) consumes as its input signal.
//
// All durations are simulated-clock (internal/simclock), so traces are
// deterministic for a fixed corpus, plan, and code revision.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
)

// SchemaVersion is the trace artifact format version (the top-level
// object pzrun -trace writes and /v1/jobs/{id}/trace serves).
const SchemaVersion = 1

// Span kinds.
const (
	// KindQuery is a trace root: one optimized query execution.
	KindQuery = "query"
	// KindOptimize covers plan enumeration and sentinel calibration.
	KindOptimize = "optimize"
	// KindStage is one physical operator stage of the executed plan.
	KindStage = "stage"
	// KindPartition is one partition of a partitioned scan prefix — an
	// in-process range reader, or one scattered cluster partition.
	KindPartition = "partition"
	// KindTier is one tier of a cascade-filter stage (prefilter, verify,
	// resolve), nested under its stage span. Tier spans reconcile with
	// their parent: records entering the stage enter the first tier, each
	// tier's pass-through feeds the next, and the stage's cost is the sum
	// of its tiers'.
	KindTier = "tier"
	// KindWorker is a worker-side execution embedded under a cluster
	// partition span (Worker names the executing daemon).
	KindWorker = "worker"
	// KindReopt is a mid-flight (or post-run) re-optimization check: its
	// attrs carry the observed divergence, the trigger threshold, and the
	// old/new plan displays when a hot swap happened.
	KindReopt = "reopt"
	// KindScatter is the coordinator's scatter/gather phase.
	KindScatter = "scatter"
	// KindSuffix is the coordinator-local run of a clustered query's
	// non-distributable operator suffix.
	KindSuffix = "suffix"
)

// Span is one node of a query trace.
type Span struct {
	// Kind classifies the span (Kind* constants).
	Kind string `json:"kind"`
	// Name is the human label: the engine for query spans, the op ID for
	// stage spans, "partition 3" for partition spans.
	Name string `json:"name"`
	// OpID and OpIndex locate a stage span in the physical plan.
	OpID    string `json:"op_id,omitempty"`
	OpIndex int    `json:"op_index,omitempty"`
	// Partition is the partition ordinal of partition spans (nil
	// elsewhere; 0 is a valid ordinal, hence the pointer).
	Partition *int `json:"partition,omitempty"`
	// Worker names the cluster worker that executed a partition
	// ("local" for coordinator-side fallback execution).
	Worker string `json:"worker,omitempty"`
	// RecordsIn and RecordsOut are the record counts entering and
	// leaving the span.
	RecordsIn  int `json:"records_in"`
	RecordsOut int `json:"records_out"`
	// Selectivity is the observed RecordsOut/RecordsIn (0 when nothing
	// entered) — the realized per-stage estimate a mid-flight
	// re-optimizer compares against the plan's prior.
	Selectivity float64 `json:"selectivity,omitempty"`
	// SimMS is the span's simulated duration in milliseconds.
	SimMS int64 `json:"sim_ms"`
	// CostUSD is the span's simulated LLM spend.
	CostUSD float64 `json:"cost_usd"`
	// LLMCalls, InputTokens, OutputTokens, and CacheHits account LLM
	// work (CacheHits counts calls answered by the response cache).
	LLMCalls     int `json:"llm_calls,omitempty"`
	InputTokens  int `json:"input_tokens,omitempty"`
	OutputTokens int `json:"output_tokens,omitempty"`
	CacheHits    int `json:"cache_hits,omitempty"`
	// Attrs carries free-form annotations (policy, plan, candidates).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are the nested spans (stages under a query, partitions
	// under a stage, a worker run under a cluster partition).
	Children []*Span `json:"children,omitempty"`
}

// Add appends a child span and returns the parent for chaining.
func (s *Span) Add(children ...*Span) *Span {
	s.Children = append(s.Children, children...)
	return s
}

// SetAttr annotates the span, allocating the map on first use.
func (s *Span) SetAttr(key, value string) {
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[key] = value
}

// Ordinal returns a pointer to p, the form Span.Partition stores.
func Ordinal(p int) *int { return &p }

// Selectivity is the observed out/in ratio (0 when in is 0).
func Selectivity(in, out int) float64 {
	if in <= 0 {
		return 0
	}
	return float64(out) / float64(in)
}

// FindAll walks the tree depth-first and returns every span of the given
// kind, in visit order.
func (s *Span) FindAll(kind string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if s.Kind == kind {
		out = append(out, s)
	}
	for _, c := range s.Children {
		out = append(out, c.FindAll(kind)...)
	}
	return out
}

// Stages returns the trace's stage spans ordered by plan position — the
// flat Figure-5 view of a span tree.
func (s *Span) Stages() []*Span { return s.FindAll(KindStage) }

// String renders a compact one-line summary for logs.
func (s *Span) String() string {
	return fmt.Sprintf("%s %s: %d->%d records, %d ms sim, $%.4f",
		s.Kind, s.Name, s.RecordsIn, s.RecordsOut, s.SimMS, s.CostUSD)
}

// Document is the versioned wire form of one trace (what pzrun -trace
// writes and /v1/jobs/{id}/trace serves).
type Document struct {
	SchemaVersion int    `json:"schema_version"`
	JobID         string `json:"job_id,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Trace         *Span  `json:"trace"`
}

// NewDocument wraps a root span in the versioned wire form.
func NewDocument(root *Span) *Document {
	return &Document{SchemaVersion: SchemaVersion, Trace: root}
}

// MarshalIndent renders the document as indented JSON with a trailing
// newline, the form written to trace artifact files.
func (d *Document) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return append(data, '\n'), nil
}

// Ring is a bounded, concurrency-safe ring buffer retaining the most
// recent capacity items — the retention policy behind the serving
// layer's recent-trace buffer and slow-query log.
type Ring[T any] struct {
	mu   sync.Mutex
	cap  int
	buf  []T
	next int
	full bool
}

// NewRing returns an empty ring retaining up to capacity items
// (capacity < 1 is raised to 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{cap: capacity, buf: make([]T, capacity)}
}

// Push appends an item, evicting the oldest when full.
func (r *Ring[T]) Push(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % r.cap
	if r.next == 0 {
		r.full = true
	}
}

// Len reports how many items the ring currently holds.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return r.cap
	}
	return r.next
}

// Items returns the retained items oldest-first.
func (r *Ring[T]) Items() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]T, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]T, 0, r.cap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
