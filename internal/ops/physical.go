package ops

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/simclock"
)

// Estimate carries the optimizer's running cost-model state along a plan:
// expected cardinality and record size flowing *into* an operator, and the
// accumulated cost, time, and quality of the plan prefix.
type Estimate struct {
	// Cardinality is the expected number of records at this point.
	Cardinality float64
	// AvgTokens is the expected tokens per record's text.
	AvgTokens float64
	// CostUSD is the accumulated expected dollar cost.
	CostUSD float64
	// TimeSec is the accumulated expected runtime in seconds (sequential).
	TimeSec float64
	// Quality is the accumulated expected output quality in (0,1],
	// multiplied across operators the way Palimpzest composes per-operator
	// quality estimates.
	Quality float64
}

// Physical is one physical implementation of a logical operator.
type Physical interface {
	// ID uniquely identifies the implementation, e.g.
	// "llm-filter(atlas-large)".
	ID() string
	// Kind echoes the logical operator family.
	Kind() string
	// Estimate advances the cost model across this operator.
	Estimate(in Estimate) Estimate
	// Execute processes a record batch.
	Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error)
}

// Streamer is an optional Physical capability. A streamable operator's
// Execute is batch-decomposable: running it over any partition of the input
// and concatenating the outputs (in partition order) is equivalent to one
// call over the whole input. The pipelined executor (internal/exec) streams
// record batches through streamable operators and treats every other
// operator as a barrier that materializes its full input first.
type Streamer interface {
	// Streamable reports batch-decomposability.
	Streamable() bool
}

// IsStreamable reports whether p declares the Streamer capability and is
// batch-decomposable. Operators without the capability are conservatively
// treated as blocking.
func IsStreamable(p Physical) bool {
	s, ok := p.(Streamer)
	return ok && s.Streamable()
}

// BatchStreamer is an optional capability of source-position (scan)
// physical operators: emitting output incrementally in batches instead of
// one materialized slice. The pipelined executor prefers it for the
// pipeline's source stage, which is what lets a file-backed corpus flow
// through the engine without ever being loaded whole.
type BatchStreamer interface {
	// StreamExecute emits the operator's output in order, in batches of
	// up to batchSize records, calling emit once per batch. It reports
	// ok=false — without having called emit — when incremental emission
	// is unavailable and the caller should fall back to Execute. An error
	// from emit aborts the stream and is returned verbatim.
	StreamExecute(ctx *Ctx, batchSize int, emit func([]*record.Record) error) (ok bool, err error)
}

// PartitionPlan describes one slice of a partition-parallel scan.
type PartitionPlan struct {
	// Part is the partition ordinal in dataset order.
	Part int
	// Docs is the partition's exact record count, which is what lets the
	// engine precompute deterministic global batch sequence numbers per
	// partition before any record is read.
	Docs int
}

// PartitionStreamer is an optional capability of source-position (scan)
// physical operators: emitting the dataset as independent contiguous
// partitions, each streamed by its own range reader. The pipelined
// executor fans one source+map pipeline out per partition and merges the
// tagged batches back into exact dataset order (see internal/exec), so a
// partitioned run's output is byte-identical to the sequential scan's.
type PartitionStreamer interface {
	// PartitionPlans returns the partition layout for a fan-out of at
	// most max partitions; nil or a single entry means partitioning is
	// unavailable and the caller should stream sequentially.
	PartitionPlans(max int) []PartitionPlan
	// StreamPartition emits partition part of the layout computed for
	// parts total partitions, in order, in batches of up to batchSize
	// records, calling emit once per batch. An error from emit aborts the
	// stream and is returned verbatim.
	StreamPartition(ctx *Ctx, parts, part, batchSize int, emit func([]*record.Record) error) error
}

// PartitionHinter is an optional Physical capability: an operator carrying
// a partition fan-out resolved ahead of execution (the optimizer stamps
// the chosen count onto the scan), which the engine honors over its
// config-level default.
type PartitionHinter interface {
	// PartitionHint returns the requested fan-out (0 = no preference,
	// 1 = explicitly sequential).
	PartitionHint() int
}

// ClusterHinter is an optional Physical capability: a scan carrying the
// cluster worker-pool size its plan was optimized for. The optimizer's
// pipelined time model clamps a partitioned scan's effective concurrency
// to the pool size — partitions beyond it queue behind busy workers —
// while in-process execution ignores the hint (every partition gets its
// own pipeline regardless).
type ClusterHinter interface {
	// ClusterWorkers returns the worker-pool size (0 = no cluster).
	ClusterWorkers() int
}

// EffectiveConcurrency resolves how many of a scan's partitions can
// genuinely execute at once: the effective partition fan-out, clamped to
// the cluster worker pool when the plan targets one.
func EffectiveConcurrency(p Physical) int {
	conc := EffectivePartitions(p)
	if h, ok := p.(ClusterHinter); ok {
		if w := h.ClusterWorkers(); w > 0 && w < conc {
			conc = w
		}
	}
	return conc
}

// EffectivePartitions resolves the partition fan-out a source-position
// operator will actually achieve: its hinted fan-out clamped to what the
// underlying source can provide. 1 means no fan-out. The optimizer uses
// it so partition-aware time estimates and the engine's actual fan-out
// can never disagree.
func EffectivePartitions(p Physical) int {
	h, ok := p.(PartitionHinter)
	if !ok {
		return 1
	}
	n := h.PartitionHint()
	if n < 2 {
		return 1
	}
	ps, ok := p.(PartitionStreamer)
	if !ok {
		return 1
	}
	if plans := ps.PartitionPlans(n); len(plans) > 1 {
		return len(plans)
	}
	return 1
}

// ParallelHinter is an optional Physical capability: an operator that wants
// a worker-pool width different from the engine-wide Config.Parallelism
// (e.g. pure-CPU operators that gain nothing from overlapping LLM calls)
// returns its preference here.
type ParallelHinter interface {
	// PreferredParallelism maps the engine-wide setting to this operator's
	// pool size. Results < 1 are normalized to 1.
	PreferredParallelism(engineWide int) int
}

// StageParallelism resolves the worker-pool width for one operator stage:
// the engine-wide default, overridden by the operator's ParallelHinter
// capability when present.
func StageParallelism(p Physical, engineWide int) int {
	if engineWide < 1 {
		engineWide = 1
	}
	if h, ok := p.(ParallelHinter); ok {
		if n := h.PreferredParallelism(engineWide); n >= 1 {
			return n
		}
		return 1
	}
	return engineWide
}

// PipelinedWallTime folds per-stage times into the streaming engine's
// wall-clock model: consecutive streamable stages overlap, so a segment of
// them costs its maximum stage time; every blocking stage is a barrier
// that waits for all upstream work and then contributes its full time.
// Shared by internal/exec (measured stage durations) and the optimizer
// (estimated stage seconds) so the two can never drift apart.
func PipelinedWallTime[T interface{ ~int64 | ~float64 }](phys []Physical, times []T) T {
	var total, segment T
	for i, op := range phys {
		t := times[i]
		if i > 0 && !IsStreamable(op) {
			total += segment + t
			segment = 0
			continue
		}
		if t > segment {
			segment = t
		}
	}
	return total + segment
}

// Ctx is the execution context shared by physical operators in one run.
type Ctx struct {
	// Client performs completion calls (typically a retry client,
	// optionally wrapped in a cache).
	Client llm.Completer
	// Svc performs embedding calls and holds usage accounting.
	Svc *llm.Service
	// Clock is advanced by operators to model LLM latency.
	Clock simclock.Clock
	// Parallelism is the maximum concurrent LLM calls per operator.
	Parallelism int
	// Stats collects per-operator execution statistics.
	Stats *RunStats
	// Context, when non-nil, carries run cancellation: operators poll it
	// between records so a canceled query stops promptly instead of
	// finishing its batch. Nil means the run can never be canceled.
	Context context.Context

	curOp int
}

// Canceled reports the run's cancellation status: nil while the run is
// live (or has no cancellation context), context.Canceled or
// context.DeadlineExceeded after.
func (c *Ctx) Canceled() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// SetCurrentOp tells the context which plan position is executing; the
// sequential executor calls this before each operator. The pipelined
// executor uses ForOp instead, because its stages run concurrently.
func (c *Ctx) SetCurrentOp(idx int) { c.curOp = idx }

// ForOp returns a copy of the context pinned to plan position pos, with its
// own clock and parallelism. The pipelined executor derives one per
// operator stage so that concurrent stages never share the mutable
// current-operator field and each stage's simulated time accrues on its own
// clock. Stats (mutex-protected) and the LLM client remain shared.
func (c *Ctx) ForOp(pos int, clock simclock.Clock, parallelism int) *Ctx {
	child := *c
	child.curOp = pos
	child.Clock = clock
	child.Parallelism = parallelism
	return &child
}

// parallelismOrOne normalizes the parallelism setting.
func (c *Ctx) parallelismOrOne() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// OpStats is the per-operator execution record shown in the paper's
// Figure 5 statistics panel.
type OpStats struct {
	// Position is the operator's index in the plan.
	Position int
	// OpID and Kind identify the physical operator.
	OpID string
	Kind string
	// InRecords and OutRecords are the batch sizes.
	InRecords  int
	OutRecords int
	// LLMCalls, InputTokens, OutputTokens, CostUSD account LLM work;
	// CacheHits counts the calls answered by the response cache.
	LLMCalls     int
	InputTokens  int
	OutputTokens int
	CacheHits    int
	CostUSD      float64
	// Time is the simulated wall-clock the operator consumed.
	Time time.Duration
	// Tiers breaks a multi-tier operator's work down per routing tier
	// (the cascade filter's prefilter/verify/resolve). Empty for
	// single-tier operators. The exec layer renders each entry as a
	// child span of the operator's stage span.
	Tiers []TierStat
}

// TierStat is one routing tier's share of a multi-tier operator's work.
// Record flow is conserved per tier: In = Emitted + Dropped + Passed,
// and the next tier's In equals this tier's Passed — invariants the
// trace tests reconcile against the parent stage.
type TierStat struct {
	// Tier names the tier ("prefilter", "verify", "resolve").
	Tier string
	// In is how many records entered the tier.
	In int
	// Emitted is how many records the tier decided to keep (they become
	// operator output).
	Emitted int
	// Dropped is how many records the tier rejected.
	Dropped int
	// Passed is how many records the tier escalated to the next tier.
	Passed int
	// LLMCalls and CostUSD account the tier's LLM work.
	LLMCalls int
	CostUSD  float64
	// Time is the simulated wall-clock the tier consumed.
	Time time.Duration
}

// RunStats aggregates operator statistics for a pipeline run.
type RunStats struct {
	mu  sync.Mutex
	ops map[int]*OpStats
}

// NewRunStats returns empty statistics.
func NewRunStats() *RunStats { return &RunStats{ops: map[int]*OpStats{}} }

func (s *RunStats) op(pos int, id, kind string) *OpStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.ops[pos]
	if st == nil {
		st = &OpStats{Position: pos, OpID: id, Kind: kind}
		s.ops[pos] = st
	}
	return st
}

// noteBatch records batch sizes for an operator.
func (s *RunStats) noteBatch(pos int, id, kind string, in, out int) {
	st := s.op(pos, id, kind)
	s.mu.Lock()
	st.InRecords += in
	st.OutRecords += out
	s.mu.Unlock()
}

// noteLLM records one LLM response against an operator.
func (s *RunStats) noteLLM(pos int, id, kind string, resp *llm.Response) {
	st := s.op(pos, id, kind)
	s.mu.Lock()
	st.LLMCalls++
	st.InputTokens += resp.InputTokens
	st.OutputTokens += resp.OutputTokens
	if resp.Cached {
		st.CacheHits++
	}
	st.CostUSD += resp.CostUSD
	s.mu.Unlock()
}

// noteTime records simulated time consumed by an operator.
func (s *RunStats) noteTime(pos int, id, kind string, d time.Duration) {
	st := s.op(pos, id, kind)
	s.mu.Lock()
	st.Time += d
	s.mu.Unlock()
}

// noteTier accumulates one batch's tier-level accounting onto an operator,
// merging by tier name (the pipelined engine calls this once per tier per
// batch). Tier order in OpStats.Tiers is first-recorded order, which is
// the cascade's fixed tier order because every batch records its tiers
// front to back.
func (s *RunStats) noteTier(pos int, id, kind string, t TierStat) {
	st := s.op(pos, id, kind)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range st.Tiers {
		if st.Tiers[i].Tier == t.Tier {
			st.Tiers[i].In += t.In
			st.Tiers[i].Emitted += t.Emitted
			st.Tiers[i].Dropped += t.Dropped
			st.Tiers[i].Passed += t.Passed
			st.Tiers[i].LLMCalls += t.LLMCalls
			st.Tiers[i].CostUSD += t.CostUSD
			st.Tiers[i].Time += t.Time
			return
		}
	}
	st.Tiers = append(st.Tiers, t)
}

// Ops returns the per-operator stats ordered by plan position.
func (s *RunStats) Ops() []OpStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OpStats, 0, len(s.ops))
	for _, st := range s.ops {
		cp := *st
		// Deep-copy the tier slice: callers may read the snapshot while
		// later batches keep merging into the live entries.
		cp.Tiers = append([]TierStat(nil), st.Tiers...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Position < out[j].Position })
	return out
}

// TotalCost sums operator costs.
func (s *RunStats) TotalCost() float64 {
	var c float64
	for _, op := range s.Ops() {
		c += op.CostUSD
	}
	return c
}

// TotalTime sums operator simulated time.
func (s *RunStats) TotalTime() time.Duration {
	var d time.Duration
	for _, op := range s.Ops() {
		d += op.Time
	}
	return d
}

// TotalLLMCalls sums operator LLM calls.
func (s *RunStats) TotalLLMCalls() int {
	n := 0
	for _, op := range s.Ops() {
		n += op.LLMCalls
	}
	return n
}

// completionModelNames lists catalog completion models, best-first.
func completionModelNames() []string {
	cards := llm.CompletionModels()
	out := make([]string, len(cards))
	for i, c := range cards {
		out[i] = c.Name
	}
	return out
}

// advanceForCalls advances the clock to account for a batch of concurrent
// LLM calls: with parallelism p, elapsed time is max(longest single call,
// total/p).
func advanceForCalls(ctx *Ctx, latencies []time.Duration) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, l := range latencies {
		sum += l
		if l > max {
			max = l
		}
	}
	p := ctx.parallelismOrOne()
	elapsed := sum / time.Duration(p)
	if elapsed < max {
		elapsed = max
	}
	ctx.Clock.Sleep(elapsed)
	return elapsed
}

// runParallel applies fn to every record with bounded concurrency,
// preserving input order of results. The first error cancels nothing (all
// workers finish their current item) but is returned. Cancellation via
// Ctx.Context is checked before each record is dispatched: in-flight
// records complete, undispatched ones are skipped, and the context error
// is returned.
func runParallel[T any](ctx *Ctx, in []*record.Record, fn func(*record.Record) (T, error)) ([]T, error) {
	p := ctx.parallelismOrOne()
	if p > len(in) {
		p = len(in)
	}
	results := make([]T, len(in))
	errs := make([]error, len(in))
	if p <= 1 {
		for i, r := range in {
			if err := ctx.Canceled(); err != nil {
				return nil, err
			}
			results[i], errs[i] = fn(r)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					results[i], errs[i] = fn(in[i])
				}
			}()
		}
		for i := range in {
			if ctx.Canceled() != nil {
				break
			}
			work <- i
		}
		close(work)
		wg.Wait()
	}
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// dedupKey renders a record's selected fields as a map key.
func dedupKey(r *record.Record, fields []string) string {
	if len(fields) == 0 {
		fields = r.Schema().FieldNames()
	}
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = f + "=" + r.GetString(f)
	}
	return strings.Join(parts, "\x00")
}

// cheapOpSecs is the modeled runtime of a non-LLM operator per record.
const cheapOpSecs = 0.0001

// estimateCheap advances an Estimate across a zero-cost relational
// operator with the given output cardinality.
func estimateCheap(in Estimate, outCard float64) Estimate {
	out := in
	out.Cardinality = outCard
	out.TimeSec += in.Cardinality * cheapOpSecs
	return out
}
