// Package ops implements Palimpzest's operators. Users compose *logical*
// operators — Scan, Filter, Convert, plus the conventional relational
// algebra (paper §2.1: "Palimpzest programs can be viewed as collections of
// relational operators... users write logical plans only; the choice of the
// physical implementation is deferred until runtime"). Each logical
// operator exposes its candidate *physical* implementations; for LLM-backed
// operators there is one physical per catalog model (and strategy), which
// is exactly the plan space the optimizer searches.
//
// Physical operators may additionally declare execution capabilities the
// pipelined streaming engine (internal/exec) consumes: Streamer marks an
// operator batch-decomposable so record batches stream through it, and
// ParallelHinter overrides the engine-wide worker-pool width for its
// stage. Operators without Streamer act as pipeline barriers. See
// docs/architecture.md for how stages, batches, and the cost model fit
// together.
package ops

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/record"
	"repro/internal/schema"
)

// Cardinality declares how many output records a Convert produces per
// input (paper Figure 6: pz.Cardinality.ONE_TO_MANY).
type Cardinality int

// Cardinality values.
const (
	OneToOne Cardinality = iota
	OneToMany
)

// String implements fmt.Stringer.
func (c Cardinality) String() string {
	if c == OneToMany {
		return "ONE_TO_MANY"
	}
	return "ONE_TO_ONE"
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Logical is one logical operator in a plan.
type Logical interface {
	// Kind is the operator family name ("scan", "filter", "convert", ...).
	Kind() string
	// Describe renders the operator for plan displays and generated code.
	Describe() string
	// OutputSchema computes the schema of records the operator emits given
	// its input schema.
	OutputSchema(in *schema.Schema) (*schema.Schema, error)
	// Physical returns the candidate physical implementations.
	Physical() []Physical
}

// Scan reads a registered dataset; it is always the first operator.
type Scan struct {
	// Source is the dataset to read.
	Source dataset.Source
}

// Kind implements Logical.
func (s *Scan) Kind() string { return "scan" }

// Describe implements Logical.
func (s *Scan) Describe() string {
	return fmt.Sprintf("scan(%q, schema=%s)", s.Source.Name(), s.Source.Schema().Name())
}

// OutputSchema implements Logical.
func (s *Scan) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in != nil {
		return nil, fmt.Errorf("ops: scan must be the first operator")
	}
	return s.Source.Schema(), nil
}

// Physical implements Logical.
func (s *Scan) Physical() []Physical { return []Physical{&ScanExec{Source: s.Source}} }

// Filter keeps records satisfying either a natural-language predicate or a
// UDF (paper §2.1: "applies a natural language predicate or UDF").
type Filter struct {
	// Predicate is the natural-language condition (used when UDF is nil).
	Predicate string
	// UDF, when non-nil, decides records programmatically at zero LLM cost.
	UDF func(*record.Record) (bool, error)
	// UDFName labels the UDF in plan displays.
	UDFName string
}

// Kind implements Logical.
func (f *Filter) Kind() string { return "filter" }

// Describe implements Logical.
func (f *Filter) Describe() string {
	if f.UDF != nil {
		name := f.UDFName
		if name == "" {
			name = "udf"
		}
		return fmt.Sprintf("filter(udf=%s)", name)
	}
	return fmt.Sprintf("filter(%q)", f.Predicate)
}

// OutputSchema implements Logical.
func (f *Filter) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: filter needs an input")
	}
	return in, nil
}

// Physical implements Logical: a UDF filter has exactly one implementation;
// an NL filter has one per completion model plus the cheap embedding-
// similarity implementation.
func (f *Filter) Physical() []Physical {
	if f.UDF != nil {
		return []Physical{&UDFFilterExec{Filter: f}}
	}
	var out []Physical
	for _, m := range completionModelNames() {
		out = append(out, &LLMFilterExec{Filter: f, Model: m})
	}
	out = append(out, &EmbedFilterExec{Filter: f})
	return out
}

// Convert transforms records into a target schema, computing the fields
// that do not exist on the input (paper §2.1).
type Convert struct {
	// Target is the output schema.
	Target *schema.Schema
	// Desc guides extraction (usually the target schema's doc).
	Desc string
	// Card is OneToOne or OneToMany.
	Card Cardinality
}

// Kind implements Logical.
func (c *Convert) Kind() string { return "convert" }

// Describe implements Logical.
func (c *Convert) Describe() string {
	return fmt.Sprintf("convert(%s, cardinality=%s)", c.Target.Name(), c.Card)
}

// OutputSchema implements Logical.
func (c *Convert) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: convert needs an input")
	}
	if c.Target == nil {
		return nil, fmt.Errorf("ops: convert without target schema")
	}
	return c.Target, nil
}

// Physical implements Logical: one per (model, strategy) pair — bonded
// (all fields in one call) and field-at-a-time.
func (c *Convert) Physical() []Physical {
	var out []Physical
	for _, m := range completionModelNames() {
		out = append(out, &LLMConvertExec{Convert: c, Model: m, Bonded: true})
		out = append(out, &LLMConvertExec{Convert: c, Model: m, Bonded: false})
	}
	return out
}

// Project restricts records to a subset of fields.
type Project struct {
	// Fields are the names to keep, in output order.
	Fields []string
}

// Kind implements Logical.
func (p *Project) Kind() string { return "project" }

// Describe implements Logical.
func (p *Project) Describe() string {
	return fmt.Sprintf("project(%s)", strings.Join(p.Fields, ", "))
}

// OutputSchema implements Logical.
func (p *Project) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: project needs an input")
	}
	return in.Project(p.Fields...)
}

// Physical implements Logical.
func (p *Project) Physical() []Physical { return []Physical{&ProjectExec{Project: p}} }

// Limit caps the number of records.
type Limit struct {
	// N is the maximum records to emit.
	N int
}

// Kind implements Logical.
func (l *Limit) Kind() string { return "limit" }

// Describe implements Logical.
func (l *Limit) Describe() string { return fmt.Sprintf("limit(%d)", l.N) }

// OutputSchema implements Logical.
func (l *Limit) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: limit needs an input")
	}
	if l.N < 0 {
		return nil, fmt.Errorf("ops: limit(%d)", l.N)
	}
	return in, nil
}

// Physical implements Logical.
func (l *Limit) Physical() []Physical { return []Physical{&LimitExec{Limit: l}} }

// Distinct removes duplicate records by the given fields (all fields when
// empty).
type Distinct struct {
	// Fields are the deduplication key (empty = every field).
	Fields []string
}

// Kind implements Logical.
func (d *Distinct) Kind() string { return "distinct" }

// Describe implements Logical.
func (d *Distinct) Describe() string {
	if len(d.Fields) == 0 {
		return "distinct()"
	}
	return fmt.Sprintf("distinct(%s)", strings.Join(d.Fields, ", "))
}

// OutputSchema implements Logical.
func (d *Distinct) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: distinct needs an input")
	}
	for _, f := range d.Fields {
		if !in.Has(f) {
			return nil, fmt.Errorf("ops: distinct: no field %q in %s", f, in.Name())
		}
	}
	return in, nil
}

// Physical implements Logical.
func (d *Distinct) Physical() []Physical { return []Physical{&DistinctExec{Distinct: d}} }

// Aggregate reduces the input to a single record (paper §2.1: "All other
// operations (e.g., Aggregation) follow conventional database semantics").
type Aggregate struct {
	// Func is the aggregate function.
	Func AggFunc
	// Field is the numeric field to aggregate (ignored for count).
	Field string
}

// Kind implements Logical.
func (a *Aggregate) Kind() string { return "aggregate" }

// Describe implements Logical.
func (a *Aggregate) Describe() string {
	if a.Func == AggCount {
		return "aggregate(count)"
	}
	return fmt.Sprintf("aggregate(%s(%s))", a.Func, a.Field)
}

// OutputSchema implements Logical.
func (a *Aggregate) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: aggregate needs an input")
	}
	if a.Func != AggCount && !in.Has(a.Field) {
		return nil, fmt.Errorf("ops: aggregate: no field %q in %s", a.Field, in.Name())
	}
	return aggSchema(a.Func, a.Field), nil
}

func aggSchema(f AggFunc, field string) *schema.Schema {
	name := "Agg_" + f.String()
	if field != "" {
		name += "_" + field
	}
	return schema.MustNew(name, "Aggregate result.",
		schema.Field{Name: "value", Type: schema.Float, Desc: "The aggregate value."},
		schema.Field{Name: "count", Type: schema.Int, Desc: "Number of input records."},
	)
}

// Physical implements Logical.
func (a *Aggregate) Physical() []Physical { return []Physical{&AggregateExec{Aggregate: a}} }

// GroupBy groups records by key fields and computes one aggregate per
// group.
type GroupBy struct {
	// Keys are the grouping fields.
	Keys []string
	// Func and Field define the per-group aggregate.
	Func  AggFunc
	Field string
}

// Kind implements Logical.
func (g *GroupBy) Kind() string { return "groupby" }

// Describe implements Logical.
func (g *GroupBy) Describe() string {
	return fmt.Sprintf("groupby(%s; %s(%s))", strings.Join(g.Keys, ", "), g.Func, g.Field)
}

// OutputSchema implements Logical.
func (g *GroupBy) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: groupby needs an input")
	}
	if len(g.Keys) == 0 {
		return nil, fmt.Errorf("ops: groupby without keys")
	}
	fields := make([]schema.Field, 0, len(g.Keys)+2)
	for _, k := range g.Keys {
		f, ok := in.Field(k)
		if !ok {
			return nil, fmt.Errorf("ops: groupby: no field %q in %s", k, in.Name())
		}
		fields = append(fields, f)
	}
	if g.Func != AggCount && !in.Has(g.Field) {
		return nil, fmt.Errorf("ops: groupby: no field %q in %s", g.Field, in.Name())
	}
	fields = append(fields,
		schema.Field{Name: "value", Type: schema.Float, Desc: "The aggregate value."},
		schema.Field{Name: "count", Type: schema.Int, Desc: "Group size."},
	)
	return schema.New("Group_"+g.Func.String(), "Grouped aggregate.", fields...)
}

// Physical implements Logical.
func (g *GroupBy) Physical() []Physical { return []Physical{&GroupByExec{GroupBy: g}} }

// Sort orders records by a field.
type Sort struct {
	// Field is the sort key.
	Field string
	// Descending reverses the order.
	Descending bool
}

// Kind implements Logical.
func (s *Sort) Kind() string { return "sort" }

// Describe implements Logical.
func (s *Sort) Describe() string {
	dir := "asc"
	if s.Descending {
		dir = "desc"
	}
	return fmt.Sprintf("sort(%s %s)", s.Field, dir)
}

// OutputSchema implements Logical.
func (s *Sort) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: sort needs an input")
	}
	if !in.Has(s.Field) {
		return nil, fmt.Errorf("ops: sort: no field %q in %s", s.Field, in.Name())
	}
	return in, nil
}

// Physical implements Logical.
func (s *Sort) Physical() []Physical { return []Physical{&SortExec{Sort: s}} }

// Retrieve keeps the top-K records most semantically similar to Query,
// using the embedding model and a vector index.
type Retrieve struct {
	// Query is the natural-language retrieval query.
	Query string
	// K is how many records to keep.
	K int
}

// Kind implements Logical.
func (r *Retrieve) Kind() string { return "retrieve" }

// Describe implements Logical.
func (r *Retrieve) Describe() string { return fmt.Sprintf("retrieve(%q, k=%d)", r.Query, r.K) }

// OutputSchema implements Logical.
func (r *Retrieve) OutputSchema(in *schema.Schema) (*schema.Schema, error) {
	if in == nil {
		return nil, fmt.Errorf("ops: retrieve needs an input")
	}
	if r.K <= 0 {
		return nil, fmt.Errorf("ops: retrieve k=%d", r.K)
	}
	return in, nil
}

// Physical implements Logical.
func (r *Retrieve) Physical() []Physical { return []Physical{&RetrieveExec{Retrieve: r}} }

// ValidatePlan type-checks a logical operator chain and returns the final
// output schema.
func ValidatePlan(chain []Logical) (*schema.Schema, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("ops: empty plan")
	}
	if _, ok := chain[0].(*Scan); !ok {
		return nil, fmt.Errorf("ops: plan must start with a scan, got %s", chain[0].Kind())
	}
	var cur *schema.Schema
	for i, op := range chain {
		if i > 0 {
			if _, ok := op.(*Scan); ok {
				return nil, fmt.Errorf("ops: scan at position %d (only position 0 allowed)", i)
			}
		}
		next, err := op.OutputSchema(cur)
		if err != nil {
			return nil, fmt.Errorf("ops: operator %d (%s): %w", i, op.Kind(), err)
		}
		cur = next
	}
	return cur, nil
}
